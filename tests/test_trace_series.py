"""Unit tests for TimeSeries and TraceBundle."""

import numpy as np
import pytest

from repro.exceptions import TraceError, ValidationError
from repro.trace import TimeSeries, TraceBundle


def make(values, dt=1.0, name="x"):
    return TimeSeries.from_values(values, dt=dt, name=name)


class TestConstruction:
    def test_from_values_builds_uniform_grid(self):
        ts = TimeSeries.from_values([1, 2, 3], dt=2.0, t0=10.0)
        assert ts.times.tolist() == [10.0, 12.0, 14.0]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError, match="equal length"):
            TimeSeries(times=[0, 1], values=[1.0])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValidationError, match="strictly increasing"):
            TimeSeries(times=[0, 0], values=[1.0, 2.0])

    def test_rejects_nan_times(self):
        with pytest.raises(ValidationError, match="times"):
            TimeSeries(times=[0, np.nan], values=[1.0, 2.0])

    def test_values_may_contain_nan_gaps(self):
        ts = TimeSeries(times=[0, 1], values=[1.0, np.nan])
        assert ts.has_gaps

    def test_arrays_are_frozen(self):
        ts = make([1, 2, 3])
        with pytest.raises(ValueError):
            ts.values[0] = 99.0

    def test_rejects_negative_dt(self):
        with pytest.raises(ValidationError):
            TimeSeries.from_values([1, 2], dt=-1.0)


class TestProperties:
    def test_len(self):
        assert len(make([1, 2, 3])) == 3

    def test_duration(self):
        assert make([1, 2, 3], dt=5.0).duration == 10.0

    def test_duration_single_sample(self):
        assert make([1]).duration == 0.0

    def test_dt_is_median_interval(self):
        ts = TimeSeries(times=[0, 1, 2, 10], values=[0.0] * 4)
        assert ts.dt == 1.0

    def test_dt_undefined_for_singleton(self):
        with pytest.raises(TraceError):
            _ = make([1]).dt

    def test_is_uniform_true(self):
        assert make([1, 2, 3, 4]).is_uniform

    def test_is_uniform_false(self):
        ts = TimeSeries(times=[0, 1, 3], values=[0.0] * 3)
        assert not ts.is_uniform


class TestTransforms:
    def test_with_values_keeps_times(self):
        ts = make([1, 2, 3])
        out = ts.with_values([4, 5, 6])
        assert out.values.tolist() == [4, 5, 6]
        assert out.times.tolist() == ts.times.tolist()

    def test_slice_time_half_open(self):
        ts = make([10, 20, 30, 40])
        out = ts.slice_time(1.0, 3.0)
        assert out.values.tolist() == [20, 30]

    def test_slice_time_rejects_empty_interval(self):
        with pytest.raises(ValidationError):
            make([1, 2]).slice_time(5.0, 5.0)

    def test_head_tail(self):
        ts = make([1, 2, 3, 4])
        assert ts.head(2).values.tolist() == [1, 2]
        assert ts.tail(2).values.tolist() == [3, 4]

    def test_dropna(self):
        ts = TimeSeries(times=[0, 1, 2], values=[1.0, np.nan, 3.0])
        out = ts.dropna()
        assert out.values.tolist() == [1.0, 3.0]
        assert out.times.tolist() == [0.0, 2.0]

    def test_map_applies_elementwise(self):
        out = make([1, 2, 3]).map(lambda v: v * 2)
        assert out.values.tolist() == [2, 4, 6]

    def test_map_rejects_shape_change(self):
        with pytest.raises(ValidationError):
            make([1, 2, 3]).map(lambda v: v[:2])


class TestSummary:
    def test_summary_ignores_gaps(self):
        ts = TimeSeries(times=[0, 1, 2], values=[1.0, np.nan, 3.0])
        s = ts.summary()
        assert s["mean"] == 2.0
        assert s["n_gaps"] == 1.0
        assert s["first"] == 1.0
        assert s["last"] == 3.0

    def test_summary_all_gaps_raises(self):
        ts = TimeSeries(times=[0, 1], values=[np.nan, np.nan])
        with pytest.raises(TraceError):
            ts.summary()


class TestTraceBundle:
    def test_add_and_get(self):
        b = TraceBundle()
        b.add(make([1, 2], name="a"))
        assert b["a"].name == "a"
        assert "a" in b
        assert len(b) == 1

    def test_duplicate_name_rejected(self):
        b = TraceBundle()
        b.add(make([1, 2], name="a"))
        with pytest.raises(TraceError, match="already contains"):
            b.add(make([3, 4], name="a"))

    def test_missing_name_lists_available(self):
        b = TraceBundle()
        b.add(make([1, 2], name="a"))
        with pytest.raises(TraceError, match="available"):
            _ = b["zzz"]

    def test_iteration_order(self):
        b = TraceBundle()
        b.add(make([1], name="z"))
        b.add(make([1], name="a"))
        assert b.names == ["z", "a"]
        assert [ts.name for ts in b] == ["z", "a"]

    def test_from_mapping_renames(self):
        b = TraceBundle.from_mapping({"renamed": make([1, 2], name="orig")})
        assert b["renamed"].name == "renamed"

    def test_metadata_carried(self):
        b = TraceBundle.from_mapping({}, metadata={"crash_time": 5.0})
        assert b.metadata["crash_time"] == 5.0


class TestTraceBundleCoercion:
    """Regression: ``TraceBundle(series=[...])`` silently stored the
    list, so ``bundle[name]`` later died with ``TypeError: list indices
    must be integers`` far from the construction site."""

    def test_list_of_series_coerced_to_mapping(self):
        a, b = make([1, 2], name="a"), make([3, 4], name="b")
        bundle = TraceBundle(series=[a, b])
        assert bundle.names == ["a", "b"]
        assert bundle["a"] is a
        assert "b" in bundle

    def test_tuple_and_generator_accepted(self):
        assert TraceBundle(series=(make([1], name="t"),))["t"].name == "t"
        gen = (make([1], name=n) for n in ("g1", "g2"))
        assert TraceBundle(series=gen).names == ["g1", "g2"]

    def test_duplicate_names_in_iterable_rejected(self):
        with pytest.raises(TraceError, match="already contains"):
            TraceBundle(series=[make([1], name="d"), make([2], name="d")])

    def test_non_series_items_rejected(self):
        with pytest.raises(ValidationError, match="TimeSeries"):
            TraceBundle(series=[make([1], name="ok"), "not-a-series"])

    def test_non_iterable_rejected(self):
        with pytest.raises(ValidationError, match="mapping or an iterable"):
            TraceBundle(series=42)

    def test_mapping_values_validated_and_rekeyed(self):
        bundle = TraceBundle(series={"renamed": make([1, 2], name="orig")})
        assert bundle["renamed"].name == "renamed"
        with pytest.raises(ValidationError, match="TimeSeries"):
            TraceBundle(series={"bad": [1, 2, 3]})

    def test_metadata_must_be_mapping(self):
        with pytest.raises(ValidationError, match="metadata"):
            TraceBundle(metadata=[("crash_time", 5.0)])
