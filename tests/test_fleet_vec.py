"""Tests for the vectorised fleet engine and its equivalence layer.

Two equivalence levels (see :mod:`repro.memsim.equivalence`):

* exact — within the vector engine, batching and worker sharding never
  change a host's result (counter-based RNG);
* statistical — across engines, crash-time distributions agree (KS),
  crash-reason vocabularies and sample grids are identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AnalysisError, SimulationError
from repro.memsim import (
    COUNTER_NAMES,
    EquivalenceReport,
    Machine,
    MachineConfig,
    VectorFleet,
    check_batch_decomposition,
    check_cross_engine,
    fleet_equivalence_report,
    ks_2samp,
    run_fleet,
    run_fleet_vector,
)
from repro.memsim.config import FaultConfig, WorkloadConfig
from repro.obs import session as _obs


def aging_config(seed=11, budget=6_000.0, scale=6.0):
    """A config that crashes well inside ``budget`` (scaled faults)."""
    from dataclasses import replace

    base = MachineConfig.nt4(seed=seed, max_run_seconds=budget)
    return replace(base, faults=base.faults.scaled(scale))


def healthy_config(seed=21, budget=3_000.0):
    return MachineConfig.nt4(
        seed=seed, max_run_seconds=budget,
        faults=FaultConfig(heap_leak_fraction=0.0, pool_leak_rate=0.0,
                           fragmentation_rate=0.0),
    )


class TestWithSeed:
    """Satellite regression: MachineConfig.with_seed."""

    def test_changes_only_seed(self):
        from dataclasses import asdict

        cfg = MachineConfig.nt4(seed=3, max_run_seconds=1234.0)
        reseeded = cfg.with_seed(99)
        a, b = asdict(cfg), asdict(reseeded)
        assert b.pop("seed") == 99
        a.pop("seed")
        assert a == b

    def test_preserves_overrides(self):
        # The old fleet path rebuilt the config from its profile and lost
        # any field the caller had customised; with_seed must keep them.
        workload = WorkloadConfig(n_sources=5, mean_on=2.0, mean_off=4.0)
        faults = FaultConfig(heap_leak_fraction=0.0, pool_leak_rate=0.0,
                             fragmentation_rate=0.0)
        cfg = MachineConfig.nt4(seed=0, max_run_seconds=777.0,
                                workload=workload, faults=faults)
        reseeded = cfg.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.workload == workload
        assert reseeded.faults == faults
        assert reseeded.max_run_seconds == 777.0

    def test_run_fleet_derives_seeds(self):
        cfg = healthy_config(seed=5, budget=400.0)
        results = run_fleet(cfg, 2)
        seeds = [r.bundle.metadata["seed"] for r in results]
        assert seeds == [5.0, 6.0]


class TestVectorFleetBasics:
    def test_constructor_validation(self):
        cfg = healthy_config()
        with pytest.raises(SimulationError):
            VectorFleet(cfg, 0)
        with pytest.raises(SimulationError):
            VectorFleet(cfg, 2, dt=0.0)
        with pytest.raises(SimulationError):
            VectorFleet(cfg, 2, crash_grace=-1.0)
        with pytest.raises(SimulationError):
            VectorFleet(cfg, 2, ring_bins=4)
        with pytest.raises(SimulationError):
            VectorFleet(cfg, 2, dt=7.0)  # sampling_interval not a multiple
        with pytest.raises(SimulationError):
            VectorFleet(cfg, seeds=[])

    def test_determinism(self):
        cfg = healthy_config(budget=800.0)
        a = VectorFleet(cfg, 3).run()
        b = VectorFleet(cfg, 3).run()
        for ra, rb in zip(a, b):
            assert ra.crashed == rb.crashed
            for name in ra.bundle.names:
                np.testing.assert_array_equal(
                    ra.bundle[name].values, rb.bundle[name].values)

    def test_hosts_differ(self):
        cfg = healthy_config(budget=800.0)
        a, b = VectorFleet(cfg, 2).run()
        assert not np.array_equal(a.bundle["CommittedBytes"].values,
                                  b.bundle["CommittedBytes"].values)

    def test_metadata_and_grid(self):
        cfg = healthy_config(seed=9, budget=600.0)
        res = VectorFleet(cfg, 2).run()
        for i, r in enumerate(res):
            md = r.bundle.metadata
            assert md["engine"] == "vector"
            assert md["os_profile"] == "nt4"
            assert md["seed"] == float(9 + i)
            assert set(r.bundle.names) <= set(COUNTER_NAMES)
            ts = r.bundle["AvailableBytes"]
            # perfmon grid: multiples of the interval, none at t=0;
            # dropped samples leave gaps, so times are a grid *subset*.
            assert ts.times[0] >= cfg.sampling_interval
            on_grid = ts.times / cfg.sampling_interval
            assert np.allclose(on_grid, np.round(on_grid))
            assert np.all(np.diff(ts.times) > 0)

    def test_collect_traces_off(self):
        cfg = healthy_config(budget=600.0)
        res = VectorFleet(cfg, 2, collect_traces=False).run()
        for r in res:
            assert r.bundle.names == []
            assert r.bundle.metadata["engine"] == "vector"

    def test_invariants_and_metrics(self):
        cfg = aging_config(budget=3_000.0)
        with _obs.telemetry_session() as session:
            fleet = VectorFleet(cfg, 4)
            fleet.run()
            fleet.check_invariants()
            counters = session.metrics.snapshot()
        assert counters["memsim_vec.hosts"]["value"] == 4
        assert counters["memsim_vec.host_ticks"]["value"] > 0
        assert counters["memsim_vec.samples_collected"]["value"] > 0
        assert counters["memsim_vec.allocated_pages"]["value"] > 0

    def test_run_fleet_engine_dispatch(self):
        cfg = healthy_config(budget=400.0)
        vec = run_fleet(cfg, 2, engine="vector")
        ref = run_fleet_vector(cfg, 2)
        for a, b in zip(vec, ref):
            np.testing.assert_array_equal(a.bundle["CommittedBytes"].values,
                                          b.bundle["CommittedBytes"].values)
        with pytest.raises(Exception):
            run_fleet(cfg, 2, engine="nope")


class TestExactDecomposition:
    """Within-engine exactness: batching and sharding are invisible."""

    def test_batch_decomposition(self):
        check_batch_decomposition(aging_config(budget=2_500.0), 4)

    def test_worker_sharding_bit_identical(self):
        cfg = aging_config(budget=2_500.0)
        seq = run_fleet_vector(cfg, 5, workers=1)
        par = run_fleet_vector(cfg, 5, workers=3)
        assert len(seq) == len(par) == 5
        for a, b in zip(seq, par):
            assert a.crashed == b.crashed
            assert a.crash_time == b.crash_time
            assert a.crash_reason == b.crash_reason
            for name in a.bundle.names:
                np.testing.assert_array_equal(a.bundle[name].times,
                                              b.bundle[name].times)
                np.testing.assert_array_equal(a.bundle[name].values,
                                              b.bundle[name].values)


@pytest.fixture(scope="module")
def cross_engine_report():
    """One object-vs-vector comparison fleet (module cached; the object
    half dominates the cost)."""
    return fleet_equivalence_report(aging_config(seed=31, budget=6_000.0), 10)


class TestCrossEngine:
    def test_report_agrees(self, cross_engine_report):
        rep = cross_engine_report
        assert rep.object_crashes == rep.n_hosts
        assert rep.vector_crashes == rep.n_hosts
        assert rep.object_reasons == rep.vector_reasons
        check_cross_engine(rep)  # KS + crash-fraction + reasons

    def test_crash_gap_rejected(self, cross_engine_report):
        from dataclasses import replace

        bad = replace(cross_engine_report, vector_crashes=0,
                      vector_crash_times=())
        with pytest.raises(AnalysisError):
            check_cross_engine(bad)

    def test_reason_vocab_rejected(self, cross_engine_report):
        from dataclasses import replace

        bad = replace(cross_engine_report, vector_reasons=("pool",))
        with pytest.raises(AnalysisError):
            check_cross_engine(bad)

    def test_ks_rejected(self):
        rep = EquivalenceReport(
            n_hosts=40, object_crashes=40, vector_crashes=40,
            object_crash_times=tuple(float(t) for t in range(40)),
            vector_crash_times=tuple(1000.0 + t for t in range(40)),
            ks_statistic=1.0, ks_pvalue=1e-12,
            object_reasons=("memory",), vector_reasons=("memory",))
        with pytest.raises(AnalysisError):
            check_cross_engine(rep)

    def test_ks_2samp_basics(self):
        d, p = ks_2samp([1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0])
        assert d == 0.0 and p == 1.0
        d, p = ks_2samp(list(range(50)), [x + 1000.0 for x in range(50)])
        assert d == 1.0 and p < 1e-6
        with pytest.raises(AnalysisError):
            ks_2samp([], [1.0])


class TestEdgeCases:
    def test_zero_duration_run(self):
        cfg = healthy_config(budget=0.5)
        res = VectorFleet(cfg, 2).run()
        for r in res:
            assert not r.crashed
            assert r.bundle.names == []  # no sample slots before t=0.5
        # object engine agrees on the degenerate shape
        obj = Machine(healthy_config(budget=0.5).with_seed(21)).run()
        assert not obj.crashed
        assert obj.bundle.names == []

    def test_survivor_fleet(self):
        res = VectorFleet(healthy_config(budget=2_000.0), 4).run()
        assert all(not r.crashed for r in res)
        assert all(r.crash_time is None and r.crash_reason is None for r in res)
        assert all(r.duration == 2_000.0 for r in res)

    def test_rejuvenation_mid_grace_window_averts_crash(self):
        # Advance until some host records its first allocation failure,
        # then rejuvenate inside the grace window: the pending crash must
        # be averted (the object model cancels the scheduled crash event).
        fleet = VectorFleet(aging_config(seed=41, budget=8_000.0), 4,
                            crash_grace=300.0)
        step = 50.0
        while not np.any(~np.isnan(fleet.first_failure) & fleet.active):
            fleet.advance(fleet.now + step)
            assert fleet.now < 8_000.0, "no host ever failed"
        failing = ~np.isnan(fleet.first_failure) & fleet.active
        deadline = np.nanmin(fleet.first_failure[failing]) + 300.0
        hosts = np.flatnonzero(failing)
        fleet.rejuvenate(hosts)
        assert np.all(np.isnan(fleet.first_failure[hosts]))
        fleet.advance(min(deadline + 60.0, 8_000.0))
        crashed_early = (~np.isnan(fleet.crash_time[hosts])
                         & (fleet.crash_time[hosts] <= deadline))
        assert not np.any(crashed_early)
        results = fleet.results()
        for h in hosts:
            assert len(results[h].rejuvenation_times) == 1
            assert results[h].bundle.metadata["n_rejuvenations"] == 1.0

    def test_rejuvenation_resets_usage(self):
        fleet = VectorFleet(aging_config(budget=4_000.0), 2)
        fleet.advance(1_000.0)
        assert np.all(fleet.committed > 0)
        fleet.rejuvenate()
        assert np.all(fleet.resident == 0)
        assert np.all(fleet.pinned == 0)
        assert np.all(fleet.pagefile == 0)
        fleet.check_invariants()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n_hosts=st.integers(min_value=1, max_value=4),
           scale=st.floats(min_value=0.5, max_value=8.0))
    def test_crash_count_properties(self, seed, n_hosts, scale):
        cfg = aging_config(seed=seed, budget=1_500.0, scale=scale)
        fleet = VectorFleet(cfg, n_hosts)
        results = fleet.run()
        fleet.check_invariants()
        crashed = [r for r in results if r.crashed]
        assert 0 <= len(crashed) <= n_hosts
        for r in crashed:
            assert 0.0 < r.crash_time <= 1_500.0
            assert r.crash_reason in ("commit", "memory", "pool")
            assert r.duration == r.crash_time
        for r in results:
            if not r.crashed:
                assert r.duration == 1_500.0


class TestCampaignVector:
    def test_run_cell_vector_matches_structure(self):
        from repro.analysis.campaign import (
            ExperimentSpec, cells_payload, run_cell,
        )

        spec_v = ExperimentSpec(name="v", scenario="stress", n_runs=2,
                                base_seed=3, fault_factor=4.0,
                                max_run_seconds=3_000.0, engine="vector")
        spec_o = ExperimentSpec(name="v", scenario="stress", n_runs=2,
                                base_seed=3, fault_factor=4.0,
                                max_run_seconds=3_000.0, engine="object")
        pv = cells_payload({"v": run_cell(spec_v)})["v"]
        po = cells_payload({"v": run_cell(spec_o)})["v"]
        assert set(pv) == set(po)
        assert len(pv["runs"]) == len(po["runs"])
        assert [r["seed"] for r in pv["runs"]] == [r["seed"] for r in po["runs"]]

    def test_execute_campaign_vector_parallel_bit_identical(self):
        from repro.analysis.campaign import (
            ExperimentSpec, cells_payload, execute_campaign,
        )

        specs = [ExperimentSpec(name="v", scenario="stress", n_runs=3,
                                base_seed=17, fault_factor=4.0,
                                max_run_seconds=3_000.0, engine="vector")]
        seq = cells_payload(execute_campaign(specs, workers=1).results)
        par = cells_payload(execute_campaign(specs, workers=2).results)
        assert seq == par

    def test_vector_journal_resume_bit_identical(self, tmp_path):
        from repro.analysis.campaign import (
            ExperimentSpec, cells_payload, execute_campaign,
        )
        from repro.testing.chaos import ChaosSpec

        specs = [ExperimentSpec(name="v", scenario="stress", n_runs=3,
                                base_seed=17, fault_factor=4.0,
                                max_run_seconds=3_000.0, engine="vector")]
        ref = cells_payload(execute_campaign(specs, workers=1).results)
        journal = tmp_path / "journal.jsonl"
        partial = execute_campaign(
            specs, workers=1, journal=journal, allow_partial=True,
            chaos=ChaosSpec(raise_rate=0.6, seed=5))
        assert partial.status == "incomplete"
        resumed = execute_campaign(specs, workers=1, journal=journal,
                                   resume=True)
        assert cells_payload(resumed.results) == ref
