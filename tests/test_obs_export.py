"""Tests for the telemetry exporters (repro.obs.export)."""

import csv
import io
import json
import re

import pytest

from repro import obs
from repro.exceptions import ValidationError
from repro.obs.export import (
    PrometheusWriter,
    flatten_metrics,
    manifests_to_csv,
    manifests_to_json,
    manifests_to_prometheus,
    session_to_prometheus,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


def _session_with_activity(*, profiled=False):
    session = obs.TelemetrySession(profile=profiled)
    with session.spans.span("simulate"):
        with session.spans.span("machine-run", seed=3):
            pass
    session.metrics.counter("sim.events_fired").inc(100)
    session.metrics.gauge("sim.queue_depth").set(7)
    hist = session.metrics.histogram("sim.latency")
    for v in range(1, 101):
        hist.observe(float(v))
    session.record_event("crash", sim_time=5000.0, reason="commit")
    session.record_event("crash", sim_time=6000.0, reason="commit")
    if profiled:
        with session.profiler.measure("fake.hotpath"):
            pass
    return session


def _manifest(**kwargs):
    profiled = kwargs.pop("profiled", False)
    defaults = dict(command="simulate", seed=3)
    defaults.update(kwargs)
    return obs.build_manifest(
        _session_with_activity(profiled=profiled), **defaults)


# -- a minimal exposition-format parser for round-trip checks ------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_openmetrics(text):
    """Parse exposition text into {type: ..., samples: [(name, labels, val)]}.

    Strict about structure: every non-comment line must be a valid
    sample whose family was declared by a preceding # TYPE line, and the
    document must end with # EOF.
    """
    families = {}
    samples = []
    lines = text.splitlines()
    assert lines[-1] == "# EOF", "exposition must terminate with # EOF"
    for line in lines[:-1]:
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, mtype = rest.split(" ")
            assert name not in families, f"family {name} declared twice"
            families[name] = mtype
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), f"unknown comment: {line!r}"
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"malformed sample line: {line!r}"
        base = m.group("name")
        for suffix in ("_total", "_count", "_sum"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
                break
        assert base in families, f"sample {m.group('name')} has no # TYPE"
        labels = dict(_LABEL_RE.findall(m.group("labels") or ""))
        samples.append((m.group("name"), labels, float(m.group("value"))))
    return {"families": families, "samples": samples}


class TestFlatten:
    def test_matches_registry_snapshot(self):
        session = _session_with_activity()
        snap = session.metrics.snapshot()
        flat = flatten_metrics(snap)
        assert flat["sim.events_fired.value"] == 100.0
        assert flat["sim.queue_depth.value"] == 7.0
        assert flat["sim.queue_depth.max"] == 7.0
        assert flat["sim.latency.count"] == 100
        assert flat["sim.latency.p50"] == snap["sim.latency"]["p50"]
        # nothing invented: every flat key unparses to a snapshot field
        for key, value in flat.items():
            name, _, field = key.rpartition(".")
            assert snap[name][field] == value

    def test_drops_type_and_none(self):
        flat = flatten_metrics({"empty.hist": {
            "type": "histogram", "count": 0, "min": None, "p50": None,
        }})
        assert flat == {"empty.hist.count": 0}


class TestJsonCsv:
    def test_json_records_shape(self):
        records = manifests_to_json([_manifest(), _manifest(command="analyze")])
        assert [r["command"] for r in records] == ["simulate", "analyze"]
        rec = records[0]
        assert rec["run"] == 0
        assert rec["seed"] == 3
        assert rec["n_events"] == 2
        assert rec["metrics"]["sim.events_fired.value"] == 100.0
        assert "simulate/machine-run" in rec["stage_seconds"]
        json.dumps(records)  # must be serialisable as-is

    def test_csv_rows_match_snapshot(self):
        manifest = _manifest()
        rows = list(csv.reader(io.StringIO(manifests_to_csv([manifest]))))
        assert rows[0] == ["run", "command", "seed", "metric", "value"]
        by_metric = {r[3]: r[4] for r in rows[1:]}
        flat = flatten_metrics(manifest.metrics)
        for name, value in flat.items():
            assert float(by_metric[name]) == pytest.approx(float(value))
        assert "run.wall_seconds" in by_metric
        assert "stage.simulate/machine-run.seconds" in by_metric
        assert all(r[0] == "0" and r[1] == "simulate" for r in rows[1:])

    def test_csv_includes_profile_rows(self):
        session = _session_with_activity(profiled=True)
        manifest = obs.build_manifest(session, command="simulate", seed=3)
        text = manifests_to_csv([manifest])
        assert "profile.fake.hotpath.calls" in text


class TestPrometheusWriter:
    def test_counter_gets_total_suffix(self):
        w = PrometheusWriter()
        w.sample("events_fired", "counter", 5)
        text = w.render()
        assert "# TYPE repro_events_fired counter" in text
        assert "repro_events_fired_total 5.0" in text

    def test_type_conflict_rejected(self):
        w = PrometheusWriter()
        w.sample("x", "counter", 1)
        with pytest.raises(ValidationError):
            w.sample("x", "gauge", 2)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            PrometheusWriter().sample("x", "wavelet", 1)

    def test_label_escaping(self):
        w = PrometheusWriter()
        w.sample("x", "gauge", 1, labels={"path": 'a"b\\c\nd'})
        line = [l for l in w.render().splitlines() if l.startswith("repro_x{")][0]
        assert r'path="a\"b\\c\nd"' in line

    def test_invalid_name_chars_sanitised(self):
        w = PrometheusWriter()
        w.sample("sim.queue-depth", "gauge", 1)
        assert "# TYPE repro_sim_queue_depth gauge" in w.render()


class TestManifestExposition:
    def test_round_trips_through_parser(self):
        session = _session_with_activity(profiled=True)
        manifest = obs.build_manifest(session, command="simulate", seed=3)
        parsed = parse_openmetrics(manifests_to_prometheus([manifest]))
        families = parsed["families"]
        assert families["repro_run_wall_seconds"] == "gauge"
        assert families["repro_stage_seconds"] == "gauge"
        assert families["repro_events"] == "counter"
        assert families["repro_sim_events_fired"] == "counter"
        assert families["repro_sim_latency"] == "summary"
        assert families["repro_profile_calls"] == "counter"
        by_name = {}
        for name, labels, value in parsed["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        [(labels, value)] = by_name["repro_sim_events_fired_total"]
        assert value == 100.0
        assert labels == {"run": "0", "command": "simulate", "seed": "3"}
        [(labels, value)] = by_name["repro_events_total"]
        assert labels["kind"] == "crash" and value == 2.0
        quantiles = {
            labels["quantile"]: value
            for labels, value in by_name["repro_sim_latency"]
        }
        assert set(quantiles) == {"0.5", "0.9", "0.99"}
        assert quantiles["0.5"] == pytest.approx(50.5)
        [(labels, _)] = by_name["repro_profile_calls_total"]
        assert labels["hotpath"] == "fake.hotpath"

    def test_summary_count_and_sum(self):
        text = manifests_to_prometheus([_manifest()])
        assert "repro_sim_latency_count" in text
        assert "repro_sim_latency_sum" in text
        assert text.endswith("# EOF\n")

    def test_multi_run_series_share_families(self):
        manifests = [_manifest(), _manifest(seed=4)]
        parsed = parse_openmetrics(manifests_to_prometheus(manifests))
        runs = {
            labels["run"]
            for name, labels, _ in parsed["samples"]
            if name == "repro_sim_events_fired_total"
        }
        assert runs == {"0", "1"}

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            manifests_to_prometheus([])

    def test_session_export(self):
        session = _session_with_activity(profiled=True)
        parsed = parse_openmetrics(session_to_prometheus(session))
        assert "repro_sim_latency" in parsed["families"]
        assert "repro_profile_calls" in parsed["families"]
        assert "repro_process_peak_rss_bytes" in parsed["families"]


_LEGAL_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")


class TestNameSanitisation:
    """Regression tests: grid-campaign instruments are named after
    ``<cell>@<detector>`` pairs; every exported name must still match
    the exposition grammar ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""

    def test_cell_at_detector_names_export_legal(self):
        session = obs.TelemetrySession()
        session.metrics.counter(
            "campaign.stress-aging@entropy.runs_completed").inc(2)
        session.metrics.counter(
            "scoreboard.w2k@page-faults+cusum.alarms").inc()
        session.metrics.gauge("resources.worker.0.rss_bytes").set(5.0)
        text = session_to_prometheus(session)
        parsed = parse_openmetrics(text)  # already strict about names
        for name in parsed["families"]:
            assert _LEGAL_NAME_RE.fullmatch(name), name
        for name, _, _ in parsed["samples"]:
            assert _LEGAL_NAME_RE.fullmatch(name), name
        assert "repro_campaign_stress_aging_entropy_runs_completed" in (
            parsed["families"])
        counts = {
            name: value for name, _, value in parsed["samples"]
            if name.startswith("repro_scoreboard_")
        }
        assert counts == {
            "repro_scoreboard_w2k_page_faults_cusum_alarms_total": 1.0}

    def test_colliding_raw_names_merge_into_one_family(self):
        # "cell@a" and "cell.a" both sanitize to cell_a: one # TYPE
        # declaration, both samples kept.
        w = PrometheusWriter()
        w.sample("cell@a", "counter", 1)
        w.sample("cell.a", "counter", 2)
        text = w.render()
        assert text.count("# TYPE repro_cell_a counter") == 1
        assert len(parse_openmetrics(text)["samples"]) == 2

    def test_colliding_raw_names_with_conflicting_types_raise(self):
        w = PrometheusWriter()
        w.sample("cell@a", "counter", 1)
        with pytest.raises(ValidationError, match="already declared"):
            w.sample("cell.a", "gauge", 2)

    def test_leading_digit_guarded(self):
        w = PrometheusWriter(prefix="")
        w.sample("0weird", "gauge", 1)
        assert "# TYPE _0weird gauge" in w.render()

    def test_timestamp_appended_to_sample_line(self):
        w = PrometheusWriter()
        w.sample("x", "gauge", 1, timestamp=123.5)
        assert "repro_x 1.0 123.5" in w.render()


# Timestamped exposition lines: "name{labels} value timestamp".
_STAMPED_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<stamp>[^ ]+))?$"
)


class TestTimelineExposition:
    def _records(self):
        def frame(seq, t, done, parent_rss, worker_rss):
            return {
                "kind": "frame", "seq": seq, "t": t, "wall_time": 5e9 + t,
                "counters": {}, "deltas": {},
                "progress": {"units_done": done, "units_failed": 0,
                             "units_remaining": 4 - done,
                             "units_per_second": 1.0, "eta_seconds": 4 - done},
                "resources": {"parent_rss_bytes": parent_rss,
                              "workers": [{"ordinal": 0,
                                           "rss_bytes": worker_rss}]},
            }
        from repro.obs.timeline import TIMELINE_SCHEMA
        return [
            {"kind": "header", "schema": TIMELINE_SCHEMA, "t": 0.0},
            frame(0, 1.0, 1, 1000, 400),
            {"kind": "annotation", "t": 1.5, "event": "retry"},
            {"kind": "annotation", "t": 1.7, "event": "retry"},
            {"kind": "annotation", "t": 2.5, "event": "worker-death"},
            frame(1, 2.0, 2, 1100, 600),
            {"kind": "end", "t": 3.0, "status": "ok"},
        ]

    def test_frames_export_timestamped_gauges(self):
        from repro.obs.export import timeline_to_prometheus

        text = timeline_to_prometheus(self._records())
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        samples = []
        for line in lines:
            m = _STAMPED_RE.match(line)
            assert m, f"malformed sample line: {line!r}"
            assert _LEGAL_NAME_RE.fullmatch(m.group("name"))
            samples.append(m)
        done = [m for m in samples
                if m.group("name") == "repro_timeline_units_done"]
        assert [m.group("value") for m in done] == ["1.0", "2.0"]
        assert [m.group("stamp") for m in done] == [
            repr(5e9 + 1.0), repr(5e9 + 2.0)]
        rss = [m for m in samples
               if m.group("name") == "repro_timeline_rss_bytes"]
        assert {m.group("labels") for m in rss} == {
            'process="parent"', 'process="worker0"'}

    def test_annotations_export_as_event_counters(self):
        from repro.obs.export import timeline_to_prometheus

        text = timeline_to_prometheus(self._records())
        assert ('repro_timeline_annotations_total{event="retry"} 2'
                in text)
        assert ('repro_timeline_annotations_total{event="worker-death"} 1'
                in text)

    def test_no_frames_rejected(self):
        from repro.obs.export import timeline_to_prometheus

        with pytest.raises(ValidationError, match="no timeline frames"):
            timeline_to_prometheus([{"kind": "header"}])
