"""Property-based tests (hypothesis) on core data structures and transforms."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fractal.wavelets import daubechies_filter, dwt, idwt
from repro.memsim import MachineConfig, MemoryManager
from repro.report import render_table
from repro.simkernel import Simulator
from repro.stats import fit_line
from repro.trace import TimeSeries, fill_gaps

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


@st.composite
def float_arrays(draw, min_size=2, max_size=200):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    return draw(hnp.arrays(np.float64, size, elements=finite_floats))


class TestTimeSeriesProperties:
    @given(float_arrays())
    def test_from_values_round_trips(self, values):
        ts = TimeSeries.from_values(values)
        np.testing.assert_array_equal(ts.values, values)
        assert len(ts) == values.size

    @given(float_arrays(min_size=3), st.integers(min_value=1, max_value=5))
    def test_head_tail_partition(self, values, n):
        ts = TimeSeries.from_values(values)
        n = min(n, len(ts) - 1)
        head, tail = ts.head(n), ts.tail(len(ts) - n)
        recombined = np.concatenate([head.values, tail.values])
        np.testing.assert_array_equal(recombined, ts.values)

    @given(float_arrays(min_size=4))
    def test_fill_gaps_idempotent(self, values):
        values = values.copy()
        values[1] = np.nan
        ts = TimeSeries.from_values(values)
        filled = fill_gaps(ts)
        assert not filled.has_gaps
        np.testing.assert_array_equal(fill_gaps(filled).values, filled.values)

    @given(float_arrays(min_size=4))
    def test_dropna_never_longer(self, values):
        ts = TimeSeries.from_values(values)
        assert len(ts.dropna()) <= len(ts)


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e5,
                              allow_nan=False), min_size=1, max_size=50))
    def test_events_fire_sorted(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run_until(1e6)
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                    min_size=2, max_size=30),
           st.data())
    def test_cancellation_removes_exactly_cancelled(self, times, data):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(t, lambda i=i: fired.append(i))
                   for i, t in enumerate(times)]
        to_cancel = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(times) - 1)))
        for i in to_cancel:
            handles[i].cancel()
        sim.run_until(1e6)
        assert set(fired) == set(range(len(times))) - to_cancel


class TestDwtProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=1000))
    def test_perfect_reconstruction_any_filter(self, wavelet, seed):
        x = np.random.default_rng(seed).standard_normal(128)
        coeffs = dwt(x, wavelet=wavelet, level=3)
        np.testing.assert_allclose(idwt(coeffs, wavelet=wavelet), x, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=10))
    def test_filter_orthonormal(self, n_moments):
        h = daubechies_filter(n_moments)
        assert abs(np.sum(h**2) - 1.0) < 1e-8
        assert abs(np.sum(h) - np.sqrt(2)) < 1e-8


class TestRegressionProperties:
    @given(st.floats(min_value=-100, max_value=100, allow_nan=False),
           st.floats(min_value=-100, max_value=100, allow_nan=False),
           st.integers(min_value=0, max_value=10_000))
    def test_exact_line_recovered(self, slope, intercept, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.uniform(-10, 10, size=20))
        if np.ptp(x) < 1e-6:
            return
        fit = fit_line(x, slope * x + intercept)
        assert abs(fit.slope - slope) < 1e-6 * max(1, abs(slope))
        assert abs(fit.intercept - intercept) < 1e-5 * max(1, abs(intercept))

    @given(float_arrays(min_size=3, max_size=50), st.floats(min_value=0.1, max_value=10))
    def test_scaling_y_scales_slope(self, y, factor):
        x = np.arange(y.size, dtype=float)
        base = fit_line(x, y).slope
        scaled = fit_line(x, factor * y).slope
        assert abs(scaled - factor * base) < 1e-6 * (1 + abs(base) * factor)


class TestAllocatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=2000)),
                    min_size=1, max_size=120),
           st.integers(min_value=0, max_value=100))
    def test_invariants_under_random_traffic(self, ops, seed):
        mem = MemoryManager(MachineConfig.nt4(), np.random.default_rng(seed))
        for is_alloc, pages in ops:
            if is_alloc:
                mem.allocate(pages)
            else:
                if mem.committed_pages > 0:
                    mem.free(min(pages, mem.committed_pages))
            mem.check_invariants()
        # Conservation: allocations - frees = live commit (+/- thrash moves
        # which preserve commit).
        assert (mem.cum_allocated_pages - mem.cum_freed_pages
                == mem.committed_pages)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_exhaustion_is_reported_not_raised(self, seed):
        mem = MemoryManager(MachineConfig.nt4(), np.random.default_rng(seed))
        limit = mem.effective_commit_limit_pages
        step = max(limit // 7, 1)
        failures = 0
        for _ in range(12):
            if not mem.allocate(step).ok:
                failures += 1
        assert failures >= 1
        mem.check_invariants()


class TestTableProperties:
    @given(st.lists(st.lists(finite_floats, min_size=2, max_size=2),
                    min_size=1, max_size=20))
    def test_table_renders_any_floats(self, rows):
        out = render_table(["a", "b"], rows)
        body = [l for l in out.splitlines() if l.startswith("|")]
        assert len(body) == len(rows) + 1  # + header
