"""Smoke tests: every example script must run end to end.

The examples are the library's advertised entry points; they are
imported as modules and driven with reduced workloads so the suite stays
fast.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart", "stress_to_crash", "multifractal_toolkit_tour",
                "rejuvenation_policy", "webserver_aging"} <= names

    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "crash time" in out
        assert "warning time" in out

    def test_multifractal_toolkit_tour(self, capsys):
        module = load_example("multifractal_toolkit_tour")
        module.main()
        out = capsys.readouterr().out
        assert "Hurst estimators" in out
        assert "Binomial cascade" in out

    def test_rejuvenation_policy(self, capsys):
        module = load_example("rejuvenation_policy")
        module.main(n_hosts=1)
        out = capsys.readouterr().out
        assert "Policy comparison" in out
        assert "predictive" in out

    def test_stress_to_crash(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        module = load_example("stress_to_crash")
        module.main(n_runs=1)
        out = capsys.readouterr().out
        assert "warnings vs crashes" in out
        assert (tmp_path / "traces").exists()
        assert list((tmp_path / "traces").glob("*.csv"))

    @pytest.mark.slow
    def test_webserver_aging(self, capsys):
        module = load_example("webserver_aging")
        module.main()
        out = capsys.readouterr().out
        assert "Offline analysis per counter" in out
