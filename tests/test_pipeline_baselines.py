"""End-to-end pipeline tests and baseline-detector tests on real runs."""

import numpy as np
import pytest

from repro.baselines import RawThresholdDetector, TrendExhaustionDetector, predict_exhaustion_time
from repro.core import AgingReport, analyze_counter, analyze_run
from repro.core.detectors import DetectorConfig
from repro.exceptions import AnalysisError
from repro.trace import TimeSeries


class TestAnalyzeCounter:
    def test_full_chain_on_crash_run(self, nt4_run):
        analysis = analyze_counter(nt4_run.bundle["AvailableBytes"])
        assert len(analysis.trajectory) == len(analysis.counter)
        assert analysis.indicator.statistic == "mean"
        assert analysis.alarm.scheme == "cusum"

    def test_alarm_before_crash(self, nt4_run):
        analysis = analyze_counter(nt4_run.bundle["AvailableBytes"])
        assert analysis.alarm.fired
        assert analysis.alarm.alarm_time < nt4_run.crash_time

    def test_lead_time_positive_and_substantial(self, nt4_run):
        analysis = analyze_counter(nt4_run.bundle["AvailableBytes"])
        lead = analysis.alarm.lead_time(nt4_run.crash_time)
        assert lead is not None
        assert lead > 60.0  # at least a minute of warning

    def test_gaps_handled(self, nt4_run):
        # The raw bundle has dropped samples; the chain must cope.
        ts = nt4_run.bundle["AvailableBytes"]
        assert analyze_counter(ts).counter.has_gaps is False

    def test_too_short_counter_rejected(self):
        ts = TimeSeries.from_values(np.random.default_rng(0).standard_normal(100))
        with pytest.raises(AnalysisError):
            analyze_counter(ts)

    def test_oscillation_method_works(self, nt4_run):
        analysis = analyze_counter(
            nt4_run.bundle["AvailableBytes"],
            holder_method="oscillation",
            indicator_window=256,
        )
        assert np.all(np.isfinite(analysis.trajectory.h))


class TestAnalyzeRun:
    def test_report_structure(self, nt4_run):
        report = analyze_run(nt4_run.bundle, counters=["AvailableBytes", "PagesPerSec"])
        assert isinstance(report, AgingReport)
        assert set(report.analyses) == {"AvailableBytes", "PagesPerSec"}
        assert report.crash_time == pytest.approx(nt4_run.crash_time)

    def test_first_alarm_is_min(self, nt4_run):
        report = analyze_run(nt4_run.bundle, counters=["AvailableBytes", "PagesPerSec"])
        fired = [a.alarm.alarm_time for a in report.analyses.values() if a.alarm.fired]
        assert report.first_alarm_time == min(fired)

    def test_lead_time_consistent(self, nt4_run):
        report = analyze_run(nt4_run.bundle, counters=["AvailableBytes"])
        assert report.lead_time() == pytest.approx(
            nt4_run.crash_time - report.first_alarm_time)

    def test_alarmed_counters_sorted(self, nt4_run):
        report = analyze_run(nt4_run.bundle, counters=["AvailableBytes", "PagesPerSec"])
        names = report.alarmed_counters
        times = [report.analyses[n].alarm.alarm_time for n in names]
        assert times == sorted(times)

    def test_empty_counters_rejected(self, nt4_run):
        with pytest.raises(AnalysisError):
            analyze_run(nt4_run.bundle, counters=[])

    def test_healthy_run_mostly_quiet(self, healthy_run):
        report = analyze_run(
            healthy_run.bundle, counters=["AvailableBytes"],
            indicator_window=256,
        )
        # Healthy machine: the detector may fire occasionally but the
        # run-level report must carry no crash time.
        assert report.crash_time is None
        assert report.lead_time() is None


class TestTrendBaseline:
    def test_predict_exhaustion_linear(self):
        t = np.arange(0.0, 1000.0)
        v = 1000.0 - 1.0 * t
        pred = predict_exhaustion_time(t, v)
        assert pred == pytest.approx(1000.0, abs=5.0)

    def test_no_prediction_without_depletion(self):
        t = np.arange(0.0, 500.0)
        v = 100.0 + 0.5 * t
        assert predict_exhaustion_time(t, v) is None

    def test_detects_depletion_on_crash_run(self, nt4_run):
        det = TrendExhaustionDetector(window_seconds=3600.0, step_seconds=600.0,
                                      horizon_seconds=10_000.0)
        alarm = det.run(nt4_run.bundle["AvailableBytes"])
        assert alarm.fired
        assert alarm.alarm_time < nt4_run.crash_time
        assert alarm.slope_at_alarm < 0

    def test_quiet_on_healthy_run(self, healthy_run):
        det = TrendExhaustionDetector(window_seconds=1800.0, step_seconds=600.0,
                                      horizon_seconds=3600.0)
        alarm = det.run(healthy_run.bundle["AvailableBytes"])
        # Healthy machine shows no sustained significant depletion within horizon.
        if alarm.fired:
            # Permit borderline fires but they must predict far-future exhaustion.
            assert alarm.predicted_exhaustion > healthy_run.duration

    def test_short_series_rejected(self):
        ts = TimeSeries.from_values(np.arange(10.0), name="x")
        with pytest.raises(AnalysisError):
            TrendExhaustionDetector().run(ts)


class TestNaiveBaseline:
    def test_fires_late_on_crash_run(self, nt4_run):
        det = RawThresholdDetector(fraction_of_baseline=0.2)
        alarm_time = det.run(nt4_run.bundle["AvailableBytes"])
        assert alarm_time is not None
        assert alarm_time < nt4_run.crash_time
        # The naive alarm is late: it fires in the last third of the run.
        assert alarm_time > 0.5 * nt4_run.crash_time

    def test_quiet_on_healthy_run(self, healthy_run):
        det = RawThresholdDetector(fraction_of_baseline=0.05, min_consecutive=30)
        assert det.run(healthy_run.bundle["AvailableBytes"]) is None

    def test_short_series_rejected(self):
        ts = TimeSeries.from_values(np.arange(20.0))
        with pytest.raises(AnalysisError):
            RawThresholdDetector().run(ts)


def _linear_decline(*, start=10_000.0, slope=1.0, t_end=9_500.0, dt=10.0):
    t = np.arange(0.0, t_end, dt)
    return TimeSeries(times=t, values=start - slope * t, name="AvailableBytes")


class TestTrendAlarmSemantics:
    """The trend baseline's alarm gates, on constructed series."""

    def test_nonsignificant_trend_never_alarms(self):
        # Weak drift buried in noise: Sen slope is negative and the
        # extrapolated exhaustion is near, but Mann-Kendall cannot call
        # the trend significant -- the detector must stay quiet rather
        # than alarm off an insignificant fit.
        rng = np.random.default_rng(7)
        t = np.arange(0.0, 4000.0, 10.0)
        v = 200.0 - 0.005 * t + rng.normal(0.0, 30.0, size=t.size)
        ts = TimeSeries(times=t, values=v, name="AvailableBytes")
        det = TrendExhaustionDetector(window_seconds=1000.0,
                                      step_seconds=100.0,
                                      horizon_seconds=1e9)
        alarm = det.run(ts)
        assert not alarm.fired
        _, scores = det.decision_scores(ts)
        assert np.all(scores == 0.0)

    def test_horizon_boundary_alarm_time(self):
        # Noise-free decline from 10000 at 1 unit/s: every window's
        # extrapolation lands exhaustion at exactly t=10000, so the first
        # scan step with 10000 - now <= horizon must be the alarm.
        ts = _linear_decline()
        det = TrendExhaustionDetector(window_seconds=1000.0,
                                      step_seconds=100.0,
                                      horizon_seconds=2000.0)
        alarm = det.run(ts)
        assert alarm.fired
        assert alarm.alarm_time == pytest.approx(8000.0)
        assert alarm.predicted_exhaustion == pytest.approx(10_000.0, abs=1.0)
        # The decision score crosses 1 exactly at the alarm step.
        times, scores = det.decision_scores(ts)
        at = np.searchsorted(times, alarm.alarm_time)
        assert scores[at] >= 1.0
        assert np.all(scores[:at] < 1.0)

    def test_transient_rise_stalls_extrapolation(self):
        # A thrash/trim rebound raises AvailableBytes mid-decline; windows
        # covering it lose the significant downward trend, so the alarm
        # comes later than on the uninterrupted decline.
        base = _linear_decline()
        det = TrendExhaustionDetector(window_seconds=1000.0,
                                      step_seconds=100.0,
                                      horizon_seconds=2000.0)
        clean_alarm = det.run(base)
        v = base.values.copy()
        t = base.times
        rise = (t >= 7600.0) & (t < 8400.0)
        # rebound: climb at +3 units/s through the window, then resume
        # the decline from the higher level
        v[rise] = v[t >= 7600.0][0] + 3.0 * (t[rise] - 7600.0)
        after = t >= 8400.0
        v[after] = v[rise][-1] - (t[after] - t[rise][-1])
        bumped = TimeSeries(times=t, values=v, name="AvailableBytes")
        bump_alarm = det.run(bumped)
        assert clean_alarm.fired
        assert not bump_alarm.fired or (
            bump_alarm.alarm_time > clean_alarm.alarm_time)


class TestNaiveAlarmSemantics:
    """Debounce and alarm-time semantics of the raw-threshold rule."""

    @staticmethod
    def _series(values):
        return TimeSeries(times=np.arange(float(len(values))),
                          values=np.asarray(values, dtype=float),
                          name="AvailableBytes")

    def test_rebound_resets_debounce(self):
        # 100-sample series, calibration = first 20 samples (median 100),
        # limit = 50.  Two below-limit samples, a rebound, then three in a
        # row: the alarm must come from the *second* excursion.
        v = [100.0] * 100
        v[60] = v[61] = 40.0          # two consecutive: not enough
        v[70] = v[71] = v[72] = 40.0  # three consecutive: alarm at t=72
        det = RawThresholdDetector(fraction_of_baseline=0.5,
                                   min_consecutive=3)
        assert det.run(self._series(v)) == pytest.approx(72.0)

    def test_alarm_time_is_nth_consecutive_sample(self):
        v = [100.0] * 80 + [10.0] * 20
        det = RawThresholdDetector(fraction_of_baseline=0.5,
                                   min_consecutive=5)
        # below-limit run starts at t=80; the 5th consecutive hit is t=84
        assert det.run(self._series(v)) == pytest.approx(84.0)

    def test_decision_scores_alarm_level(self):
        # Scores are depletion fractions: the configured alarm threshold
        # sits at 1 - fraction_of_baseline on the score scale.
        v = [100.0] * 80 + [10.0] * 20
        det = RawThresholdDetector(fraction_of_baseline=0.5)
        times, scores = det.decision_scores(self._series(v))
        assert times[0] == pytest.approx(20.0)  # monitoring starts post-cal
        assert scores[np.searchsorted(times, 80.0)] == pytest.approx(0.9)
        assert np.all(scores[times < 80.0] <= 1.0 - det.fraction_of_baseline)

    def test_nonpositive_baseline_rejected_for_scores(self):
        v = [0.0] * 50 + [10.0] * 50
        det = RawThresholdDetector()
        with pytest.raises(AnalysisError):
            det.decision_scores(self._series(v))


class TestDetectorComparison:
    def test_multifractal_warns_before_naive(self, nt4_run):
        """The paper's headline comparison, on one run."""
        mf = analyze_counter(nt4_run.bundle["AvailableBytes"],
                             detector_config=DetectorConfig(scheme="cusum"))
        naive = RawThresholdDetector(fraction_of_baseline=0.1).run(
            nt4_run.bundle["AvailableBytes"])
        assert mf.alarm.fired
        if naive is not None:
            assert mf.alarm.alarm_time <= naive
