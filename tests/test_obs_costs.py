"""Tests for cross-worker cost attribution (repro.obs.costs): span/
hot-path phase classification, self-time folding over merged span
trees, per-worker splits, share normalisation, the CPU view and the
CLI table — plus an end-to-end profile from a real telemetry session."""

import math

import pytest

from repro import obs
from repro.exceptions import ValidationError
from repro.obs.costs import (
    COSTS_SCHEMA,
    PHASES,
    build_cost_profile,
    classify_hotpath,
    classify_span,
    cost_table,
)


def span(path, duration, *, worker=None, count=1):
    attrs = {} if worker is None else {"worker_ordinal": worker}
    return [{"path": path, "duration": duration, "attrs": attrs}
            for _ in range(count)]


class TestClassification:
    @pytest.mark.parametrize("path, phase", [
        ("machine-run", "simulate"),
        ("cell-run/machine-setup", "simulate"),
        ("analyze-counter/holder", "cwt-holder"),
        ("analyze-counter/preprocess", "analysis"),
        ("analyze-counter/detector", "analysis"),
        ("machine-collect", "trace-io"),
        ("cell-run/write-csv", "trace-io"),
        ("campaign-pool", "pool-overhead"),
        ("campaign-pool/campaign-worker/cell-run", "pool-overhead"),
        # Unlisted leaf inherits its nearest classified ancestor.
        ("analyze-counter/custom-step", "analysis"),
        ("mystery", "other"),
    ])
    def test_classify_span(self, path, phase):
        assert classify_span(path) == phase

    @pytest.mark.parametrize("name, phase", [
        ("fractal.cwt", "cwt-holder"),
        ("perf.sliding_holder", "cwt-holder"),
        ("core.holder_trajectory", "cwt-holder"),
        ("core.analyze_counter", "analysis"),
        ("memsim.machine_step", "simulate"),
        ("simkernel.drain", "simulate"),
        ("perf.pool_dispatch", "pool-overhead"),
        ("who.knows", "other"),
    ])
    def test_classify_hotpath(self, name, phase):
        assert classify_hotpath(name) == phase


class TestBuildCostProfile:
    def test_no_completed_spans_rejected(self):
        with pytest.raises(ValidationError, match="no completed spans"):
            build_cost_profile([])
        with pytest.raises(ValidationError, match="no completed spans"):
            build_cost_profile([{"path": "open-span", "duration": None,
                                 "attrs": {}}])

    def test_self_time_subtracts_children(self):
        spans = (span("analyze-counter", 10.0)
                 + span("analyze-counter/holder", 6.0)
                 + span("analyze-counter/holder/inner", 2.0)
                 + span("analyze-counter/detector", 1.0))
        costs = build_cost_profile(spans)
        by_path = {c["path"]: c for c in costs["top_cost_centers"]}
        assert by_path["analyze-counter"]["self_seconds"] == pytest.approx(3.0)
        assert by_path["analyze-counter/holder"]["self_seconds"] == (
            pytest.approx(4.0))
        assert by_path["analyze-counter/holder/inner"]["self_seconds"] == (
            pytest.approx(2.0))
        assert costs["wall_seconds"] == pytest.approx(10.0)  # single root
        assert costs["attributed_seconds"] == pytest.approx(10.0)
        assert costs["n_spans"] == 4

    def test_self_time_clamped_for_concurrent_children(self):
        # A pool span's workers run concurrently: their summed duration
        # exceeds the parent's wall time.  Self time clamps at zero.
        spans = (span("campaign-pool", 4.0)
                 + span("campaign-pool/campaign-worker/cell-run", 3.5,
                        worker=0)
                 + span("campaign-pool/campaign-worker/cell-run", 3.5,
                        worker=1))
        costs = build_cost_profile(spans)
        by_path = {c["path"]: c for c in costs["top_cost_centers"]}
        assert by_path["campaign-pool"]["self_seconds"] == 0.0

    def test_phantom_worker_level_rolls_up(self):
        # campaign-worker has no span record of its own; the cell-run
        # still rolls up to campaign-pool (longest *recorded* prefix).
        spans = (span("campaign-pool", 10.0)
                 + span("campaign-pool/campaign-worker/cell-run", 4.0,
                        worker=0)
                 + span("campaign-pool/campaign-worker/cell-run/machine-run",
                        3.0, worker=0))
        costs = build_cost_profile(spans)
        by_path = {c["path"]: c for c in costs["top_cost_centers"]}
        assert by_path["campaign-pool"]["self_seconds"] == pytest.approx(6.0)
        assert by_path[
            "campaign-pool/campaign-worker/cell-run"
        ]["self_seconds"] == pytest.approx(1.0)

    def test_phase_shares_sum_to_one(self):
        spans = (span("campaign-pool", 10.0)
                 + span("campaign-pool/campaign-worker/cell-run/machine-run",
                        5.0, worker=0)
                 + span("campaign-pool/campaign-worker/cell-run/holder",
                        3.0, worker=0))
        costs = build_cost_profile(spans)
        shares = [stats["share"] for stats in costs["phases"].values()
                  if stats["share"] is not None]
        assert sum(shares) == pytest.approx(1.0)
        assert set(costs["phases"]) == set(PHASES)
        assert costs["phases"]["simulate"]["self_seconds"] == (
            pytest.approx(5.0))
        assert costs["phases"]["cwt-holder"]["self_seconds"] == (
            pytest.approx(3.0))
        assert costs["phases"]["pool-overhead"]["self_seconds"] == (
            pytest.approx(2.0))
        for stats in costs["phases"].values():
            if stats["share"] is not None:
                assert not math.isnan(stats["share"])

    def test_per_worker_split(self):
        spans = (span("campaign-pool", 10.0)
                 + span("campaign-pool/campaign-worker/machine-run", 4.0,
                        worker=0)
                 + span("campaign-pool/campaign-worker/machine-run", 2.0,
                        worker=1))
        costs = build_cost_profile(spans)
        assert sorted(costs["workers"]) == ["parent", "w0", "w1"]
        assert costs["workers"]["w0"]["simulate"]["self_seconds"] == (
            pytest.approx(4.0))
        assert costs["workers"]["w1"]["simulate"]["self_seconds"] == (
            pytest.approx(2.0))
        # Parent self time is the pool minus its children's rollup.
        assert costs["workers"]["parent"]["pool-overhead"][
            "self_seconds"] == pytest.approx(10.0)
        w0 = costs["workers"]["w0"]
        assert sum(s["share"] for s in w0.values()
                   if s["share"] is not None) == pytest.approx(1.0)

    def test_top_list_ordered_and_bounded(self):
        spans = []
        for i in range(20):
            spans += span(f"path-{i:02d}", float(i + 1))
        costs = build_cost_profile(spans, top=5)
        tops = costs["top_cost_centers"]
        assert len(tops) == 5
        selfs = [c["self_seconds"] for c in tops]
        assert selfs == sorted(selfs, reverse=True)
        assert tops[0]["path"] == "path-19"

    def test_wall_is_max_root_duration(self):
        spans = span("root-a", 4.0) + span("root-b", 9.0)
        costs = build_cost_profile(spans)
        assert costs["wall_seconds"] == pytest.approx(9.0)

    def test_call_counts_aggregate(self):
        costs = build_cost_profile(span("machine-run", 1.0, count=3))
        center = costs["top_cost_centers"][0]
        assert center["calls"] == 3
        assert center["total_seconds"] == pytest.approx(3.0)

    def test_cpu_view_from_profiler_hotpaths(self):
        profile = {"hotpaths": {
            "fractal.cwt": {"cpu_total": 6.0, "calls": 3},
            "memsim.machine_step": {"cpu_total": 3.0, "calls": 9},
            "unknown.thing": {"cpu_total": 1.0, "calls": 1},
            "no.cpu.recorded": {"calls": 2},
        }}
        costs = build_cost_profile(span("machine-run", 1.0), profile=profile)
        cpu = costs["cpu"]
        assert cpu["cpu_seconds"] == pytest.approx(10.0)
        assert cpu["phases"]["cwt-holder"]["share"] == pytest.approx(0.6)
        assert cpu["phases"]["simulate"]["share"] == pytest.approx(0.3)
        assert cpu["phases"]["other"]["share"] == pytest.approx(0.1)

    def test_no_profiler_no_cpu_view(self):
        costs = build_cost_profile(span("machine-run", 1.0))
        assert "cpu" not in costs
        assert costs["schema"] == COSTS_SCHEMA


class TestCostTable:
    def test_rows(self):
        spans = span("machine-run", 3.0) + span("holder", 1.0)
        rows = cost_table(build_cost_profile(spans))
        assert rows[0] == ["machine-run", "simulate", "1", "3.0000", "75.0%"]
        assert rows[1] == ["holder", "cwt-holder", "1", "1.0000", "25.0%"]

    def test_none_share_renders_dash(self):
        rows = cost_table({"top_cost_centers": [
            {"path": "p", "phase": "other", "calls": 1,
             "self_seconds": 0.0, "share": None}]})
        assert rows[0][-1] == "—"


class TestSessionIntegration:
    def test_profile_from_live_session(self):
        session = obs.enable_telemetry()
        try:
            with obs.span("analyze-counter"):
                with obs.span("holder"):
                    pass
                with obs.span("detector"):
                    pass
            costs = build_cost_profile(session.spans.to_list())
        finally:
            obs.disable_telemetry()
        assert costs["n_spans"] == 3
        paths = {c["path"] for c in costs["top_cost_centers"]}
        assert paths == {"analyze-counter", "analyze-counter/holder",
                         "analyze-counter/detector"}
        shares = [s["share"] for s in costs["phases"].values()
                  if s["share"] is not None]
        assert sum(shares) == pytest.approx(1.0)
