"""Tests for the memory-subsystem simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.memsim import (
    COUNTER_NAMES,
    Machine,
    MachineConfig,
    MemoryManager,
    run_fleet,
)
from repro.memsim.config import PAGE_SIZE, FaultConfig, WorkloadConfig
from repro.memsim.faults import CompositeListener, FragmentationFault, LeakProcess
from repro.simkernel import RngRegistry, Simulator


def manager(config=None, seed=0):
    cfg = config or MachineConfig.nt4(seed=seed)
    return MemoryManager(cfg, np.random.default_rng(seed))


class TestMemoryManagerAccounting:
    def test_initial_state(self):
        mem = manager()
        assert mem.committed_pages == 0
        assert mem.available_pages > 0
        mem.check_invariants()

    def test_allocate_free_round_trip(self):
        mem = manager()
        before = mem.available_pages
        assert mem.allocate(100).ok
        assert mem.committed_pages == 100
        mem.free(100)
        assert mem.committed_pages == 0
        assert mem.available_pages == before
        mem.check_invariants()

    def test_commit_failure_at_limit(self):
        mem = manager()
        limit = mem.effective_commit_limit_pages
        res = mem.allocate(limit + 1)
        assert not res.ok
        assert res.failure_reason == "commit"
        assert mem.last_failure == "commit"
        assert mem.cum_alloc_failures == 1

    def test_paging_out_under_pressure(self):
        mem = manager()
        # Allocate beyond physical but within commit: must page out.
        total_phys = mem.available_pages
        assert mem.allocate(total_phys - 100).ok
        assert mem.allocate(5000).ok
        assert mem.pagefile_pages > 0
        assert mem.cum_pages_out > 0
        mem.check_invariants()

    def test_free_biased_toward_pagefile(self):
        mem = manager()
        phys = mem.available_pages
        mem.allocate(phys - 100)
        mem.allocate(2000)
        in_pagefile = mem.pagefile_pages
        assert in_pagefile > 0
        cold_share = in_pagefile / mem.committed_pages
        mem.free(1000)
        released_cold = in_pagefile - mem.pagefile_pages
        # Proportional-with-2x-bias: cold release ~ 2 * cold_share * pages.
        expected = round(1000 * min(1.0, 2.0 * cold_share))
        assert abs(released_cold - expected) <= 1

    def test_over_free_rejected(self):
        mem = manager()
        mem.allocate(10)
        with pytest.raises(SimulationError):
            mem.free(11)

    def test_nonpositive_requests_rejected(self):
        mem = manager()
        with pytest.raises(SimulationError):
            mem.allocate(0)
        with pytest.raises(SimulationError):
            mem.free(0)
        with pytest.raises(SimulationError):
            mem.pool_allocate(0)

    def test_touch_paged_out_faults_back_in(self):
        mem = manager()
        phys = mem.available_pages
        mem.allocate(phys - 100)
        mem.allocate(3000)
        assert mem.pagefile_pages > 0
        mem.free(phys // 2)  # make physical room
        before_cold = mem.pagefile_pages
        mem.touch_paged_out(min(before_cold, 100))
        assert mem.cum_pages_in > 0
        assert mem.pagefile_pages < before_cold

    def test_pool_exhaustion(self):
        mem = manager()
        cap = mem.config.nonpaged_pool_bytes
        res = mem.pool_allocate(cap)  # more than remaining
        assert not res.ok
        assert res.failure_reason == "pool"

    def test_pool_accumulates(self):
        mem = manager()
        before = mem.pool_used_bytes
        assert mem.pool_allocate(1024).ok
        assert mem.pool_used_bytes == before + 1024

    def test_fragmentation_shrinks_commit_limit(self):
        mem = manager()
        before = mem.effective_commit_limit_pages
        mem.add_fragmentation_loss(10 * PAGE_SIZE)
        assert mem.effective_commit_limit_pages == before - 10

    def test_negative_fragmentation_rejected(self):
        with pytest.raises(SimulationError):
            manager().add_fragmentation_loss(-1.0)

    def test_available_bytes_consistent(self):
        mem = manager()
        assert mem.available_bytes == mem.available_pages * PAGE_SIZE


class TestConfigs:
    def test_profiles_differ(self):
        nt4 = MachineConfig.nt4()
        w2k = MachineConfig.w2k()
        assert w2k.ram_bytes > nt4.ram_bytes
        assert nt4.os_profile == "nt4"
        assert w2k.os_profile == "w2k"

    def test_overrides(self):
        cfg = MachineConfig.nt4(seed=5, max_run_seconds=100.0)
        assert cfg.seed == 5
        assert cfg.max_run_seconds == 100.0

    def test_workload_hurst_theory(self):
        w = WorkloadConfig(pareto_shape=1.4)
        assert w.theoretical_hurst == pytest.approx(0.8)

    def test_fault_scaling(self):
        f = FaultConfig(heap_leak_fraction=0.01, pool_leak_rate=100.0)
        s = f.scaled(2.0)
        assert s.heap_leak_fraction == pytest.approx(0.02)
        assert s.pool_leak_rate == pytest.approx(200.0)

    def test_fault_scaling_caps_fraction(self):
        f = FaultConfig(heap_leak_fraction=0.4)
        assert f.scaled(10.0).heap_leak_fraction == 0.5

    def test_invalid_configs(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(pareto_shape=2.5)
        with pytest.raises(ValidationError):
            FaultConfig(heap_leak_fraction=0.9)
        with pytest.raises(ValidationError):
            MachineConfig(trim_threshold=0.9)


class TestFaults:
    def test_leak_process_withholds(self):
        sim = Simulator()
        rngs = RngRegistry(0)
        mem = manager()
        mem.allocate(20_000)  # leaks pin pages out of existing commit
        leak = LeakProcess(sim, rngs, mem,
                           FaultConfig(heap_leak_fraction=0.5, fault_onset_time=0.0))
        total = sum(leak.on_release(100) for _ in range(100))
        assert 3000 < total < 7000
        assert leak.leaked_heap_pages == total

    def test_zero_leak_fraction(self):
        sim = Simulator()
        leak = LeakProcess(sim, RngRegistry(0), manager(),
                           FaultConfig(heap_leak_fraction=0.0, fault_onset_time=0.0))
        assert leak.on_release(1000) == 0

    def test_pool_drip_consumes_pool(self):
        sim = Simulator()
        mem = manager()
        leak = LeakProcess(sim, RngRegistry(0), mem,
                           FaultConfig(pool_leak_rate=10_000.0, fault_onset_time=0.0),
                           period=1.0)
        leak.ensure_started()
        before = mem.pool_used_bytes
        sim.run_until(100.0)
        assert mem.pool_used_bytes > before
        assert leak.leaked_pool_bytes > 0

    def test_fragmentation_listener(self):
        mem = manager()
        frag = FragmentationFault(mem, FaultConfig(fragmentation_rate=1e-3),
                                  np.random.default_rng(0))
        before = mem.effective_commit_limit_pages
        for _ in range(200):
            frag.on_allocation(1000)
        assert mem.effective_commit_limit_pages < before
        assert frag.on_release(100) == 0

    def test_composite_listener_caps_leaks(self):
        class GreedyLeaker:
            def on_allocation(self, pages):
                return None

            def on_release(self, pages):
                return pages  # leaks everything offered

        comp = CompositeListener(GreedyLeaker(), GreedyLeaker())
        assert comp.on_release(100) == 100  # never exceeds the release


class TestMachineRuns:
    def test_crash_metadata(self, nt4_run):
        assert nt4_run.crashed
        assert nt4_run.crash_reason in ("commit", "pool", "memory")
        meta = nt4_run.bundle.metadata
        assert meta["crash_time"] == pytest.approx(nt4_run.crash_time)
        assert meta["os_profile"] == "nt4"
        assert meta["first_failure_time"] < meta["crash_time"]

    def test_all_counters_collected(self, nt4_run):
        for name in COUNTER_NAMES:
            assert name in nt4_run.bundle

    def test_counters_physically_sane(self, nt4_run):
        b = nt4_run.bundle
        avail = b["AvailableBytes"].dropna().values
        committed = b["CommittedBytes"].dropna().values
        limit = b["CommitLimitBytes"].dropna().values
        assert np.all(avail >= 0)
        assert np.all(committed >= 0)
        assert np.all(committed <= limit.max() + 1)
        assert np.all(b["PagesPerSec"].dropna().values >= 0)

    def test_aging_trend_present(self, nt4_run):
        # Committed bytes must trend up (leaks) over the run.
        committed = nt4_run.bundle["CommittedBytes"].dropna()
        n = len(committed)
        early = np.median(committed.values[: n // 10])
        late = np.median(committed.values[-n // 10:])
        assert late > 1.5 * early

    def test_pool_monotone_modulo_noise(self, nt4_run):
        pool = nt4_run.bundle["PoolNonpagedBytes"].dropna().values
        assert pool[-1] > pool[0]

    def test_healthy_run_survives(self, healthy_run):
        assert not healthy_run.crashed
        assert healthy_run.crash_time is None
        assert "crash_time" not in healthy_run.bundle.metadata

    def test_healthy_run_commit_stationary(self, healthy_run):
        committed = healthy_run.bundle["CommittedBytes"].dropna()
        n = len(committed)
        early = np.median(committed.values[n // 4: n // 2])
        late = np.median(committed.values[-n // 4:])
        assert late < 1.5 * early

    def test_determinism(self):
        cfg = MachineConfig.nt4(seed=77, max_run_seconds=2000.0)
        a = Machine(cfg).run()
        b = Machine(cfg).run()
        assert a.crashed == b.crashed
        np.testing.assert_array_equal(
            a.bundle["AvailableBytes"].values, b.bundle["AvailableBytes"].values)

    def test_different_seeds_differ(self):
        a = Machine(MachineConfig.nt4(seed=1, max_run_seconds=2000.0)).run()
        b = Machine(MachineConfig.nt4(seed=2, max_run_seconds=2000.0)).run()
        assert not np.array_equal(
            a.bundle["AvailableBytes"].values, b.bundle["AvailableBytes"].values)

    def test_sample_drops_produce_fewer_samples(self):
        cfg = MachineConfig.nt4(seed=3, max_run_seconds=3000.0,
                                sample_drop_probability=0.1)
        res = Machine(cfg).run()
        expected = res.duration / cfg.sampling_interval
        n = len(res.bundle["AvailableBytes"])
        assert n < 0.97 * expected

    def test_run_fleet_seeds(self):
        results = run_fleet(MachineConfig.nt4(seed=10, max_run_seconds=1500.0), 3)
        seeds = [r.bundle.metadata["seed"] for r in results]
        assert seeds == [10.0, 11.0, 12.0]

    def test_run_fleet_rejects_zero(self):
        with pytest.raises(SimulationError):
            run_fleet(MachineConfig.nt4(), 0)

    def test_invariants_hold_at_end(self, nt4_run):
        # The machine checks invariants internally; re-verify counters here:
        ws = nt4_run.bundle["WorkingSetBytes"].dropna().values
        ram = MachineConfig.nt4().ram_bytes
        assert np.all(ws <= ram)


class TestWorkloadStatistics:
    def test_demand_is_long_range_dependent(self, healthy_run):
        """The headline statistical property: LRD aggregate demand."""
        from repro.fractal import dfa

        # PageFaultsPerSec tracks the page-allocation rate, i.e. the
        # aggregate ON/OFF demand, which is LRD by construction
        # (Taqqu superposition theorem).
        faults = healthy_run.bundle["PageFaultsPerSec"].dropna()
        alpha = dfa(faults.values).alpha
        assert alpha > 0.55  # persistent, not white
