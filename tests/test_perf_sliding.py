"""Tests for the sliding Hölder estimator and the monitor's fast paths."""

import numpy as np
import pytest

from repro.core.holder import wavelet_holder
from repro.core.online import OnlineAgingMonitor
from repro.exceptions import AnalysisError, ValidationError
from repro.obs import session as _obs
from repro.perf.sliding_cwt import SlidingHolderEstimator


@pytest.fixture(scope="module")
def crashing_counter():
    """AvailableBytes trace of a crashing stress host (fixed seed)."""
    from repro.memsim.scenarios import build_scenario

    machine = build_scenario("stress", seed=3, max_run_seconds=20_000.0)
    result = machine.run()
    assert result.crashed, "fixture scenario must crash"
    return result.bundle["AvailableBytes"].values


class TestSlidingHolderEstimator:
    def test_tail_matches_batch_on_crashing_trace(self, crashing_counter):
        window = crashing_counter[-4096:]
        est = SlidingHolderEstimator(tail=512)
        tail = est.holder_tail(window)
        batch = wavelet_holder(window)[-512:]
        assert tail.shape == (512,)
        np.testing.assert_allclose(tail, batch, rtol=1e-9, atol=1e-8)

    def test_tail_matches_batch_on_fbm(self):
        rng = np.random.default_rng(17)
        x = np.cumsum(rng.normal(size=6000))
        est = SlidingHolderEstimator(tail=256, max_scale=24.0, n_scales=10)
        tail = est.holder_tail(x)
        batch = wavelet_holder(x, max_scale=24.0, n_scales=10)[-256:]
        np.testing.assert_allclose(tail, batch, rtol=1e-9, atol=1e-8)

    def test_short_window_falls_back_to_batch_exactly(self):
        rng = np.random.default_rng(5)
        x = np.cumsum(rng.normal(size=700))
        est = SlidingHolderEstimator(tail=512)
        assert x.size <= est.segment_length
        np.testing.assert_array_equal(
            est.holder_tail(x), wavelet_holder(x)[-512:])

    def test_segment_length_accounts_for_support_and_cone(self):
        est = SlidingHolderEstimator(tail=512, max_scale=32.0)
        assert est.segment_length == 512 + 32 + 320

    def test_validation(self):
        with pytest.raises(ValidationError):
            SlidingHolderEstimator(tail=0)
        with pytest.raises(ValidationError):
            SlidingHolderEstimator(tail=64, max_scale=2.0, min_scale=4.0)
        with pytest.raises(ValidationError):
            SlidingHolderEstimator(tail=64, support_mult=2.0)


def _drifting_signal(n, seed=7):
    rng = np.random.default_rng(seed)
    drift = np.linspace(0.0, 2.0, n) ** 2
    values = np.cumsum(rng.normal(size=n) * (1.0 + drift))
    return np.arange(n, dtype=float), values


class TestMonitorEngines:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError):
            OnlineAgingMonitor(holder_engine="warp")

    def test_bad_holder_kwargs_rejected_at_construction(self):
        with pytest.raises(AnalysisError):
            OnlineAgingMonitor(holder_engine="sliding",
                               holder_kwargs={"no_such_kwarg": 1})

    def test_sliding_engine_matches_batch_indicators_and_alarm(self):
        t, v = _drifting_signal(12_288)
        batch = OnlineAgingMonitor(holder_engine="batch")
        sliding = OnlineAgingMonitor(holder_engine="sliding")
        batch.update_many(t, v)
        sliding.update_many(t, v)
        assert len(batch.indicator_history) == len(sliding.indicator_history)
        np.testing.assert_allclose(batch.indicator_history,
                                   sliding.indicator_history,
                                   rtol=1e-9, atol=1e-8)
        np.testing.assert_array_equal(batch.indicator_times,
                                      sliding.indicator_times)
        assert batch.alarm_time == sliding.alarm_time

    def test_sliding_engine_cuts_cwt_flops_5x(self):
        t, v = _drifting_signal(8_192)

        def flops(engine):
            monitor = OnlineAgingMonitor(holder_engine=engine)
            with _obs.telemetry_session() as session:
                monitor.update_many(t, v)
                return session.metrics.counter("fractal.cwt_flops").value

        ratio = flops("batch") / flops("sliding")
        assert ratio >= 5.0


class TestVectorisedUpdateMany:
    def _monitor(self, **overrides):
        kwargs = dict(chunk_size=128, history=512, indicator_window=256,
                      n_warmup=1, n_calibration=10)
        kwargs.update(overrides)
        return OnlineAgingMonitor(**kwargs)

    def test_matches_per_sample_loop(self):
        t, v = _drifting_signal(3_000, seed=11)
        looped = self._monitor()
        for ti, vi in zip(t, v):
            looped.update(ti, vi)
        batched = self._monitor()
        batched.update_many(t, v)
        np.testing.assert_array_equal(looped.indicator_history,
                                      batched.indicator_history)
        np.testing.assert_array_equal(looped.indicator_times,
                                      batched.indicator_times)
        assert looped.state == batched.state
        assert looped.alarm_time == batched.alarm_time
        assert looped.n_samples == batched.n_samples

    def test_matches_across_odd_split_points(self):
        t, v = _drifting_signal(2_000, seed=13)
        whole = self._monitor()
        whole.update_many(t, v)
        pieces = self._monitor()
        for start, stop in ((0, 7), (7, 300), (300, 901), (901, 2_000)):
            pieces.update_many(t[start:stop], v[start:stop])
        np.testing.assert_array_equal(whole.indicator_history,
                                      pieces.indicator_history)
        assert whole.state == pieces.state

    def test_state_change_callbacks_fire_at_same_times(self):
        t, v = _drifting_signal(3_000, seed=19)
        seen_loop, seen_batch = [], []
        looped = self._monitor(
            on_state_change=lambda *a: seen_loop.append(a))
        for ti, vi in zip(t, v):
            looped.update(ti, vi)
        batched = self._monitor(
            on_state_change=lambda *a: seen_batch.append(a))
        batched.update_many(t, v)
        assert seen_loop == seen_batch
        assert seen_loop  # the run must actually transition

    def test_empty_batch_is_noop(self):
        monitor = self._monitor()
        assert monitor.update_many([], []) is False
        assert monitor.n_samples == 0

    def test_invalid_batch_rejected_whole(self):
        monitor = self._monitor()
        with pytest.raises(AnalysisError):
            monitor.update_many([0.0, 1.0, float("nan")], [1.0, 2.0, 3.0])
        with pytest.raises(AnalysisError):
            monitor.update_many([0.0, 2.0, 1.0], [1.0, 2.0, 3.0])
        with pytest.raises(AnalysisError):
            monitor.update_many([0.0, 1.0], [1.0])
        assert monitor.n_samples == 0
        monitor.update(5.0, 1.0)
        with pytest.raises(AnalysisError):
            monitor.update_many([5.0, 6.0], [1.0, 2.0])
        assert monitor.n_samples == 1

    def test_accepts_generators(self):
        monitor = self._monitor()
        monitor.update_many((float(i) for i in range(40)),
                            (float(i % 7) + i * 0.01 for i in range(40)))
        assert monitor.n_samples == 40
