"""Tests for the live watch event stream (repro.obs.live)."""

import io
import json
import math

import numpy as np
import pytest

from repro.core import OnlineAgingMonitor
from repro.exceptions import TraceError
from repro.generators import fbm
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.live import (
    WATCH_SCHEMA,
    EventStreamWriter,
    LiveWatcher,
    read_events,
    validate_event,
    validate_stream,
)


def fast_monitor(**overrides):
    kwargs = dict(chunk_size=128, history=512, indicator_window=256,
                  n_warmup=1, n_calibration=10)
    kwargs.update(overrides)
    return OnlineAgingMonitor(**kwargs)


def make_watcher(**overrides):
    kwargs = dict(writer=EventStreamWriter(keep=True), counter="x",
                  status_every=0.0)
    kwargs.update(overrides)
    return LiveWatcher(fast_monitor(), **kwargs)


class TestValidation:
    def test_good_events_pass(self):
        validate_event({"kind": "sample", "t": 1.0, "value": 3.0})
        validate_event({"kind": "crash", "t": 9.0, "reason": "memory"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError, match="unknown event kind"):
            validate_event({"kind": "mystery", "t": 0.0})

    def test_missing_fields_rejected(self):
        with pytest.raises(TraceError, match="missing"):
            validate_event({"kind": "sample", "t": 0.0})

    def test_nonfinite_time_rejected(self):
        with pytest.raises(TraceError, match="finite"):
            validate_event({"kind": "sample", "t": float("nan"), "value": 1.0})

    def test_non_numeric_value_rejected(self):
        with pytest.raises(TraceError, match="numeric"):
            validate_event({"kind": "sample", "t": 0.0, "value": "big"})

    def test_foreign_schema_rejected(self):
        with pytest.raises(TraceError, match="schema"):
            validate_event({"kind": "header", "t": 0.0, "schema": "foo/9",
                            "counter": "x", "source": {}, "monitor": {},
                            "rules": []})

    def test_stream_must_open_with_header(self):
        with pytest.raises(TraceError, match="header"):
            validate_stream([{"kind": "sample", "t": 0.0, "value": 1.0}])

    def test_stream_time_monotonicity(self):
        header = {"kind": "header", "t": 0.0, "schema": WATCH_SCHEMA,
                  "counter": "x", "source": {}, "monitor": {}, "rules": []}
        with pytest.raises(TraceError, match="backwards"):
            validate_stream([
                header,
                {"kind": "sample", "t": 5.0, "value": 1.0},
                {"kind": "sample", "t": 4.0, "value": 1.0},
            ])

    def test_empty_stream_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            validate_stream([])


class TestEventStreamWriter:
    def test_writes_jsonl_lines(self):
        buf = io.StringIO()
        writer = EventStreamWriter(buf)
        writer.emit("sample", 1.0, value=2.0)
        writer.emit("sample", 2.0, value=3.0)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [e["t"] for e in lines] == [1.0, 2.0]
        assert writer.n_events == 2
        assert writer.last_t == 2.0

    def test_rejects_backwards_time(self):
        writer = EventStreamWriter()
        writer.emit("sample", 5.0, value=1.0)
        with pytest.raises(TraceError, match="backwards"):
            writer.emit("sample", 4.0, value=1.0)

    def test_rejects_invalid_event(self):
        writer = EventStreamWriter()
        with pytest.raises(TraceError):
            writer.emit("sample", 1.0)  # no value


class TestLiveWatcher:
    def test_header_required_before_feed(self):
        watcher = make_watcher()
        with pytest.raises(TraceError, match="header"):
            watcher.feed(0.0, 1.0)

    def test_nonfinite_samples_dropped_not_fatal(self):
        watcher = make_watcher()
        watcher.write_header({"type": "test"})
        watcher.feed(0.0, 1.0)
        watcher.feed(1.0, float("nan"))
        watcher.feed(2.0, float("inf"))
        watcher.feed(3.0, 2.0)
        assert watcher.n_samples == 2
        assert watcher.n_dropped == 2
        assert not watcher.monitor.alarmed

    def test_sample_decimation(self):
        watcher = make_watcher(sample_every=4)
        watcher.write_header({"type": "test"})
        for i in range(16):
            watcher.feed(float(i), float(i))
        counts = watcher.writer.counts
        assert counts["sample"] == 4  # every 4th of 16
        # The monitor still saw every sample.
        assert watcher.monitor.n_samples == 16

    def test_full_session_produces_valid_stream(self):
        rng = np.random.default_rng(21)
        healthy = fbm(5000, 0.7, rng=rng)
        sick = healthy[-1] + 50.0 * rng.standard_normal(2000)
        x = np.concatenate([healthy, sick])

        engine = AlertEngine([AlertRule(
            name="ind-low", signal="indicator", kind="threshold",
            op="lt", value=0.0, severity="warning")])
        watcher = make_watcher(engine=engine, sample_every=8,
                               status_every=1000.0)
        watcher.write_header({"type": "test"})
        for i, value in enumerate(x):
            watcher.feed(float(i), float(value))
        end = watcher.finalize(crash_time=float(x.size), crash_reason="memory")

        events = watcher.writer.events
        counts = validate_stream(events)
        assert counts["header"] == 1
        assert counts["crash"] == 1
        assert counts["end"] == 1
        assert counts["indicator"] >= 1
        assert counts["detector_state"] >= 2
        # The detector alarmed on the regime change, before the "crash".
        assert counts["alarm"] == 1
        assert end["alarm_time"] is not None
        assert end["lead_time"] > 0
        assert end["state"] == "alarmed"
        # detector_state transitions arrive in lifecycle order.
        states = [e["state"] for e in events if e["kind"] == "detector_state"]
        assert states[0] == "calibrating"
        assert states[-1] == "alarmed"

    def test_status_heartbeats(self):
        lines = []
        watcher = make_watcher(status_every=100.0, on_status=lines.append)
        watcher.write_header({"type": "test"})
        for i in range(401):
            watcher.feed(float(i), 1.0 + 0.01 * i)
        assert watcher.writer.counts.get("status", 0) == 4
        assert len(lines) == 4
        assert lines[0]["state"] in ("buffering", "calibrating")

    def test_finalize_without_crash(self):
        watcher = make_watcher()
        watcher.write_header({"type": "test"})
        watcher.feed(0.0, 1.0)
        end = watcher.finalize()
        assert end["crash_time"] is None
        assert end["lead_time"] is None
        assert watcher.writer.counts.get("crash", 0) == 0

    def test_finalize_twice_rejected(self):
        watcher = make_watcher()
        watcher.write_header({"type": "test"})
        watcher.finalize()
        with pytest.raises(TraceError, match="finalized"):
            watcher.finalize()


class TestLiveAttachment:
    @pytest.fixture(scope="class")
    def watched_run(self):
        from repro.memsim.scenarios import build_scenario

        machine = build_scenario("stress", seed=7, max_run_seconds=20_000.0)
        monitor = OnlineAgingMonitor(chunk_size=128, history=2048,
                                     indicator_window=512, n_calibration=10)
        watcher = LiveWatcher(monitor, writer=EventStreamWriter(keep=True),
                              sample_every=8)
        watcher.attach(machine)
        machine.run()
        end = watcher.finalize()
        return machine, watcher, end

    def test_stream_valid_and_alarm_precedes_crash(self, watched_run):
        machine, watcher, end = watched_run
        counts = validate_stream(watcher.writer.events)
        assert counts["alarm"] == 1
        assert counts["crash"] == 1
        assert end["alarm_time"] < end["crash_time"]
        assert end["lead_time"] > 0
        assert end["crash_time"] == pytest.approx(machine.crash_time)

    def test_watcher_saw_every_sample(self, watched_run):
        machine, watcher, _ = watched_run
        times, _ = machine.sampler.samples_of("AvailableBytes")
        assert watcher.n_samples == len(times)

    def test_replay_reproduces_live_detection(self, watched_run):
        _, _, live_end = watched_run
        from repro.memsim.scenarios import build_scenario
        from repro.trace import read_csv, write_csv

        machine = build_scenario("stress", seed=7, max_run_seconds=20_000.0)
        result = machine.run()
        monitor = OnlineAgingMonitor(chunk_size=128, history=2048,
                                     indicator_window=512, n_calibration=10)
        watcher = LiveWatcher(monitor, writer=EventStreamWriter(keep=True),
                              sample_every=0)
        end = watcher.replay(result.bundle)
        assert end["alarm_time"] == live_end["alarm_time"]
        assert end["crash_time"] == pytest.approx(live_end["crash_time"])
        header = watcher.writer.events[0]
        assert header["source"]["type"] == "replay"

    def test_replay_unknown_counter_rejected(self, watched_run):
        machine, _, _ = watched_run

        monitor = fast_monitor()
        watcher = LiveWatcher(monitor, counter="NoSuchCounter")
        # Rebuild a bundle from the machine's sampler.
        from repro.memsim.scenarios import build_scenario

        m2 = build_scenario("stress", seed=3, max_run_seconds=300.0)
        result = m2.run()
        with pytest.raises(TraceError, match="NoSuchCounter"):
            watcher.replay(result.bundle)


class TestRoundTrip:
    def test_read_events_validates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as handle:
            writer = EventStreamWriter(handle)
            watcher = LiveWatcher(fast_monitor(), writer=writer, counter="x")
            watcher.write_header({"type": "test"})
            watcher.feed(0.0, 1.0)
            watcher.finalize()
        events = read_events(path)
        assert events[0]["kind"] == "header"
        assert events[-1]["kind"] == "end"

    def test_read_events_rejects_bad_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "header"\n')
        with pytest.raises(TraceError, match="bad JSON"):
            read_events(path)

    def test_prometheus_export(self):
        from repro.obs.export import watch_events_to_prometheus

        watcher = make_watcher()
        watcher.write_header({"type": "test"})
        watcher.feed(0.0, 1.0)
        watcher.finalize(crash_time=10.0, crash_reason="memory")
        text = watch_events_to_prometheus(watcher.writer.events)
        assert "repro_watch_events_total" in text
        assert 'repro_watch_crash_time_seconds' in text


class TestSamplerCursor:
    def test_read_since(self):
        from repro.memsim.scenarios import build_scenario

        machine = build_scenario("stress", seed=5, max_run_seconds=300.0)
        machine.run()
        sampler = machine.sampler
        times, values, cursor = sampler.read_since("AvailableBytes", 0)
        assert len(times) == len(values) == cursor > 0
        tail_t, tail_v, cursor2 = sampler.read_since("AvailableBytes", cursor)
        assert tail_t == [] or len(tail_t) == cursor2 - cursor
        with pytest.raises(TraceError, match="non-negative"):
            sampler.read_since("AvailableBytes", -1)
