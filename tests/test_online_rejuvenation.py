"""Tests for the online monitor and the in-sim rejuvenation machinery."""

import numpy as np
import pytest

from repro.core import OnlineAgingMonitor
from repro.exceptions import AnalysisError, SimulationError, ValidationError
from repro.generators import fbm
from repro.memsim import (
    Machine,
    MachineConfig,
    MemoryManager,
    PeriodicRejuvenator,
    PredictiveRejuvenator,
    ThresholdRejuvenator,
    attach_policy,
)


def fast_monitor(**overrides):
    # chunk_size must stay a large fraction of indicator_window: smaller
    # chunks produce heavily overlapping (correlated) indicator points
    # that drive the CUSUM to false alarms.
    kwargs = dict(chunk_size=128, history=512, indicator_window=256,
                  n_warmup=1, n_calibration=10)
    kwargs.update(overrides)
    return OnlineAgingMonitor(**kwargs)


class TestOnlineMonitor:
    def test_quiet_on_stationary_signal(self):
        monitor = fast_monitor()
        x = fbm(6000, 0.6, rng=np.random.default_rng(0))
        fired = monitor.update_many(np.arange(x.size, dtype=float), x)
        assert not fired
        assert monitor.calibrated
        assert monitor.alarm_time is None

    def test_alarms_on_regime_change(self):
        rng = np.random.default_rng(1)
        healthy = fbm(5000, 0.7, rng=rng)
        # Regime change: white-noise-like (much rougher) continuation.
        sick = healthy[-1] + np.cumsum(rng.standard_normal(3000) * 3.0)
        # Make the sick part genuinely rougher: alternate-sign jitter.
        sick = sick + 50.0 * rng.standard_normal(3000)
        x = np.concatenate([healthy, sick])
        monitor = fast_monitor()
        monitor.update_many(np.arange(x.size, dtype=float), x)
        assert monitor.alarmed
        assert monitor.alarm_time > 5000 - 512  # not before the change

    def test_alarm_latches(self):
        monitor = fast_monitor()
        rng = np.random.default_rng(2)
        healthy = fbm(5000, 0.7, rng=rng)
        sick = healthy[-1] + 50.0 * rng.standard_normal(2000)
        x = np.concatenate([healthy, sick])
        monitor.update_many(np.arange(x.size, dtype=float), x)
        t_alarm = monitor.alarm_time
        assert t_alarm is not None
        monitor.update(float(x.size + 1), 0.0)
        assert monitor.alarm_time == t_alarm

    def test_out_of_order_samples_rejected(self):
        monitor = fast_monitor()
        monitor.update(1.0, 0.0)
        with pytest.raises(AnalysisError, match="time order"):
            monitor.update(0.5, 0.0)

    def test_indicator_history_grows(self):
        monitor = fast_monitor()
        x = fbm(2048, 0.5, rng=np.random.default_rng(3))
        monitor.update_many(np.arange(x.size, dtype=float), x)
        assert monitor.indicator_history.size >= 1
        assert monitor.n_samples == 2048

    def test_invalid_geometry(self):
        with pytest.raises(AnalysisError):
            OnlineAgingMonitor(history=512, indicator_window=1024)
        with pytest.raises(ValidationError):
            OnlineAgingMonitor(indicator="median")

    def test_history_shorter_than_wavelet_support_rejected(self):
        # The Hölder estimator needs ~4 samples per unit of its largest
        # wavelet scale; a shorter rolling history could never produce a
        # single valid estimate and must fail loudly at construction,
        # not degrade into silence (or noise) at runtime.
        with pytest.raises(AnalysisError, match="wavelet"):
            OnlineAgingMonitor(history=256, indicator_window=128,
                               chunk_size=64,
                               holder_kwargs={"max_scale": 128.0})
        # Shrinking max_scale to fit the short history is the fix.
        OnlineAgingMonitor(history=256, indicator_window=128, chunk_size=64,
                           holder_kwargs={"max_scale": 32.0})

    def test_nonfinite_samples_rejected(self):
        monitor = fast_monitor()
        monitor.update(0.0, 1.0)
        for bad_t, bad_v in ((float("nan"), 1.0), (float("inf"), 1.0),
                             (1.0, float("nan")), (1.0, float("-inf"))):
            with pytest.raises(AnalysisError, match="finite"):
                monitor.update(bad_t, bad_v)
        # The stream survives the rejected pushes.
        monitor.update(1.0, 2.0)
        assert monitor.n_samples == 2
        assert not monitor.alarmed

    def test_no_alarm_before_calibration_completes(self):
        # Even a wildly degrading signal must not alarm while the
        # detector is still collecting its calibration points: the
        # baseline does not exist yet, so any alarm would be spurious.
        monitor = fast_monitor(n_calibration=10)
        rng = np.random.default_rng(11)
        x = np.cumsum(rng.standard_normal(4096) * np.linspace(1, 200, 4096))
        states = []
        monitor.on_state_change = lambda t, old, new: states.append(new)
        for i, value in enumerate(x):
            monitor.update(float(i), float(value))
            if not monitor.calibrated:
                assert not monitor.alarmed
                assert monitor.alarm_time is None
        # Lifecycle order is buffering -> calibrating -> watching (-> alarmed);
        # "alarmed" must never appear before "watching".
        assert "calibrating" in states
        if "alarmed" in states:
            assert states.index("alarmed") > states.index("watching")

    def test_state_property_lifecycle(self):
        monitor = fast_monitor()
        assert monitor.state == "buffering"
        x = fbm(6000, 0.6, rng=np.random.default_rng(12))
        monitor.update_many(np.arange(x.size, dtype=float), x)
        assert monitor.state == "watching"
        assert monitor.calibrated

    def test_callbacks_fire(self):
        monitor = fast_monitor()
        points, transitions = [], []
        monitor.on_indicator = lambda t, v: points.append((t, v))
        monitor.on_state_change = lambda t, old, new: transitions.append((old, new))
        x = fbm(3000, 0.6, rng=np.random.default_rng(13))
        monitor.update_many(np.arange(x.size, dtype=float), x)
        assert len(points) == monitor.indicator_history.size
        assert ("buffering", "calibrating") in transitions


class TestMemoryReset:
    def test_reset_clears_user_state(self):
        mem = MemoryManager(MachineConfig.nt4(), np.random.default_rng(0))
        mem.allocate(5000)
        mem.pin(1000)
        mem.pool_allocate(1 << 20)
        mem.add_fragmentation_loss(1 << 20)
        epoch_before = mem.epoch
        mem.reset_user_state()
        assert mem.committed_pages == 0
        assert mem.pinned_pages == 0
        assert mem.fragmentation_lost_bytes == 0
        assert mem.epoch == epoch_before + 1
        mem.check_invariants()

    def test_pin_requires_commit(self):
        mem = MemoryManager(MachineConfig.nt4(), np.random.default_rng(0))
        with pytest.raises(SimulationError):
            mem.pin(10)

    def test_pin_blocks_trim(self):
        mem = MemoryManager(MachineConfig.nt4(), np.random.default_rng(0))
        phys = mem.available_pages
        mem.allocate(phys - 100)
        mem.pin(phys - 200)
        # Nearly everything pinned: a big new allocation cannot make room.
        res = mem.allocate(phys)
        assert not res.ok
        assert res.failure_reason == "memory"


class TestRejuvenationPolicies:
    def test_unprotected_machine_crashes(self):
        result = Machine(MachineConfig.nt4(seed=5, max_run_seconds=40_000)).run()
        assert result.crashed
        assert result.rejuvenation_times == ()

    def test_periodic_policy_survives(self):
        machine = Machine(MachineConfig.nt4(seed=5, max_run_seconds=30_000))
        controller = PeriodicRejuvenator(machine.sim, machine.rngs, machine, 3000.0)
        controller.ensure_started()
        result = machine.run()
        assert not result.crashed
        assert len(result.rejuvenation_times) >= 8
        assert controller.restarts == len(result.rejuvenation_times)

    def test_rejuvenation_metadata(self):
        machine = Machine(MachineConfig.nt4(seed=5, max_run_seconds=10_000))
        PeriodicRejuvenator(machine.sim, machine.rngs, machine, 2000.0).ensure_started()
        result = machine.run()
        assert result.bundle.metadata.get("n_rejuvenations") == \
            float(len(result.rejuvenation_times))

    def test_threshold_policy_restarts_under_pressure(self):
        machine = Machine(MachineConfig.nt4(seed=5, max_run_seconds=25_000))
        controller = ThresholdRejuvenator(
            machine.sim, machine.rngs, machine, floor_bytes=16e6)
        controller.ensure_started()
        result = machine.run()
        assert controller.restarts >= 1

    def test_predictive_policy_avert_crash(self):
        machine = Machine(MachineConfig.nt4(seed=5, max_run_seconds=30_000))
        controller = PredictiveRejuvenator(machine.sim, machine.rngs, machine)
        controller.ensure_started()
        result = machine.run()
        assert not result.crashed
        assert controller.restarts >= 1
        # Restarts must be rarer than a 2000s timer would produce.
        assert controller.restarts < 15

    def test_attach_policy_dispatch(self):
        machine = Machine(MachineConfig.nt4(seed=1, max_run_seconds=5_000))
        assert attach_policy(machine, "none") is None
        ctl = attach_policy(machine, "periodic", interval=1000.0)
        assert isinstance(ctl, PeriodicRejuvenator)
        with pytest.raises(ValidationError):
            attach_policy(machine, "magic")

    def test_counters_continue_after_restart(self):
        machine = Machine(MachineConfig.nt4(seed=5, max_run_seconds=12_000))
        attach_policy(machine, "periodic", interval=4000.0)
        result = machine.run()
        avail = result.bundle["AvailableBytes"].dropna()
        # Sampling covers the whole horizon, across restarts.
        assert avail.times[-1] > 11_000
        # After each restart available memory jumps back up.
        for t_rejuv in result.rejuvenation_times:
            after = avail.slice_time(t_rejuv + 1, t_rejuv + 60)
            before = avail.slice_time(t_rejuv - 60, t_rejuv - 1)
            if len(after) and len(before):
                assert np.median(after.values) >= np.median(before.values)

    def test_determinism_with_policy(self):
        def run_once():
            machine = Machine(MachineConfig.nt4(seed=9, max_run_seconds=15_000))
            attach_policy(machine, "periodic", interval=5000.0)
            return machine.run()

        a, b = run_once(), run_once()
        np.testing.assert_array_equal(
            a.bundle["AvailableBytes"].values, b.bundle["AvailableBytes"].values)
        assert a.rejuvenation_times == b.rejuvenation_times
