"""Contract tests for the public API surface and exception hierarchy."""

import numpy as np
import pytest

import repro
from repro.core.detectors import DetectorConfig, HolderVarianceDetector
from repro.core.holder import HolderTrajectory
from repro.core.indicators import holder_mean_series
from repro.exceptions import (
    AnalysisError,
    ReproError,
    SimulationError,
    TraceError,
    ValidationError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ValidationError, AnalysisError, SimulationError, TraceError):
            assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        # Generic callers guarding with `except ValueError` keep working.
        assert issubclass(ValidationError, ValueError)
        assert issubclass(TraceError, ValueError)

    def test_runtime_errors(self):
        assert issubclass(AnalysisError, RuntimeError)
        assert issubclass(SimulationError, RuntimeError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            repro.TimeSeries(times=[0, 0], values=[1.0, 2.0])


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_subpackage_alls_resolve(self):
        import repro.core as core
        import repro.fractal as fractal
        import repro.generators as generators
        import repro.memsim as memsim
        import repro.stats as stats
        import repro.trace as trace

        for module in (core, fractal, generators, memsim, stats, trace):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_docstrings_on_public_callables(self):
        import repro.fractal as fractal

        for name in fractal.__all__:
            obj = getattr(fractal, name)
            assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"


def trajectory_with_shift(direction: str, rng):
    healthy = 0.5 + 0.05 * rng.standard_normal(3000)
    delta = 0.5 if direction == "up" else -0.5
    sick = 0.5 + delta + 0.05 * rng.standard_normal(800)
    h = np.concatenate([healthy, sick])
    return HolderTrajectory(times=np.arange(h.size, dtype=float), h=h,
                            method="wavelet", source_name="t")


class TestDirectionalDetection:
    def test_up_watch_catches_up_shift_only(self, rng):
        ind_up = holder_mean_series(trajectory_with_shift("up", rng),
                                    window=200, step=4)
        ind_down = holder_mean_series(trajectory_with_shift("down", rng),
                                      window=200, step=4)
        det = HolderVarianceDetector(DetectorConfig(direction="up"))
        assert det.run(ind_up).fired
        assert not det.run(ind_down).fired

    def test_down_watch_catches_down_shift_only(self, rng):
        ind_up = holder_mean_series(trajectory_with_shift("up", rng),
                                    window=200, step=4)
        ind_down = holder_mean_series(trajectory_with_shift("down", rng),
                                      window=200, step=4)
        det = HolderVarianceDetector(DetectorConfig(direction="down"))
        assert det.run(ind_down).fired
        assert not det.run(ind_up).fired

    def test_both_catches_either(self, rng):
        det = HolderVarianceDetector(DetectorConfig(direction="both"))
        for direction in ("up", "down"):
            ind = holder_mean_series(trajectory_with_shift(direction, rng),
                                     window=200, step=4)
            assert det.run(ind).fired, direction

    def test_alarm_stat_reported_in_original_scale(self, rng):
        ind = holder_mean_series(trajectory_with_shift("down", rng),
                                 window=200, step=4)
        alarm = HolderVarianceDetector(DetectorConfig(direction="both")).run(ind)
        assert alarm.fired
        # The down-shifted indicator sits near 0.0; the reported statistic
        # must be the original value, not its mirror around the baseline.
        assert alarm.statistic_at_alarm < alarm.baseline_mean
