"""Unit tests for Mann-Kendall and Sen slope."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.stats import mann_kendall, sen_slope


class TestMannKendall:
    def test_strong_increase_detected(self):
        rng = np.random.default_rng(0)
        x = np.arange(200.0) + rng.standard_normal(200)
        res = mann_kendall(x)
        assert res.trend == "increasing"
        assert res.p_value < 1e-6
        assert res.s > 0

    def test_strong_decrease_detected(self):
        rng = np.random.default_rng(1)
        x = -0.5 * np.arange(200.0) + rng.standard_normal(200)
        res = mann_kendall(x)
        assert res.trend == "decreasing"
        assert res.z < 0

    def test_white_noise_no_trend(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(300)
        res = mann_kendall(x)
        assert res.trend == "none"
        assert res.p_value > 0.05

    def test_ties_handled(self):
        x = np.repeat(np.arange(20.0), 5)  # many ties, still increasing
        res = mann_kendall(x)
        assert res.trend == "increasing"

    def test_constant_rejected(self):
        with pytest.raises(AnalysisError):
            mann_kendall(np.ones(50))

    def test_long_series_subsampled(self):
        x = np.arange(10_000.0)
        res = mann_kendall(x)  # must not take O(n^2) on the full series
        assert res.trend == "increasing"

    def test_alpha_controls_decision(self):
        rng = np.random.default_rng(3)
        x = 0.002 * np.arange(100.0) + rng.standard_normal(100)
        strict = mann_kendall(x, alpha=1e-9)
        assert strict.trend == "none"


class TestSenSlope:
    def test_exact_line(self):
        t = np.arange(50.0)
        assert sen_slope(t, 3.0 * t + 2) == pytest.approx(3.0)

    def test_robust_to_outliers(self):
        t = np.arange(100.0)
        y = 2.0 * t.copy()
        y[::10] += 500.0  # gross outliers
        assert sen_slope(t, y) == pytest.approx(2.0, abs=0.3)

    def test_noisy_slope(self):
        rng = np.random.default_rng(4)
        t = np.arange(500.0)
        y = -0.75 * t + 20 * rng.standard_normal(500)
        assert sen_slope(t, y) == pytest.approx(-0.75, abs=0.05)

    def test_long_series_subsampling_path(self):
        rng = np.random.default_rng(5)
        t = np.arange(3000.0)
        y = 1.5 * t + rng.standard_normal(3000)
        assert sen_slope(t, y, max_pairs=10_000) == pytest.approx(1.5, abs=0.05)

    def test_identical_times_rejected(self):
        with pytest.raises(AnalysisError):
            sen_slope([1.0, 1.0], [0.0, 1.0])

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            sen_slope([1.0, 2.0, 3.0], [0.0, 1.0])
