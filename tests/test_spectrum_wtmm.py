"""Tests for partition functions, Legendre spectra and WTMM."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.fractal import (
    legendre_spectrum,
    mfdfa,
    partition_function_tau,
    spectrum_width,
    wtmm,
)
from repro.generators import (
    binomial_cascade,
    binomial_cascade_tau,
    fbm,
    fgn,
    mrw,
    mrw_tau,
    weierstrass,
)


class TestPartitionFunction:
    def test_binomial_tau_exact(self, rng):
        mu = binomial_cascade(14, 0.7, rng=rng)
        q, tau, err = partition_function_tau(mu)
        theory = binomial_cascade_tau(q, 0.7)
        # Box counting on a true cascade is essentially exact.
        assert np.max(np.abs(tau - theory)) < 0.05

    def test_uniform_measure_linear_tau(self):
        mu = np.full(1024, 1.0 / 1024)
        q, tau, err = partition_function_tau(mu)
        np.testing.assert_allclose(tau, q - 1.0, atol=1e-8)

    def test_length_must_be_power_of_two(self):
        with pytest.raises(ValidationError):
            partition_function_tau(np.ones(100))

    def test_negative_mass_rejected(self):
        mu = np.ones(64)
        mu[0] = -1.0
        with pytest.raises(ValidationError):
            partition_function_tau(mu)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValidationError):
            partition_function_tau(np.zeros(64))

    def test_stderr_returned(self, rng):
        mu = binomial_cascade(10, 0.6, rng=rng)
        _, _, err = partition_function_tau(mu)
        assert np.all(err >= 0)


class TestLegendreSpectrum:
    def test_binomial_spectrum_width(self, rng):
        mu = binomial_cascade(14, 0.7, rng=rng)
        q, tau, _ = partition_function_tau(mu)
        spec = legendre_spectrum(q, tau)
        # Theoretical support width: log2(0.7/0.3).
        theory_width = np.log2(0.7 / 0.3)
        assert spec.width == pytest.approx(theory_width, abs=0.35)
        # Peak dimension f = 1 at the typical exponent.
        assert np.max(spec.f) == pytest.approx(1.0, abs=0.1)

    def test_monofractal_spectrum_narrow(self):
        q = np.linspace(-5, 5, 21)
        tau = 0.6 * q - 1.0  # perfect monofractal
        spec = legendre_spectrum(q, tau)
        assert spec.width < 1e-9
        np.testing.assert_allclose(spec.alpha, 0.6, atol=1e-9)

    def test_alpha_peak_and_asymmetry(self, rng):
        mu = binomial_cascade(13, 0.75, rng=rng)
        q, tau, _ = partition_function_tau(mu)
        spec = legendre_spectrum(q, tau)
        assert -1.0 <= spec.asymmetry <= 1.0
        assert spec.alpha.min() <= spec.alpha_peak <= spec.alpha.max()

    def test_badly_nonconcave_tau_rejected(self):
        q = np.linspace(-3, 3, 13)
        tau = q**3  # convex-concave nonsense
        with pytest.raises(AnalysisError, match="non-concave"):
            legendre_spectrum(q, tau)

    def test_q_must_increase(self):
        with pytest.raises(ValidationError):
            legendre_spectrum([3, 2, 1, 0, -1], [0, 0, 0, 0, 0])

    def test_spectrum_width_helper(self):
        q = np.linspace(-4, 4, 17)
        tau = 0.5 * q - 1.0
        assert spectrum_width(q, tau) < 1e-9


class TestWtmm:
    @pytest.mark.parametrize("hurst", [0.4, 0.6, 0.8])
    def test_fbm_tau_linear(self, hurst):
        x = fbm(2**15, hurst, rng=np.random.default_rng(int(hurst * 10)))
        res = wtmm(x, q=np.linspace(-1, 3, 9))
        for q_target in (1.0, 2.0):
            idx = int(np.argmin(np.abs(res.q - q_target)))
            assert res.tau[idx] == pytest.approx(q_target * hurst - 1.0, abs=0.12)

    def test_weierstrass_uniform_h(self):
        w = weierstrass(2**14, 0.5)
        res = wtmm(w, q=np.linspace(0, 3, 7))
        idx = int(np.argmin(np.abs(res.q - 2)))
        assert res.tau[idx] == pytest.approx(0.0, abs=0.15)

    def test_mrw_concave_tau(self):
        lam = 0.3
        x = mrw(2**15, lam, rng=np.random.default_rng(11))
        res = wtmm(x, q=np.linspace(-1, 3, 9))
        theory = mrw_tau(res.q, lam)
        assert np.max(np.abs(res.tau - theory)) < 0.2

    def test_monofractal_vs_multifractal_width(self):
        bm = fbm(2**14, 0.5, rng=np.random.default_rng(12))
        mf = mrw(2**14, 0.45, rng=np.random.default_rng(12))
        w_bm = spectrum_width(*_wtmm_tau(bm))
        w_mf = spectrum_width(*_wtmm_tau(mf))
        assert w_mf > w_bm + 0.1

    def test_n_lines_reported(self):
        x = fbm(2**13, 0.6, rng=np.random.default_rng(13))
        res = wtmm(x)
        assert res.n_lines > 10

    def test_too_short_rejected(self, rng):
        with pytest.raises((AnalysisError, ValidationError)):
            wtmm(rng.standard_normal(64))

    def test_scales_must_increase(self, rng):
        with pytest.raises(ValidationError):
            wtmm(rng.standard_normal(1024), scales=[8.0, 4.0, 2.0, 16.0])


def _wtmm_tau(x):
    res = wtmm(x, q=np.linspace(-2, 3, 11))
    return res.q, res.tau


class TestCrossMethodConsistency:
    def test_mfdfa_and_wtmm_agree_on_hurst(self):
        x = fbm(2**14, 0.7, rng=np.random.default_rng(14))
        res_w = wtmm(x, q=np.linspace(0, 3, 7))
        res_m = mfdfa(np.diff(x), q=np.linspace(0.5, 3, 6))
        h_w = (res_w.tau[np.argmin(np.abs(res_w.q - 2))] + 1) / 2
        assert h_w == pytest.approx(res_m.hurst, abs=0.12)

    def test_fgn_spectrum_narrower_than_cascade(self, rng):
        noise = fgn(2**14, 0.7, rng=rng)
        res = mfdfa(noise, q=np.linspace(-3, 3, 13))
        spec_noise = legendre_spectrum(res.q, res.tau)
        mu = binomial_cascade(14, 0.7, rng=rng)
        q, tau, _ = partition_function_tau(mu)
        spec_cascade = legendre_spectrum(q, tau)
        assert spec_cascade.width > spec_noise.width
