"""Tests for the observability layer (repro.obs)."""

import io
import json
import logging
import time

import pytest

from repro import obs
from repro.exceptions import TraceError, ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry off and logging reset."""
    obs.disable_telemetry()
    obs.reset_logging()
    yield
    obs.disable_telemetry()
    obs.reset_logging()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.events")
        c.inc()
        c.inc(4)
        assert c.value == 5.0
        assert reg.counter("sim.events") is c

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_gauge_tracks_max(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(10)
        g.set(2)
        assert g.value == 2.0
        assert g.max_value == 10.0

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_histogram_quantiles(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1000):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["p50"] == pytest.approx(499.5)
        assert snap["p90"] == pytest.approx(899.1)
        assert snap["p99"] == pytest.approx(989.01)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 999.0

    def test_histogram_quantile_validation(self):
        h = MetricsRegistry().histogram("lat")
        with pytest.raises(ValidationError):
            h.quantile(1.5)
        import math
        assert math.isnan(h.quantile(0.5))  # empty histogram
        assert h.snapshot()["p50"] is None

    def test_histogram_reservoir_decimates_deterministically(self):
        h = MetricsRegistry().histogram("big")
        n = 3 * h.RESERVOIR_CAP
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        # Decimated but still statistically faithful on a uniform ramp.
        assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.01)
        assert h.quantile(0.9) == pytest.approx(0.9 * n, rel=0.01)
        # Same stream twice -> identical reservoir (no RNG involved).
        h2 = MetricsRegistry().histogram("big")
        for v in range(n):
            h2.observe(float(v))
        assert h2.quantile(0.5) == h.quantile(0.5)
        assert h2.quantile(0.99) == h.quantile(0.99)

    def test_timer_observes_duration(self):
        t = MetricsRegistry().timer("stage")
        with t:
            time.sleep(0.01)
        assert t.count == 1
        assert t.total >= 0.005

    def test_type_conflict_is_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValidationError):
            reg.gauge("x")

    def test_empty_name_is_error(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("")

    def test_disabled_registry_is_null(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc(100)  # no-op, no error
        reg.gauge("g").set(5)
        reg.timer("t").observe(1.0)
        assert reg.snapshot() == {}
        assert len(reg) == 0

    def test_snapshot_sorted_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()) == ["a", "b"]
        reg.reset()
        assert len(reg) == 0


class TestSpans:
    def test_nesting_builds_paths(self):
        col = SpanCollector()
        with col.span("outer"):
            with col.span("inner", counter="AvailableBytes"):
                pass
        records = col.records
        assert [r.path for r in records] == ["outer", "outer/inner"]
        assert records[0].depth == 0
        assert records[1].depth == 1
        assert records[1].attrs == {"counter": "AvailableBytes"}

    def test_timing_monotonicity(self):
        col = SpanCollector()
        with col.span("parent"):
            with col.span("child"):
                time.sleep(0.005)
        parent, child = col.records
        assert child.start >= parent.start
        assert child.end <= parent.end
        assert child.duration > 0
        assert parent.duration >= child.duration

    def test_error_status_on_exception(self):
        col = SpanCollector()
        with pytest.raises(RuntimeError):
            with col.span("boom"):
                raise RuntimeError("x")
        assert col.records[0].status == "error"
        assert col.records[0].end is not None

    def test_disabled_collector_records_nothing(self):
        col = SpanCollector(enabled=False)
        with col.span("x"):
            pass
        assert col.records == []

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValidationError):
            SpanCollector().span("a/b")

    def test_total_seconds_sums_same_name(self):
        col = SpanCollector()
        for _ in range(3):
            with col.span("stage"):
                pass
        assert col.total_seconds("stage") == pytest.approx(
            sum(r.duration for r in col.records))

    def test_reset_refuses_open_spans(self):
        col = SpanCollector()
        cm = col.span("open")
        cm.__enter__()
        with pytest.raises(ValidationError):
            col.reset()
        cm.__exit__(None, None, None)
        col.reset()
        assert col.records == []


class TestSession:
    def test_default_session_is_disabled(self):
        assert not obs.telemetry_enabled()
        obs.counter("x").inc()     # all helpers degrade to no-ops
        obs.record_event("whatever")
        with obs.span("nothing"):
            pass
        assert obs.current_session().events == []

    def test_enable_disable_cycle(self):
        session = obs.enable_telemetry()
        assert obs.telemetry_enabled()
        obs.counter("hits").inc(2)
        obs.record_event("crash", sim_time=10.0)
        assert session.metrics.counter("hits").value == 2.0
        assert session.events_of("crash")[0]["sim_time"] == 10.0
        obs.disable_telemetry()
        assert not obs.telemetry_enabled()

    def test_context_manager_restores_previous(self):
        assert not obs.telemetry_enabled()
        with obs.telemetry_session() as session:
            assert obs.telemetry_enabled()
            assert obs.current_session() is session
        assert not obs.telemetry_enabled()

    def test_machine_run_is_instrumented(self):
        from repro.memsim import Machine, MachineConfig

        with obs.telemetry_session() as session:
            result = Machine(
                MachineConfig.nt4(seed=11, max_run_seconds=3000)).run()
        paths = [r.path for r in session.spans.records]
        assert "machine-setup" in paths
        assert "machine-run" in paths
        assert "machine-collect" in paths
        snap = session.metrics.snapshot()
        assert snap["sim.events_fired"]["value"] > 0
        assert snap["memsim.samples_collected"]["value"] > 0
        assert not result.crashed  # 3000 s is well inside the healthy phase

    def test_analyze_counter_records_stage_spans(self):
        import numpy as np

        from repro.core import analyze_counter
        from repro.generators import fgn
        from repro.trace import TimeSeries

        ts = TimeSeries.from_values(
            np.cumsum(fgn(4096, 0.7, rng=np.random.default_rng(0))), name="c")
        with obs.telemetry_session() as session:
            analyze_counter(ts, indicator_window=256)
        names = {r.name for r in session.spans.records}
        assert {"analyze-counter", "preprocess", "holder",
                "indicator", "detector"} <= names
        assert session.metrics.counter(
            "analysis.counters_analyzed").value == 1.0


class TestLogger:
    def test_human_format_with_fields(self):
        stream = io.StringIO()
        obs.configure_logging("info", stream=stream)
        obs.get_logger("test").info("hello", seed=7, lead=12.5)
        line = stream.getvalue()
        assert "repro.test: hello" in line
        assert "seed=7" in line
        assert "lead=12.5" in line

    def test_level_filtering(self):
        stream = io.StringIO()
        obs.configure_logging("warning", stream=stream)
        log = obs.get_logger("test")
        log.info("quiet")
        log.warning("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out
        assert log.is_enabled_for("warning")
        assert not log.is_enabled_for("info")

    def test_off_silences_everything(self):
        stream = io.StringIO()
        obs.configure_logging("off", stream=stream)
        obs.get_logger("test").error("nope")
        assert stream.getvalue() == ""

    def test_json_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "log.jsonl"
        obs.configure_logging("info", stream=io.StringIO(),
                              json_path=str(path))
        obs.get_logger("memsim").info("crash", sim_time=42.0, reason="pool")
        obs.reset_logging()  # flush + close the file handler
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert records[0]["msg"] == "crash"
        assert records[0]["sim_time"] == 42.0
        assert records[0]["level"] == "info"
        assert records[0]["logger"] == "repro.memsim"

    def test_invalid_level_rejected(self):
        with pytest.raises(ValidationError):
            obs.configure_logging("chatty")

    def test_unconfigured_library_is_silent(self):
        root = logging.getLogger("repro")
        assert all(isinstance(h, logging.NullHandler) for h in root.handlers)
        assert root.propagate is False


class TestManifest:
    def _session_with_activity(self):
        session = obs.TelemetrySession()
        with session.spans.span("simulate"):
            with session.spans.span("machine-run", seed=3):
                pass
        session.metrics.counter("sim.events_fired").inc(100)
        session.metrics.gauge("sim.queue_depth").set(7)
        session.record_event("crash", sim_time=5000.0, reason="commit")
        return session

    def test_build_freezes_session(self):
        session = self._session_with_activity()
        manifest = obs.build_manifest(
            session, command="simulate", config={"seed": 3}, seed=3,
            outcome={"crashed": True},
        )
        assert manifest.command == "simulate"
        assert manifest.wall_seconds is not None
        assert manifest.versions["repro"]
        assert len(manifest.spans) == 2
        assert manifest.metrics["sim.events_fired"]["value"] == 100.0
        assert manifest.events[0]["kind"] == "crash"
        assert manifest.stage_durations()["simulate/machine-run"] >= 0.0

    def test_round_trip(self, tmp_path):
        manifest = obs.build_manifest(
            self._session_with_activity(), command="simulate", seed=3)
        path = obs.write_manifest(manifest, tmp_path / "run")
        back = obs.read_manifest(path)
        assert back.command == manifest.command
        assert back.seed == 3
        assert back.spans == manifest.spans
        assert back.metrics == manifest.metrics
        assert back.events == manifest.events
        assert back.wall_seconds == pytest.approx(manifest.wall_seconds)

    def test_events_jsonl_is_line_per_event(self, tmp_path):
        session = self._session_with_activity()
        session.record_event("alarm", sim_time=4000.0)
        obs.write_manifest(
            obs.build_manifest(session, command="simulate"), tmp_path)
        lines = (tmp_path / obs.EVENTS_FILENAME).read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "alarm"

    def test_load_manifests_over_directory(self, tmp_path):
        for i, cmd in enumerate(("simulate", "analyze")):
            m = obs.build_manifest(
                obs.TelemetrySession(), command=cmd, seed=i)
            m.started_at = float(i)  # force deterministic ordering
            obs.write_manifest(m, tmp_path / f"run{i}")
        manifests = obs.load_manifests(tmp_path)
        assert [m.command for m in manifests] == ["simulate", "analyze"]

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"schema": "bogus/9", "command": "x"}))
        with pytest.raises(TraceError):
            obs.read_manifest(path)

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            obs.load_manifests(tmp_path / "nope")
        with pytest.raises(TraceError):
            obs.load_manifests(tmp_path)  # exists but holds no manifests
