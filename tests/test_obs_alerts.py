"""Tests for the declarative alert-rule engine (repro.obs.alerts)."""

import pytest

from repro.exceptions import ValidationError
from repro.obs.alerts import (
    ALERT_KINDS,
    AlertEngine,
    AlertRule,
    load_rules,
    parse_rules,
)


def threshold_rule(**overrides):
    kwargs = dict(name="low", signal="x", kind="threshold", op="lt",
                  value=10.0)
    kwargs.update(overrides)
    return AlertRule(**kwargs)


class TestAlertRule:
    def test_validation(self):
        with pytest.raises(ValidationError, match="name"):
            threshold_rule(name="")
        with pytest.raises(ValidationError, match="kind"):
            threshold_rule(kind="spike")
        with pytest.raises(ValidationError, match="op"):
            threshold_rule(op="!=")
        with pytest.raises(ValidationError, match="severity"):
            threshold_rule(severity="fatal")
        with pytest.raises(ValidationError, match="window"):
            threshold_rule(kind="sustained")  # window defaults to 0
        with pytest.raises(ValidationError, match="non-negative"):
            threshold_rule(cooldown=-1.0)

    def test_condition_text(self):
        assert threshold_rule().condition == "x < 10"
        rate = threshold_rule(kind="rate", op="le", value=-5.0)
        assert rate.condition == "d(x)/dt <= -5"
        sustained = threshold_rule(kind="sustained", op="gt", window=60.0)
        assert sustained.condition == "x > 10 for 60s"

    def test_kinds_closed(self):
        assert set(ALERT_KINDS) == {"threshold", "rate", "sustained"}


class TestThresholdRules:
    def test_fires_once_per_excursion(self):
        engine = AlertEngine([threshold_rule()])
        fired = []
        for t, v in [(0, 20), (1, 5), (2, 3), (3, 15), (4, 4)]:
            fired.extend(engine.observe("x", float(t), float(v)))
        # Two excursions below 10 -> two firings (one each), re-armed by
        # the in-bounds sample at t=3.
        assert [f.time for f in fired] == [1.0, 4.0]
        assert engine.counts() == {"low": 2}

    def test_cooldown_suppresses_rearm(self):
        engine = AlertEngine([threshold_rule(cooldown=100.0)])
        fired = []
        for t, v in [(0, 5), (10, 20), (20, 5), (200, 20), (210, 5)]:
            fired.extend(engine.observe("x", float(t), float(v)))
        # Second excursion at t=20 is inside the cooldown; third at t=210
        # is past it.
        assert [f.time for f in fired] == [0.0, 210.0]

    def test_other_signals_ignored(self):
        engine = AlertEngine([threshold_rule()])
        assert engine.observe("y", 0.0, 0.0) == []
        assert engine.total_fired == 0

    def test_firing_payload(self):
        engine = AlertEngine([threshold_rule(severity="critical")])
        (firing,) = engine.observe("x", 7.0, 3.0)
        assert firing.rule == "low"
        assert firing.signal == "x"
        assert firing.severity == "critical"
        assert firing.value == 3.0
        assert "x < 10" in firing.message


class TestRateRules:
    def test_fires_on_slope(self):
        rule = threshold_rule(name="drain", kind="rate", op="lt", value=-1.0)
        engine = AlertEngine([rule])
        assert engine.observe("x", 0.0, 100.0) == []  # no rate yet
        assert engine.observe("x", 10.0, 95.0) == []  # -0.5/s: fine
        (firing,) = engine.observe("x", 20.0, 75.0)   # -2/s: fires
        assert firing.value == pytest.approx(-2.0)

    def test_nonadvancing_time_yields_no_rate(self):
        rule = threshold_rule(name="drain", kind="rate", op="lt", value=-1.0)
        engine = AlertEngine([rule])
        engine.observe("x", 0.0, 100.0)
        assert engine.observe("x", 0.0, 0.0) == []


class TestSustainedRules:
    def test_requires_persistence(self):
        rule = threshold_rule(name="held", kind="sustained", op="lt",
                              window=60.0)
        engine = AlertEngine([rule])
        fired = []
        for t, v in [(0, 5), (30, 5), (59, 5), (61, 5), (70, 5)]:
            fired.extend(engine.observe("x", float(t), float(v)))
        # Fires once the excursion has lasted >= 60s, and only once.
        assert [f.time for f in fired] == [61.0]

    def test_interrupted_excursion_restarts_clock(self):
        rule = threshold_rule(name="held", kind="sustained", op="lt",
                              window=60.0)
        engine = AlertEngine([rule])
        fired = []
        for t, v in [(0, 5), (50, 20), (55, 5), (100, 5), (120, 5)]:
            fired.extend(engine.observe("x", float(t), float(v)))
        # The in-bounds sample at t=50 reset the excursion; persistence
        # is then measured from t=55, so the firing lands at t=120.
        assert [f.time for f in fired] == [120.0]


class TestEngine:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            AlertEngine([threshold_rule(), threshold_rule()])

    def test_signals_and_counts(self):
        engine = AlertEngine([
            threshold_rule(),
            threshold_rule(name="ind", signal="indicator", op="gt", value=1.0),
        ])
        assert set(engine.signals) == {"x", "indicator"}
        assert engine.counts() == {"low": 0, "ind": 0}


class TestLoading:
    def test_parse_rules_toml_shape(self):
        rules = parse_rules({"rule": [
            {"name": "a", "signal": "x", "kind": "threshold", "op": "lt",
             "value": 1.0},
        ]})
        assert len(rules) == 1 and rules[0].name == "a"

    def test_parse_rules_json_shape(self):
        rules = parse_rules({"rules": [
            {"name": "a", "signal": "x", "kind": "threshold", "op": "lt",
             "value": 1.0},
        ]})
        assert rules[0].signal == "x"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="windw"):
            parse_rules({"rule": [
                {"name": "a", "signal": "x", "kind": "sustained", "op": "lt",
                 "value": 1.0, "windw": 60.0},
            ]})

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            parse_rules({})
        with pytest.raises(ValidationError):
            parse_rules({"rule": []})

    def test_load_toml(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rule]]\nname = "a"\nsignal = "x"\nkind = "threshold"\n'
            'op = "lt"\nvalue = 5.0\nseverity = "critical"\n'
        )
        (rule,) = load_rules(path)
        assert rule.severity == "critical"
        assert rule.value == 5.0

    def test_load_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            '{"rules": [{"name": "a", "signal": "x", "kind": "rate", '
            '"op": "lt", "value": -1.0}]}'
        )
        (rule,) = load_rules(path)
        assert rule.kind == "rate"

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "rules.yaml"
        path.write_text("rules: []\n")
        with pytest.raises(ValidationError, match="yaml"):
            load_rules(path)

    def test_bad_toml_reported(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text("[[rule\n")
        with pytest.raises(ValidationError, match="bad TOML"):
            load_rules(path)

    def test_example_rules_file_loads(self):
        import os

        example = os.path.join(os.path.dirname(__file__), os.pardir,
                               "examples", "alert_rules.toml")
        rules = load_rules(example)
        assert len(rules) >= 2
        assert {r.kind for r in rules} == {"threshold", "rate", "sustained"}
