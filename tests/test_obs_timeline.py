"""Tests for the campaign timeline recorder (repro.obs.timeline): the
background sampler, the repro.timeline/1 artifact, the load/validate/
slice/summary/CSV helpers, the /timeline endpoint, and the recorder
wired end to end around a real campaign — including the bit-identical
observation-only guarantee."""

import csv
import io
import json
import threading
import time

import pytest

from repro import obs
from repro.analysis import cells_payload, execute_campaign
from repro.analysis.campaign import ExperimentSpec
from repro.exceptions import ValidationError
from repro.obs.ops import flight_dump, flight_note
from repro.obs.resources import compact_resources
from repro.obs.statusd import StatusBoard, StatusServer
from repro.obs.timeline import (
    TIMELINE_SCHEMA,
    TimelineRecorder,
    read_timeline,
    slice_timeline,
    timeline_summary,
    timeline_to_csv,
    validate_timeline,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def make_recorder(path=None, *, clock=None, **kwargs):
    """A recorder whose thread never fires (huge interval) so tests
    drive sample_once() deterministically."""
    clock = clock or FakeClock()
    kwargs.setdefault("interval", 3600.0)
    return TimelineRecorder(path, clock=clock, wall_clock=lambda: 5e9,
                            **kwargs), clock


class StubResources:
    """Stands in for ResourceSampler.latest_compact()."""

    def __init__(self):
        self.compact = {
            "parent_rss_bytes": 1000, "parent_cpu_seconds": 1.0,
            "workers": [{"ordinal": 0, "rss_bytes": 500,
                         "cpu_seconds": 0.5}],
        }

    def latest_compact(self):
        return dict(self.compact)


class TestTimelineRecorder:
    def test_parameters_validated(self):
        with pytest.raises(ValidationError, match="interval"):
            TimelineRecorder(interval=0.0)
        with pytest.raises(ValidationError, match="ring"):
            TimelineRecorder(ring=4)

    def test_lifecycle_and_atomic_artifact(self, tmp_path):
        path = tmp_path / "tl.jsonl"
        recorder, clock = make_recorder(path)
        recorder.start()
        assert not path.exists()  # streams to a temp until finalize
        for _ in range(3):
            clock.tick(1.0)
            recorder.sample_once()
        recorder.annotate("retry", index=2, attempt=1)
        assert recorder.finalize() == str(path)
        assert path.exists()
        # Idempotent: a second finalize reports the same path, no-op.
        assert recorder.finalize("error") == str(path)

        records = read_timeline(path)
        counts = validate_timeline(records)
        assert counts["header"] == 1
        assert counts["frame"] == 4  # 3 manual + 1 final
        assert counts["annotation"] == 1
        assert counts["end"] == 1
        header, end = records[0], records[-1]
        assert header["schema"] == TIMELINE_SCHEMA
        assert header["interval"] == 3600.0
        assert end["status"] == "ok"
        assert end["frames"] == 4
        assert end["annotations"] == 1
        # The ring mirrors the artifact exactly.
        assert recorder.records() == records

    def test_memory_only_recorder(self):
        recorder, clock = make_recorder(None)
        recorder.start()
        clock.tick(1.0)
        recorder.sample_once()
        assert recorder.finalize() is None
        validate_timeline(recorder.records())

    def test_counter_totals_and_deltas(self):
        session = obs.enable_telemetry()
        session.metrics.counter("campaign.runs_completed").inc(3)
        session.metrics.counter("fractal.cache_hits").inc(99)  # whitelist
        recorder, clock = make_recorder(None)
        recorder.start()
        clock.tick(1.0)
        first = recorder.sample_once()
        assert first["counters"]["campaign.runs_completed"] == 3
        assert "fractal.cache_hits" not in first["counters"]
        assert first["deltas"]["campaign.runs_completed"] == 3

        session.metrics.counter("campaign.runs_completed").inc(2)
        session.metrics.counter("perf.pool.retries").inc()
        clock.tick(1.0)
        second = recorder.sample_once()
        assert second["counters"]["campaign.runs_completed"] == 5
        assert second["deltas"] == {"campaign.runs_completed": 2,
                                    "perf.pool.retries": 1}
        clock.tick(1.0)
        third = recorder.sample_once()
        assert third["deltas"] == {}  # nothing moved
        recorder.finalize()

    def test_progress_and_resources_in_frames(self):
        clock = FakeClock()
        board = StatusBoard(ewma_alpha=1.0, clock=clock)
        board.begin(total_units=2, cells={"aging": 2})
        recorder, _ = make_recorder(None, clock=clock, board=board,
                                    resources=StubResources())
        recorder.start()
        clock.tick(5.0)
        board.unit_finished(cell="aging")
        frame = recorder.sample_once()
        assert frame["progress"]["units_done"] == 1
        assert frame["progress"]["units_remaining"] == 1
        assert frame["progress"]["state"] == "running"
        assert "cells" not in frame["progress"]  # digest, not the board
        assert frame["resources"]["parent_rss_bytes"] == 1000
        assert frame["resources"]["workers"][0]["ordinal"] == 0
        recorder.finalize()

    def test_self_watch_alert_becomes_annotation(self):
        stub = StubResources()
        stub.compact["self_watch_alerts"] = 0
        stub.compact["self_watch_state"] = "watching"
        recorder, clock = make_recorder(None, resources=stub)
        recorder.start()
        clock.tick(1.0)
        recorder.sample_once()
        stub.compact["self_watch_alerts"] = 2
        stub.compact["self_watch_state"] = "warning"
        clock.tick(1.0)
        recorder.sample_once()
        clock.tick(1.0)
        recorder.sample_once()  # no further alerts -> no new annotation
        recorder.finalize()
        alerts = [r for r in recorder.records()
                  if r.get("kind") == "annotation" and r["event"] == "alert"]
        assert len(alerts) == 1
        assert alerts[0]["count"] == 2
        assert alerts[0]["state"] == "warning"

    def test_time_forced_monotone(self):
        recorder, clock = make_recorder(None)
        recorder.start()
        clock.tick(5.0)
        recorder.sample_once()
        clock.tick(-3.0)  # clock regression
        recorder.sample_once()
        recorder.finalize()
        validate_timeline(recorder.records())  # enforces monotone t

    def test_ring_bounded(self):
        recorder, clock = make_recorder(None, ring=8)
        recorder.start()
        for _ in range(30):
            clock.tick(1.0)
            recorder.sample_once()
        assert len(recorder.records()) == 8
        recorder.finalize()

    def test_operational_notes_become_annotations(self):
        recorder, clock = make_recorder(None)
        recorder.start()
        clock.tick(1.0)
        flight_note("retry", index=1, attempt=2, kind="timeout", delay_s=0.5)
        flight_note("unit", index=1, status="failed", kind="worker-death")
        flight_note("unit", index=2, status="ok")  # success: no annotation
        flight_note("unit", index=3, status="failed", kind="timeout")
        flight_note("unit", index=4, status="error", kind="raise")
        flight_note("round", round=2, pending=3, workers=2)
        flight_note("span", name="x")  # not an annotated note kind
        flight_dump("test-reason")
        recorder.finalize()
        events = [r["event"] for r in recorder.records()
                  if r.get("kind") == "annotation"]
        assert events == ["retry", "worker-death", "timeout", "unit-failed",
                          "round", "flight-dump"]
        retry = [r for r in recorder.records()
                 if r.get("kind") == "annotation"][0]
        assert retry["index"] == 1
        assert retry["attempt"] == 2
        assert retry["error_kind"] == "timeout"

        # After finalize the listener is gone: no late annotations.
        flight_note("retry", index=9)
        assert len([r for r in recorder.records()
                    if r.get("kind") == "annotation"]) == 6

    def test_background_thread_samples_and_stops(self, tmp_path):
        path = tmp_path / "tl.jsonl"
        recorder = TimelineRecorder(path, interval=0.02)
        recorder.start()
        time.sleep(0.2)
        recorder.finalize()
        assert "repro-timeline" not in {
            t.name for t in threading.enumerate()}
        counts = validate_timeline(read_timeline(path))
        assert counts["frame"] >= 2

    def test_context_manager_records_error_status(self, tmp_path):
        path = tmp_path / "tl.jsonl"
        recorder, clock = make_recorder(path)
        with pytest.raises(RuntimeError):
            with recorder:
                clock.tick(1.0)
                raise RuntimeError("boom")
        records = read_timeline(path)
        assert records[-1]["status"] == "error"


class TestReadValidate:
    def _stream(self, tmp_path, lines):
        path = tmp_path / "tl.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_truncated_final_line_tolerated(self, tmp_path):
        recorder, clock = make_recorder(tmp_path / "tl.jsonl")
        recorder.start()
        clock.tick(1.0)
        recorder.sample_once()
        recorder.finalize()
        text = (tmp_path / "tl.jsonl").read_text()
        torn = self._stream(tmp_path, [text.rstrip("\n")[:-20]])
        records = read_timeline(torn)
        assert records[0]["kind"] == "header"

    def test_corrupt_middle_line_raises(self, tmp_path):
        header = json.dumps({"kind": "header", "schema": TIMELINE_SCHEMA,
                             "t": 0.0})
        frame = json.dumps({"kind": "frame", "seq": 0, "t": 1.0})
        path = self._stream(tmp_path, [header, "{not json", frame])
        with pytest.raises(ValidationError, match="corrupt"):
            read_timeline(path)

    def _valid(self):
        return [
            {"kind": "header", "schema": TIMELINE_SCHEMA, "t": 0.0},
            {"kind": "frame", "seq": 0, "t": 1.0},
            {"kind": "annotation", "t": 1.5, "event": "retry"},
            {"kind": "frame", "seq": 1, "t": 2.0},
            {"kind": "end", "t": 3.0, "status": "ok"},
        ]

    def test_valid_stream_counts(self):
        assert validate_timeline(self._valid()) == {
            "header": 1, "frame": 2, "annotation": 1, "end": 1}

    @pytest.mark.parametrize("mutate, message", [
        (lambda r: r.clear(), "empty"),
        (lambda r: r.pop(0), "must start with a header"),
        (lambda r: r[0].update(schema="repro.timeline/99"),
         "unsupported timeline schema"),
        (lambda r: r[1].update(kind="mystery"), "unknown timeline record"),
        (lambda r: r.insert(2, dict(r[0])), "duplicate header"),
        (lambda r: r.append({"kind": "frame", "seq": 9, "t": 9.0}),
         "after the end"),
        (lambda r: r[3].update(t=0.5), "non-monotone"),
        (lambda r: r[3].update(seq=0), "seq not increasing"),
        (lambda r: r[1].update(t=float("nan")), "finite t"),
        (lambda r: r[1].pop("seq"), "integer seq"),
    ])
    def test_invalid_streams_rejected(self, mutate, message):
        records = self._valid()
        mutate(records)
        with pytest.raises(ValidationError, match=message):
            validate_timeline(records)


def synthetic_records():
    """A hand-built stream with progress, resources and annotations."""
    def frame(seq, t, done, rate, eta, parent_rss, worker_rss):
        return {
            "kind": "frame", "seq": seq, "t": t, "wall_time": 5e9 + t,
            "counters": {"campaign.runs_completed": done},
            "deltas": {},
            "progress": {
                "state": "running", "total_units": 4, "units_done": done,
                "units_failed": 0, "units_remaining": 4 - done,
                "units_per_second": rate, "eta_seconds": eta,
                "last_progress_at": 5e9 + t,
            },
            "resources": {
                "parent_rss_bytes": parent_rss, "parent_cpu_seconds": t,
                "workers": [{"ordinal": 0, "rss_bytes": worker_rss,
                             "cpu_seconds": t / 2}],
            },
        }

    return [
        {"kind": "header", "schema": TIMELINE_SCHEMA, "t": 0.0,
         "wall_time": 5e9, "pid": 1, "interval": 1.0},
        frame(0, 1.0, 1, 1.0, 3.0, 1000, 400),
        {"kind": "annotation", "t": 1.5, "wall_time": 5e9 + 1.5,
         "event": "retry", "index": 2, "attempt": 1},
        frame(1, 2.0, 2, 1.2, 1.7, 1100, 600),
        {"kind": "annotation", "t": 2.5, "wall_time": 5e9 + 2.5,
         "event": "worker-death", "index": 3},
        frame(2, 3.0, 4, 0.9, 0.0, 900, 500),
        {"kind": "end", "t": 3.5, "wall_time": 5e9 + 3.5, "status": "ok",
         "frames": 3, "annotations": 2},
    ]


class TestSliceSummaryCsv:
    def test_slice_keeps_header_and_rebuilds_end(self):
        sliced = slice_timeline(synthetic_records(), since=1.5, until=2.6)
        assert sliced[0]["kind"] == "header"
        assert [r["kind"] for r in sliced] == [
            "header", "annotation", "frame", "annotation", "end"]
        assert sliced[-1]["frames"] == 1
        assert sliced[-1]["annotations"] == 2
        validate_timeline(sliced)

    def test_slice_open_ended(self):
        assert len(slice_timeline(synthetic_records(), since=3.0)) == 3
        assert len(slice_timeline(synthetic_records(), until=1.0)) == 3

    def test_summary_digest(self):
        summary = timeline_summary(synthetic_records())
        assert summary["schema"] == TIMELINE_SCHEMA
        assert summary["duration_seconds"] == 3.5
        assert summary["n_frames"] == 3
        assert summary["n_annotations"] == 2
        assert summary["annotations_by_event"] == {
            "retry": 1, "worker-death": 1}
        assert summary["peak_parent_rss_bytes"] == 1100
        assert summary["peak_worker_rss_bytes"] == 600
        assert summary["max_workers_seen"] == 1
        assert summary["peak_units_per_second"] == 1.2
        assert summary["final_progress"]["units_done"] == 4
        assert summary["status"] == "ok"

    def test_csv_long_format(self):
        text = timeline_to_csv(synthetic_records())
        rows = list(csv.DictReader(io.StringIO(text)))
        metrics = {row["metric"] for row in rows}
        assert "progress.units_done" in metrics
        assert "resources.parent_rss_bytes" in metrics
        assert "resources.worker.0.rss_bytes" in metrics
        assert "counter.campaign.runs_completed" in metrics
        assert "progress.state" not in metrics  # strings stay out
        done = [row for row in rows
                if row["metric"] == "progress.units_done"]
        assert [d["value"] for d in done] == ["1", "2", "4"]


class TestCompactResources:
    def test_none_in_none_out(self):
        assert compact_resources(None) is None

    def test_digest_shape(self):
        snapshot = {
            "parent": {"pid": 7, "rss_bytes": 123, "cpu_seconds": 4.5,
                       "num_fds": 9},
            "workers": [{"pid": 8, "ordinal": 1, "rss_bytes": 55,
                         "cpu_seconds": 0.5, "num_threads": 3}],
            "self_watch": {"state": "watching", "alerts_fired": 0,
                           "n_samples": 12},
        }
        compact = compact_resources(snapshot)
        assert compact == {
            "parent_rss_bytes": 123, "parent_cpu_seconds": 4.5,
            "workers": [{"ordinal": 1, "rss_bytes": 55,
                         "cpu_seconds": 0.5}],
            "self_watch_state": "watching", "self_watch_alerts": 0,
        }


class TestTimelineEndpoint:
    def test_no_recorder_attached(self):
        server = StatusServer(board=StatusBoard())
        payload = server.timeline_payload()
        assert payload["schema"] is None
        assert payload["records"] == []
        assert "no timeline recorder" in payload["note"]

    def test_serves_ring_over_http(self):
        import urllib.request

        recorder, clock = make_recorder(None)
        recorder.start()
        clock.tick(1.0)
        recorder.sample_once()
        server = StatusServer(board=StatusBoard(), timeline=recorder)
        port = server.start()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/timeline", timeout=10) as resp:
                payload = json.loads(resp.read())
        finally:
            server.stop()
            recorder.finalize()
        assert payload["schema"] == TIMELINE_SCHEMA
        assert payload["records"][0]["kind"] == "header"
        assert any(r["kind"] == "frame" for r in payload["records"])


@pytest.fixture(scope="module")
def small_specs():
    return [
        ExperimentSpec(name="aging", scenario="stress", n_runs=1,
                       base_seed=31, max_run_seconds=20_000.0),
        ExperimentSpec(name="healthy", scenario="stress", n_runs=1,
                       base_seed=131, fault_factor=0.0,
                       max_run_seconds=6_000.0),
    ]


class TestCampaignIntegration:
    def test_observation_only_bit_identical(self, small_specs, tmp_path):
        """The recorded campaign's payload is bit-identical to the bare
        run — the timeline recorder observes, never perturbs."""
        reference = cells_payload(execute_campaign(small_specs).results)

        obs.enable_telemetry()
        board = StatusBoard()
        recorder = TimelineRecorder(tmp_path / "tl.jsonl", interval=0.05,
                                    board=board)
        recorder.start()
        try:
            outcome = execute_campaign(small_specs, workers=2, status=board,
                                       timeline=recorder)
        finally:
            recorder.finalize(outcome.status
                              if "outcome" in locals() else "error")
        assert cells_payload(outcome.results) == reference

        records = read_timeline(tmp_path / "tl.jsonl")
        summary = timeline_summary(records)
        begin = [r for r in records if r.get("event") == "campaign-begin"]
        end = [r for r in records if r.get("event") == "campaign-end"]
        assert len(begin) == 1 and len(end) == 1
        assert begin[0]["units"] == 2
        assert end[0]["status"] == "complete"
        assert end[0]["executed"] == 2
        assert summary["final_progress"]["units_done"] == 2
        assert any(r.get("event") == "round" for r in records)
