"""Checkpoint-journal unit tests: header discipline, crash damage
tolerance, fingerprint matching."""

import json
import time

import pytest

from repro.analysis.checkpoint import (
    JOURNAL_SCHEMA,
    CampaignJournal,
    JournalState,
    config_fingerprint,
)
from repro.exceptions import TraceError, ValidationError
from repro.obs import session as _obs


class TestConfigFingerprint:
    def test_stable_across_calls(self):
        config = [{"name": "a", "seed": 3}, {"name": "b", "seed": 4}]
        assert config_fingerprint(config) == config_fingerprint(config)

    def test_dict_key_order_irrelevant(self):
        assert (config_fingerprint({"a": 1, "b": 2})
                == config_fingerprint({"b": 2, "a": 1}))

    def test_different_configs_differ(self):
        assert (config_fingerprint({"seed": 1})
                != config_fingerprint({"seed": 2}))

    def test_short_hex(self):
        fp = config_fingerprint({"x": 1})
        assert len(fp) == 16
        int(fp, 16)  # valid hex

    def test_non_jsonable_rejected(self):
        with pytest.raises(ValidationError, match="JSON-able"):
            config_fingerprint({"x": object()})


class TestJournalRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, fingerprint="abc123") as journal:
            journal.record_unit("cell#0", {"seed": 1, "crashed": False})
            journal.record_unit("cell#1", {"seed": 2, "crashed": True})
        units = CampaignJournal.load(path, fingerprint="abc123")
        assert units == {
            "cell#0": {"seed": 1, "crashed": False},
            "cell#1": {"seed": 2, "crashed": True},
        }

    def test_header_is_first_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, fingerprint="fp"):
            pass
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "header", "schema": JOURNAL_SCHEMA,
                         "fingerprint": "fp"}

    def test_reopen_appends_not_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, fingerprint="fp") as journal:
            journal.record_unit("a#0", {"seed": 1})
        with CampaignJournal(path, fingerprint="fp") as journal:
            journal.record_unit("a#1", {"seed": 2})
        units = CampaignJournal.load(path)
        assert sorted(units) == ["a#0", "a#1"]
        # exactly one header
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert kinds.count("header") == 1

    def test_reopen_with_wrong_fingerprint_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, fingerprint="fp1"):
            pass
        with pytest.raises(TraceError, match="different campaign"):
            CampaignJournal(path, fingerprint="fp2")

    def test_empty_key_rejected(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl", fingerprint="fp") as j:
            with pytest.raises(ValidationError, match="key"):
                j.record_unit("", {})

    def test_duplicate_keys_keep_first(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, fingerprint="fp") as journal:
            journal.record_unit("a#0", {"seed": 1})
            journal.record_unit("a#0", {"seed": 999})
        assert CampaignJournal.load(path)["a#0"] == {"seed": 1}


class TestJournalDamage:
    def make(self, tmp_path, *units):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, fingerprint="fp") as journal:
            for key, payload in units:
                journal.record_unit(key, payload)
        return path

    def test_truncated_final_line_dropped(self, tmp_path):
        path = self.make(tmp_path, ("a#0", {"seed": 1}))
        with open(path, "a") as handle:
            handle.write('{"kind": "unit", "key": "a#1", "payl')  # SIGKILL here
        with _obs.telemetry_session() as session:
            units = CampaignJournal.load(path, fingerprint="fp")
            truncated = session.metrics.counter(
                "campaign.journal_truncated").value
        assert units == {"a#0": {"seed": 1}}
        assert truncated == 1

    def test_corrupt_interior_line_is_hard_error(self, tmp_path):
        path = self.make(tmp_path, ("a#0", {"seed": 1}))
        text = path.read_text()
        path.write_text(text + "garbage not json\n"
                        + '{"kind": "unit", "key": "a#1", "payload": {}}\n')
        with pytest.raises(TraceError, match="corrupt journal line"):
            CampaignJournal.load(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "unit", "key": "a#0", "payload": {}}\n')
        with pytest.raises(TraceError, match="header"):
            CampaignJournal.load(path)

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "header", "schema": "other/9", '
                        '"fingerprint": "fp"}\n')
        with pytest.raises(TraceError, match="schema"):
            CampaignJournal.load(path)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = self.make(tmp_path, ("a#0", {"seed": 1}))
        with pytest.raises(TraceError, match="different campaign"):
            CampaignJournal.load(path, fingerprint="other")

    def test_unknown_kind_skipped(self, tmp_path):
        path = self.make(tmp_path, ("a#0", {"seed": 1}))
        with open(path, "a") as handle:
            handle.write('{"kind": "future-extension", "data": 42}\n')
        assert CampaignJournal.load(path, fingerprint="fp") == {
            "a#0": {"seed": 1}}

    def test_malformed_unit_record_rejected(self, tmp_path):
        path = self.make(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"kind": "unit", "key": 3, "payload": {}}\n')
            handle.write('{"kind": "unit", "key": "ok", "payload": {}}\n')
        with pytest.raises(TraceError, match="malformed unit record"):
            CampaignJournal.load(path)


class TestJournalHeartbeat:
    def test_unit_lines_carry_wall_time(self, tmp_path):
        path = tmp_path / "j.jsonl"
        before = time.time()
        with CampaignJournal(path, fingerprint="fp") as journal:
            journal.record_unit("a#0", {"seed": 1})
        after = time.time()
        record = json.loads(path.read_text().splitlines()[1])
        assert before <= record["wall_time"] <= after

    def test_read_state_reports_last_progress(self, tmp_path):
        path = tmp_path / "j.jsonl"
        before = time.time()
        with CampaignJournal(path, fingerprint="fp") as journal:
            journal.record_unit("a#0", {"seed": 1})
            journal.record_unit("a#1", {"seed": 2})
        state = CampaignJournal.read_state(path, fingerprint="fp")
        assert isinstance(state, JournalState)
        assert sorted(state.units) == ["a#0", "a#1"]
        assert before <= state.last_progress_at <= time.time()
        # load() stays the plain-dict view of the same parse.
        assert CampaignJournal.load(path, fingerprint="fp") == state.units

    def test_newest_heartbeat_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"kind": "header", "schema": "%s", "fingerprint": "fp"}\n'
            '{"kind": "unit", "key": "a#0", "payload": {}, "wall_time": 50.0}\n'
            '{"kind": "unit", "key": "a#1", "payload": {}, "wall_time": 90.0}\n'
            '{"kind": "unit", "key": "a#2", "payload": {}, "wall_time": 70.0}\n'
            % JOURNAL_SCHEMA)
        state = CampaignJournal.read_state(path)
        assert state.last_progress_at == 90.0

    def test_legacy_journal_without_heartbeat(self, tmp_path):
        # Journals written before the wall_time field still load fully.
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"kind": "header", "schema": "%s", "fingerprint": "fp"}\n'
            '{"kind": "unit", "key": "a#0", "payload": {"seed": 1}}\n'
            % JOURNAL_SCHEMA)
        state = CampaignJournal.read_state(path, fingerprint="fp")
        assert state.units == {"a#0": {"seed": 1}}
        assert state.last_progress_at is None
