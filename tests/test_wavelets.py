"""Unit tests for the from-scratch wavelet machinery."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fractal.wavelets import (
    cwt,
    daubechies_filter,
    dwt,
    dwt_max_level,
    idwt,
    modwt,
)


class TestDaubechiesFilters:
    @pytest.mark.parametrize("n_moments", range(1, 11))
    def test_orthonormality(self, n_moments):
        h = daubechies_filter(n_moments)
        assert h.size == 2 * n_moments
        assert h.sum() == pytest.approx(np.sqrt(2.0), abs=1e-9)
        assert np.sum(h**2) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("n_moments", range(2, 11))
    def test_even_shift_orthogonality(self, n_moments):
        h = daubechies_filter(n_moments)
        for k in range(1, n_moments):
            inner = np.dot(h[2 * k:], h[: h.size - 2 * k])
            assert abs(inner) < 1e-7

    def test_haar(self):
        np.testing.assert_allclose(daubechies_filter(1), [1, 1] / np.sqrt(2))

    def test_db2_textbook_values(self):
        expected = np.array([
            (1 + np.sqrt(3)) / (4 * np.sqrt(2)),
            (3 + np.sqrt(3)) / (4 * np.sqrt(2)),
            (3 - np.sqrt(3)) / (4 * np.sqrt(2)),
            (1 - np.sqrt(3)) / (4 * np.sqrt(2)),
        ])
        np.testing.assert_allclose(daubechies_filter(2), expected, atol=1e-10)

    @pytest.mark.parametrize("n_moments", [2, 4, 6])
    def test_vanishing_moments(self, n_moments):
        # The QMF high-pass must annihilate polynomials of degree < N.
        from repro.fractal.wavelets import _qmf

        g = _qmf(daubechies_filter(n_moments))
        t = np.arange(g.size, dtype=float)
        for degree in range(n_moments):
            assert abs(np.dot(g, t**degree)) < 1e-6

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            daubechies_filter(11)
        with pytest.raises(ValidationError):
            daubechies_filter(0)


class TestDwt:
    @pytest.mark.parametrize("wavelet", [1, 2, 4, 8])
    def test_perfect_reconstruction(self, wavelet, rng):
        x = rng.standard_normal(256)
        coeffs = dwt(x, wavelet=wavelet, level=3)
        np.testing.assert_allclose(idwt(coeffs, wavelet=wavelet), x, atol=1e-10)

    def test_energy_conservation(self, rng):
        x = rng.standard_normal(512)
        coeffs = dwt(x, wavelet=3, level=4)
        total = sum(np.sum(c**2) for c in coeffs)
        assert total == pytest.approx(np.sum(x**2), rel=1e-10)

    def test_coefficient_layout(self, rng):
        x = rng.standard_normal(64)
        coeffs = dwt(x, wavelet=2, level=3)
        assert [c.size for c in coeffs] == [8, 8, 16, 32]

    def test_constant_signal_all_energy_in_approx(self):
        x = np.ones(64) * 5.0
        coeffs = dwt(x, wavelet=2, level=2)
        for detail in coeffs[1:]:
            np.testing.assert_allclose(detail, 0.0, atol=1e-10)

    def test_max_level_computation(self):
        assert dwt_max_level(256, 4) >= 5
        assert dwt_max_level(8, 4) == 1

    def test_level_too_deep(self, rng):
        with pytest.raises(ValidationError, match="too deep"):
            dwt(rng.standard_normal(32), wavelet=2, level=10)

    def test_default_level_is_max(self, rng):
        x = rng.standard_normal(128)
        coeffs = dwt(x, wavelet=1)
        assert len(coeffs) == dwt_max_level(128, 2) + 1

    def test_idwt_requires_two_components(self):
        with pytest.raises(ValidationError):
            idwt([np.zeros(4)], wavelet=2)


class TestModwt:
    def test_all_levels_full_length(self, rng):
        x = rng.standard_normal(300)  # no power-of-two requirement
        w = modwt(x, wavelet=2, level=4)
        assert list(w) == [1, 2, 3, 4]
        assert all(v.size == 300 for v in w.values())

    def test_shift_invariance(self, rng):
        # The MODWT of a circularly shifted signal is the shifted MODWT.
        x = rng.standard_normal(128)
        shift = 17
        w0 = modwt(x, wavelet=2, level=3)
        w1 = modwt(np.roll(x, shift), wavelet=2, level=3)
        for j in w0:
            np.testing.assert_allclose(np.roll(w0[j], shift), w1[j], atol=1e-10)

    def test_detail_mean_near_zero(self, rng):
        x = rng.standard_normal(512) + 100.0
        w = modwt(x, wavelet=3, level=3)
        for j, coeffs in w.items():
            assert abs(np.mean(coeffs)) < 0.5

    def test_level_too_deep(self, rng):
        with pytest.raises(ValidationError):
            modwt(rng.standard_normal(32), wavelet=4, level=6)


class TestCwt:
    def test_shape_and_dtype(self, rng):
        x = rng.standard_normal(200)
        out = cwt(x, [2.0, 4.0, 8.0])
        assert out.shape == (3, 200)
        assert out.dtype == float

    def test_morlet_complex(self, rng):
        out = cwt(rng.standard_normal(128), [4.0], wavelet="morlet")
        assert np.iscomplexobj(out)

    def test_zero_mean_signal_response(self):
        # A pure sinusoid responds maximally at the matching scale.
        t = np.arange(1024)
        x = np.sin(2 * np.pi * t / 64.0)
        scales = np.array([4.0, 64.0 / (2 * np.pi) * np.sqrt(2), 256.0])
        power = np.mean(np.abs(cwt(x, scales)) ** 2, axis=1)
        assert np.argmax(power) == 1

    def test_constant_signal_zero_response(self):
        out = cwt(np.full(128, 7.0), [4.0, 8.0])
        np.testing.assert_allclose(out, 0.0, atol=1e-8)

    def test_invalid_scales(self, rng):
        with pytest.raises(ValidationError):
            cwt(rng.standard_normal(64), [-1.0])

    def test_invalid_wavelet(self, rng):
        with pytest.raises(ValidationError):
            cwt(rng.standard_normal(64), [2.0], wavelet="sinc")

    def test_linear_trend_annihilated_by_dog2(self):
        # DOG-2 has two vanishing moments: a line produces ~zero response
        # away from the (reflected) boundaries.
        x = np.linspace(0, 100, 512)
        out = cwt(x, [4.0])
        interior = out[0][64:-64]
        assert np.max(np.abs(interior)) < 1e-6 * np.max(np.abs(x))


class TestDaubechiesCacheImmutability:
    def test_cached_filter_is_read_only(self):
        h = daubechies_filter(4)
        assert not h.flags.writeable
        with pytest.raises(ValueError):
            h[0] = 0.0

    def test_caller_mutation_cannot_corrupt_cache(self):
        first = daubechies_filter(3).copy()
        h = daubechies_filter(3)
        with pytest.raises(ValueError):
            h *= 0.0
        np.testing.assert_array_equal(daubechies_filter(3), first)

    def test_haar_also_frozen(self):
        assert not daubechies_filter(1).flags.writeable


def _legacy_cwt(x, scales, *, wavelet="mexican_hat", dog_order=2):
    """The pre-plan-cache reference: per-scale kernels, per-scale ifft."""
    from repro.fractal.wavelets import _dog_wavelet_hat, _morlet_wavelet_hat

    x = np.asarray(x, dtype=float)
    scales = np.asarray(scales, dtype=float)
    n = x.size
    padded = np.concatenate([x, x[::-1]])
    spectrum = np.fft.fft(padded)
    omega = 2.0 * np.pi * np.fft.fftfreq(padded.size)
    is_complex = wavelet == "morlet"
    out = np.empty((scales.size, n), dtype=complex if is_complex else float)
    for i, a in enumerate(scales):
        if wavelet == "morlet":
            hat = _morlet_wavelet_hat(omega, a)
        else:
            order = 2 if wavelet == "mexican_hat" else dog_order
            hat = _dog_wavelet_hat(omega, a, order)
        conv = np.fft.ifft(spectrum * np.conj(hat))[:n]
        out[i] = conv if is_complex else conv.real
    return out


class TestWaveletPlanCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        from repro.fractal.wavelets import clear_wavelet_plan_cache

        clear_wavelet_plan_cache()
        yield
        clear_wavelet_plan_cache()

    @pytest.mark.parametrize("wavelet,order", [
        ("mexican_hat", 2), ("dog", 4), ("morlet", 2),
    ])
    def test_bit_identical_to_per_scale_loop(self, rng, wavelet, order):
        x = np.cumsum(rng.standard_normal(777))
        scales = np.geomspace(2.0, 64.0, 9)
        batched = cwt(x, scales, wavelet=wavelet, dog_order=order)
        legacy = _legacy_cwt(x, scales, wavelet=wavelet, dog_order=order)
        np.testing.assert_array_equal(batched, legacy)

    def test_repeat_calls_hit_the_cache(self, rng):
        from repro.fractal.wavelets import wavelet_plan_cache_info

        x = rng.standard_normal(256)
        scales = [2.0, 4.0, 8.0]
        cwt(x, scales)
        cwt(x, scales)
        cwt(x, scales)
        info = wavelet_plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2
        assert info["entries"] == 1
        assert info["bytes"] == 3 * 512 * 16

    def test_distinct_configs_get_distinct_plans(self, rng):
        from repro.fractal.wavelets import wavelet_plan_cache_info

        x = rng.standard_normal(256)
        cwt(x, [2.0, 4.0])
        cwt(x, [2.0, 4.0], wavelet="morlet")
        cwt(x, [3.0, 6.0])
        cwt(rng.standard_normal(128), [2.0, 4.0])
        assert wavelet_plan_cache_info()["misses"] == 4

    def test_lru_eviction_bounds_the_cache(self, rng):
        from repro.fractal.wavelets import (
            _PLAN_CACHE_MAX,
            wavelet_plan_cache_info,
        )

        x = rng.standard_normal(128)
        for k in range(_PLAN_CACHE_MAX + 3):
            cwt(x, [2.0 + 0.5 * k, 8.0 + k])
        info = wavelet_plan_cache_info()
        assert info["entries"] == _PLAN_CACHE_MAX
        assert info["misses"] == _PLAN_CACHE_MAX + 3

    def test_evicted_plan_rebuilt_identically(self, rng):
        from repro.fractal.wavelets import _PLAN_CACHE_MAX

        x = rng.standard_normal(128)
        first = cwt(x, [2.0, 4.0])
        for k in range(_PLAN_CACHE_MAX + 1):
            cwt(x, [3.0 + k, 9.0 + k])
        np.testing.assert_array_equal(cwt(x, [2.0, 4.0]), first)

    def test_plan_kernels_frozen(self, rng):
        from repro.fractal.wavelets import _PLAN_CACHE

        cwt(rng.standard_normal(128), [2.0, 4.0])
        plan = next(iter(_PLAN_CACHE.values()))
        assert not plan.kernels.flags.writeable
