"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.memsim import Machine, MachineConfig
from repro.trace import write_csv


@pytest.fixture(scope="module")
def short_trace(tmp_path_factory):
    """A quick crash-run trace archived to CSV."""
    path = tmp_path_factory.mktemp("cli") / "run.csv"
    result = Machine(MachineConfig.nt4(seed=11, max_run_seconds=40_000)).run()
    write_csv(result.bundle, path)
    return path, result


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--profile", "w2k", "--seed", "3", "--out", "x.csv"])
        assert args.profile == "w2k"
        assert args.seed == 3

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "trace.csv", "--scheme", "ewma"])
        assert args.trace == "trace.csv"
        assert args.scheme == "ewma"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_telemetry_flags_on_every_workload_command(self):
        for base in (["simulate", "--out", "x.csv"],
                     ["analyze", "t.csv"],
                     ["validate"],
                     ["campaign"]):
            args = build_parser().parse_args(
                base + ["--log-level", "debug", "--telemetry-out", "runs/d"])
            assert args.log_level == "debug"
            assert args.telemetry_out == "runs/d"

    def test_simulate_accepts_scenario_profiles(self):
        args = build_parser().parse_args(
            ["simulate", "--profile", "stress", "--telemetry-out", "d"])
        assert args.profile == "stress"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--profile", "bogus"])

    def test_telemetry_args(self):
        args = build_parser().parse_args(["telemetry", "runs/", "--metrics"])
        assert args.path == "runs/"
        assert args.metrics
        assert args.format == "table"

    def test_telemetry_format_choices(self):
        for fmt in ("table", "json", "csv", "prom"):
            args = build_parser().parse_args(
                ["telemetry", "runs/", "--format", fmt])
            assert args.format == fmt
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry", "runs/", "--format", "xml"])

    def test_bench_args(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--select", "fractal,core",
             "--threshold", "0.5", "--repeats", "2", "--no-memory"])
        assert args.quick
        assert args.select == "fractal,core"
        assert args.threshold == 0.5
        assert args.repeats == 2
        assert args.no_memory
        defaults = build_parser().parse_args(["bench"])
        assert defaults.out == "benchmarks/results"
        assert defaults.threshold == 0.25
        assert not defaults.quick

    def test_perf_profile_flags_on_every_command(self):
        for base in (["simulate", "--out", "x.csv"],
                     ["analyze", "t.csv"],
                     ["validate"],
                     ["campaign"],
                     ["bench"],
                     ["watch"],
                     ["dashboard", "x.jsonl"]):
            args = build_parser().parse_args(base + ["--perf-profile"])
            assert args.perf_profile
            assert not args.perf_memory

    def test_watch_args(self):
        args = build_parser().parse_args(
            ["watch", "--scenario", "stress", "--seed", "3",
             "--alerts", "rules.toml", "--events", "out.jsonl",
             "--chunk-size", "64"])
        assert args.scenario == "stress"
        assert args.alerts == "rules.toml"
        assert args.events == "out.jsonl"
        assert args.chunk_size == 64
        defaults = build_parser().parse_args(["watch"])
        assert defaults.scenario is None and defaults.trace is None
        assert defaults.counter == "AvailableBytes"
        # --scenario and --trace are mutually exclusive sources.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["watch", "--scenario", "stress", "--trace", "x.csv"])

    def test_dashboard_args(self):
        args = build_parser().parse_args(
            ["dashboard", "out.jsonl", "-o", "report.html"])
        assert args.path == "out.jsonl"
        assert args.out == "report.html"


class TestCommands:
    def test_simulate_writes_csv(self, tmp_path):
        out = tmp_path / "sim.csv"
        code = main(["simulate", "--seed", "2", "--max-seconds", "3000",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        text = out.read_text()
        assert "AvailableBytes" in text

    def test_simulate_fault_factor(self, tmp_path):
        out = tmp_path / "sim.csv"
        code = main(["simulate", "--seed", "2", "--max-seconds", "2000",
                     "--fault-factor", "2.0", "--out", str(out)])
        assert code == 0

    def test_analyze_reports_lead(self, short_trace, capsys):
        path, result = short_trace
        code = main(["analyze", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "WARNING at" in out
        assert "lead time" in out

    def test_analyze_unknown_counter(self, short_trace, capsys):
        path, __ = short_trace
        code = main(["analyze", str(path), "--counter", "Bogus"])
        assert code == 2
        assert "available" in capsys.readouterr().err

    def test_analyze_variance_indicator(self, short_trace, capsys):
        path, __ = short_trace
        code = main(["analyze", str(path), "--indicator", "variance"])
        assert code == 0
        assert "variance" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        code = main(["validate"])
        assert code == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_campaign_runs_and_persists(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        code = main(["campaign", "--runs", "1", "--max-seconds", "40000",
                     "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "Campaign results" in text
        assert out.exists()

    def test_campaign_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.scenario == "stress"
        assert args.runs == 3


class TestTelemetryCli:
    """The observability surface: --log-level, --telemetry-out, telemetry."""

    @pytest.fixture
    def run_dir(self, tmp_path):
        """A telemetry-instrumented short simulate run."""
        out = tmp_path / "run"
        code = main(["simulate", "--seed", "5", "--max-seconds", "3000",
                     "--telemetry-out", str(out)])
        assert code == 0
        return out

    def test_simulate_needs_out_or_telemetry(self, capsys):
        code = main(["simulate", "--seed", "1"])
        assert code == 2
        assert "telemetry-out" in capsys.readouterr().err

    def test_simulate_writes_manifest_with_spans_and_metrics(self, run_dir):
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["schema"] == obs.MANIFEST_SCHEMA
        assert manifest["command"] == "simulate"
        assert manifest["seed"] == 5
        named = {s["name"] for s in manifest["spans"]}
        assert len(named) >= 3
        assert {"machine-setup", "machine-run", "machine-collect"} <= named
        assert all(s["duration"] is not None for s in manifest["spans"])
        assert manifest["metrics"]["sim.events_fired"]["value"] > 0
        assert manifest["outcome"]["exit_code"] == 0
        assert (run_dir / "events.jsonl").exists()

    def test_telemetry_session_closed_after_main(self, run_dir):
        assert not obs.telemetry_enabled()

    def test_telemetry_subcommand_renders_summary(self, run_dir, capsys):
        code = main(["telemetry", str(run_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry summary" in out
        assert "simulate" in out
        assert "stage durations" in out

    def test_telemetry_subcommand_metrics_flag(self, run_dir, capsys):
        code = main(["telemetry", str(run_dir), "--metrics"])
        assert code == 0
        assert "sim.events_fired" in capsys.readouterr().out

    def test_telemetry_subcommand_missing_path(self, tmp_path, capsys):
        code = main(["telemetry", str(tmp_path / "nope")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_log_level_emits_structured_lines(self, tmp_path, capsys):
        code = main(["simulate", "--seed", "5", "--max-seconds", "2000",
                     "--out", str(tmp_path / "t.csv"), "--log-level", "info"])
        assert code == 0
        err = capsys.readouterr().err
        assert "repro.memsim.machine: run starting" in err
        assert "seed=5" in err

    def test_scenario_profile_simulate(self, tmp_path):
        out = tmp_path / "scen"
        code = main(["simulate", "--profile", "webserver", "--seed", "2",
                     "--max-seconds", "2000", "--telemetry-out", str(out)])
        assert code == 0
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["config"]["profile"] == "webserver"

    def test_telemetry_format_json(self, run_dir, capsys):
        code = main(["telemetry", str(run_dir), "--format", "json"])
        assert code == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["command"] == "simulate"
        assert records[0]["metrics"]["sim.events_fired.value"] > 0

    def test_telemetry_format_csv(self, run_dir, capsys):
        code = main(["telemetry", str(run_dir), "--format", "csv"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "run,command,seed,metric,value"
        assert any("run.wall_seconds" in line for line in lines[1:])

    def test_telemetry_format_prom(self, run_dir, capsys):
        code = main(["telemetry", str(run_dir), "--format", "prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sim_events_fired counter" in out
        assert "repro_sim_events_fired_total" in out
        assert out.endswith("# EOF\n")

    def test_failing_run_still_writes_error_manifest(self, tmp_path, capsys):
        out = tmp_path / "failed-run"
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.csv"),
                  "--telemetry-out", str(out)])
        assert not obs.telemetry_enabled()  # session still torn down
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["outcome"]["status"] == "error"
        assert manifest["outcome"]["error"]["type"] == "FileNotFoundError"
        assert manifest["outcome"]["exit_code"] is None

    def test_perf_profile_into_manifest(self, tmp_path):
        out = tmp_path / "profiled"
        code = main(["simulate", "--seed", "5", "--max-seconds", "3000",
                     "--telemetry-out", str(out), "--perf-profile"])
        assert code == 0
        manifest = json.loads((out / "manifest.json").read_text())
        hotpaths = manifest["profile"]["hotpaths"]
        assert "memsim.machine_run" in hotpaths
        assert "simkernel.run_until" in hotpaths
        assert hotpaths["memsim.machine_run"]["calls"] == 1

    def test_perf_profile_prints_table_without_manifest(self, tmp_path, capsys):
        code = main(["simulate", "--seed", "5", "--max-seconds", "2000",
                     "--out", str(tmp_path / "t.csv"), "--perf-profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Hot-path profile" in out
        assert "memsim.machine_run" in out


class TestBenchCli:
    def test_list_cases_mode(self, capsys):
        code = main(["bench", "--list-cases"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Benchmark suite" in out
        assert "fractal.mfdfa" in out

    def test_list_mode_empty(self, tmp_path, capsys):
        code = main(["bench", "--list", "--out", str(tmp_path / "none")])
        assert code == 0
        assert "no BENCH_" in capsys.readouterr().out

    def test_list_mode_tabulates_trajectories(self, tmp_path, capsys):
        from repro.obs import bench

        payload = {
            "schema": bench.BENCH_SCHEMA,
            "created_at": "2026-08-06T10:00:00+00:00",
            "quick": True,
            "repeats": 1,
            "environment": {"git_sha": "abc1234def"},
            "results": {"fractal.mfdfa": {"wall_best": 0.0123}},
        }
        bench.write_bench_file(payload, tmp_path)
        code = main(["bench", "--list", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2026-08-06" in out
        assert "abc1234" in out
        assert "quick" in out
        assert "fractal.mfdfa" in out

    def test_quick_run_writes_trajectory(self, tmp_path, capsys):
        code = main(["bench", "--quick", "--select", "fractal.mfdfa",
                     "--repeats", "1", "--no-memory",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "no baseline" in out
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["schema"] == "repro.bench-trajectory/1"
        assert payload["quick"] is True
        assert "fractal.mfdfa" in payload["results"]

    def test_second_run_compares_against_first(self, tmp_path, capsys):
        from repro.obs import bench

        argv = ["bench", "--quick", "--select", "core.holder",
                "--repeats", "1", "--no-memory", "--out", str(tmp_path)]
        assert main(argv) == 0
        first = bench.find_baseline(tmp_path, quick=True)
        # Back-date the first file so the second gets a distinct name.
        payload = json.loads(open(first).read())
        payload["created_at"] = "2000-01-01T00:00:00+00:00"
        (tmp_path / "BENCH_20000101_oldsha1.json").write_text(
            json.dumps(payload))
        import os
        os.remove(first)
        capsys.readouterr()
        # Generous threshold: same machine, same workload, must pass.
        assert main(argv + ["--threshold", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "Perf trajectory vs baseline" in out
        assert "no regressions" in out

    def test_regression_fails_run(self, tmp_path, capsys):
        # A baseline claiming the workload once took ~0 seconds forces
        # every ratio past any threshold.
        from repro.obs import bench

        argv = ["bench", "--quick", "--select", "core.holder",
                "--repeats", "1", "--no-memory", "--out", str(tmp_path)]
        assert main(argv) == 0
        path = bench.find_baseline(tmp_path, quick=True)
        payload = json.loads(open(path).read())
        for record in payload["results"].values():
            record["wall_best"] = 1e-9
        payload["created_at"] = "2000-01-01T00:00:00+00:00"
        (tmp_path / "BENCH_20000101_oldsha1.json").write_text(
            json.dumps(payload))
        import os
        os.remove(path)
        capsys.readouterr()
        assert main(argv + ["--no-normalize"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_no_compare_skips_baseline(self, tmp_path, capsys):
        argv = ["bench", "--quick", "--select", "core.holder",
                "--repeats", "1", "--no-memory", "--no-compare",
                "--out", str(tmp_path)]
        assert main(argv) == 0
        assert main(argv) == 0  # second run: still no comparison attempted
        out = capsys.readouterr().out
        assert "Perf trajectory" not in out


class TestWatchCli:
    def test_watch_replay_full_pipeline(self, short_trace, tmp_path, capsys):
        path, result = short_trace
        rules = tmp_path / "rules.toml"
        rules.write_text(
            '[[rule]]\nname = "low-mem"\nsignal = "AvailableBytes"\n'
            'kind = "threshold"\nop = "lt"\nvalue = 100e6\n'
            'severity = "critical"\n'
        )
        events_path = tmp_path / "out.jsonl"
        html_path = tmp_path / "report.html"
        code = main(["watch", "--trace", str(path),
                     "--alerts", str(rules),
                     "--events", str(events_path),
                     "--dashboard", str(html_path),
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ALARM" in out
        assert "crashed" in out

        # The stream on disk validates and the alarm precedes the crash.
        from repro.obs.live import read_events, validate_stream

        events = read_events(events_path)
        counts = validate_stream(events)
        assert counts["alarm"] == 1
        end = events[-1]
        assert end["kind"] == "end"
        assert end["alarm_time"] < end["crash_time"]
        assert end["crash_time"] == pytest.approx(result.crash_time)
        assert counts.get("alert", 0) >= 1

        # The dashboard rendered alongside, self-contained.
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html

    def test_watch_missing_rules_file(self, short_trace, tmp_path, capsys):
        path, _ = short_trace
        code = main(["watch", "--trace", str(path),
                     "--alerts", str(tmp_path / "nope.toml"), "--quiet"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_watch_bad_counter(self, short_trace, capsys):
        path, _ = short_trace
        code = main(["watch", "--trace", str(path),
                     "--counter", "NoSuchCounter", "--quiet"])
        assert code == 2
        assert "NoSuchCounter" in capsys.readouterr().err

    def test_watch_status_lines(self, short_trace, capsys):
        path, _ = short_trace
        code = main(["watch", "--trace", str(path), "--status-every", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "state=" in out
        assert "samples=" in out

    def test_watch_writes_manifest(self, short_trace, tmp_path):
        path, _ = short_trace
        code = main(["watch", "--trace", str(path), "--quiet",
                     "--telemetry-out", str(tmp_path / "run")])
        assert code == 0
        manifest = json.loads((tmp_path / "run" / "manifest.json").read_text())
        assert manifest["command"] == "watch"
        assert manifest["outcome"]["alarm_time"] is not None


class TestDashboardCli:
    def test_run_dashboard_from_jsonl(self, short_trace, tmp_path, capsys):
        path, _ = short_trace
        events_path = tmp_path / "out.jsonl"
        assert main(["watch", "--trace", str(path), "--quiet",
                     "--events", str(events_path)]) == 0
        html_path = tmp_path / "report.html"
        code = main(["dashboard", str(events_path), "-o", str(html_path)])
        assert code == 0
        assert "run dashboard" in capsys.readouterr().out
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_campaign_dashboard_from_manifests(self, tmp_path, capsys):
        from repro.obs import RunManifest, write_manifest

        cells = {
            "aging": {
                "runs": [{"seed": 1, "crashed": True, "crash_time": 900.0,
                          "alarm_time": 400.0, "lead_time": 500.0,
                          "duration": 900.0}],
                "crashed": 1, "detected": 1, "missed": 0,
                "median_lead": 500.0, "false_alarms": 0,
                "lead_times": [500.0],
            },
        }
        write_manifest(RunManifest(command="campaign",
                                   outcome={"cells": cells}),
                       tmp_path / "run1")
        html_path = tmp_path / "campaign.html"
        code = main(["dashboard", str(tmp_path), "-o", str(html_path)])
        assert code == 0
        assert "campaign dashboard" in capsys.readouterr().out
        assert "aging" in html_path.read_text()

    def test_missing_path_errors(self, tmp_path, capsys):
        code = main(["dashboard", str(tmp_path / "nothing"),
                     "-o", str(tmp_path / "x.html")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCampaignDashboardFlag:
    def test_campaign_outcome_carries_run_records(self, tmp_path):
        dash = tmp_path / "campaign.html"
        code = main(["campaign", "--scenario", "stress", "--runs", "1",
                     "--max-seconds", "12000",
                     "--telemetry-out", str(tmp_path / "run"),
                     "--dashboard", str(dash)])
        assert code == 0
        manifest = json.loads((tmp_path / "run" / "manifest.json").read_text())
        cells = manifest["outcome"]["cells"]
        assert set(cells) == {"stress-aging", "stress-healthy"}
        for cell in cells.values():
            assert isinstance(cell["runs"], list)
            assert {"seed", "crashed", "alarm_time",
                    "lead_time"} <= set(cell["runs"][0])
        assert dash.read_text().startswith("<!DOCTYPE html>")


@pytest.fixture(scope="module")
def timeline_file(tmp_path_factory):
    """A small finished repro.timeline/1 artifact with annotations."""
    from repro.obs.timeline import TimelineRecorder

    path = tmp_path_factory.mktemp("tl") / "tl.jsonl"
    clock = {"now": 1000.0}

    def tick():
        clock["now"] += 1.0
        return clock["now"]

    recorder = TimelineRecorder(path, interval=3600.0, clock=tick,
                                wall_clock=lambda: 5e9 + clock["now"])
    recorder.start()
    for _ in range(3):
        recorder.sample_once()
    recorder.annotate("retry", index=1, attempt=1)
    recorder.annotate("worker-death", index=2)
    recorder.finalize()
    return path


class TestTimelineCli:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--timeline", "tl.jsonl",
             "--timeline-every", "0.5", "--costs", "costs.json"])
        assert args.timeline == "tl.jsonl"
        assert args.timeline_every == 0.5
        assert args.costs == "costs.json"
        args = build_parser().parse_args(["watch", "--timeline", "w.jsonl"])
        assert args.timeline == "w.jsonl"
        assert args.timeline_every == 1.0
        args = build_parser().parse_args(
            ["timeline", "tl.jsonl", "--since", "10", "--until", "60",
             "--slice", "s.jsonl", "--csv", "t.csv", "--prom", "t.prom",
             "--dashboard", "t.html", "--costs", "c.json"])
        assert args.path == "tl.jsonl"
        assert args.since == 10.0 and args.until == 60.0
        assert args.slice_out == "s.jsonl"

    def test_summary_output(self, timeline_file, capsys):
        code = main(["timeline", str(timeline_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Timeline" in out
        assert "n_frames" in out
        assert "annotations.retry" in out
        assert "annotations.worker-death" in out

    def test_slice_and_exports_round_trip(self, timeline_file, tmp_path,
                                          capsys):
        from repro.obs.timeline import read_timeline, validate_timeline

        sliced = tmp_path / "slice.jsonl"
        csv_out = tmp_path / "tl.csv"
        prom_out = tmp_path / "tl.prom"
        dash_out = tmp_path / "tl.html"
        code = main(["timeline", str(timeline_file), "--since", "1",
                     "--slice", str(sliced), "--csv", str(csv_out),
                     "--prom", str(prom_out), "--dashboard", str(dash_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "slice [" in out
        # The sliced artifact is itself a valid timeline stream.
        validate_timeline(read_timeline(sliced))
        assert csv_out.read_text().startswith("seq,t,wall_time,metric,value")
        assert "# EOF" in prom_out.read_text()
        assert dash_out.read_text().startswith("<!DOCTYPE html>")

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(["timeline", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_costs_profile_errors(self, timeline_file, tmp_path,
                                          capsys):
        bad = tmp_path / "costs.json"
        bad.write_text("{not json")
        code = main(["timeline", str(timeline_file), "--costs", str(bad),
                     "--dashboard", str(tmp_path / "t.html")])
        assert code == 2
        assert "bad costs profile" in capsys.readouterr().err


class TestCampaignTimelineFlag:
    def test_campaign_records_timeline_and_costs(self, tmp_path, capsys):
        from repro.obs.timeline import read_timeline, timeline_summary

        tl = tmp_path / "tl.jsonl"
        costs_path = tmp_path / "costs.json"
        code = main(["campaign", "--scenario", "stress", "--runs", "1",
                     "--max-seconds", "12000",
                     "--timeline", str(tl), "--timeline-every", "0.1",
                     "--costs", str(costs_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline: recording" in out
        records = read_timeline(tl)
        summary = timeline_summary(records)  # validates the stream
        assert summary["status"] == "complete"
        events = {r.get("event") for r in records
                  if r.get("kind") == "annotation"}
        assert {"campaign-begin", "campaign-end"} <= events
        costs = json.loads(costs_path.read_text())
        assert costs["schema"] == "repro.costs/1"
        shares = [p["share"] for p in costs["phases"].values()
                  if p["share"] is not None]
        assert sum(shares) == pytest.approx(1.0)
        assert "Cost attribution" in out or "cost" in out.lower()
