"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.memsim import Machine, MachineConfig
from repro.trace import write_csv


@pytest.fixture(scope="module")
def short_trace(tmp_path_factory):
    """A quick crash-run trace archived to CSV."""
    path = tmp_path_factory.mktemp("cli") / "run.csv"
    result = Machine(MachineConfig.nt4(seed=11, max_run_seconds=40_000)).run()
    write_csv(result.bundle, path)
    return path, result


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--profile", "w2k", "--seed", "3", "--out", "x.csv"])
        assert args.profile == "w2k"
        assert args.seed == 3

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "trace.csv", "--scheme", "ewma"])
        assert args.trace == "trace.csv"
        assert args.scheme == "ewma"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_simulate_writes_csv(self, tmp_path):
        out = tmp_path / "sim.csv"
        code = main(["simulate", "--seed", "2", "--max-seconds", "3000",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        text = out.read_text()
        assert "AvailableBytes" in text

    def test_simulate_fault_factor(self, tmp_path):
        out = tmp_path / "sim.csv"
        code = main(["simulate", "--seed", "2", "--max-seconds", "2000",
                     "--fault-factor", "2.0", "--out", str(out)])
        assert code == 0

    def test_analyze_reports_lead(self, short_trace, capsys):
        path, result = short_trace
        code = main(["analyze", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "WARNING at" in out
        assert "lead time" in out

    def test_analyze_unknown_counter(self, short_trace, capsys):
        path, __ = short_trace
        code = main(["analyze", str(path), "--counter", "Bogus"])
        assert code == 2
        assert "available" in capsys.readouterr().err

    def test_analyze_variance_indicator(self, short_trace, capsys):
        path, __ = short_trace
        code = main(["analyze", str(path), "--indicator", "variance"])
        assert code == 0
        assert "variance" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        code = main(["validate"])
        assert code == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_campaign_runs_and_persists(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        code = main(["campaign", "--runs", "1", "--max-seconds", "40000",
                     "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "Campaign results" in text
        assert out.exists()

    def test_campaign_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.scenario == "stress"
        assert args.runs == 3
