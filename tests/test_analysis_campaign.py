"""Tests for scenarios, sliding MFDFA, tails, ON/OFF generator, campaigns."""

import math

import numpy as np
import pytest

from repro.analysis import (
    CellResult,
    ExperimentSpec,
    RunRecord,
    cells_payload,
    load_results,
    results_table,
    run_campaign,
    save_results,
)
from repro.exceptions import AnalysisError, TraceError, ValidationError
from repro.fractal import dfa, sliding_mfdfa
from repro.generators import onoff_aggregate_rate
from repro.memsim import SCENARIO_NAMES, build_scenario
from repro.stats import hill_estimator, hill_plot_data, tail_quantile_ratio
from repro.trace import TimeSeries


class TestScenarios:
    def test_all_scenarios_buildable(self):
        for name in SCENARIO_NAMES:
            machine = build_scenario(name, seed=1, max_run_seconds=1000.0)
            assert machine.config.max_run_seconds == 1000.0

    def test_unknown_scenario(self):
        with pytest.raises(ValidationError):
            build_scenario("mainframe")

    def test_scenarios_have_distinct_workloads(self):
        web = build_scenario("webserver", seed=1)
        db = build_scenario("database", seed=1)
        assert web.config.workload != db.config.workload

    def test_fault_factor_scales(self):
        base = build_scenario("stress", seed=1)
        hot = build_scenario("stress", seed=1, fault_factor=2.0)
        assert hot.config.faults.heap_leak_fraction == pytest.approx(
            2 * base.config.faults.heap_leak_fraction)

    def test_config_overrides_win(self):
        machine = build_scenario(
            "stress", seed=1, config_overrides={"sampling_interval": 2.0})
        assert machine.config.sampling_interval == 2.0

    @pytest.mark.slow
    def test_webserver_crashes_and_batch_runs(self):
        machine = build_scenario("webserver", seed=31, max_run_seconds=60_000)
        result = machine.run()
        assert result.crashed


class TestSlidingMfdfa:
    def _series(self, n=8192):
        rng = np.random.default_rng(0)
        # Two regimes: persistent then antipersistent-ish.
        from repro.generators import fgn

        a = np.cumsum(fgn(n // 2, 0.8, rng=rng))
        b = a[-1] + np.cumsum(fgn(n // 2, 0.3, rng=rng))
        return TimeSeries.from_values(np.concatenate([a, b]), name="x")

    def test_detects_regime_change(self):
        ts = self._series()
        res = sliding_mfdfa(ts, window=2048, step=512)
        assert len(res) >= 5
        # h2 of early windows (H=0.8 regime) above late windows (H=0.3).
        assert res.h2[0] > res.h2[-1] + 0.2

    def test_times_right_aligned(self):
        ts = self._series()
        res = sliding_mfdfa(ts, window=2048, step=1024)
        assert res.times[0] == ts.times[2047]

    def test_gaps_rejected(self):
        values = np.random.default_rng(1).standard_normal(4096)
        values[7] = np.nan
        ts = TimeSeries.from_values(values)
        with pytest.raises(AnalysisError, match="gaps"):
            sliding_mfdfa(ts, window=1024, step=512)

    def test_too_short_rejected(self):
        ts = TimeSeries.from_values(np.random.default_rng(2).standard_normal(512))
        with pytest.raises(AnalysisError):
            sliding_mfdfa(ts, window=1024)


class TestTails:
    def test_hill_recovers_pareto_index(self):
        rng = np.random.default_rng(3)
        for alpha_true in (1.2, 1.8, 2.5):
            x = 1.0 + rng.pareto(alpha_true, size=50_000)
            alpha, err = hill_estimator(x, k=500)
            assert alpha == pytest.approx(alpha_true, rel=0.15)
            assert err > 0

    def test_hill_exponential_has_light_tail(self):
        rng = np.random.default_rng(4)
        x = rng.exponential(1.0, size=50_000)
        alpha, __ = hill_estimator(x, k=200)
        assert alpha > 3.0  # effectively light-tailed

    def test_hill_plot_shapes(self):
        rng = np.random.default_rng(5)
        x = 1.0 + rng.pareto(1.5, size=10_000)
        ks, alphas = hill_plot_data(x)
        assert ks.size == alphas.size >= 10
        assert np.all(np.diff(ks) > 0)

    def test_hill_validation(self, rng):
        with pytest.raises((AnalysisError, ValidationError)):
            hill_estimator(rng.standard_normal(10))
        with pytest.raises(AnalysisError):
            hill_estimator(1.0 + rng.random(100), k=200)

    def test_quantile_ratio_orders_tails(self):
        rng = np.random.default_rng(6)
        pareto = 1.0 + rng.pareto(1.5, size=100_000)
        expo = rng.exponential(1.0, size=100_000)
        assert tail_quantile_ratio(pareto) > 2 * tail_quantile_ratio(expo)

    def test_onoff_durations_are_heavy(self):
        # The workload's Pareto draw must itself pass the Hill check.
        from repro.memsim.workloads import _pareto

        rng = np.random.default_rng(7)
        samples = np.array([_pareto(rng, 1.4, 20.0) for _ in range(20_000)])
        alpha, __ = hill_estimator(samples, k=300)
        assert alpha == pytest.approx(1.4, rel=0.2)


class TestOnOffGenerator:
    def test_rate_bounded_by_sources(self):
        rate = onoff_aggregate_rate(2048, n_sources=8,
                                    rng=np.random.default_rng(8))
        assert np.all(rate >= 0)
        assert np.all(rate <= 8 + 1e-9)

    def test_duty_cycle_approximate(self):
        rate = onoff_aggregate_rate(2**13, n_sources=32, mean_on=10, mean_off=20,
                                    rng=np.random.default_rng(9))
        duty = np.mean(rate) / 32
        assert duty == pytest.approx(1.0 / 3.0, abs=0.12)

    def test_lrd_matches_taqqu(self):
        rate = onoff_aggregate_rate(2**14, n_sources=32, shape=1.4,
                                    rng=np.random.default_rng(10))
        alpha = dfa(rate).alpha
        assert alpha == pytest.approx(0.8, abs=0.12)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            onoff_aggregate_rate(100, shape=2.5)


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        specs = [
            ExperimentSpec(name="aging", n_runs=2, base_seed=1,
                           max_run_seconds=40_000.0),
            ExperimentSpec(name="healthy", n_runs=2, base_seed=60,
                           fault_factor=0.0, max_run_seconds=12_000.0),
        ]
        return run_campaign(specs)

    def test_aging_cell_detects(self, small_campaign):
        cell = small_campaign["aging"]
        assert cell.n_crashed == 2
        assert cell.outcome is not None
        assert cell.outcome.n_detected == 2
        assert cell.median_lead > 600

    def test_healthy_cell_quiet(self, small_campaign):
        cell = small_campaign["healthy"]
        assert cell.n_crashed == 0
        assert cell.outcome is None
        assert cell.false_alarms <= 1

    def test_results_table_rows(self, small_campaign):
        rows = results_table(small_campaign)
        assert len(rows) == 2
        assert {row[0] for row in rows} == {"aging", "healthy"}

    def test_json_round_trip(self, small_campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_results(small_campaign, path)
        back = load_results(path)
        assert set(back) == set(small_campaign)
        for name in back:
            orig, loaded = small_campaign[name], back[name]
            assert isinstance(loaded, CellResult)
            assert loaded.spec == orig.spec
            assert loaded.false_alarms == orig.false_alarms
            assert [r.seed for r in loaded.runs] == [r.seed for r in orig.runs]
            if orig.outcome is None:
                assert loaded.outcome is None
            else:
                assert loaded.outcome.lead_times == orig.outcome.lead_times
            if math.isnan(orig.median_lead):
                assert math.isnan(loaded.median_lead)
            else:
                assert loaded.median_lead == orig.median_lead

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 99, "cells": {}}')
        with pytest.raises(TraceError, match="schema version"):
            load_results(path)

    def test_duplicate_names_rejected(self):
        spec = ExperimentSpec(name="x", n_runs=1)
        with pytest.raises(ValidationError, match="duplicate"):
            run_campaign([spec, spec])

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValidationError):
            run_campaign([])

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            ExperimentSpec(name="")
        with pytest.raises(ValidationError):
            ExperimentSpec(name="x", scenario="mainframe")
        with pytest.raises(ValidationError):
            ExperimentSpec(name="x", fault_factor=-1.0)

    @staticmethod
    def _record(seed, lead):
        crash = 1000.0
        return RunRecord(
            seed=seed, crashed=True, crash_time=crash, crash_reason="memory",
            alarm_time=None if lead is None else crash - lead,
            lead_time=lead, duration=crash,
        )

    def test_median_lead_counts_zero_lead_detections(self):
        # Regression: a `> 0` filter silently dropped alarms that fired at
        # the crash instant, biasing the median optimistic.
        cell = CellResult(
            spec=ExperimentSpec(name="x", n_runs=3),
            runs=[self._record(1, 0.0), self._record(2, 100.0),
                  self._record(3, 200.0)],
            outcome=None, false_alarms=0,
        )
        assert cell.median_lead == pytest.approx(100.0)

    def test_median_lead_nan_when_no_detections(self):
        cell = CellResult(
            spec=ExperimentSpec(name="x", n_runs=1),
            runs=[self._record(1, None)], outcome=None, false_alarms=0,
        )
        assert math.isnan(cell.median_lead)

    def test_cells_payload_is_json_ready(self, small_campaign):
        import json

        payload = cells_payload(small_campaign)
        assert set(payload) == set(small_campaign)
        aging = payload["aging"]
        assert len(aging["runs"]) == 2
        assert aging["detected"] == 2
        assert all(r["crashed"] for r in aging["runs"])
        assert payload["healthy"]["median_lead"] is None
        json.dumps(payload)  # must serialise without default= hooks


class TestRunCellErrorHandling:
    """The analysis fallback must swallow only expected failures.

    Detector dispatch moved into the registry, so the Hölder analysis
    entry point is patched there (campaign code calls it through
    ``evaluate_detector``).
    """

    SPEC = ExperimentSpec(name="tiny", n_runs=1, base_seed=2,
                          max_run_seconds=9_000.0)

    def test_expected_analysis_failure_scores_no_alarm(self, monkeypatch):
        from repro.analysis import campaign as campaign_mod
        from repro.analysis import detector_registry
        from repro.obs import session as _obs

        def bust(*args, **kwargs):
            raise AnalysisError("window too short")

        monkeypatch.setattr(detector_registry, "analyze_counter", bust)
        with _obs.telemetry_session() as session:
            result = campaign_mod.run_cell(self.SPEC)
            failures = session.metrics.counter(
                "campaign.analysis_failures").value
        assert result.runs[0].alarm_time is None
        assert result.runs[0].lead_time is None
        assert failures == 1

    def test_unexpected_exception_propagates(self, monkeypatch):
        from repro.analysis import campaign as campaign_mod
        from repro.analysis import detector_registry

        def crash(*args, **kwargs):
            raise ZeroDivisionError("a genuine bug")

        monkeypatch.setattr(detector_registry, "analyze_counter", crash)
        with pytest.raises(ZeroDivisionError):
            campaign_mod.run_cell(self.SPEC)
