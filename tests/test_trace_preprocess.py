"""Unit tests for trace preprocessing transforms."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.trace import (
    TimeSeries,
    detrend,
    difference,
    fill_gaps,
    resample_uniform,
    segment,
    sliding_windows,
    standardize,
)


def make(values, dt=1.0):
    return TimeSeries.from_values(values, dt=dt, name="x")


class TestDetrend:
    def test_linear_removes_line(self):
        t = np.arange(100, dtype=float)
        ts = make(3.0 * t + 7.0)
        out = detrend(ts, "linear")
        np.testing.assert_allclose(out.values, 0.0, atol=1e-8)

    def test_mean_removes_mean(self):
        ts = make([1.0, 2.0, 3.0, 4.0])
        out = detrend(ts, "mean")
        assert abs(np.mean(out.values)) < 1e-12

    def test_poly2_removes_parabola(self):
        t = np.arange(200, dtype=float)
        ts = make(0.01 * t**2 - t + 5)
        out = detrend(ts, "poly2")
        np.testing.assert_allclose(out.values, 0.0, atol=1e-6)

    def test_linear_leaves_noise(self):
        rng = np.random.default_rng(0)
        noise = rng.standard_normal(500)
        out = detrend(make(noise), "linear")
        assert np.std(out.values) > 0.8

    def test_preserves_gaps(self):
        vals = np.arange(20, dtype=float)
        vals[5] = np.nan
        ts = TimeSeries.from_values(vals)
        out = detrend(ts)
        assert np.isnan(out.values[5])

    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            detrend(make([1, 2, 3]), "cubic")


class TestDifference:
    def test_first_difference(self):
        out = difference(make([1.0, 3.0, 6.0]))
        np.testing.assert_allclose(out.values, [2.0, 3.0])
        np.testing.assert_allclose(out.times, [1.0, 2.0])

    def test_second_difference(self):
        out = difference(make([1.0, 3.0, 6.0, 10.0]), order=2)
        np.testing.assert_allclose(out.values, [1.0, 1.0])

    def test_too_short(self):
        with pytest.raises(AnalysisError):
            difference(make([1.0]), order=1)


class TestStandardize:
    def test_zero_mean_unit_var(self):
        out = standardize(make([1.0, 2.0, 3.0, 4.0]))
        assert abs(np.mean(out.values)) < 1e-12
        assert abs(np.std(out.values) - 1.0) < 1e-12

    def test_constant_rejected(self):
        with pytest.raises(AnalysisError, match="constant"):
            standardize(make([5.0, 5.0, 5.0]))


class TestFillGaps:
    def test_interpolate(self):
        ts = TimeSeries(times=[0, 1, 2], values=[0.0, np.nan, 2.0])
        out = fill_gaps(ts, "interpolate")
        np.testing.assert_allclose(out.values, [0.0, 1.0, 2.0])

    def test_ffill(self):
        ts = TimeSeries(times=[0, 1, 2], values=[5.0, np.nan, 2.0])
        out = fill_gaps(ts, "ffill")
        np.testing.assert_allclose(out.values, [5.0, 5.0, 2.0])

    def test_leading_gap(self):
        ts = TimeSeries(times=[0, 1, 2], values=[np.nan, 1.0, 2.0])
        for method in ("interpolate", "ffill"):
            out = fill_gaps(ts, method)
            assert out.values[0] == 1.0

    def test_no_gaps_is_identity(self):
        ts = make([1.0, 2.0])
        assert fill_gaps(ts) is ts

    def test_all_gaps_rejected(self):
        ts = TimeSeries(times=[0, 1], values=[np.nan, np.nan])
        with pytest.raises(AnalysisError):
            fill_gaps(ts)


class TestResample:
    def test_already_uniform_is_noop_values(self):
        ts = make([1.0, 2.0, 3.0])
        out = resample_uniform(ts)
        np.testing.assert_allclose(out.values, ts.values)

    def test_irregular_grid_becomes_uniform(self):
        ts = TimeSeries(times=[0.0, 1.0, 3.0, 4.0], values=[0.0, 1.0, 3.0, 4.0])
        out = resample_uniform(ts, dt=1.0)
        assert out.is_uniform
        np.testing.assert_allclose(out.values, [0, 1, 2, 3, 4])

    def test_drops_gaps_before_interpolating(self):
        ts = TimeSeries(times=[0, 1, 2], values=[0.0, np.nan, 2.0])
        out = resample_uniform(ts, dt=1.0)
        np.testing.assert_allclose(out.values, [0.0, 1.0, 2.0])


class TestSegment:
    def test_equal_pieces(self):
        pieces = segment(make(np.arange(10.0)), 2)
        assert [len(p) for p in pieces] == [5, 5]
        np.testing.assert_allclose(pieces[1].values, np.arange(5.0) + 5)

    def test_uneven_pieces_cover_everything(self):
        pieces = segment(make(np.arange(10.0)), 3)
        assert sum(len(p) for p in pieces) == 10

    def test_too_many_segments(self):
        with pytest.raises(ValidationError):
            segment(make([1.0, 2.0]), 3)


class TestSlidingWindows:
    def test_counts_and_alignment(self):
        ts = make(np.arange(10.0))
        wins = list(sliding_windows(ts, window=4, step=2))
        assert len(wins) == 4
        t_right, first = wins[0]
        assert t_right == 3.0
        np.testing.assert_allclose(first.values, [0, 1, 2, 3])

    def test_step_one_dense(self):
        wins = list(sliding_windows(make(np.arange(6.0)), window=3))
        assert len(wins) == 4

    def test_window_larger_than_series_yields_nothing(self):
        assert list(sliding_windows(make([1.0, 2.0]), window=5)) == []

    def test_right_edge_time_is_causal(self):
        ts = make(np.arange(8.0), dt=2.0)
        for t_right, win in sliding_windows(ts, window=3):
            assert t_right == win.times[-1]
