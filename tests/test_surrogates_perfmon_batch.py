"""Tests for surrogate-data methods, the perfmon importer, and BatchWorkload."""

import numpy as np
import pytest

from repro.exceptions import SimulationError, TraceError, ValidationError
from repro.fractal import (
    iaaft,
    multifractality_test,
    phase_randomized,
    shuffle,
)
from repro.generators import fgn, mrw
from repro.memsim import BatchWorkload, Machine, MachineConfig, MemoryManager
from repro.simkernel import RngRegistry, Simulator
from repro.trace import normalize_counter_name, read_perfmon_csv


class TestSurrogateGenerators:
    def test_shuffle_preserves_marginal(self, rng):
        x = rng.standard_normal(512)
        s = shuffle(x, rng=rng)
        np.testing.assert_allclose(np.sort(s), np.sort(x))
        assert not np.array_equal(s, x)

    def test_phase_randomized_preserves_spectrum(self, rng):
        x = rng.standard_normal(1024)
        s = phase_randomized(x, rng=rng)
        np.testing.assert_allclose(
            np.abs(np.fft.rfft(s)), np.abs(np.fft.rfft(x)), rtol=1e-8, atol=1e-8)

    def test_phase_randomized_destroys_signal(self, rng):
        # A localized impulse has broadband, highly structured phases;
        # randomizing them must smear it into a noise-like signal.
        x = np.zeros(1024)
        x[100:110] = 10.0
        s = phase_randomized(x, rng=rng)
        assert np.max(np.abs(s)) < 0.5 * np.max(np.abs(x))
        assert abs(np.corrcoef(x, s)[0, 1]) < 0.5

    def test_iaaft_preserves_marginal_exactly(self, rng):
        x = rng.exponential(1.0, size=512)  # skewed marginal
        s = iaaft(x, rng=rng)
        np.testing.assert_allclose(np.sort(s), np.sort(x))

    def test_iaaft_approximates_spectrum(self, rng):
        x = fgn(1024, 0.8, rng=rng)
        s = iaaft(x, rng=rng)
        p_x = np.abs(np.fft.rfft(x)) ** 2
        p_s = np.abs(np.fft.rfft(s)) ** 2
        # Low-frequency power (the LRD part) must be closely matched.
        lo = slice(1, 32)
        assert np.sum(p_s[lo]) == pytest.approx(np.sum(p_x[lo]), rel=0.15)


class TestMultifractalityTest:
    def test_mrw_is_significant(self):
        x = np.diff(mrw(2**14, 0.5, rng=np.random.default_rng(0)))
        result = multifractality_test(
            x, kind="iaaft", n_surrogates=8, rng=np.random.default_rng(1))
        assert result.significant
        assert result.z_score > 2.0

    def test_fgn_is_not_significant(self):
        # Gaussian LRD noise carries no multifractality beyond its linear
        # correlations; the typical z-score over seeds must be small
        # (individual seeds fluctuate, so test the median of three).
        zs = []
        for seed in (2, 3, 4):
            x = fgn(2**14, 0.7, rng=np.random.default_rng(seed))
            result = multifractality_test(
                x, kind="phase", n_surrogates=8,
                rng=np.random.default_rng(seed + 50))
            zs.append(result.z_score)
        assert np.median(zs) < 2.0

    def test_result_fields(self):
        x = np.diff(mrw(2**13, 0.4, rng=np.random.default_rng(4)))
        result = multifractality_test(
            x, kind="shuffle", n_surrogates=6, rng=np.random.default_rng(5))
        assert result.statistic_surrogates.size == 6
        assert result.surrogate_kind == "shuffle"

    def test_invalid_kind(self, rng):
        with pytest.raises(ValidationError):
            multifractality_test(rng.standard_normal(256), kind="magic")


PERFMON_SAMPLE = (
    '"(PDH-CSV 4.0) (W. Europe Standard Time)(-60)",'
    '"\\\\SRV1\\Memory\\Available Bytes","\\\\SRV1\\Memory\\Pages/sec"\n'
    '"03/10/2002 10:00:00.000","52428800","12.5"\n'
    '"03/10/2002 10:00:01.000","52420608"," "\n'
    '"03/10/2002 10:00:02.000","52412416","14.0"\n'
)


class TestPerfmonImport:
    def test_name_normalisation(self):
        assert normalize_counter_name(
            "\\\\SRV1\\Memory\\Available Bytes") == "AvailableBytes"
        assert normalize_counter_name(
            "\\\\SRV1\\Memory\\Pages/sec") == "PagesPerSec"
        assert normalize_counter_name(
            "\\\\SRV1\\Processor\\% Processor Time") != ""

    def test_round_trip(self, tmp_path):
        path = tmp_path / "relog.csv"
        path.write_text(PERFMON_SAMPLE)
        bundle = read_perfmon_csv(path)
        assert set(bundle.names) == {"AvailableBytes", "PagesPerSec"}
        avail = bundle["AvailableBytes"]
        np.testing.assert_allclose(avail.times, [0.0, 1.0, 2.0])
        np.testing.assert_allclose(avail.values, [52428800, 52420608, 52412416])
        # The blank cell becomes a gap.
        assert np.isnan(bundle["PagesPerSec"].values[1])

    def test_counter_filter(self, tmp_path):
        path = tmp_path / "relog.csv"
        path.write_text(PERFMON_SAMPLE)
        bundle = read_perfmon_csv(path, counters=["AvailableBytes"])
        assert bundle.names == ["AvailableBytes"]

    def test_missing_counters_rejected(self, tmp_path):
        path = tmp_path / "relog.csv"
        path.write_text(PERFMON_SAMPLE)
        with pytest.raises(TraceError, match="no requested counters"):
            read_perfmon_csv(path, counters=["Bogus"])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            read_perfmon_csv(path)

    def test_bad_timestamp_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text('"t","\\\\S\\M\\Available Bytes"\n"not-a-date","1"\n')
        with pytest.raises(TraceError, match="timestamp"):
            read_perfmon_csv(path)

    def test_duplicate_timestamps_nudged(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text(
            '"t","\\\\S\\M\\Available Bytes"\n'
            '"03/10/2002 10:00:00.000","1"\n'
            '"03/10/2002 10:00:00.000","2"\n'
        )
        bundle = read_perfmon_csv(path)
        times = bundle["AvailableBytes"].times
        assert times[1] > times[0]


class TestBatchWorkload:
    def _make(self, period=100.0, pages=500, run_time=10.0):
        sim = Simulator()
        rngs = RngRegistry(0)
        mem = MemoryManager(MachineConfig.nt4(), np.random.default_rng(0))
        batch = BatchWorkload(sim, rngs, "batch", mem,
                              period=period, pages=pages, run_time=run_time)
        return sim, mem, batch

    def test_jobs_run_periodically(self):
        sim, mem, batch = self._make()
        batch.ensure_started()
        sim.run_until(1000.0)
        assert 7 <= batch.jobs_run <= 13

    def test_memory_released_after_job(self):
        sim, mem, batch = self._make(period=10_000.0, run_time=5.0)
        batch.ensure_started()
        sim.run_until(10_000.0)
        assert batch.jobs_run == 1
        assert mem.committed_pages == 0  # job finished and freed

    def test_invalid_params(self):
        sim = Simulator()
        mem = MemoryManager(MachineConfig.nt4(), np.random.default_rng(0))
        with pytest.raises(SimulationError):
            BatchWorkload(sim, RngRegistry(0), "b", mem, period=-1.0)

    def test_attaches_to_machine(self):
        machine = Machine(MachineConfig.nt4(seed=41, max_run_seconds=4000.0))
        batch = BatchWorkload(machine.sim, machine.rngs, "batch",
                              machine.memory, period=500.0, pages=1000,
                              run_time=30.0)
        batch.ensure_started()
        result = machine.run()
        assert batch.jobs_run >= 5
        # Counters must reflect the batch spikes (allocation bursts).
        ws = result.bundle["WorkingSetBytes"].dropna()
        assert np.max(ws.values) > np.median(ws.values)
