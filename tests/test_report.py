"""Tests for ASCII tables and figure rendering."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.report import render_kv, render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| " in lines[1]
        assert "2.5" in out and "30" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="T1: demo")
        assert out.splitlines()[0] == "T1: demo"

    def test_column_alignment(self):
        out = render_table(["col"], [[1], [100000]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_float_format(self):
        out = render_table(["x"], [[3.14159265]], float_format="{:.2f}")
        assert "3.14" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_strings_and_none(self):
        out = render_table(["a"], [["hello"], [None]])
        assert "hello" in out and "None" in out


class TestRenderKv:
    def test_alignment(self):
        out = render_kv({"a": 1, "longer_key": 2.0})
        lines = out.splitlines()
        assert all(" : " in l for l in lines)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_kv({})


class TestRenderSeries:
    def test_shape(self):
        out = render_series(np.sin(np.linspace(0, 10, 500)), width=60, height=8)
        lines = out.splitlines()
        assert len(lines) == 10  # 8 rows + 2 borders
        assert all("|" in l for l in lines[1:-1])

    def test_title_and_range_labels(self):
        out = render_series([0.0, 5.0, 10.0, 2.0], title="fig", width=10, height=4)
        assert out.splitlines()[0] == "fig"
        assert "10" in out and "0" in out

    def test_markers(self):
        x = np.arange(100.0)
        out = render_series(x, x_values=x, markers=[(50.0, "crash")], width=50)
        assert "C=crash@50" in out

    def test_markers_need_x(self):
        with pytest.raises(ValidationError):
            render_series([1.0, 2.0], markers=[(1.0, "m")])

    def test_constant_series(self):
        out = render_series(np.full(50, 3.0), width=20, height=4)
        assert "*" in out

    def test_resampling_long_series(self):
        out = render_series(np.random.default_rng(0).standard_normal(100_000),
                            width=40, height=6)
        assert max(len(l) for l in out.splitlines()) < 70
