"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_1d_float_array,
    as_1d_float_array_allow_nan,
    check_choice,
    check_finite,
    check_in_range,
    check_increasing,
    check_nonnegative,
    check_positive,
    check_positive_int,
)
from repro.exceptions import ValidationError


class TestAs1dFloatArray:
    def test_accepts_list(self):
        out = as_1d_float_array([1, 2, 3], name="x")
        assert out.dtype == float
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_accepts_ndarray(self):
        out = as_1d_float_array(np.arange(5), name="x")
        assert out.shape == (5,)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            as_1d_float_array(np.zeros((2, 2)), name="x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            as_1d_float_array([1.0, np.nan], name="x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            as_1d_float_array([1.0, np.inf], name="x")

    def test_rejects_too_short(self):
        with pytest.raises(ValidationError, match="at least 5"):
            as_1d_float_array([1, 2], name="x", min_length=5)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="numeric"):
            as_1d_float_array(["a", "b"], name="x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValidationError, match="myparam"):
            as_1d_float_array(np.zeros((2, 2)), name="myparam")


class TestAllowNan:
    def test_nan_allowed(self):
        out = as_1d_float_array_allow_nan([1.0, np.nan, 3.0], name="x")
        assert np.isnan(out[1])

    def test_inf_still_rejected(self):
        with pytest.raises(ValidationError, match="infinite"):
            as_1d_float_array_allow_nan([1.0, np.inf], name="x")


class TestScalarChecks:
    def test_positive_ok(self):
        assert check_positive(2.5, name="x") == 2.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0.0, name="x")

    def test_positive_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, name="x")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative(0.0, name="x") == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-0.1, name="x")

    def test_finite_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_finite(float("nan"), name="x")

    def test_finite_rejects_none(self):
        with pytest.raises(ValidationError):
            check_finite(None, name="x")

    def test_finite_coerces_int(self):
        assert check_finite(3, name="x") == 3.0


class TestPositiveInt:
    def test_ok(self):
        assert check_positive_int(4, name="n") == 4

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, name="n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, name="n")

    def test_respects_minimum(self):
        with pytest.raises(ValidationError, match=">= 3"):
            check_positive_int(2, name="n", minimum=3)

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(7), name="n") == 7


class TestInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, name="x", low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, name="x", low=0.0, high=1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, name="x", low=0.0, high=1.0, inclusive_low=False)
        with pytest.raises(ValidationError):
            check_in_range(1.0, name="x", low=0.0, high=1.0, inclusive_high=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_in_range(2.0, name="x", low=0.0, high=1.0)


class TestChoice:
    def test_ok(self):
        assert check_choice("a", name="x", choices=("a", "b")) == "a"

    def test_rejects(self):
        with pytest.raises(ValidationError, match="must be one of"):
            check_choice("c", name="x", choices=("a", "b"))


class TestIncreasing:
    def test_strict_ok(self):
        out = check_increasing([1, 2, 3], name="x")
        assert out.tolist() == [1, 2, 3]

    def test_strict_rejects_ties(self):
        with pytest.raises(ValidationError):
            check_increasing([1, 1, 2], name="x")

    def test_nonstrict_accepts_ties(self):
        check_increasing([1, 1, 2], name="x", strict=False)

    def test_nonstrict_rejects_decrease(self):
        with pytest.raises(ValidationError):
            check_increasing([2, 1], name="x", strict=False)
