"""Columnar trace store: round-trip exactness, laziness, autodetection."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TraceError
from repro.trace import (
    ColumnarStore,
    TimeSeries,
    TraceBundle,
    is_columnar_store,
    read_bundle,
    read_columnar,
    read_csv,
    write_bundle,
    write_columnar,
    write_csv,
)
from repro.trace.store import STORE_SCHEMA


def make_bundle(metadata=None):
    b = TraceBundle(metadata=metadata if metadata is not None else {
        "crash_time": 86123.5, "os_profile": "nt4"})
    b.add(TimeSeries.from_values([1.0, 2.0, 3.0, 4.0], name="avail_bytes",
                                 units="bytes"))
    b.add(TimeSeries(times=[0.0, 2.0, 4.0], values=[10.0, np.nan, 30.0],
                     name="pool/nonpaged"))
    return b


class TestColumnarRoundTrip:
    def test_values_and_times_exact(self, tmp_path):
        store = tmp_path / "run0001"
        write_columnar(make_bundle(), store)
        back = read_columnar(store)
        orig = make_bundle()
        assert back.names == orig.names
        for name in orig.names:
            np.testing.assert_array_equal(back[name].times, orig[name].times)
            np.testing.assert_array_equal(
                back[name].values, orig[name].values)
            assert back[name].units == orig[name].units

    def test_metadata_types_preserved(self, tmp_path):
        meta = {
            "crash_time": 86123.5,          # float stays float
            "os_profile": "nt4",            # string stays string
            "build": "1_000",               # decimal-lookalike stays string
            "label": "naïve ünicode ⚙",     # unicode survives
            "threshold": 0.0,
        }
        store = tmp_path / "run"
        write_columnar(make_bundle(meta), store)
        back = read_columnar(store).metadata
        assert back == meta
        assert isinstance(back["crash_time"], float)
        assert isinstance(back["build"], str)

    def test_numpy_scalar_metadata_becomes_float(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle({"crash_time": np.float64(9.5)}), store)
        value = read_columnar(store).metadata["crash_time"]
        assert value == 9.5 and isinstance(value, float)

    def test_unaligned_grids_preserved_exactly(self, tmp_path):
        # The CSV codec is row-oriented: unaligned series land on the
        # union time grid with NaN gaps.  The columnar store keeps each
        # series on its native grid, bit-exact.
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        back = read_columnar(store)["pool/nonpaged"]
        np.testing.assert_array_equal(back.times, [0.0, 2.0, 4.0])

    def test_csv_and_columnar_agree(self, tmp_path):
        # Aligned series (one shared grid) must read back identically
        # from either codec.
        bundle = TraceBundle(metadata={"crash_time": 86123.5,
                                       "os_profile": "nt4"})
        bundle.add(TimeSeries.from_values([1.0, 2.0, np.nan, 4.0],
                                          name="avail_bytes", units="bytes"))
        bundle.add(TimeSeries.from_values([10.0, 20.0, 30.0, 40.0],
                                          name="pool/nonpaged"))
        write_csv(bundle, tmp_path / "t.csv")
        write_columnar(bundle, tmp_path / "t.store")
        from_csv = read_csv(tmp_path / "t.csv")
        from_col = read_columnar(tmp_path / "t.store")
        assert from_csv.names == from_col.names
        for name in from_csv.names:
            np.testing.assert_array_equal(
                from_csv[name].values, from_col[name].values)
            np.testing.assert_array_equal(
                from_csv[name].times, from_col[name].times)
        assert from_csv.metadata == from_col.metadata


class TestLaziness:
    def test_series_are_memory_mapped(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        ts = ColumnarStore(store).series("avail_bytes")
        bases = []
        base = ts.values
        while base is not None:
            bases.append(type(base).__name__)
            base = getattr(base, "base", None)
        assert "memmap" in bases, f"expected a memmap in the chain: {bases}"

    def test_open_touches_only_the_sidecar(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        # Corrupt one counter's shards; opening the store and reading the
        # *other* counter must still work — columns load lazily.
        reader = ColumnarStore(store)
        index = reader.names.index("pool/nonpaged")
        (store / f"c{index:04d}.values.npy").write_bytes(b"garbage")
        fresh = ColumnarStore(store)
        assert len(fresh.series("avail_bytes")) == 4
        with pytest.raises(TraceError, match="shard"):
            fresh.series("pool/nonpaged")

    def test_series_cache_returns_same_object(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        reader = ColumnarStore(store)
        assert reader.series("avail_bytes") is reader.series("avail_bytes")

    def test_mapped_columns_are_read_only(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        ts = read_columnar(store)["avail_bytes"]
        with pytest.raises((ValueError, RuntimeError)):
            ts.values[0] = -1.0


class TestAutodetection:
    def test_write_bundle_picks_codec_from_suffix(self, tmp_path):
        bundle = make_bundle()
        csv_path = write_bundle(bundle, tmp_path / "trace.csv")
        col_path = write_bundle(bundle, tmp_path / "trace.store")
        assert os.path.isfile(csv_path)
        assert is_columnar_store(col_path)

    def test_read_bundle_round_trips_both(self, tmp_path):
        bundle = make_bundle()
        for target in ("trace.csv", "run0000"):
            path = write_bundle(bundle, tmp_path / target)
            back = read_bundle(path)
            np.testing.assert_array_equal(
                back["avail_bytes"].values, bundle["avail_bytes"].values)

    def test_explicit_format_overrides_suffix(self, tmp_path):
        path = write_bundle(make_bundle(), tmp_path / "odd.csv",
                            format="columnar")
        assert is_columnar_store(path)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="unknown trace format"):
            write_bundle(make_bundle(), tmp_path / "x", format="parquet")

    def test_missing_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_bundle(tmp_path / "nope.csv")


class TestStoreErrors:
    def test_not_a_store(self, tmp_path):
        with pytest.raises(TraceError, match="not a columnar trace store"):
            ColumnarStore(tmp_path)

    def test_bad_schema(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        sidecar = json.loads((store / "meta.json").read_text())
        sidecar["schema"] = "repro.trace-store/999"
        (store / "meta.json").write_text(json.dumps(sidecar))
        with pytest.raises(TraceError, match="unsupported trace-store schema"):
            ColumnarStore(store)

    def test_corrupt_sidecar(self, tmp_path):
        store = tmp_path / "run"
        store.mkdir()
        (store / "meta.json").write_text("{not json")
        with pytest.raises(TraceError, match="unreadable trace-store sidecar"):
            ColumnarStore(store)

    def test_missing_shard(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        (store / "c0000.times.npy").unlink()
        with pytest.raises(TraceError, match="unreadable trace-store shard"):
            ColumnarStore(store).series("avail_bytes")

    def test_unknown_series_name(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        with pytest.raises(TraceError, match="no series named"):
            ColumnarStore(store).series("nope")

    def test_empty_bundle_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="empty bundle"):
            write_columnar(TraceBundle(), tmp_path / "run")

    def test_existing_file_path_rejected(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("hello")
        with pytest.raises(TraceError, match="existing file"):
            write_columnar(make_bundle(), target)

    def test_invalid_metadata_rejected_before_any_write(self, tmp_path):
        store = tmp_path / "run"
        with pytest.raises(TraceError):
            write_columnar(make_bundle({"k": "a\nb"}), store)
        assert not store.exists()

    def test_schema_constant_in_sidecar(self, tmp_path):
        store = tmp_path / "run"
        write_columnar(make_bundle(), store)
        sidecar = json.loads((store / "meta.json").read_text())
        assert sidecar["schema"] == STORE_SCHEMA


class TestColumnarProperties:
    """Property suite: arbitrary finite series and representable metadata
    survive the columnar round trip bit-exactly."""

    _values = st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=1, max_size=50)

    @settings(max_examples=40, deadline=None)
    @given(values=_values, crash_time=st.floats(
        allow_nan=False, allow_infinity=False, width=64))
    def test_series_and_float_metadata_bit_exact(
            self, tmp_path_factory, values, crash_time):
        bundle = TraceBundle(metadata={"crash_time": crash_time})
        bundle.add(TimeSeries.from_values(values, name="c"))
        store = tmp_path_factory.mktemp("prop") / "run"
        write_columnar(bundle, store)
        back = read_columnar(store)
        np.testing.assert_array_equal(back["c"].values, bundle["c"].values)
        np.testing.assert_array_equal(back["c"].times, bundle["c"].times)
        assert back.metadata["crash_time"] == crash_time

    @settings(max_examples=40, deadline=None)
    @given(name=st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        min_size=1, max_size=24).filter(lambda s: s.strip() == s and s))
    def test_arbitrary_counter_names_never_touch_the_filesystem(
            self, tmp_path_factory, name):
        bundle = TraceBundle()
        bundle.add(TimeSeries.from_values([1.0, 2.0], name=name))
        store = tmp_path_factory.mktemp("names") / "run"
        write_columnar(bundle, store)
        back = read_columnar(store)
        assert back.names == [name]
        np.testing.assert_array_equal(back[name].values, [1.0, 2.0])


class TestSimulatorStoreRoundTrip:
    def test_nt4_crash_run_survives_columnar(self, nt4_run, tmp_path):
        bundle = nt4_run.bundle
        store = tmp_path / "run"
        write_columnar(bundle, store)
        back = read_columnar(store)
        assert back.names == bundle.names
        for name in bundle.names:
            np.testing.assert_array_equal(
                back[name].values, bundle[name].values)
            np.testing.assert_array_equal(
                back[name].times, bundle[name].times)
        assert back.metadata["crash_time"] == bundle.metadata["crash_time"]
