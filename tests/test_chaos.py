"""Chaos tests: the resilience layer must survive injected kills, hangs
and transient failures, and an interrupted-then-resumed campaign must be
bit-identical to an uninterrupted one."""

import io

import pytest

from repro.analysis import cells_payload, execute_campaign
from repro.analysis.campaign import ExperimentSpec, campaign_fingerprint
from repro.analysis.checkpoint import CampaignJournal
from repro.exceptions import ExecutionError, ValidationError
from repro.testing.chaos import ChaosSpec, chaos_pre_unit, slow_write


class TestChaosSpec:
    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            ChaosSpec(kill_rate=1.5)
        with pytest.raises(ValidationError):
            ChaosSpec(raise_rate=-0.1)
        with pytest.raises(ValidationError):
            ChaosSpec(hang_seconds=0)
        with pytest.raises(ValidationError):
            ChaosSpec(max_failures_per_unit=0)

    def test_schedule_is_deterministic(self):
        a = ChaosSpec(kill_rate=0.4, raise_rate=0.3, seed=9)
        b = ChaosSpec(kill_rate=0.4, raise_rate=0.3, seed=9)
        assert a.scheduled_faults(32) == b.scheduled_faults(32)

    def test_seed_changes_schedule(self):
        a = ChaosSpec(kill_rate=0.5, seed=1).scheduled_faults(64)
        b = ChaosSpec(kill_rate=0.5, seed=2).scheduled_faults(64)
        assert a != b

    def test_faults_stop_after_max_failures(self):
        spec = ChaosSpec(raise_rate=1.0, max_failures_per_unit=2)
        assert spec.fault_for(0, attempt=1) == "raise"
        assert spec.fault_for(0, attempt=2) == "raise"
        assert spec.fault_for(0, attempt=3) is None

    def test_kill_takes_precedence(self):
        spec = ChaosSpec(kill_rate=1.0, hang_rate=1.0, raise_rate=1.0)
        assert spec.fault_for(5, attempt=1) == "kill"

    def test_zero_rates_never_fault(self):
        assert ChaosSpec().scheduled_faults(100) == {}

    def test_pre_unit_clean_for_unscheduled_unit(self):
        chaos_pre_unit(ChaosSpec(), index=0, attempt=1)  # must not raise


class TestSlowWrite:
    def test_writes_everything_in_chunks(self):
        sink = io.StringIO()
        slow_write(sink, "x" * 300, chunk_size=64, delay=0.0)
        assert sink.getvalue() == "x" * 300

    def test_validation(self):
        with pytest.raises(ValidationError):
            slow_write(io.StringIO(), "x", chunk_size=0)
        with pytest.raises(ValidationError):
            slow_write(io.StringIO(), "x", delay=-1)


@pytest.fixture(scope="module")
def specs():
    return [
        ExperimentSpec(name="aging", scenario="stress", n_runs=2,
                       base_seed=31, max_run_seconds=20_000.0),
        ExperimentSpec(name="healthy", scenario="stress", n_runs=2,
                       base_seed=131, fault_factor=0.0,
                       max_run_seconds=6_000.0),
    ]


@pytest.fixture(scope="module")
def reference(specs):
    """The calm, uninterrupted campaign every chaos run must reproduce."""
    return cells_payload(execute_campaign(specs).results)


def partial_kill_spec(n_units):
    """A kill schedule that sabotages some but not all of ``n_units``."""
    for seed in range(64):
        chaos = ChaosSpec(kill_rate=0.5, seed=seed)
        n = len(chaos.scheduled_faults(n_units))
        if 0 < n < n_units:
            return chaos
    raise AssertionError("no partial kill schedule found")  # pragma: no cover


class TestChaosCampaign:
    def test_retries_converge_to_calm_payload(self, specs, reference):
        # Workers die and units raise on first attempts; with a retry
        # budget the campaign must still produce the calm run's payload.
        chaos = ChaosSpec(kill_rate=0.5, raise_rate=0.5, seed=7)
        outcome = execute_campaign(specs, workers=2, retries=2,
                                   backoff_base=0.01, chaos=chaos)
        assert outcome.complete
        assert cells_payload(outcome.results) == reference

    def test_interrupted_then_resumed_equals_uninterrupted(
            self, specs, reference, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        chaos = partial_kill_spec(4)

        # First run: workers get killed, no retry budget — ends
        # incomplete, with the surviving units checkpointed.
        first = execute_campaign(specs, workers=2, journal=journal,
                                 chaos=chaos, allow_partial=True)
        assert not first.complete
        assert first.status == "incomplete"
        assert first.missing
        assert first.missing_cells

        # Resume: only the missing units execute; the final payload is
        # bit-identical to the run nothing ever interrupted.
        resumed = execute_campaign(specs, workers=2, journal=journal,
                                   resume=True)
        assert resumed.complete
        assert resumed.resumed_units == 4 - len(first.missing)
        assert resumed.executed_units == len(first.missing)
        assert cells_payload(resumed.results) == reference

    def test_resume_tolerates_truncated_final_line(
            self, specs, reference, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        execute_campaign(specs, journal=journal)
        with open(journal, "a") as handle:
            handle.write('{"kind": "unit", "key": "aging#9", ')  # SIGKILL here
        resumed = execute_campaign(specs, journal=journal, resume=True)
        assert resumed.complete
        assert resumed.resumed_units == 4
        assert resumed.executed_units == 0
        assert cells_payload(resumed.results) == reference

    def test_resume_from_complete_journal_executes_nothing(
            self, specs, reference, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        execute_campaign(specs, journal=journal)
        again = execute_campaign(specs, journal=journal, resume=True)
        assert again.resumed_units == 4
        assert again.executed_units == 0
        assert cells_payload(again.results) == reference

    def test_resume_requires_journal(self, specs):
        with pytest.raises(ValidationError, match="journal"):
            execute_campaign(specs, resume=True)

    def test_foreign_journal_refused(self, specs, tmp_path):
        journal = tmp_path / "other.jsonl"
        with CampaignJournal(journal, fingerprint="not-this-campaign") as j:
            j.record_unit("aging#0", {"seed": 31})
        from repro.exceptions import TraceError

        with pytest.raises(TraceError, match="different campaign"):
            execute_campaign(specs, journal=journal, resume=True)

    def test_permanent_failures_raise_without_allow_partial(self, specs):
        chaos = ChaosSpec(raise_rate=1.0, seed=1, max_failures_per_unit=99)
        with pytest.raises(ExecutionError, match="incomplete"):
            execute_campaign(specs, chaos=chaos)

    def test_partial_outcome_lists_missing_units(self, specs):
        chaos = ChaosSpec(raise_rate=1.0, seed=1, max_failures_per_unit=99)
        outcome = execute_campaign(specs, chaos=chaos, allow_partial=True)
        assert outcome.status == "incomplete"
        assert len(outcome.missing) == 4
        assert {(u.cell, u.run_index) for u in outcome.missing} == {
            ("aging", 0), ("aging", 1), ("healthy", 0), ("healthy", 1)}
        assert all("injected" in u.error for u in outcome.missing)
        assert outcome.missing_cells == ["aging", "healthy"]
        for cell in outcome.results.values():
            assert cell.runs == []

    def test_fingerprint_covers_seeds(self, specs):
        bumped = [ExperimentSpec(name=s.name, scenario=s.scenario,
                                 n_runs=s.n_runs, base_seed=s.base_seed + 1,
                                 fault_factor=s.fault_factor,
                                 max_run_seconds=s.max_run_seconds)
                  for s in specs]
        assert campaign_fingerprint(specs) != campaign_fingerprint(bumped)
