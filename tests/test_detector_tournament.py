"""Detector tournament: registry, scoreboard, and its surfaces.

Covers the scenario × detector grid machinery end to end: the named
detector registry, peak-score splitting, grid campaign execution, the
``repro.scoreboard/1`` artifact (build/save/load/table/publish), results
schema v2 round trips with v1 compatibility, the dashboard scoreboard
section, the OpenMetrics exporter, the live status tallies — and the
observation-only guarantee that collecting scores never changes a
single alarm.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis import (
    ExperimentSpec,
    build_scoreboard,
    cells_payload,
    detector_grid,
    detector_names,
    evaluate_detector,
    load_results,
    load_scoreboard,
    publish_scoreboard,
    run_campaign,
    save_results,
    save_scoreboard,
    scoreboard_from_results,
    scoreboard_table,
)
from repro.analysis.detector_registry import (
    PRECRASH_FRACTION,
    DetectorEvaluation,
    split_peak_scores,
)
from repro.baselines import RollingEntropyDetector, rolling_entropy
from repro.exceptions import AnalysisError, TraceError, ValidationError
from repro.obs import session as _obs


GRID_DETECTORS = ("holder", "trend", "entropy")


@pytest.fixture(scope="module")
def grid_results():
    """One tiny grid campaign: 3 detector families × 2 scenario cells."""
    specs = [
        ExperimentSpec(name="aging", scenario="stress", n_runs=2,
                       base_seed=5, max_run_seconds=30_000.0),
        ExperimentSpec(name="healthy", scenario="stress", n_runs=2,
                       base_seed=1005, fault_factor=0.0,
                       max_run_seconds=8_000.0),
    ]
    return run_campaign(detector_grid(specs, GRID_DETECTORS))


@pytest.fixture(scope="module")
def scoreboard(grid_results):
    return scoreboard_from_results(grid_results)


class TestRegistry:
    def test_all_families_registered(self):
        names = detector_names()
        for expected in ("holder", "holder-threshold", "holder-cusum",
                         "holder-ewma", "trend", "naive", "entropy"):
            assert expected in names

    def test_unknown_detector_rejected(self, nt4_run):
        spec = ExperimentSpec(name="x", n_runs=1)
        with pytest.raises(ValidationError):
            evaluate_detector("nope", nt4_run.bundle, spec)

    def test_spec_validates_detector_name(self):
        with pytest.raises(ValidationError):
            ExperimentSpec(name="x", n_runs=1, detector_name="nope")

    @pytest.mark.parametrize("name", ["holder", "trend", "naive", "entropy"])
    def test_scores_are_observation_only(self, nt4_run, name):
        # The acceptance criterion at the single-run level: evaluating
        # with and without score collection yields the same alarm.
        spec = ExperimentSpec(name="x", n_runs=1)
        with_scores = evaluate_detector(name, nt4_run.bundle, spec,
                                        collect_scores=True)
        without = evaluate_detector(name, nt4_run.bundle, spec,
                                    collect_scores=False)
        assert with_scores.alarm_time == without.alarm_time
        assert without.peak_healthy is None
        assert without.peak_precrash is None

    def test_holder_matches_direct_analysis(self, nt4_run):
        from repro.core import analyze_counter

        spec = ExperimentSpec(name="x", n_runs=1)
        evaluation = evaluate_detector("holder", nt4_run.bundle, spec)
        direct = analyze_counter(nt4_run.bundle[spec.counter],
                                 indicator=spec.indicator,
                                 detector_config=spec.detector)
        assert evaluation.alarm_time == direct.alarm.alarm_time
        assert evaluation.detector == "holder"

    def test_crashed_run_carries_precrash_peak(self, nt4_run):
        spec = ExperimentSpec(name="x", n_runs=1)
        evaluation = evaluate_detector("holder", nt4_run.bundle, spec)
        assert evaluation.peak_precrash is not None
        assert np.isfinite(evaluation.peak_precrash)

    def test_scheme_variant_forces_scheme(self, nt4_run):
        spec = ExperimentSpec(name="x", n_runs=1)
        threshold = evaluate_detector("holder-threshold", nt4_run.bundle, spec)
        assert isinstance(threshold, DetectorEvaluation)
        assert threshold.detector == "holder-threshold"


class TestSplitPeakScores:
    def test_healthy_run_is_all_healthy(self):
        times = np.array([10.0, 20.0, 30.0])
        scores = np.array([1.0, 5.0, 2.0])
        healthy, precrash = split_peak_scores(times, scores, crash_time=None)
        assert healthy == 5.0
        assert precrash is None

    def test_crashed_run_splits_at_fraction(self):
        times = np.linspace(0.0, 1000.0, 101)
        scores = times / 100.0  # rises to 10 at the crash
        healthy, precrash = split_peak_scores(times, scores,
                                              crash_time=1000.0)
        cutoff = 1000.0 * (1.0 - PRECRASH_FRACTION)
        assert healthy == pytest.approx(max(scores[times < cutoff]))
        assert precrash == pytest.approx(10.0)

    def test_empty_series(self):
        assert split_peak_scores(np.array([]), np.array([]),
                                 crash_time=None) == (None, None)

    def test_all_scores_inside_precrash_window(self):
        # Monitoring that only starts late: no healthy evidence.
        times = np.array([900.0, 950.0])
        scores = np.array([3.0, 4.0])
        healthy, precrash = split_peak_scores(times, scores,
                                              crash_time=1000.0)
        assert healthy is None
        assert precrash == 4.0


class TestDetectorGrid:
    def test_grid_names_and_sizes(self):
        specs = [ExperimentSpec(name="a", n_runs=1),
                 ExperimentSpec(name="b", n_runs=1)]
        grid = detector_grid(specs, ["holder", "trend"])
        assert [s.name for s in grid] == [
            "a@holder", "a@trend", "b@holder", "b@trend"]
        assert all(s.detector_name == s.name.split("@")[1] for s in grid)

    def test_grid_preserves_seeds_per_detector(self):
        spec = ExperimentSpec(name="a", n_runs=2, base_seed=42)
        grid = detector_grid([spec], ["holder", "naive"])
        assert {s.base_seed for s in grid} == {42}

    def test_duplicate_detectors_rejected(self):
        with pytest.raises(ValidationError):
            detector_grid([ExperimentSpec(name="a", n_runs=1)],
                          ["holder", "holder"])

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValidationError):
            detector_grid([], ["holder"])
        with pytest.raises(ValidationError):
            detector_grid([ExperimentSpec(name="a", n_runs=1)], [])

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValidationError):
            detector_grid([ExperimentSpec(name="a", n_runs=1)], ["nope"])


class TestObservationOnlyCampaign:
    def test_alarms_bit_identical_with_and_without_scores(self):
        # The PR's hard guarantee: the scoreboard pass is pure
        # observation.  Same campaign, scores on vs off, alarm times
        # (and crash times) must match bit for bit.
        base = [ExperimentSpec(name="aging", scenario="stress", n_runs=1,
                               base_seed=5, max_run_seconds=30_000.0)]
        grid = detector_grid(base, ["holder", "naive"])
        scored = run_campaign(grid)
        plain = run_campaign([dataclasses.replace(s, collect_scores=False)
                              for s in grid])
        for name in scored:
            for a, b in zip(scored[name].runs, plain[name].runs):
                assert a.alarm_time == b.alarm_time
                assert a.crash_time == b.crash_time
                assert b.peak_healthy is None
                assert b.peak_precrash is None


class TestGridCampaignRecords:
    def test_records_tag_detector(self, grid_results):
        for name, cell in grid_results.items():
            detector = name.split("@")[1]
            assert cell.spec.detector_name == detector
            assert all(r.detector == detector for r in cell.runs)

    def test_crashed_runs_have_precrash_peaks(self, grid_results):
        cell = grid_results["aging@holder"]
        for run in cell.runs:
            if run.crashed:
                assert run.peak_precrash is not None

    def test_healthy_runs_have_healthy_peaks_only(self, grid_results):
        cell = grid_results["healthy@holder"]
        for run in cell.runs:
            assert not run.crashed
            assert run.peak_precrash is None
            assert run.peak_healthy is not None

    def test_cells_payload_carries_peaks_and_detector(self, grid_results):
        payload = cells_payload(grid_results)
        cell = payload["aging@trend"]
        assert cell["detector"] == "trend"
        assert "premature" in cell
        assert all("peak_healthy" in r and "peak_precrash" in r
                   for r in cell["runs"])
        json.dumps(payload)  # manifest-safe


class TestScoreboard:
    def test_schema_and_shape(self, scoreboard):
        assert scoreboard["schema"] == "repro.scoreboard/1"
        assert scoreboard["n_cells"] == 2 * len(GRID_DETECTORS)
        assert set(scoreboard["detectors"]) == set(GRID_DETECTORS)

    def test_roc_and_auc_present_and_sane(self, scoreboard):
        for name, det in scoreboard["detectors"].items():
            assert det["n_pos"] > 0 and det["n_neg"] > 0, name
            assert det["roc"] is not None
            fpr = det["roc"]["fpr"]
            tpr = det["roc"]["tpr"]
            assert len(fpr) == len(tpr)
            assert fpr[0] == 0.0 and fpr[-1] == 1.0
            assert 0.0 <= det["auc"] <= 1.0

    def test_lead_quantiles_ordered(self, scoreboard):
        for det in scoreboard["detectors"].values():
            if det["lead_p50"] is not None:
                assert det["lead_p90"] >= det["lead_p50"]

    def test_false_alarm_rate_uses_healthy_time(self, scoreboard):
        for det in scoreboard["detectors"].values():
            assert det["healthy_seconds"] > 0
            expected = det["false_alarms"] / det["healthy_seconds"] * 3600.0
            assert det["false_alarms_per_hour"] == pytest.approx(expected)

    def test_empty_cells_rejected(self):
        with pytest.raises(TraceError):
            build_scoreboard({})

    def test_legacy_cells_without_peaks_still_score(self, grid_results):
        payload = cells_payload(grid_results)
        legacy = {}
        for name, cell in payload.items():
            cell = dict(cell)
            cell.pop("detector", None)
            cell["runs"] = [
                {k: v for k, v in r.items()
                 if k not in ("peak_healthy", "peak_precrash", "detector")}
                for r in cell["runs"]]
            legacy[name] = cell
        board = build_scoreboard(legacy)
        # all runs map to the default family; no ROC without peaks
        assert set(board["detectors"]) == {"holder"}
        assert board["detectors"]["holder"]["roc"] is None
        assert board["detectors"]["holder"]["auc"] is None

    def test_save_load_round_trip(self, scoreboard, tmp_path):
        path = tmp_path / "scoreboard.json"
        save_scoreboard(scoreboard, path)
        assert load_scoreboard(path) == json.loads(json.dumps(scoreboard))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.status/1"}))
        with pytest.raises(TraceError):
            load_scoreboard(path)

    def test_save_rejects_non_scoreboard(self, tmp_path):
        with pytest.raises(TraceError):
            save_scoreboard({"schema": "nope"}, tmp_path / "x.json")

    def test_table_renders_dash_for_undefined(self):
        board = build_scoreboard({
            "healthy": {"runs": [{"seed": 1, "crashed": False,
                                  "duration": 100.0, "alarm_time": None}],
                        "detector": "naive", "crashed": 0, "detected": 0,
                        "missed": 0, "false_alarms": 0, "lead_times": []},
        })
        rows = scoreboard_table(board)
        assert len(rows) == 1
        row = rows[0]
        assert row[0] == "naive"
        assert "—" in row  # detection rate over 0 crashes is undefined
        from repro.report import render_table

        text = render_table(
            ["detector", "cells", "runs", "crashed", "detected", "rate",
             "premature", "missed", "lead_p50_s", "lead_p90_s", "fa_per_h",
             "auc"], rows)
        assert "—" in text
        assert "nan" not in text

    def test_publish_sets_gauges(self, scoreboard):
        with _obs.telemetry_session() as session:
            publish_scoreboard(scoreboard)
            snap = session.metrics.snapshot()
        for name in GRID_DETECTORS:
            assert f"scoreboard.{name}.auc" in snap
        assert snap["scoreboard.holder.auc"]["value"] == (
            scoreboard["detectors"]["holder"]["auc"])

    def test_publish_noop_without_session(self, scoreboard):
        publish_scoreboard(scoreboard)  # must not raise


class TestResultsSchemaV2:
    def test_round_trip_preserves_detector_and_peaks(self, grid_results,
                                                     tmp_path):
        path = tmp_path / "results.json"
        save_results(grid_results, path)
        loaded = load_results(path)
        assert set(loaded) == set(grid_results)
        for name in grid_results:
            assert loaded[name].spec == grid_results[name].spec
            assert loaded[name].runs == grid_results[name].runs

    def test_v1_files_still_load(self, grid_results, tmp_path):
        # Rewrite a saved file as schema v1 with the pre-tournament field
        # set: loading must map runs to the default Hölder detector.
        path = tmp_path / "v1.json"
        save_results({"aging@holder": grid_results["aging@holder"]}, path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 1
        for cell in payload["cells"].values():
            for key in ("detector_name", "collect_scores"):
                cell["spec"].pop(key)
            for run in cell["runs"]:
                for key in ("detector", "peak_healthy", "peak_precrash"):
                    run.pop(key)
        path.write_text(json.dumps(payload))
        loaded = load_results(path)
        cell = loaded["aging@holder"]
        assert cell.spec.detector_name == "holder"
        assert all(r.detector == "holder" for r in cell.runs)
        assert all(r.peak_healthy is None for r in cell.runs)

    def test_unknown_version_rejected(self, grid_results, tmp_path):
        path = tmp_path / "future.json"
        save_results(grid_results, path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceError):
            load_results(path)

    def test_scoreboard_rebuilds_from_saved_results(self, grid_results,
                                                    scoreboard, tmp_path):
        # The `repro scoreboard` contract: artifacts alone suffice.
        path = tmp_path / "results.json"
        save_results(grid_results, path)
        rebuilt = build_scoreboard(cells_payload(load_results(path)))
        assert rebuilt == json.loads(json.dumps(scoreboard))


class TestDashboardScoreboard:
    def test_tournament_section_rendered(self, grid_results):
        from repro.obs.dashboard import render_campaign_dashboard

        html = render_campaign_dashboard(cells=cells_payload(grid_results))
        assert "Detector tournament" in html
        assert "ROC" in html
        assert "league table" in html.lower()
        for name in GRID_DETECTORS:
            assert name in html
        assert html.count("<polyline") >= len(GRID_DETECTORS)

    def test_explicit_scoreboard_bypasses_rebuild(self, grid_results,
                                                  scoreboard):
        from repro.obs.dashboard import render_campaign_dashboard

        payload = cells_payload(grid_results)
        assert (render_campaign_dashboard(cells=payload)
                == render_campaign_dashboard(cells=payload,
                                             scoreboard=scoreboard))

    def test_no_section_without_peaks(self):
        from repro.obs.dashboard import render_campaign_dashboard

        cells = {"aging": {
            "runs": [{"seed": 1, "crashed": True, "duration": 900.0,
                      "alarm_time": 700.0, "crash_time": 900.0}],
            "crashed": 1, "detected": 1, "missed": 0, "false_alarms": 0,
            "lead_times": [200.0], "median_lead": 200.0,
        }}
        html = render_campaign_dashboard(cells=cells)
        assert "Detector tournament" not in html


class TestScoreboardPrometheus:
    def test_renders_families_with_labels(self, scoreboard):
        from repro.obs.export import scoreboard_to_prometheus

        text = scoreboard_to_prometheus(scoreboard)
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_scoreboard_auc gauge" in text
        assert 'detector="holder"' in text
        assert 'cell="aging@trend"' in text
        assert "repro_scoreboard_runs_total" in text

    def test_empty_scoreboard_rejected(self):
        from repro.obs.export import scoreboard_to_prometheus

        with pytest.raises(ValidationError):
            scoreboard_to_prometheus({"detectors": {}, "cells": {}})


class TestStatusBoardDetectorTallies:
    def test_tallies_accumulate(self):
        from repro.obs.statusd import StatusBoard

        board = StatusBoard()
        board.begin(total_units=4, cells={"a": 4})
        board.unit_finished(cell="a", detector="holder", alarmed=True)
        board.unit_finished(cell="a", detector="holder", alarmed=False)
        board.unit_finished(cell="a", detector="trend", alarmed=True)
        board.unit_finished(cell="a")  # legacy call shape still works
        snap = board.snapshot()
        assert snap["detectors"] == {
            "holder": {"done": 2, "alarms": 1},
            "trend": {"done": 1, "alarms": 1},
        }
        assert snap["units_done"] == 4

    def test_begin_resets_tallies(self):
        from repro.obs.statusd import StatusBoard

        board = StatusBoard()
        board.begin(total_units=1)
        board.unit_finished(detector="holder", alarmed=True)
        board.begin(total_units=1)
        assert board.snapshot()["detectors"] == {}


class TestEntropyDetector:
    def test_rolling_entropy_bounds(self, rng):
        values = np.cumsum(rng.standard_normal(2000))
        idx, ent = rolling_entropy(values, window=128, step=16, bins=16)
        assert idx.size == ent.size > 0
        assert np.all((ent >= 0.0) & (ent <= 1.0))

    def test_constant_window_has_zero_entropy(self):
        values = np.full(300, 7.0)
        _, ent = rolling_entropy(values, window=128, step=16, bins=16)
        assert np.all(ent == 0.0)

    def test_noise_has_higher_entropy_than_ramp(self, rng):
        noisy = np.cumsum(rng.standard_normal(1000))
        ramp = np.linspace(0.0, 100.0, 1000)
        _, ent_noise = rolling_entropy(noisy, window=128, step=64, bins=16)
        _, ent_ramp = rolling_entropy(ramp, window=128, step=64, bins=16)
        assert ent_noise.mean() > ent_ramp.mean()

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            rolling_entropy(np.arange(50.0), window=128, step=16, bins=16)

    def test_alarms_on_entropy_collapse(self, rng):
        from repro.trace import TimeSeries

        # Healthy: diverse random-walk increments.  Aged: the counter
        # locks onto a deterministic ramp (entropy collapses).
        healthy = np.cumsum(rng.standard_normal(4000)) + 1000.0
        aged = healthy[-1] - 0.5 * np.arange(4000.0)
        ts = TimeSeries(times=np.arange(8000.0),
                        values=np.concatenate([healthy, aged]),
                        name="AvailableBytes")
        det = RollingEntropyDetector(threshold_sigma=6.0)
        alarm = det.run(ts)
        assert alarm is not None
        assert alarm > 4000.0

    def test_quiet_on_stationary_noise(self, rng):
        from repro.trace import TimeSeries

        values = np.cumsum(rng.standard_normal(8000)) + 1000.0
        ts = TimeSeries(times=np.arange(8000.0), values=values,
                        name="AvailableBytes")
        assert RollingEntropyDetector().run(ts) is None

    def test_decision_scores_match_run_threshold(self, rng):
        from repro.trace import TimeSeries

        healthy = np.cumsum(rng.standard_normal(4000)) + 1000.0
        aged = healthy[-1] - 0.5 * np.arange(4000.0)
        ts = TimeSeries(times=np.arange(8000.0),
                        values=np.concatenate([healthy, aged]),
                        name="AvailableBytes")
        det = RollingEntropyDetector(threshold_sigma=6.0)
        times, scores = det.decision_scores(ts)
        alarm = det.run(ts)
        assert times.size == scores.size
        # the alarm sample is one of the >threshold scores
        above = times[scores > det.threshold_sigma]
        assert alarm in above
