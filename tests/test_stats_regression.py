"""Unit tests for line fitting."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.stats import fit_line, fit_line_wls


class TestFitLine:
    def test_exact_line(self):
        x = np.arange(10.0)
        fit = fit_line(x, 3.0 * x + 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_recovers_slope(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 200)
        y = -2.0 * x + 1.0 + 0.1 * rng.standard_normal(200)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(-2.0, abs=0.02)
        assert fit.stderr_slope < 0.01

    def test_stderr_shrinks_with_n(self):
        rng = np.random.default_rng(2)
        fits = []
        for n in (50, 5000):
            x = np.linspace(0, 1, n)
            y = x + rng.standard_normal(n)
            fits.append(fit_line(x, y))
        assert fits[1].stderr_slope < fits[0].stderr_slope

    def test_constant_x_rejected(self):
        with pytest.raises(AnalysisError, match="identical"):
            fit_line([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            fit_line([1, 2, 3], [1, 2])

    def test_predict_and_residuals(self):
        fit = fit_line([0.0, 1.0], [1.0, 3.0])
        np.testing.assert_allclose(fit.predict([2.0]), [5.0])
        np.testing.assert_allclose(fit.residuals([0, 1], [1, 3]), [0, 0], atol=1e-12)

    def test_r_squared_zero_for_flat_y_with_noise_pattern(self):
        # Perfectly flat y: syy == 0 handled as r^2 = 1 (degenerate perfect fit).
        fit = fit_line([0.0, 1.0, 2.0], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)


class TestWeighted:
    def test_unit_weights_match_ols(self):
        rng = np.random.default_rng(3)
        x = np.linspace(0, 1, 50)
        y = 2 * x + rng.standard_normal(50)
        a = fit_line(x, y)
        b = fit_line_wls(x, y, np.ones(50))
        assert a.slope == pytest.approx(b.slope)
        assert a.stderr_slope == pytest.approx(b.stderr_slope)

    def test_zero_weight_points_ignored(self):
        x = np.array([0.0, 1.0, 2.0, 100.0])
        y = np.array([0.0, 1.0, 2.0, -50.0])
        w = np.array([1.0, 1.0, 1.0, 0.0])
        fit = fit_line_wls(x, y, w)
        assert fit.slope == pytest.approx(1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValidationError):
            fit_line_wls([0, 1], [0, 1], [-1.0, 1.0])

    def test_needs_two_positive_weights(self):
        with pytest.raises(AnalysisError):
            fit_line_wls([0, 1, 2], [0, 1, 2], [1.0, 0.0, 0.0])

    def test_heavier_points_pull_fit(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 0.0, 3.0])
        light = fit_line_wls(x, y, [1.0, 1.0, 1.0]).slope
        heavy = fit_line_wls(x, y, [1.0, 1.0, 10.0]).slope
        assert heavy > light
