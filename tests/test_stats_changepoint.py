"""Unit tests for CUSUM, EWMA and offline changepoint location."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.stats import CusumDetector, EwmaDetector, find_single_changepoint
from repro.stats.changepoint import detect_level_jumps


def shifted_series(rng, n_before=200, n_after=100, shift=3.0):
    before = rng.standard_normal(n_before)
    after = shift + rng.standard_normal(n_after)
    return before, np.concatenate([before, after])


class TestCusum:
    def test_detects_upward_shift(self, rng):
        before, full = shifted_series(rng)
        det = CusumDetector()
        det.calibrate(before)
        alarm = det.run(np.arange(full.size, dtype=float), full)
        assert alarm is not None
        assert 200 <= alarm <= 220  # shortly after the shift

    def test_no_alarm_in_control(self, rng):
        x = rng.standard_normal(500)
        det = CusumDetector(h=8.0)
        det.calibrate(x[:100])
        assert det.run(np.arange(500.0), x) is None

    def test_alarm_latches(self, rng):
        before, full = shifted_series(rng)
        det = CusumDetector()
        det.calibrate(before)
        for v in full:
            det.update(v)
        assert det.alarmed

    def test_reset_clears(self, rng):
        det = CusumDetector()
        det.calibrate(rng.standard_normal(50))
        det.update(100.0)
        det.update(100.0)
        det.update(100.0)
        assert det.alarmed
        det.reset()
        assert not det.alarmed
        assert det.statistic == 0.0

    def test_use_before_calibrate_raises(self):
        with pytest.raises(AnalysisError):
            CusumDetector().update(1.0)

    def test_constant_baseline_rejected(self):
        with pytest.raises(AnalysisError):
            CusumDetector().calibrate(np.ones(20))

    def test_calibrate_from_moments(self):
        det = CusumDetector(k=0.5, h=3.0)
        det.calibrate_from_moments(0.0, 1.0)
        fired = False
        for _ in range(10):
            fired = det.update(5.0)
        assert fired

    def test_bad_moments_rejected(self):
        with pytest.raises(AnalysisError):
            CusumDetector().calibrate_from_moments(0.0, 0.0)

    def test_higher_k_slower(self, rng):
        before, full = shifted_series(rng, shift=1.5)
        times = np.arange(full.size, dtype=float)
        lo = CusumDetector(k=0.25, h=5.0)
        lo.calibrate(before)
        hi = CusumDetector(k=1.25, h=5.0)
        hi.calibrate(before)
        a_lo, a_hi = lo.run(times, full), hi.run(times, full)
        assert a_lo is not None
        assert a_hi is None or a_hi >= a_lo


class TestEwma:
    def test_detects_shift(self, rng):
        before, full = shifted_series(rng)
        det = EwmaDetector()
        det.calibrate(before)
        alarm = det.run(np.arange(full.size, dtype=float), full)
        assert alarm is not None and alarm >= 200

    def test_in_control_quiet(self, rng):
        x = rng.standard_normal(400)
        det = EwmaDetector(L=4.0)
        det.calibrate(x[:100])
        assert det.run(np.arange(400.0), x) is None

    def test_invalid_lambda(self):
        with pytest.raises(AnalysisError):
            EwmaDetector(lam=0.0)
        with pytest.raises(AnalysisError):
            EwmaDetector(lam=1.5)

    def test_statistic_tracks_level(self, rng):
        det = EwmaDetector(lam=0.5)
        det.calibrate(rng.standard_normal(50))
        for _ in range(50):
            det.update(2.0)
        assert det.statistic == pytest.approx(2.0, abs=0.05)

    def test_use_before_calibrate_raises(self):
        with pytest.raises(AnalysisError):
            EwmaDetector().update(1.0)


class TestOfflineChangepoint:
    def test_locates_mean_shift(self, rng):
        x = np.concatenate([rng.standard_normal(150), 4.0 + rng.standard_normal(150)])
        tau = find_single_changepoint(x)
        assert 140 <= tau <= 160

    def test_min_segment_respected(self, rng):
        x = rng.standard_normal(40)
        tau = find_single_changepoint(x, min_segment=15)
        assert 15 <= tau <= 25

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            find_single_changepoint(np.arange(8.0), min_segment=5)

    def test_shift_at_known_index(self):
        x = np.concatenate([np.zeros(50), np.ones(50)])
        assert find_single_changepoint(x) == 50


class TestLevelJumps:
    def test_flags_spike(self, rng):
        x = rng.standard_normal(200)
        x[120] += 25.0
        jumps = detect_level_jumps(x, window=30, z_threshold=5.0)
        assert 120 in jumps

    def test_quiet_series_no_jumps(self, rng):
        x = rng.standard_normal(200)
        assert detect_level_jumps(x, window=30, z_threshold=8.0) == []

    def test_short_series_empty(self, rng):
        assert detect_level_jumps(rng.standard_normal(10), window=20) == []
