"""Tests for the benchmark harness and perf trajectory files (repro.obs.bench)."""

import json
import re

import pytest

from repro.exceptions import TraceError, ValidationError
from repro.obs import bench


def _payload(*, quick=True, calibration=0.010, created_at="2026-08-06T10:00:00+00:00",
             sha="abcdef123456", **walls):
    """A minimal schema-valid trajectory payload with the given wall times."""
    results = {
        name: {
            "group": name.split(".")[0],
            "description": name,
            "repeats": 3,
            "n_samples": 1000,
            "wall_best": wall,
            "wall_mean": wall * 1.1,
            "cpu_best": wall,
            "samples_per_sec": 1000 / wall,
            "mem_peak_bytes": 1024,
        }
        for name, wall in walls.items()
    }
    return {
        "schema": bench.BENCH_SCHEMA,
        "created_at": created_at,
        "quick": quick,
        "repeats": 3,
        "environment": {"git_sha": sha, "calibration_seconds": calibration},
        "results": results,
    }


class TestSuiteShape:
    REQUIRED_HOT_PATHS = {
        "memsim.fleet",      # fleet simulation
        "core.holder",       # Hölder trajectory
        "fractal.wtmm",      # WTMM spectrum
        "fractal.mfdfa",     # MF-DFA
        "fractal.sliding",   # sliding spectrum
        "core.pipeline",     # full analyze pipeline
    }

    def test_covers_required_hot_paths(self):
        assert self.REQUIRED_HOT_PATHS <= set(bench.case_names())
        assert len(bench.SUITE) >= 6

    def test_select_by_substring(self):
        chosen = bench.select_cases(["fractal"])
        assert {c.name for c in chosen} == {
            "fractal.wtmm", "fractal.mfdfa",
            "fractal.sliding", "fractal.wavelets",
        }
        assert [c.name for c in bench.select_cases(None)] == bench.case_names()

    def test_select_no_match_rejected(self):
        with pytest.raises(ValidationError):
            bench.select_cases(["no-such-bench"])


class TestRunCase:
    def test_record_fields(self):
        case = next(c for c in bench.SUITE if c.name == "fractal.mfdfa")
        record = bench.run_case(case, quick=True, repeats=2)
        assert record["repeats"] == 2
        assert record["n_samples"] == 4096
        assert 0.0 < record["wall_best"] <= record["wall_mean"]
        assert record["cpu_best"] > 0.0
        assert record["samples_per_sec"] == pytest.approx(
            record["n_samples"] / record["wall_best"])
        assert record["mem_peak_bytes"] > 0
        json.dumps(record)

    def test_memory_pass_optional(self):
        case = next(c for c in bench.SUITE if c.name == "core.holder")
        record = bench.run_case(case, quick=True, repeats=1,
                                track_memory=False)
        assert record["mem_peak_bytes"] is None

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValidationError):
            bench.run_case(bench.SUITE[0], repeats=0)


class TestTrajectoryFiles:
    def test_filename_pattern(self):
        payload = _payload(**{"fractal.mfdfa": 0.01})
        name = bench.bench_filename(payload)
        assert name == "BENCH_20260806_abcdef1.json"
        assert re.fullmatch(r"BENCH_\d{8}_[0-9a-f]{7}\.json", name)

    def test_write_read_round_trip(self, tmp_path):
        payload = _payload(**{"fractal.mfdfa": 0.01, "core.holder": 0.02})
        path = bench.write_bench_file(payload, tmp_path)
        assert bench.read_bench_file(path) == payload

    def test_read_rejects_bad_schema(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text(json.dumps({"schema": "bogus/1"}))
        with pytest.raises(TraceError):
            bench.read_bench_file(bad)
        bad.write_text("{not json")
        with pytest.raises(TraceError):
            bench.read_bench_file(bad)

    def test_find_baseline_newest_matching(self, tmp_path):
        old = _payload(created_at="2026-08-01T00:00:00+00:00", sha="aaaaaaa",
                       **{"x.y": 0.01})
        new = _payload(created_at="2026-08-05T00:00:00+00:00", sha="bbbbbbb",
                       **{"x.y": 0.01})
        full = _payload(quick=False, created_at="2026-08-06T00:00:00+00:00",
                        sha="ccccccc", **{"x.y": 0.01})
        for p in (old, new, full):
            bench.write_bench_file(p, tmp_path)
        found = bench.find_baseline(tmp_path, quick=True)
        assert found is not None and "bbbbbbb" in found
        found_full = bench.find_baseline(tmp_path, quick=False)
        assert found_full is not None and "ccccccc" in found_full

    def test_find_baseline_excludes_current(self, tmp_path):
        payload = _payload(**{"x.y": 0.01})
        path = bench.write_bench_file(payload, tmp_path)
        assert bench.find_baseline(tmp_path, quick=True, exclude=path) is None
        assert bench.find_baseline(tmp_path, quick=True) == path

    def test_find_baseline_direct_file_and_missing(self, tmp_path):
        payload = _payload(**{"x.y": 0.01})
        path = bench.write_bench_file(payload, tmp_path)
        assert bench.find_baseline(path) == path
        assert bench.find_baseline(tmp_path / "nope") is None
        assert bench.find_baseline(tmp_path / "empty") is None


class TestCompare:
    def test_regression_flagged_past_threshold(self):
        base = _payload(**{"a.b": 0.010, "c.d": 0.010})
        cur = _payload(**{"a.b": 0.014, "c.d": 0.010})  # +40% vs 25% budget
        cmp = bench.compare_runs(base, cur, threshold=0.25)
        assert cmp["regressions"] == ["a.b"]
        by_name = {r["name"]: r for r in cmp["rows"]}
        assert by_name["a.b"]["status"] == "REGRESSION"
        assert by_name["a.b"]["ratio"] == pytest.approx(1.4)
        assert by_name["c.d"]["status"] == "ok"

    def test_improvement_and_new_cases(self):
        base = _payload(**{"a.b": 0.010})
        cur = _payload(**{"a.b": 0.005, "e.f": 0.020})
        cmp = bench.compare_runs(base, cur, threshold=0.25)
        by_name = {r["name"]: r for r in cmp["rows"]}
        assert by_name["a.b"]["status"] == "improved"
        assert by_name["e.f"]["status"] == "new"
        assert by_name["e.f"]["ratio"] is None
        assert cmp["regressions"] == []

    def test_calibration_normalization(self):
        # Baseline machine twice as fast (calibration 5ms vs current 10ms):
        # current wall of 20ms vs baseline 10ms is expected hardware
        # slowdown, not a code regression.
        base = _payload(calibration=0.005, **{"a.b": 0.010})
        cur = _payload(calibration=0.010, **{"a.b": 0.020})
        cmp = bench.compare_runs(base, cur, threshold=0.25)
        assert cmp["calibration_scale"] == pytest.approx(2.0)
        assert cmp["regressions"] == []
        unnorm = bench.compare_runs(base, cur, threshold=0.25, normalize=False)
        assert unnorm["regressions"] == ["a.b"]

    def test_quick_full_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            bench.compare_runs(_payload(quick=True, **{"a.b": 0.01}),
                               _payload(quick=False, **{"a.b": 0.01}))

    def test_bad_threshold_rejected(self):
        p = _payload(**{"a.b": 0.01})
        with pytest.raises(ValidationError):
            bench.compare_runs(p, p, threshold=0.0)

    def test_render_comparison_names_regressions(self):
        base = _payload(**{"a.b": 0.010})
        cur = _payload(**{"a.b": 0.020})
        text = bench.render_comparison(
            bench.compare_runs(base, cur), baseline_path="BENCH_old.json")
        assert "REGRESSION" in text
        assert "a.b" in text
        assert "BENCH_old.json" in text
        ok = bench.render_comparison(bench.compare_runs(base, base))
        assert "no regressions" in ok


class TestRunSuite:
    def test_quick_selected_suite_payload(self, tmp_path):
        seen = []
        payload = bench.run_suite(
            quick=True, repeats=1, select=["fractal.mfdfa", "core.holder"],
            track_memory=False,
            progress=lambda name, rec: seen.append(name),
        )
        assert payload["schema"] == bench.BENCH_SCHEMA
        assert payload["quick"] is True
        assert seen == ["core.holder", "fractal.mfdfa"]
        assert set(payload["results"]) == {"core.holder", "fractal.mfdfa"}
        env = payload["environment"]
        assert env["calibration_seconds"] > 0
        assert env["python"] and env["numpy"]
        path = bench.write_bench_file(payload, tmp_path)
        assert bench.read_bench_file(path)["results"] == payload["results"]

    def test_environment_fingerprint_fields(self):
        env = bench.environment_fingerprint()
        for key in ("repro", "python", "numpy", "platform", "machine",
                    "cpu_count", "git_sha", "calibration_seconds"):
            assert key in env
