"""Tests for aging indicators and fractal-collapse detectors."""

import numpy as np
import pytest

from repro.core.detectors import (
    AgingAlarm,
    DetectorConfig,
    HolderVarianceDetector,
    collapse_onset_estimate,
    detect_fractal_collapse,
)
from repro.core.holder import HolderTrajectory
from repro.core.indicators import (
    IndicatorSeries,
    holder_mean_series,
    holder_variance_series,
    windowed_moments,
)
from repro.exceptions import AnalysisError, ValidationError


def make_trajectory(h_values, dt=1.0):
    h = np.asarray(h_values, dtype=float)
    return HolderTrajectory(
        times=dt * np.arange(h.size), h=h, method="wavelet", source_name="test",
    )


def synthetic_collapse_trajectory(rng, n_healthy=3000, n_sick=600):
    """Stationary h then destabilised h (variance x9)."""
    healthy = 0.5 + 0.05 * rng.standard_normal(n_healthy)
    sick = 0.5 + 0.15 * rng.standard_normal(n_sick)
    return make_trajectory(np.concatenate([healthy, sick]))


class TestWindowedMoments:
    def test_mean_and_variance_match_numpy(self, rng):
        traj = make_trajectory(rng.standard_normal(100))
        out = windowed_moments(traj, window=20, step=1)
        # Check one interior window exactly.
        k = 37
        seg = traj.h[k - 20 + 1: k + 1]
        idx = k - 19
        assert out["mean"].values[idx] == pytest.approx(np.mean(seg))
        assert out["variance"].values[idx] == pytest.approx(np.var(seg))

    def test_right_edge_alignment(self, rng):
        traj = make_trajectory(rng.standard_normal(50), dt=2.0)
        out = windowed_moments(traj, window=10, step=5)
        assert out["mean"].times[0] == traj.times[9]

    def test_step_thins_output(self, rng):
        traj = make_trajectory(rng.standard_normal(100))
        dense = windowed_moments(traj, window=10, step=1)["variance"]
        sparse = windowed_moments(traj, window=10, step=10)["variance"]
        assert len(sparse) < len(dense)

    def test_constant_trajectory_zero_variance(self):
        traj = make_trajectory(np.full(50, 0.5))
        out = windowed_moments(traj, window=10)
        np.testing.assert_allclose(out["variance"].values, 0.0, atol=1e-15)
        np.testing.assert_allclose(out["skewness"].values, 0.0)
        np.testing.assert_allclose(out["kurtosis"].values, 0.0)

    def test_skewness_sign(self, rng):
        skewed = rng.exponential(1.0, size=2000)
        traj = make_trajectory(skewed)
        out = windowed_moments(traj, window=500, step=100)
        assert np.mean(out["skewness"].values) > 0.5

    def test_window_too_large(self, rng):
        traj = make_trajectory(rng.standard_normal(10))
        with pytest.raises(AnalysisError):
            windowed_moments(traj, window=20)

    def test_series_naming(self, rng):
        traj = make_trajectory(rng.standard_normal(60))
        out = windowed_moments(traj, window=10)
        assert out["variance"].name == "test.h_variance"


class TestIndicatorHelpers:
    def test_variance_indicator(self, rng):
        traj = make_trajectory(rng.standard_normal(200))
        ind = holder_variance_series(traj, window=50, step=5)
        assert isinstance(ind, IndicatorSeries)
        assert ind.statistic == "variance"
        assert ind.window == 50

    def test_mean_indicator(self, rng):
        traj = make_trajectory(rng.standard_normal(200))
        ind = holder_mean_series(traj, window=50)
        assert ind.statistic == "mean"


class TestDetectorConfig:
    def test_defaults_valid(self):
        DetectorConfig()

    def test_bad_scheme(self):
        with pytest.raises(ValidationError):
            DetectorConfig(scheme="oracle")

    def test_bad_calibration_fraction(self):
        with pytest.raises(ValidationError):
            DetectorConfig(calibration_fraction=0.95)


class TestHolderVarianceDetector:
    @pytest.mark.parametrize("scheme", ["threshold", "cusum", "ewma"])
    def test_detects_collapse(self, scheme, rng):
        traj = synthetic_collapse_trajectory(rng)
        ind = holder_variance_series(traj, window=200, step=4)
        cfg = DetectorConfig(scheme=scheme)
        alarm = HolderVarianceDetector(cfg).run(ind)
        assert alarm.fired
        # Alarm must come after the true onset (t=3000) minus window slack.
        assert alarm.alarm_time > 2800

    @pytest.mark.parametrize("scheme", ["threshold", "cusum", "ewma"])
    def test_quiet_on_stationary(self, scheme, rng):
        h = 0.5 + 0.05 * rng.standard_normal(4000)
        ind = holder_variance_series(make_trajectory(h), window=200, step=4)
        alarm = HolderVarianceDetector(DetectorConfig(scheme=scheme)).run(ind)
        assert not alarm.fired

    def test_alarm_fields(self, rng):
        traj = synthetic_collapse_trajectory(rng)
        ind = holder_variance_series(traj, window=200, step=4)
        alarm = detect_fractal_collapse(ind)
        assert isinstance(alarm, AgingAlarm)
        assert alarm.baseline_std > 0
        assert alarm.source_name == "test"
        assert np.isfinite(alarm.statistic_at_alarm)
        assert alarm.calibration_end_time < alarm.alarm_time

    def test_lead_time_helper(self, rng):
        traj = synthetic_collapse_trajectory(rng)
        ind = holder_variance_series(traj, window=200, step=4)
        alarm = detect_fractal_collapse(ind)
        lead = alarm.lead_time(crash_time=3600.0)
        assert lead == pytest.approx(3600.0 - alarm.alarm_time)

    def test_lead_time_none_without_alarm(self):
        alarm = AgingAlarm(
            alarm_time=None, calibration_end_time=10.0, baseline_mean=0.0,
            baseline_std=1.0, statistic_at_alarm=float("nan"),
            scheme="cusum", source_name="x",
        )
        assert alarm.lead_time(100.0) is None
        assert not alarm.fired

    def test_short_indicator_rejected(self, rng):
        ind = holder_variance_series(
            make_trajectory(rng.standard_normal(40)), window=10, step=1)
        with pytest.raises(AnalysisError, match="calibration"):
            HolderVarianceDetector(DetectorConfig(calibration_fraction=0.05)).run(ind)

    def test_constant_baseline_floor(self, rng):
        # A constant indicator baseline must not divide by zero.
        h = np.concatenate([np.full(2000, 0.5), 0.5 + rng.standard_normal(500)])
        ind = holder_variance_series(make_trajectory(h), window=100, step=4)
        alarm = HolderVarianceDetector().run(ind)
        assert alarm.fired


class TestCollapseOnset:
    def test_onset_close_to_truth(self, rng):
        traj = synthetic_collapse_trajectory(rng, n_healthy=3000, n_sick=1000)
        ind = holder_variance_series(traj, window=200, step=4)
        onset = collapse_onset_estimate(ind)
        assert 2700 < onset < 3400
