"""Tests for remaining-life forecasting, KPSS, and counter alignment."""

import numpy as np
import pytest

from repro.core import analyze_counter, fit_life_model, predict_remaining_life
from repro.core.forecasting import LifeModel, _pava_nonincreasing
from repro.exceptions import AnalysisError, ValidationError
from repro.stats import kpss_test
from repro.trace import (
    TimeSeries,
    align_series,
    correlation_matrix,
    lagged_correlation,
)


class TestPava:
    def test_already_monotone_unchanged(self):
        y = np.array([5.0, 4.0, 3.0, 1.0])
        np.testing.assert_allclose(_pava_nonincreasing(y), y)

    def test_violations_pooled(self):
        y = np.array([1.0, 3.0, 2.0])
        out = _pava_nonincreasing(y)
        assert np.all(np.diff(out) <= 1e-12)
        # Pooling preserves the overall mean.
        assert np.mean(out) == pytest.approx(np.mean(y))

    def test_result_nonincreasing_random(self, rng):
        y = rng.standard_normal(50)
        out = _pava_nonincreasing(y)
        assert np.all(np.diff(out) <= 1e-12)


class TestLifeModel:
    def test_predict_fraction_interpolates(self):
        model = LifeModel(
            z_grid=np.array([0.0, 5.0, 10.0]),
            remaining_fraction=np.array([0.9, 0.5, 0.1]),
            n_training_pairs=100,
        )
        assert model.predict_fraction(2.5) == pytest.approx(0.7)
        assert model.predict_fraction(20.0) == pytest.approx(0.1)  # clipped

    def test_remaining_seconds_formula(self):
        model = LifeModel(
            z_grid=np.array([0.0, 10.0]),
            remaining_fraction=np.array([0.5, 0.5]),
            n_training_pairs=10,
        )
        # f = 0.5 -> remaining = elapsed.
        assert model.predict_remaining_seconds(1.0, 1000.0) == pytest.approx(1000.0)

    def test_elapsed_must_be_positive(self):
        model = LifeModel(np.array([0.0, 1.0]), np.array([0.5, 0.4]), 10)
        with pytest.raises(ValidationError):
            model.predict_remaining_seconds(1.0, 0.0)


class TestLifeModelOnFleet:
    @pytest.fixture(scope="class")
    def fleet(self):
        from repro.memsim import Machine, MachineConfig

        return [Machine(MachineConfig.nt4(seed=s, max_run_seconds=40_000)).run()
                for s in (1, 2, 3, 4, 5)]

    def test_midlife_predictions_order_of_magnitude(self, fleet):
        training = [
            (analyze_counter(r.bundle["AvailableBytes"]).indicator, r.crash_time)
            for r in fleet[:4]
        ]
        model = fit_life_model(training)
        held_out = fleet[4]
        log_ratios = []
        for frac in (0.6, 0.75, 0.85):
            trunc = held_out.bundle["AvailableBytes"].slice_time(
                0, frac * held_out.crash_time)
            indicator = analyze_counter(trunc).indicator
            predicted = predict_remaining_life(model, indicator)
            actual = held_out.crash_time - trunc.times[-1]
            log_ratios.append(abs(np.log(predicted / actual)))
        assert np.median(log_ratios) < np.log(4.0), \
            "mid-life predictions must be order-of-magnitude correct"

    def test_model_curve_monotone(self, fleet):
        training = [
            (analyze_counter(r.bundle["AvailableBytes"]).indicator, r.crash_time)
            for r in fleet[:3]
        ]
        model = fit_life_model(training)
        assert np.all(np.diff(model.remaining_fraction) <= 1e-12)
        assert np.all(np.diff(model.z_grid) > 0)
        assert model.n_training_pairs > 100

    def test_too_few_training_runs(self, fleet):
        indicator = analyze_counter(fleet[0].bundle["AvailableBytes"]).indicator
        with pytest.raises(ValidationError):
            fit_life_model([(indicator, fleet[0].crash_time)])

    def test_invalid_crash_time(self, fleet):
        indicator = analyze_counter(fleet[0].bundle["AvailableBytes"]).indicator
        with pytest.raises(ValidationError):
            fit_life_model([(indicator, None), (indicator, 100.0)])


class TestKpss:
    def test_white_noise_stationary(self, rng):
        res = kpss_test(rng.standard_normal(1000))
        assert not res.rejected_at_5pct
        assert res.statistic < res.critical_values[0.05]

    def test_random_walk_rejected(self, rng):
        res = kpss_test(np.cumsum(rng.standard_normal(1000)))
        assert res.rejected_at_5pct

    def test_trend_null_absorbs_linear_trend(self, rng):
        x = 0.05 * np.arange(1000.0) + rng.standard_normal(1000)
        assert kpss_test(x, regression="level").rejected_at_5pct
        assert not kpss_test(x, regression="trend").rejected_at_5pct

    def test_default_bandwidth(self, rng):
        res = kpss_test(rng.standard_normal(400))
        assert res.lags == int(np.floor(12 * (400 / 100) ** 0.25))

    def test_invalid_regression(self, rng):
        with pytest.raises(ValidationError):
            kpss_test(rng.standard_normal(100), regression="quadratic")

    def test_aging_counter_nonstationary(self, nt4_run):
        avail = nt4_run.bundle["AvailableBytes"].dropna()
        res = kpss_test(avail.values[::4])
        assert res.rejected_at_5pct


class TestAlignment:
    def test_inner_join_spans(self, rng):
        a = TimeSeries.from_values(rng.standard_normal(100), dt=1.0, name="a")
        b = TimeSeries(times=np.arange(10.0, 90.0, 2.0),
                       values=rng.standard_normal(40), name="b")
        aligned = align_series([a, b])
        assert aligned[0].times[0] >= 10.0
        assert aligned[0].times[-1] <= 88.0
        assert len(aligned[0]) == len(aligned[1])
        assert aligned[0].is_uniform

    def test_no_overlap_rejected(self, rng):
        a = TimeSeries.from_values(rng.standard_normal(10), t0=0.0)
        b = TimeSeries.from_values(rng.standard_normal(10), t0=100.0, name="b")
        with pytest.raises(AnalysisError, match="overlap"):
            align_series([a, b])

    def test_single_series_rejected(self, rng):
        with pytest.raises(ValidationError):
            align_series([TimeSeries.from_values(rng.standard_normal(10))])

    def test_correlation_matrix_self_unity(self, rng):
        x = rng.standard_normal(200)
        a = TimeSeries.from_values(x, name="a")
        b = TimeSeries.from_values(x + 0.01 * rng.standard_normal(200), name="b")
        names, mat = correlation_matrix([a, b])
        assert names == ["a", "b"]
        assert mat[0, 0] == pytest.approx(1.0)
        assert mat[0, 1] > 0.95

    def test_correlation_on_increments_removes_trend(self, rng):
        t = np.arange(500.0)
        a = TimeSeries.from_values(t + rng.standard_normal(500), name="a")
        b = TimeSeries.from_values(t + rng.standard_normal(500), name="b")
        __, level_corr = correlation_matrix([a, b], on_increments=False)
        __, inc_corr = correlation_matrix([a, b], on_increments=True)
        assert level_corr[0, 1] > 0.9        # trivial trend correlation
        assert abs(inc_corr[0, 1]) < 0.2     # increments independent

    def test_lagged_correlation_finds_lead(self, rng):
        x = rng.standard_normal(2000)
        lead = TimeSeries.from_values(x, name="lead")
        lag5 = TimeSeries.from_values(np.roll(x, 5), name="lag")
        lags, corr = lagged_correlation(lead, lag5, max_lag=10,
                                        on_increments=False)
        assert lags[np.argmax(corr)] == 5

    def test_counters_of_run_alignable(self, nt4_run):
        a = nt4_run.bundle["AvailableBytes"]
        p = nt4_run.bundle["PagesPerSec"]
        names, mat = correlation_matrix([a, p])
        assert mat.shape == (2, 2)
        assert np.all(np.abs(mat) <= 1.0 + 1e-12)
