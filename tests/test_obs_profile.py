"""Tests for the hot-path profiler (repro.obs.profile)."""

import time

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ValidationError
from repro.obs.profile import (
    Profiler,
    active_profiler,
    peak_rss_bytes,
    profile,
    set_active_profiler,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


class TestProfiler:
    def test_measure_records_wall_cpu_calls(self):
        prof = Profiler()
        for _ in range(3):
            with prof.measure("stage"):
                time.sleep(0.002)
        rec = prof.get("stage")
        assert rec.calls == 3
        assert rec.errors == 0
        assert rec.wall_total >= 0.005
        assert rec.wall_min <= rec.wall_mean <= rec.wall_max
        assert rec.cpu_total >= 0.0

    def test_error_counted_and_propagated(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.measure("boom"):
                raise RuntimeError("x")
        rec = prof.get("boom")
        assert rec.calls == 1
        assert rec.errors == 1

    def test_memory_tracking_records_peak(self):
        prof = Profiler(track_memory=True)
        with prof.measure("alloc"):
            buf = np.zeros(1_000_000)  # ~8 MB
            del buf
        rec = prof.get("alloc")
        assert rec.mem_peak_bytes is not None
        assert rec.mem_peak_bytes > 4_000_000

    def test_snapshot_shape(self):
        prof = Profiler()
        with prof.measure("b"):
            pass
        with prof.measure("a"):
            pass
        snap = prof.snapshot()
        assert list(snap["hotpaths"]) == ["a", "b"]  # sorted
        stats = snap["hotpaths"]["a"]
        assert stats["calls"] == 1
        assert stats["wall_total"] >= 0.0
        assert "cpu_total" in stats
        assert snap["track_memory"] is False

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Profiler().record("")
        with pytest.raises(ValidationError):
            profile("")

    def test_reset_drops_records(self):
        prof = Profiler()
        with prof.measure("x"):
            pass
        assert len(prof) == 1
        prof.reset()
        assert len(prof) == 0
        assert "x" not in prof


class TestProfileHook:
    def test_decorator_passthrough_without_profiler(self):
        @profile("test.fn")
        def fn(a, b=1):
            return a + b

        assert active_profiler() is None
        assert fn(2, b=3) == 5

    def test_decorator_records_with_active_profiler(self):
        @profile("test.fn")
        def fn(x):
            return x * 2

        prof = Profiler()
        set_active_profiler(prof)
        try:
            assert fn(21) == 42
            assert fn(1) == 2
        finally:
            set_active_profiler(None)
        assert prof.get("test.fn").calls == 2
        assert fn(1) == 2  # deactivated again
        assert prof.get("test.fn").calls == 2

    def test_context_manager_form(self):
        prof = Profiler()
        set_active_profiler(prof)
        try:
            with profile("test.block"):
                pass
        finally:
            set_active_profiler(None)
        assert prof.get("test.block").calls == 1

    def test_session_attaches_and_detaches_profiler(self):
        assert active_profiler() is None
        with obs.telemetry_session(profile=True) as session:
            assert session.profiler is not None
            assert active_profiler() is session.profiler
        assert active_profiler() is None

    def test_plain_session_has_no_profiler(self):
        with obs.telemetry_session() as session:
            assert session.profiler is None
            assert active_profiler() is None

    def test_disabled_overhead_under_five_percent(self):
        """The inactive hook must not tax a tight loop of small calls."""

        def work(n):
            return sum(range(n))

        wrapped = profile("test.overhead")(work)
        n_calls, n = 500, 5000

        def loop(fn):
            t0 = time.perf_counter()
            for _ in range(n_calls):
                fn(n)
            return time.perf_counter() - t0

        loop(work), loop(wrapped)  # warm both paths
        # Interleave the two measurements so both minimums sample the
        # same quiet stretches of a (possibly loaded) machine.
        plain = hooked = float("inf")
        for _ in range(15):
            plain = min(plain, loop(work))
            hooked = min(hooked, loop(wrapped))
        assert hooked <= plain * 1.05, (
            f"disabled profiler overhead {hooked / plain - 1.0:+.1%} "
            f"exceeds 5% budget"
        )


class TestHotPathIntegration:
    def test_analysis_hot_paths_profiled(self):
        from repro.core import analyze_counter
        from repro.generators import fgn
        from repro.trace import TimeSeries

        ts = TimeSeries.from_values(
            np.cumsum(fgn(2048, 0.7, rng=np.random.default_rng(0))), name="c")
        with obs.telemetry_session(profile=True) as session:
            analyze_counter(ts, indicator_window=256)
            snap = session.profiler.snapshot()
        hotpaths = snap["hotpaths"]
        assert "core.analyze_counter" in hotpaths
        assert "core.holder_trajectory" in hotpaths
        assert "fractal.cwt" in hotpaths
        assert hotpaths["core.analyze_counter"]["wall_total"] >= (
            hotpaths["core.holder_trajectory"]["wall_total"])

    def test_simulator_hot_paths_profiled(self):
        from repro.memsim import Machine, MachineConfig

        with obs.telemetry_session(profile=True) as session:
            Machine(MachineConfig.nt4(seed=3, max_run_seconds=1500)).run()
            snap = session.profiler.snapshot()
        assert "memsim.machine_run" in snap["hotpaths"]
        assert "simkernel.run_until" in snap["hotpaths"]

    def test_fractal_estimators_profiled(self):
        from repro.fractal.mfdfa import mfdfa
        from repro.fractal.sliding import sliding_mfdfa
        from repro.fractal.wtmm import wtmm
        from repro.generators import fbm, fgn
        from repro.trace import TimeSeries

        rng = np.random.default_rng(1)
        with obs.telemetry_session(profile=True) as session:
            mfdfa(fgn(2048, 0.7, rng=rng))
            wtmm(fbm(1024, 0.6, rng=rng))
            ts = TimeSeries.from_values(
                np.cumsum(fgn(2048, 0.7, rng=rng)), name="s")
            sliding_mfdfa(ts, window=512, step=512)
            snap = session.profiler.snapshot()
        hotpaths = snap["hotpaths"]
        assert {"fractal.mfdfa", "fractal.wtmm",
                "fractal.sliding_mfdfa", "fractal.cwt"} <= set(hotpaths)
        # sliding calls mfdfa once per window on top of the direct call
        assert hotpaths["fractal.mfdfa"]["calls"] > 1

    def test_profile_lands_in_manifest(self, tmp_path):
        from repro.fractal.mfdfa import mfdfa
        from repro.generators import fgn

        with obs.telemetry_session(profile=True) as session:
            mfdfa(fgn(1024, 0.5, rng=np.random.default_rng(2)))
            manifest = obs.build_manifest(session, command="test")
        assert "fractal.mfdfa" in manifest.profile["hotpaths"]
        path = obs.write_manifest(manifest, tmp_path)
        back = obs.read_manifest(path)
        assert back.profile == manifest.profile


class TestPeakRss:
    def test_reports_positive_bytes_on_posix(self):
        peak = peak_rss_bytes()
        assert peak is None or peak > 1_000_000  # a python process is > 1 MB
