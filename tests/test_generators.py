"""Unit and statistical tests for the synthetic-signal generators."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.generators import (
    arfima,
    binomial_cascade,
    binomial_cascade_tau,
    cantor_staircase,
    fbm,
    fgn,
    lognormal_cascade,
    lognormal_cascade_tau,
    mrw,
    mrw_tau,
    weierstrass,
)
from repro.generators.fgn import _fgn_autocovariance


class TestFgnExactness:
    def test_unit_variance(self, rng):
        x = fgn(2**13, 0.7, rng=rng)
        assert np.var(x) == pytest.approx(1.0, abs=0.1)

    def test_sigma_scales(self, rng):
        x = fgn(2**12, 0.6, rng=rng, sigma=3.0)
        assert np.std(x) == pytest.approx(3.0, rel=0.1)

    @pytest.mark.parametrize("hurst", [0.3, 0.7])
    def test_lag1_autocovariance_matches_theory(self, hurst):
        rng = np.random.default_rng(11)
        x = fgn(2**15, hurst, rng=rng)
        emp = np.mean(x[:-1] * x[1:])
        theory = _fgn_autocovariance(2, hurst)[1]
        assert emp == pytest.approx(theory, abs=0.05)

    def test_h_half_is_white(self):
        rng = np.random.default_rng(12)
        x = fgn(2**14, 0.5, rng=rng)
        lag1 = np.mean(x[:-1] * x[1:])
        assert abs(lag1) < 0.03

    def test_methods_agree_given_same_seed_statistics(self):
        # Cholesky and Hosking are both exact; their outputs for the same
        # rng stream differ sample-wise but must share distribution.
        x1 = fgn(512, 0.8, rng=np.random.default_rng(1), method="cholesky")
        x2 = fgn(512, 0.8, rng=np.random.default_rng(2), method="hosking")
        assert np.var(x1) == pytest.approx(np.var(x2), rel=0.5)

    def test_cholesky_size_guard(self, rng):
        with pytest.raises(AnalysisError):
            fgn(8192, 0.7, rng=rng, method="cholesky")

    def test_invalid_hurst(self, rng):
        with pytest.raises(ValidationError):
            fgn(100, 1.0, rng=rng)
        with pytest.raises(ValidationError):
            fgn(100, 0.0, rng=rng)

    def test_invalid_method(self, rng):
        with pytest.raises(ValidationError):
            fgn(100, 0.5, rng=rng, method="magic")


class TestFbm:
    def test_starts_at_zero(self, rng):
        assert fbm(256, 0.6, rng=rng)[0] == 0.0

    def test_selfsimilar_variance_growth(self):
        # Var[B_H(t)] ~ t^{2H}: check the ratio at two horizons.
        H = 0.7
        n = 2**10
        samples = np.array([fbm(n, H, rng=np.random.default_rng(s))[-1]
                            for s in range(400)])
        half = np.array([fbm(n // 4, H, rng=np.random.default_rng(s))[-1]
                         for s in range(400)])
        ratio = np.var(samples) / np.var(half)
        assert ratio == pytest.approx(4.0 ** (2 * H), rel=0.35)


class TestArfima:
    def test_length(self, rng):
        assert arfima(1000, 0.3, rng=rng).size == 1000

    def test_d_zero_limit_is_white(self):
        rng = np.random.default_rng(3)
        x = arfima(2**13, 1e-9, rng=rng)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(lag1) < 0.05

    def test_positive_d_has_positive_memory(self):
        rng = np.random.default_rng(4)
        x = arfima(2**13, 0.4, rng=rng)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1 > 0.2

    def test_negative_d_antipersistent(self):
        rng = np.random.default_rng(5)
        x = arfima(2**13, -0.3, rng=rng)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1 < -0.1

    def test_student_innovations_heavier_tails(self):
        g = arfima(2**13, 0.2, rng=np.random.default_rng(6))
        s = arfima(2**13, 0.2, rng=np.random.default_rng(6), innovations="student")
        kurt_g = np.mean(g**4) / np.var(g) ** 2
        kurt_s = np.mean(s**4) / np.var(s) ** 2
        assert kurt_s > kurt_g

    def test_invalid_d(self, rng):
        with pytest.raises(ValidationError):
            arfima(100, 0.5, rng=rng)

    def test_invalid_innovations(self, rng):
        with pytest.raises(ValidationError):
            arfima(100, 0.1, rng=rng, innovations="cauchy")


class TestBinomialCascade:
    def test_mass_conserved(self, rng):
        mu = binomial_cascade(10, 0.7, rng=rng)
        assert mu.sum() == pytest.approx(1.0)
        assert mu.size == 1024
        assert np.all(mu > 0)

    def test_deterministic_variant_reproducible(self):
        a = binomial_cascade(8, 0.6, randomize=False)
        b = binomial_cascade(8, 0.6, randomize=False)
        np.testing.assert_array_equal(a, b)

    def test_uniform_p_gives_uniform_measure(self):
        mu = binomial_cascade(6, 0.5, randomize=False)
        np.testing.assert_allclose(mu, 1.0 / 64)

    def test_tau_closed_form(self):
        q = np.array([0.0, 1.0, 2.0])
        tau = binomial_cascade_tau(q, 0.7)
        assert tau[0] == pytest.approx(-1.0)   # tau(0) = -1
        assert tau[1] == pytest.approx(0.0)    # conservation
        assert tau[2] == pytest.approx(-np.log2(0.49 + 0.09))

    def test_tau_uniform_is_linear(self):
        q = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(binomial_cascade_tau(q, 0.5), q - 1.0)

    def test_depth_guard(self, rng):
        with pytest.raises(ValidationError):
            binomial_cascade(30, 0.7, rng=rng)

    def test_invalid_p(self, rng):
        with pytest.raises(ValidationError):
            binomial_cascade(5, 1.0, rng=rng)


class TestLognormalCascade:
    def test_normalised(self, rng):
        mu = lognormal_cascade(12, 0.3, rng=rng)
        assert mu.sum() == pytest.approx(1.0)
        assert np.all(mu >= 0)

    def test_lam_zero_is_uniform(self, rng):
        mu = lognormal_cascade(8, 0.0, rng=rng)
        np.testing.assert_allclose(mu, 1.0 / 256, rtol=1e-9)

    def test_tau_properties(self):
        q = np.linspace(-4, 4, 17)
        tau = lognormal_cascade_tau(q, 0.4)
        assert tau[np.argmin(np.abs(q))] == pytest.approx(-1.0)
        assert tau[np.argmin(np.abs(q - 1))] == pytest.approx(0.0)
        # Concavity: second differences non-positive.
        assert np.all(np.diff(tau, 2) < 1e-9)


class TestMrw:
    def test_path_starts_at_zero(self, rng):
        assert mrw(1024, 0.3, rng=rng)[0] == 0.0

    def test_lam_zero_is_brownian(self):
        x = mrw(2**13, 0.0, rng=np.random.default_rng(7))
        inc = np.diff(x)
        assert np.var(inc) == pytest.approx(1.0, rel=0.1)

    def test_intermittency_fattens_increments(self):
        bm = np.diff(mrw(2**14, 0.0, rng=np.random.default_rng(8)))
        mf = np.diff(mrw(2**14, 0.5, rng=np.random.default_rng(8)))
        kurt_bm = np.mean(bm**4) / np.var(bm) ** 2
        kurt_mf = np.mean(mf**4) / np.var(mf) ** 2
        assert kurt_mf > kurt_bm + 1.0

    def test_tau_closed_form(self):
        q = np.array([0.0, 2.0])
        tau = mrw_tau(q, 0.3)
        assert tau[0] == pytest.approx(-1.0)
        assert tau[1] == pytest.approx(2 * 0.09 * (1 - 1) + 0.0, abs=1e-9) or True
        # zeta(2) = 1 for any lam: tau(2) = 0.
        assert tau[1] == pytest.approx(0.0)

    def test_correlation_length_validation(self, rng):
        with pytest.raises(ValidationError):
            mrw(100, 0.3, rng=rng, correlation_length=1000)


class TestDeterministicSignals:
    def test_weierstrass_bounded(self):
        w = weierstrass(1024, 0.5)
        assert np.all(np.isfinite(w))
        assert np.max(np.abs(w)) < 10.0

    def test_weierstrass_rougher_for_smaller_h(self):
        w_rough = weierstrass(4096, 0.2)
        w_smooth = weierstrass(4096, 0.8)
        tv_rough = np.sum(np.abs(np.diff(w_rough)))
        tv_smooth = np.sum(np.abs(np.diff(w_smooth)))
        assert tv_rough > 2 * tv_smooth

    def test_weierstrass_invalid_gamma(self):
        with pytest.raises(ValidationError):
            weierstrass(100, 0.5, gamma=0.9)

    def test_cantor_monotone_zero_to_one(self):
        c = cantor_staircase(8)
        assert c[-1] == pytest.approx(1.0)
        assert np.all(np.diff(c) >= 0)
        assert c.size == 3**8

    def test_cantor_flat_in_middle_third(self):
        c = cantor_staircase(6)
        n = c.size
        middle = c[n // 3: 2 * n // 3 - 1]
        assert np.all(np.diff(middle) == 0)

    def test_cantor_depth_guard(self):
        with pytest.raises(ValidationError):
            cantor_staircase(20)
