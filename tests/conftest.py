"""Shared fixtures.

Simulation runs are expensive (seconds each), so crash runs are
session-scoped and shared by every test that needs realistic traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim import Machine, MachineConfig


@pytest.fixture(scope="session")
def nt4_run():
    """One complete NT4-profile stress-to-crash run (session cached)."""
    result = Machine(MachineConfig.nt4(seed=101, max_run_seconds=120_000)).run()
    assert result.crashed, "fixture run must crash"
    return result


@pytest.fixture(scope="session")
def w2k_run():
    """One complete W2K-profile stress-to-crash run (session cached)."""
    result = Machine(MachineConfig.w2k(seed=202, max_run_seconds=160_000)).run()
    assert result.crashed, "fixture run must crash"
    return result


@pytest.fixture(scope="session")
def healthy_run():
    """A short run with aging faults disabled (never crashes)."""
    from repro.memsim.config import FaultConfig

    config = MachineConfig.nt4(
        seed=303,
        max_run_seconds=6_000,
        faults=FaultConfig(
            heap_leak_fraction=0.0,
            pool_leak_rate=0.0,
            fragmentation_rate=0.0,
        ),
    )
    result = Machine(config).run()
    assert not result.crashed, "healthy fixture must survive"
    return result


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
