"""Second round of property-based tests over the newer subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.indicators import windowed_moments
from repro.core.holder import HolderTrajectory
from repro.fractal import iaaft, phase_randomized, shuffle
from repro.report import render_series
from repro.stats import kpss_test
from repro.trace import TimeSeries, TraceBundle, read_csv, write_csv

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@st.composite
def small_series(draw, min_size=8, max_size=64):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    values = draw(hnp.arrays(np.float64, size, elements=finite))
    return TimeSeries.from_values(values, name="s")


class TestCsvRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(ts=small_series())
    def test_write_read_identity(self, ts, tmp_path_factory):
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        bundle = TraceBundle()
        bundle.add(ts)
        write_csv(bundle, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["s"].values, ts.values, rtol=1e-9,
                                   atol=1e-9)
        np.testing.assert_allclose(back["s"].times, ts.times, rtol=1e-9)


class TestWindowedMomentsProperty:
    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(min_value=30, max_value=120),
                      elements=st.floats(min_value=-100, max_value=100,
                                         allow_nan=False)),
           st.integers(min_value=4, max_value=16))
    def test_matches_numpy_per_window(self, h, window):
        if h.size < window:
            return
        traj = HolderTrajectory(times=np.arange(h.size, dtype=float), h=h,
                                method="wavelet", source_name="t")
        out = windowed_moments(traj, window=window, step=1)
        for idx in (0, len(out["mean"]) - 1):
            seg = h[idx: idx + window]
            assert out["mean"].values[idx] == pytest.approx(np.mean(seg),
                                                            rel=1e-9, abs=1e-9)
            assert out["variance"].values[idx] == pytest.approx(
                np.var(seg), rel=1e-7, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(hnp.arrays(np.float64, 50,
                      elements=st.floats(min_value=-10, max_value=10,
                                         allow_nan=False)))
    def test_variance_nonnegative(self, h):
        traj = HolderTrajectory(times=np.arange(50.0), h=h,
                                method="wavelet", source_name="t")
        out = windowed_moments(traj, window=10)
        assert np.all(out["variance"].values >= 0)


class TestSurrogateProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_shuffle_preserves_sum(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(128)
        s = shuffle(x, rng=rng)
        assert np.sum(s) == pytest.approx(np.sum(x))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_phase_randomized_preserves_energy(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(256)
        s = phase_randomized(x, rng=rng)
        # Parseval: equal spectra -> equal energy.
        assert np.sum(s**2) == pytest.approx(np.sum(x**2), rel=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_iaaft_marginal_invariant(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.exponential(2.0, size=128)
        s = iaaft(x, rng=rng)
        np.testing.assert_allclose(np.sort(s), np.sort(x))


class TestKpssProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_statistic_positive(self, seed):
        x = np.random.default_rng(seed).standard_normal(200)
        res = kpss_test(x)
        assert res.statistic > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=1.0, max_value=100.0))
    def test_scale_invariance(self, seed, factor):
        x = np.random.default_rng(seed).standard_normal(200)
        a = kpss_test(x).statistic
        b = kpss_test(factor * x).statistic
        assert a == pytest.approx(b, rel=1e-6)


class TestRenderSeriesProperty:
    @settings(max_examples=20, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(min_value=2, max_value=500),
                      elements=finite))
    def test_never_crashes_and_has_stable_shape(self, values):
        out = render_series(values, width=40, height=6)
        lines = out.splitlines()
        assert len(lines) == 8
        assert all(len(line) <= 60 for line in lines)
