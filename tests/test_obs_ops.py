"""Tests for the control-plane identity layer (repro.obs.ops):
cross-process trace contexts and the flight recorder."""

import json
import os

import pytest

from repro import obs
from repro.exceptions import ValidationError
from repro.obs.ops import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    TraceContext,
    current_flight_recorder,
    current_trace,
    derive_span_id,
    flight_dump,
    flight_note,
    install_flight_recorder,
    mint_trace_id,
    new_trace,
    trace_scope,
    uninstall_flight_recorder,
)


@pytest.fixture(autouse=True)
def _clean_control_plane():
    """No trace, no recorder, no telemetry before and after each test."""
    uninstall_flight_recorder()
    obs.disable_telemetry()
    obs.reset_logging()
    yield
    uninstall_flight_recorder()
    obs.disable_telemetry()
    obs.reset_logging()


class TestTraceIdentity:
    def test_mint_is_hex_and_unique(self):
        ids = {mint_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)

    def test_derive_is_deterministic(self):
        a = derive_span_id("t", "p", "unit:3")
        b = derive_span_id("t", "p", "unit:3")
        assert a == b
        assert len(a) == 16
        int(a, 16)

    def test_derive_varies_with_every_input(self):
        base = derive_span_id("t", "p", "k")
        assert derive_span_id("T", "p", "k") != base
        assert derive_span_id("t", "P", "k") != base
        assert derive_span_id("t", "p", "K") != base

    def test_child_reproducible_across_contexts(self):
        root = new_trace("campaign")
        again = TraceContext(trace_id=root.trace_id, span_id=root.span_id)
        assert root.child("unit:0") == again.child("unit:0")
        assert root.child("unit:0") != root.child("unit:1")

    def test_child_links_parent(self):
        root = new_trace()
        child = root.child("x")
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id

    def test_dict_round_trip(self):
        ctx = new_trace("r").child("u")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert json.dumps(ctx.to_dict())  # payload is JSON-able

    def test_new_trace_has_no_parent(self):
        assert new_trace().parent_span_id is None


class TestTraceScope:
    def test_default_is_none(self):
        assert current_trace() is None

    def test_install_and_restore(self):
        ctx = new_trace()
        with trace_scope(ctx) as installed:
            assert installed is ctx
            assert current_trace() is ctx
        assert current_trace() is None

    def test_nesting_restores_outer(self):
        outer, inner = new_trace(), new_trace()
        with trace_scope(outer):
            with trace_scope(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace_scope(new_trace()):
                raise RuntimeError("boom")
        assert current_trace() is None

    def test_rejects_non_context(self):
        with pytest.raises(ValidationError, match="TraceContext"):
            with trace_scope("deadbeef"):
                pass  # pragma: no cover

    def test_stamps_enabled_session(self):
        session = obs.enable_telemetry()
        ctx = new_trace()
        with trace_scope(ctx):
            assert session.trace_id == ctx.trace_id
        # The stamp survives scope exit (exports outlive the scope)...
        assert session.trace_id == ctx.trace_id
        # ...and the first trace wins over later ones.
        with trace_scope(new_trace()):
            assert session.trace_id == ctx.trace_id


class TestFlightRecorder:
    def test_capacity_validated(self):
        with pytest.raises(ValidationError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_ring_buffer_keeps_newest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.note("unit", index=i)
        records = recorder.records()
        assert [r["index"] for r in records] == [2, 3, 4]
        assert recorder.n_recorded == 5
        assert all(r["kind"] == "unit" for r in records)
        assert all("wall_time" in r for r in records)

    def test_note_tolerates_kind_field(self):
        # Records may carry their own "kind" (e.g. an error kind): the
        # leading parameter is positional-only so nothing collides.
        recorder = FlightRecorder(capacity=4)
        recorder.note("unit", **{"kind": "timeout", "index": 1})
        assert recorder.records()[0]["index"] == 1

    def test_dump_without_path_is_noop(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.note("unit", index=0)
        assert recorder.dump("test") is None
        assert recorder.n_dumps == 0

    def test_dump_envelope(self, tmp_path):
        path = tmp_path / "flight.json"
        recorder = FlightRecorder(capacity=8, path=path)
        recorder.note("unit", index=0, status="ok")
        with trace_scope(new_trace("campaign")) as ctx:
            written = recorder.dump("timeout-kill", extra={"label": "pool"})
        assert written == str(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["reason"] == "timeout-kill"
        assert payload["pid"] == os.getpid()
        assert payload["trace_id"] == ctx.trace_id
        assert payload["label"] == "pool"
        assert payload["n_prior_dumps"] == 0
        assert payload["records"][0]["index"] == 0

    def test_repeat_dumps_overwrite_and_count(self, tmp_path):
        recorder = FlightRecorder(capacity=4, path=tmp_path / "f.json")
        recorder.dump("first")
        recorder.dump("second")
        payload = json.loads((tmp_path / "f.json").read_text())
        assert payload["reason"] == "second"
        assert payload["n_prior_dumps"] == 1
        assert recorder.n_dumps == 2

    def test_dump_never_raises_on_io_error(self, tmp_path):
        # Dumping into a directory path must not mask the original failure.
        recorder = FlightRecorder(capacity=4, path=tmp_path)
        assert recorder.dump("test") is None


class TestInstalledRecorder:
    def test_module_helpers_are_noops_without_recorder(self):
        assert current_flight_recorder() is None
        flight_note("unit", index=0)  # must not raise
        assert flight_dump("test") is None

    def test_install_and_uninstall(self):
        recorder = FlightRecorder(capacity=4)
        assert install_flight_recorder(recorder) is recorder
        assert current_flight_recorder() is recorder
        flight_note("unit", index=7)
        assert recorder.records()[0]["index"] == 7
        uninstall_flight_recorder()
        assert current_flight_recorder() is None
        flight_note("unit", index=8)
        assert len(recorder.records()) == 1

    def test_install_replaces_previous(self):
        first, second = FlightRecorder(capacity=4), FlightRecorder(capacity=4)
        install_flight_recorder(first)
        install_flight_recorder(second)
        flight_note("unit", index=1)
        assert not first.records()
        assert len(second.records()) == 1

    def test_captures_log_records(self):
        recorder = install_flight_recorder(FlightRecorder(capacity=8))
        obs.get_logger("test.flight").warning("pool degraded", workers=2)
        logs = [r for r in recorder.records() if r["kind"] == "log"]
        assert logs
        assert logs[-1]["message"] == "pool degraded"
        assert logs[-1]["level"] == "warning"
        assert logs[-1]["workers"] == 2

    def test_captures_span_closures(self):
        obs.enable_telemetry()
        recorder = install_flight_recorder(FlightRecorder(capacity=8))
        with obs.span("stage", cell="aging"):
            pass
        spans = [r for r in recorder.records() if r["kind"] == "span"]
        assert [s["path"] for s in spans] == ["stage"]
        assert spans[0]["status"] == "ok"
        assert spans[0]["attrs"]["cell"] == "aging"
        assert spans[0]["duration"] >= 0

    def test_uninstall_detaches_span_hook(self):
        session = obs.enable_telemetry()
        recorder = install_flight_recorder(FlightRecorder(capacity=8))
        uninstall_flight_recorder()
        assert session.spans.on_close is None
        with obs.span("stage"):
            pass
        assert not [r for r in recorder.records() if r["kind"] == "span"]

    def test_module_dump_forwards_extra(self, tmp_path):
        install_flight_recorder(
            FlightRecorder(capacity=4, path=tmp_path / "f.json"))
        flight_dump("unit-failures", failed_units=[1, 3])
        payload = json.loads((tmp_path / "f.json").read_text())
        assert payload["failed_units"] == [1, 3]
