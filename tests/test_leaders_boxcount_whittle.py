"""Tests for wavelet leaders, box-counting dimensions and local Whittle."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.fractal import (
    boxcount_dimension,
    generalized_dimensions,
    wavelet_leader_analysis,
    wavelet_leaders,
)
from repro.generators import binomial_cascade, fbm, fgn, mrw, weierstrass
from repro.stats import local_whittle


class TestWaveletLeaders:
    def test_leader_structure(self, rng):
        x = rng.standard_normal(1024)
        leaders = wavelet_leaders(x, wavelet=2, level=5)
        assert sorted(leaders) == [1, 2, 3, 4, 5]
        # Reflect-extension doubles the effective length.
        assert leaders[1].size == 1024
        assert leaders[5].size == 64
        for lead in leaders.values():
            assert np.all(lead >= 0)

    def test_leaders_dominate_own_coefficients(self, rng):
        # A leader is a supremum including the level's own coefficient.
        from repro.fractal.wavelets import dwt

        x = rng.standard_normal(512)
        leaders = wavelet_leaders(x, wavelet=1, level=3)
        coeffs = dwt(np.concatenate([x, x[::-1]]), wavelet=1, level=3)
        own_finest = np.abs(coeffs[-1]) * 2.0 ** (-1 / 2.0)
        assert np.all(leaders[1] >= own_finest - 1e-12)

    @pytest.mark.parametrize("hurst", [0.4, 0.6, 0.8])
    def test_fbm_c1_matches_h(self, hurst):
        x = fbm(2**14, hurst, rng=np.random.default_rng(int(10 * hurst)))
        res = wavelet_leader_analysis(x, q=np.linspace(-2, 3, 11))
        assert res.c1 == pytest.approx(hurst, abs=0.1)

    def test_fbm_c2_near_zero(self):
        x = fbm(2**15, 0.6, rng=np.random.default_rng(3))
        res = wavelet_leader_analysis(x)
        assert abs(res.c2) < 0.05

    def test_mrw_c2_negative(self):
        x = mrw(2**15, 0.4, rng=np.random.default_rng(4))
        res = wavelet_leader_analysis(x)
        assert res.c2 < -0.05
        # Order of magnitude of -lam^2 = -0.16.
        assert res.c2 == pytest.approx(-0.16, abs=0.08)

    def test_weierstrass_uniform(self):
        w = weierstrass(2**13, 0.5)
        res = wavelet_leader_analysis(w, q=np.linspace(0, 3, 7))
        assert res.c1 == pytest.approx(0.5, abs=0.07)
        assert abs(res.c2) < 0.03

    def test_zeta_linear_for_monofractal(self):
        x = fbm(2**14, 0.5, rng=np.random.default_rng(5))
        res = wavelet_leader_analysis(x, q=np.linspace(0.5, 3, 6))
        np.testing.assert_allclose(res.zeta, 0.5 * res.q, atol=0.15)

    def test_too_short_rejected(self, rng):
        with pytest.raises((AnalysisError, ValidationError)):
            wavelet_leader_analysis(rng.standard_normal(64))

    def test_levels_reported(self):
        x = fbm(2**12, 0.5, rng=np.random.default_rng(6))
        res = wavelet_leader_analysis(x)
        assert np.all(np.diff(res.levels) == 1)


class TestBoxcount:
    @pytest.mark.parametrize("hurst", [0.3, 0.5, 0.7])
    def test_fbm_graph_dimension(self, hurst):
        x = fbm(2**14, hurst, rng=np.random.default_rng(int(hurst * 10)))
        dim, err, fit = boxcount_dimension(x)
        assert dim == pytest.approx(2.0 - hurst, abs=0.2)
        assert fit.r_squared > 0.95

    def test_smooth_curve_dimension_one(self):
        t = np.linspace(0, 1, 4096)
        dim, __, __ = boxcount_dimension(np.sin(2 * np.pi * t))
        assert dim == pytest.approx(1.0, abs=0.1)

    def test_rougher_means_higher_dimension(self):
        smooth = fbm(2**13, 0.8, rng=np.random.default_rng(1))
        rough = fbm(2**13, 0.2, rng=np.random.default_rng(1))
        d_smooth, __, __ = boxcount_dimension(smooth)
        d_rough, __, __ = boxcount_dimension(rough)
        assert d_rough > d_smooth + 0.3

    def test_constant_rejected(self):
        with pytest.raises(AnalysisError):
            boxcount_dimension(np.ones(1024))

    def test_bad_exponent_range(self, rng):
        with pytest.raises(ValidationError):
            boxcount_dimension(rng.standard_normal(256), min_exponent=5,
                               max_exponent=3)


class TestGeneralizedDimensions:
    def test_uniform_measure_flat(self):
        q, dims = generalized_dimensions(np.full(1024, 1.0 / 1024))
        np.testing.assert_allclose(dims, 1.0, atol=1e-6)

    def test_cascade_decreasing(self, rng):
        mu = binomial_cascade(14, 0.7, rng=rng)
        q, dims = generalized_dimensions(mu, q=np.array([-2.0, 0.0, 2.0]))
        assert dims[0] > dims[1] > dims[2]
        # D0 (capacity dimension of the support) is 1 for a cascade.
        assert dims[1] == pytest.approx(1.0, abs=0.05)

    def test_information_dimension_at_q1(self, rng):
        mu = binomial_cascade(12, 0.6, rng=rng)
        q, dims = generalized_dimensions(mu, q=np.array([1.0]))
        p = 0.6
        # D1 = -(p log2 p + (1-p) log2 (1-p)) for the binomial measure.
        d1_theory = -(p * np.log2(p) + (1 - p) * np.log2(1 - p))
        assert dims[0] == pytest.approx(d1_theory, abs=0.05)


class TestLocalWhittle:
    @pytest.mark.parametrize("hurst", [0.3, 0.5, 0.7, 0.9])
    def test_recovers_fgn(self, hurst):
        x = fgn(2**14, hurst, rng=np.random.default_rng(int(hurst * 100)))
        assert local_whittle(x) == pytest.approx(hurst, abs=0.08)

    def test_short_series_rejected(self, rng):
        with pytest.raises((AnalysisError, ValidationError)):
            local_whittle(rng.standard_normal(64))

    def test_constant_rejected(self):
        with pytest.raises(AnalysisError):
            local_whittle(np.ones(1024))

    def test_bandwidth_effect(self):
        x = fgn(2**14, 0.7, rng=np.random.default_rng(9))
        wide = local_whittle(x, bandwidth_exponent=0.8)
        narrow = local_whittle(x, bandwidth_exponent=0.5)
        assert abs(wide - 0.7) < 0.15 and abs(narrow - 0.7) < 0.15
