"""Tests for process resource telemetry (repro.obs.resources):
/proc parsing against a synthetic fixture, the no-/proc fallback,
worker ordinal assignment, and the self-watch detector loop."""

import os
import threading
import time

import pytest

from repro import obs
from repro.exceptions import ValidationError
from repro.obs.resources import (
    DEFAULT_SELF_WATCH_RULES,
    ProcessSample,
    ResourceSampler,
    SelfWatch,
    read_proc_stat,
    sample_process,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


def write_proc_entry(root, pid, *, comm="campaign (w0)", utime=50, stime=25,
                     threads=3, rss_pages=1000, n_fds=4):
    """A synthetic /proc/<pid> with a stat file and an fd directory.

    The comm deliberately contains spaces and parentheses — the parser
    must split at the *last* ``)``.
    """
    entry = root / str(pid)
    (entry / "fd").mkdir(parents=True)
    for i in range(n_fds):
        (entry / "fd" / str(i)).write_text("")
    fields = ["S"] + ["0"] * 24
    fields[11] = str(utime)      # utime (field 14 in proc(5))
    fields[12] = str(stime)      # stime (field 15)
    fields[17] = str(threads)    # num_threads (field 20)
    fields[21] = str(rss_pages)  # rss pages (field 24)
    (entry / "stat").write_text(f"{pid} ({comm}) " + " ".join(fields) + "\n")
    return entry


class TestReadProcStat:
    def test_parses_synthetic_stat(self, tmp_path):
        write_proc_entry(tmp_path, 4321, utime=100, stime=50, threads=7,
                         rss_pages=2048)
        stat = read_proc_stat(4321, proc_root=str(tmp_path))
        ticks = os.sysconf("SC_CLK_TCK") or 100
        page = os.sysconf("SC_PAGE_SIZE") or 4096
        assert stat["cpu_seconds"] == pytest.approx(150 / ticks)
        assert stat["num_threads"] == 7
        assert stat["rss_bytes"] == 2048 * page

    def test_missing_pid_is_none(self, tmp_path):
        assert read_proc_stat(99999, proc_root=str(tmp_path)) is None

    def test_truncated_stat_is_none(self, tmp_path):
        entry = tmp_path / "17"
        entry.mkdir()
        (entry / "stat").write_text("17 (x) S 0 0 0\n")
        assert read_proc_stat(17, proc_root=str(tmp_path)) is None

    def test_real_proc_if_present(self):
        if not os.path.exists(f"/proc/{os.getpid()}/stat"):
            pytest.skip("no /proc on this platform")
        stat = read_proc_stat(os.getpid())
        assert stat["rss_bytes"] > 0
        assert stat["num_threads"] >= 1


class TestSampleProcess:
    def test_synthetic_sample(self, tmp_path):
        write_proc_entry(tmp_path, 4321, n_fds=6)
        sample = sample_process(4321, proc_root=str(tmp_path))
        assert sample.pid == 4321
        assert sample.source == "proc"
        assert sample.open_fds == 6
        assert sample.rss_bytes > 0
        payload = sample.to_dict()
        assert payload["pid"] == 4321
        assert payload["source"] == "proc"

    def test_self_falls_back_to_rusage(self, tmp_path):
        sample = sample_process(os.getpid(), proc_root=str(tmp_path / "none"))
        assert sample is not None
        assert sample.source == "rusage"
        assert sample.pid == os.getpid()
        assert sample.num_threads >= 1

    def test_foreign_pid_without_proc_is_none(self, tmp_path):
        assert sample_process(1, proc_root=str(tmp_path / "none")) is None


class TestResourceSampler:
    def test_interval_validated(self):
        with pytest.raises(ValidationError, match="interval"):
            ResourceSampler(interval=0)

    def test_sample_once_publishes_gauges(self):
        session = obs.enable_telemetry()
        sampler = ResourceSampler()
        snapshot = sampler.sample_once()
        assert snapshot["parent"]["pid"] == os.getpid()
        assert snapshot["workers"] == []
        assert snapshot["self_watch"] is None
        assert sampler.latest() is snapshot
        metrics = session.metrics.snapshot()
        assert metrics["resources.parent.rss_bytes"]["value"] > 0
        assert metrics["resources.parent.pid"]["value"] == os.getpid()
        assert metrics["resources.samples"]["value"] == 1

    def test_worker_ordinals_are_sticky(self, tmp_path):
        session = obs.enable_telemetry()
        write_proc_entry(tmp_path, 111, rss_pages=100)
        write_proc_entry(tmp_path, 222, rss_pages=200)
        pids = [111, 222]
        sampler = ResourceSampler(worker_pids=lambda: list(pids),
                                  proc_root=str(tmp_path))
        first = sampler.sample_once()
        assert [w["ordinal"] for w in first["workers"]] == [0, 1]
        assert [w["pid"] for w in first["workers"]] == [111, 222]

        # Worker 111 dies; 222 keeps its ordinal (its series continues).
        pids.remove(111)
        second = sampler.sample_once()
        assert [(w["ordinal"], w["pid"]) for w in second["workers"]] \
            == [(1, 222)]
        metrics = session.metrics.snapshot()
        page = os.sysconf("SC_PAGE_SIZE") or 4096
        assert metrics["resources.worker.1.rss_bytes"]["value"] == 200 * page
        assert metrics["resources.worker.1.pid"]["value"] == 222

    def test_thread_lifecycle(self):
        sampler = ResourceSampler(interval=0.05)
        sampler.start()
        sampler.start()  # idempotent
        deadline = time.time() + 5.0
        while sampler.latest() is None and time.time() < deadline:
            time.sleep(0.01)
        assert sampler.latest() is not None
        sampler.stop()
        sampler.stop()  # idempotent
        assert "repro-resources" not in {
            t.name for t in threading.enumerate()}


class TestSelfWatch:
    def test_default_rule_fires_on_fast_growth(self):
        watch = SelfWatch()
        assert watch.state == "buffering"
        watch.observe(0.0, 1.0e8)
        watch.observe(1.0, 2.5e8)  # +150 MB/s > the 100 MB/s rule
        assert watch.alerts_fired >= 1
        assert watch.state == "warning"
        snapshot = watch.snapshot()
        assert snapshot["state"] == "warning"
        assert snapshot["alerts_fired"] == watch.alerts_fired
        assert snapshot["alarm_time"] is None

    def test_slow_growth_stays_quiet(self):
        watch = SelfWatch()
        for t in range(16):
            watch.observe(float(t), 1.0e8 + t * 1.0e6)  # +1 MB/s
        assert watch.alerts_fired == 0
        assert watch.state == watch.monitor.state

    def test_ignores_none_and_duplicate_times(self):
        watch = SelfWatch()
        watch.observe(1.0, None)
        watch.observe(1.0, float("nan"))
        watch.observe(1.0, 1.0e8)
        watch.observe(1.0, 1.1e8)  # duplicate time: rules see it, monitor not
        assert watch.monitor.n_samples == 1

    def test_default_rules_watch_parent_rss(self):
        assert [r.signal for r in DEFAULT_SELF_WATCH_RULES] == ["self.rss"]

    def test_leaky_loop_reaches_warning(self):
        """The harness catches itself leaking: a deliberately leaky
        allocation loop drives real RSS samples through the detector."""
        session = obs.enable_telemetry()
        clock = iter(float(i) for i in range(100))
        sampler = ResourceSampler(self_watch=True,
                                  clock=lambda: next(clock))
        sampler.sample_once()  # baseline
        leak = []
        for _ in range(2):
            # 150 MB per "second" of fake clock: well above the
            # 100 MB/s default rule, tiny next to any real test host.
            leak.append(bytearray(150 * 1024 * 1024))
            sampler.sample_once()
        try:
            assert sampler.self_watch.alerts_fired >= 1
            assert sampler.self_watch.state == "warning"
            snapshot = sampler.latest()["self_watch"]
            assert snapshot["state"] == "warning"
            assert snapshot["alerts_fired"] >= 1
            counters = session.metrics.snapshot()
            assert counters["resources.self_watch_alerts"]["value"] >= 1
        finally:
            leak.clear()
