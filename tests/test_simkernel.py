"""Unit tests for the discrete-event kernel: engine, RNG registry, processes."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simkernel import PeriodicProcess, RngRegistry, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(10.0)
        assert fired == [1, 3, 5]

    def test_simultaneous_events_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(2.0, lambda i=i: fired.append(i))
        sim.run_until(10.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=5)
        sim.schedule(1.0, lambda: fired.append("high"), priority=-5)
        sim.run_until(2.0)
        assert fired == ["high", "low"]

    def test_clock_advances_to_t_end(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_clock_equals_event_time_inside_callback(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [7.5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError, match="before now"):
            sim.schedule(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_events_scheduled_from_events(self):
        sim = Simulator()
        fired = []

        def chain(k):
            fired.append(k)
            if k < 3:
                sim.schedule_in(1.0, lambda: chain(k + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run_until(10.0)
        assert fired == [0, 1, 2, 3]

    def test_event_beyond_t_end_not_fired(self):
        sim = Simulator()
        fired = []
        sim.schedule(100.0, lambda: fired.append(1))
        sim.run_until(50.0)
        assert fired == []
        sim.run_until(150.0)
        assert fired == [1]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(5.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_counts_exclude_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending == 1


class TestStopAndLimits:
    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(10.0)
        assert fired == [1]
        assert sim.now == 1.0

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule_in(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until(1.0, max_events=100)

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run_until(99.0)
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.run_until(5.0)
        assert len(errors) == 1

    def test_run_next_steps_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.run_next()
        assert fired == [1]
        assert sim.run_next()
        assert not sim.run_next()

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run_until(10.0)
        assert sim.events_fired == 3


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        rngs = RngRegistry(7)
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_names_different_draws(self):
        rngs = RngRegistry(7)
        a = rngs.stream("a").random(8)
        b = rngs.stream("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("x").random(8)
        b = RngRegistry(7).stream("x").random(8)
        np.testing.assert_array_equal(a, b)

    def test_creation_order_irrelevant(self):
        r1 = RngRegistry(7)
        r1.stream("a")
        x1 = r1.stream("x").random(4)
        r2 = RngRegistry(7)
        x2 = r2.stream("x").random(4)  # "a" never created here
        np.testing.assert_array_equal(x1, x2)

    def test_spawn_changes_streams(self):
        base = RngRegistry(7)
        child = base.spawn(1)
        assert not np.allclose(base.stream("x").random(4),
                               child.stream("x").random(4))

    def test_spawn_deterministic(self):
        a = RngRegistry(7).spawn(3).stream("x").random(4)
        b = RngRegistry(7).spawn(3).stream("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            RngRegistry(1).stream("")

    def test_bad_seed_rejected(self):
        with pytest.raises(SimulationError):
            RngRegistry("seed")  # type: ignore[arg-type]


class _Ticker(PeriodicProcess):
    def __init__(self, sim, rngs, period=1.0, phase=None):
        super().__init__(sim, rngs, "ticker", period, phase)
        self.ticks = []

    def tick(self):
        self.ticks.append(self.sim.now)


class TestPeriodicProcess:
    def test_fires_every_period(self):
        sim = Simulator()
        proc = _Ticker(sim, RngRegistry(0), period=2.0)
        proc.ensure_started()
        sim.run_until(7.0)
        assert proc.ticks == [2.0, 4.0, 6.0]

    def test_phase_controls_first_tick(self):
        sim = Simulator()
        proc = _Ticker(sim, RngRegistry(0), period=2.0, phase=0.5)
        proc.ensure_started()
        sim.run_until(5.0)
        assert proc.ticks == [0.5, 2.5, 4.5]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        proc = _Ticker(sim, RngRegistry(0), period=1.0)
        proc.ensure_started()
        sim.run_until(3.5)
        proc.stop()
        sim.run_until(10.0)
        assert proc.ticks == [1.0, 2.0, 3.0]

    def test_ensure_started_idempotent(self):
        sim = Simulator()
        proc = _Ticker(sim, RngRegistry(0), period=1.0)
        proc.ensure_started()
        proc.ensure_started()
        sim.run_until(2.5)
        assert proc.ticks == [1.0, 2.0]
