"""Tests for local Hölder exponent estimation (the paper core)."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.core.holder import (
    HolderTrajectory,
    holder_trajectory,
    local_holder,
    oscillation_holder,
    wavelet_holder,
    _rolling_max,
    _rolling_min,
)
from repro.generators import fbm, weierstrass
from repro.trace import TimeSeries


class TestRollingExtrema:
    def test_max_matches_bruteforce(self, rng):
        x = rng.standard_normal(200)
        for half in (1, 3, 7, 10):
            fast = _rolling_max(x, half)
            slow = np.array([
                x[max(0, i - half): i + half + 1].max() for i in range(x.size)
            ])
            np.testing.assert_allclose(fast, slow)

    def test_min_matches_bruteforce(self, rng):
        x = rng.standard_normal(200)
        for half in (1, 5, 12):
            fast = _rolling_min(x, half)
            slow = np.array([
                x[max(0, i - half): i + half + 1].min() for i in range(x.size)
            ])
            np.testing.assert_allclose(fast, slow)

    def test_zero_window_identity(self, rng):
        x = rng.standard_normal(50)
        np.testing.assert_array_equal(_rolling_max(x, 0), x)


class TestWaveletHolder:
    @pytest.mark.parametrize("h_true", [0.3, 0.5, 0.7])
    def test_weierstrass_uniform_h(self, h_true):
        w = weierstrass(2**13, h_true)
        h = wavelet_holder(w)
        assert np.mean(h) == pytest.approx(h_true, abs=0.08)

    @pytest.mark.parametrize("hurst", [0.3, 0.6, 0.8])
    def test_fbm_h_equals_hurst(self, hurst):
        x = fbm(2**14, hurst, rng=np.random.default_rng(int(hurst * 10)))
        h = wavelet_holder(x)
        assert np.median(h) == pytest.approx(hurst, abs=0.1)

    def test_rough_vs_smooth_ordering(self):
        rough = weierstrass(2**12, 0.25)
        smooth = weierstrass(2**12, 0.75)
        assert np.mean(wavelet_holder(rough)) < np.mean(wavelet_holder(smooth)) - 0.3

    def test_output_length(self, rng):
        x = rng.standard_normal(1000)
        assert wavelet_holder(x).size == 1000

    def test_cone_supremum_reduces_noise(self):
        x = fbm(2**13, 0.5, rng=np.random.default_rng(5))
        h_cone = wavelet_holder(x, cone_supremum=True)
        h_raw = wavelet_holder(x, cone_supremum=False)
        assert np.std(h_cone) < np.std(h_raw)

    def test_scale_band_validation(self, rng):
        x = rng.standard_normal(256)
        with pytest.raises(ValidationError):
            wavelet_holder(x, min_scale=16.0, max_scale=8.0)
        with pytest.raises(ValidationError):
            wavelet_holder(x, max_scale=200.0)

    def test_local_singularity_detected(self):
        # A smooth signal with one jump: h should dip near the jump.
        n = 2048
        t = np.linspace(0, 1, n)
        x = np.sin(2 * np.pi * t * 3)
        x[n // 2:] += 2.0  # jump singularity (h = 0)
        h = wavelet_holder(x, min_scale=2, max_scale=16)
        centre = h[n // 2 - 10: n // 2 + 10].min()
        away = np.median(h[: n // 4])
        assert centre < away - 0.3


class TestOscillationHolder:
    def test_orders_correctly(self):
        rough = weierstrass(2**12, 0.3)
        smooth = weierstrass(2**12, 0.7)
        assert np.mean(oscillation_holder(rough)) < np.mean(oscillation_holder(smooth)) - 0.15

    def test_radii_validation(self, rng):
        x = rng.standard_normal(512)
        with pytest.raises(ValidationError):
            oscillation_holder(x, radii=(4, 2, 8))
        with pytest.raises(ValidationError):
            oscillation_holder(x, radii=(1, 2))
        with pytest.raises(ValidationError):
            oscillation_holder(x, radii=(8, 16, 300))


class TestDispatch:
    def test_methods(self, rng):
        x = fbm(2**12, 0.5, rng=rng)
        assert local_holder(x, method="wavelet").size == x.size
        assert local_holder(x, method="oscillation").size == x.size

    def test_unknown_method(self, rng):
        with pytest.raises(ValidationError):
            local_holder(rng.standard_normal(256), method="psychic")


class TestHolderTrajectory:
    def test_from_series(self):
        ts = TimeSeries.from_values(
            fbm(2**12, 0.6, rng=np.random.default_rng(1)), dt=2.0, name="counter")
        traj = holder_trajectory(ts)
        assert isinstance(traj, HolderTrajectory)
        assert len(traj) == len(ts)
        assert traj.source_name == "counter"
        np.testing.assert_array_equal(traj.times, ts.times)

    def test_as_series_naming(self):
        ts = TimeSeries.from_values(
            fbm(2**10, 0.6, rng=np.random.default_rng(2)), name="AvailableBytes")
        out = holder_trajectory(ts, max_scale=16.0).as_series()
        assert out.name == "AvailableBytes.holder"

    def test_gaps_rejected(self):
        values = fbm(2**10, 0.5, rng=np.random.default_rng(3))
        values[5] = np.nan
        ts = TimeSeries.from_values(values)
        with pytest.raises(AnalysisError, match="gaps"):
            holder_trajectory(ts, max_scale=16.0)
