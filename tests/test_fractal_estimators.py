"""Estimator validation: DFA, MFDFA, Hurst toolbox, structure functions.

These are the statistical guts of the reproduction: every estimator must
recover known exponents from the synthetic generators.
"""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.fractal import (
    aggregated_variance,
    dfa,
    hurst_summary,
    mfdfa,
    periodogram_gph,
    rs_analysis,
    structure_functions,
    wavelet_variance_hurst,
)
from repro.generators import arfima, fbm, fgn, mrw, mrw_tau


class TestDfa:
    @pytest.mark.parametrize("hurst", [0.3, 0.5, 0.7, 0.9])
    def test_recovers_fgn_hurst(self, hurst):
        x = fgn(2**14, hurst, rng=np.random.default_rng(int(hurst * 100)))
        res = dfa(x)
        assert res.alpha == pytest.approx(hurst, abs=0.08)

    def test_fbm_gives_h_plus_one(self):
        x = fbm(2**14, 0.6, rng=np.random.default_rng(0))
        res = dfa(x, integrate=False)
        # Analysing the path directly: profile of increments = path,
        # so integrate=False on the path equals integrate=True on noise...
        # The classical relation: DFA on the path (as if it were noise)
        # yields alpha = H + 1.
        res2 = dfa(x, integrate=True)
        assert res2.alpha == pytest.approx(1.6, abs=0.12)
        assert res.alpha == pytest.approx(0.6, abs=0.12)

    def test_arfima_hurst(self):
        x = arfima(2**14, 0.25, rng=np.random.default_rng(1))
        assert dfa(x).alpha == pytest.approx(0.75, abs=0.08)

    def test_stderr_positive(self):
        x = fgn(2**12, 0.6, rng=np.random.default_rng(2))
        assert dfa(x).stderr > 0

    def test_fit_quality_reported(self):
        x = fgn(2**13, 0.7, rng=np.random.default_rng(3))
        assert dfa(x).fit.r_squared > 0.95

    def test_custom_scales(self):
        x = fgn(2**12, 0.5, rng=np.random.default_rng(4))
        res = dfa(x, scales=[8, 16, 32, 64, 128])
        assert res.scales.tolist() == [8, 16, 32, 64, 128]

    def test_too_few_scales(self):
        x = fgn(2**10, 0.5, rng=np.random.default_rng(5))
        with pytest.raises(ValidationError):
            dfa(x, scales=[16, 32])

    def test_scale_vs_order_conflict(self):
        x = fgn(2**10, 0.5, rng=np.random.default_rng(6))
        with pytest.raises(ValidationError):
            dfa(x, order=3, scales=[4, 8, 16])

    def test_constant_series_rejected(self):
        with pytest.raises((AnalysisError, ValidationError)):
            dfa(np.zeros(1024))

    def test_dfa3_removes_quadratic_trend(self):
        # A quadratic trend in the *signal* becomes a cubic in the DFA
        # profile, so DFA-3 is needed to remove it; DFA-1 must fail.
        rng = np.random.default_rng(7)
        t = np.arange(2**13, dtype=float)
        x = fgn(2**13, 0.6, rng=rng) + 1e-5 * t**2
        res3 = dfa(x, order=3, scales=[8, 16, 32, 64, 128, 256])
        res1 = dfa(x, order=1)
        assert res3.alpha == pytest.approx(0.6, abs=0.12)
        assert res1.alpha > 0.9  # trend leaks through DFA-1


class TestMfdfa:
    def test_monofractal_flat_hq(self):
        x = fgn(2**14, 0.7, rng=np.random.default_rng(0))
        res = mfdfa(x, q=np.linspace(-3, 3, 13))
        assert res.hurst == pytest.approx(0.7, abs=0.1)
        assert abs(res.delta_h) < 0.15

    def test_mrw_multifractal_hq_decreasing(self):
        x = mrw(2**15, 0.4, rng=np.random.default_rng(1))
        res = mfdfa(np.diff(x), q=np.linspace(-3, 3, 13))
        assert res.delta_h > 0.3
        # h(q) must be non-increasing (up to noise).
        assert res.hq[0] > res.hq[-1]

    def test_mrw_tau_matches_theory_moderate_q(self):
        lam = 0.3
        x = mrw(2**15, lam, rng=np.random.default_rng(2))
        res = mfdfa(np.diff(x), q=np.linspace(-2, 3, 11))
        theory = mrw_tau(res.q, lam)
        sel = (res.q >= 0) & (res.q <= 3)
        assert np.max(np.abs(res.tau[sel] - theory[sel])) < 0.25

    def test_tau_definition_consistent(self):
        x = fgn(2**12, 0.6, rng=np.random.default_rng(3))
        res = mfdfa(x)
        np.testing.assert_allclose(res.tau, res.q * res.hq - 1.0, atol=1e-12)

    def test_q_zero_handled(self):
        x = fgn(2**12, 0.6, rng=np.random.default_rng(4))
        res = mfdfa(x, q=np.array([-2.0, 0.0, 2.0]))
        assert np.all(np.isfinite(res.hq))

    def test_too_few_q(self):
        x = fgn(2**12, 0.6, rng=np.random.default_rng(5))
        with pytest.raises(ValidationError):
            mfdfa(x, q=np.array([1.0, 2.0]))

    def test_fluctuations_shape(self):
        x = fgn(2**12, 0.6, rng=np.random.default_rng(6))
        res = mfdfa(x, q=np.linspace(-2, 2, 9))
        assert res.fluctuations.shape == (9, res.scales.size)

    def test_as_dict_keys(self):
        x = fgn(2**12, 0.6, rng=np.random.default_rng(7))
        d = mfdfa(x).as_dict()
        assert set(d) == {"q", "hq", "tau", "scales", "fluctuations"}


class TestHurstToolbox:
    @pytest.mark.parametrize("hurst", [0.6, 0.8])
    def test_rs(self, hurst):
        x = fgn(2**14, hurst, rng=np.random.default_rng(int(hurst * 10)))
        assert rs_analysis(x).h == pytest.approx(hurst, abs=0.12)

    @pytest.mark.parametrize("hurst", [0.6, 0.8])
    def test_aggregated_variance(self, hurst):
        x = fgn(2**14, hurst, rng=np.random.default_rng(int(hurst * 20)))
        assert aggregated_variance(x).h == pytest.approx(hurst, abs=0.12)

    @pytest.mark.parametrize("hurst", [0.6, 0.8])
    def test_gph(self, hurst):
        x = fgn(2**14, hurst, rng=np.random.default_rng(int(hurst * 30)))
        assert periodogram_gph(x).h == pytest.approx(hurst, abs=0.12)

    @pytest.mark.parametrize("hurst", [0.3, 0.6, 0.8])
    def test_wavelet_variance(self, hurst):
        x = fgn(2**14, hurst, rng=np.random.default_rng(int(hurst * 40)))
        assert wavelet_variance_hurst(x).h == pytest.approx(hurst, abs=0.12)

    def test_summary_runs_all(self):
        x = fgn(2**13, 0.7, rng=np.random.default_rng(9))
        out = hurst_summary(x)
        assert set(out) == {"rs", "aggvar", "gph", "wavelet", "dfa"}
        estimates = [e.h for e in out.values()]
        assert np.max(estimates) - np.min(estimates) < 0.3

    def test_short_series_rejected(self):
        with pytest.raises((AnalysisError, ValidationError)):
            rs_analysis(np.random.default_rng(0).standard_normal(32))


class TestStructureFunctions:
    def test_fbm_linear_zeta(self):
        x = fbm(2**14, 0.6, rng=np.random.default_rng(0))
        res = structure_functions(x, q=np.arange(0.5, 3.01, 0.5))
        # zeta(q) = qH for monofractal paths (high q sags from the
        # slow convergence of Gaussian absolute moments).
        np.testing.assert_allclose(res.zeta, res.q * 0.6, atol=0.2)
        assert res.linearity_defect < 0.25

    def test_mrw_concave_zeta(self):
        x = mrw(2**15, 0.4, rng=np.random.default_rng(1))
        res = structure_functions(x, q=np.arange(0.5, 5.01, 0.5))
        # Strict concavity: zeta(4)/4 < zeta(1)/1.
        z1 = res.zeta[np.argmin(np.abs(res.q - 1))]
        z4 = res.zeta[np.argmin(np.abs(res.q - 4))]
        assert z4 / 4 < z1 - 0.05

    def test_negative_q_rejected(self):
        x = fbm(2**10, 0.5, rng=np.random.default_rng(2))
        with pytest.raises(ValidationError):
            structure_functions(x, q=[-1.0, 1.0])

    def test_sq_shape(self):
        x = fbm(2**11, 0.5, rng=np.random.default_rng(3))
        res = structure_functions(x, q=[1.0, 2.0, 3.0])
        assert res.sq.shape == (3, res.lags.size)

    def test_bad_lags(self):
        x = fbm(2**10, 0.5, rng=np.random.default_rng(4))
        with pytest.raises(ValidationError):
            structure_functions(x, lags=[0, 5, 10])
