"""Tests for repro.perf.pool and the parallel campaign/fleet paths."""

import time
from functools import partial

import numpy as np
import pytest

from repro.analysis.campaign import ExperimentSpec, cells_payload, run_campaign
from repro.exceptions import ExecutionError, ValidationError
from repro.memsim import MachineConfig, run_fleet
from repro.obs import session as _obs
from repro.perf.pool import (
    backoff_delay,
    parallel_map,
    resilient_map,
    resolve_workers,
)
from repro.testing.chaos import ChaosError, ChaosSpec, chaos_pre_unit


def _square(x):
    return x * x


def _sleep_for(seconds):
    time.sleep(seconds)
    return seconds


def _instrumented(x):
    _obs.counter("worker.calls").inc()
    _obs.histogram("worker.load").observe(float(x))
    _obs.record_event("worker_item", item=x)
    with _obs.span("unit", item=x):
        pass
    return x + 1


def _explode(x):
    raise ValueError(f"boom on {x}")


class TestResolveWorkers:
    def test_none_means_all_cores(self):
        import os
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            resolve_workers(0)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_workers(-2)


class TestParallelMap:
    def test_sequential_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_parallel_preserves_input_order(self):
        items = list(range(12))
        assert parallel_map(_square, items, workers=4) == [i * i for i in items]

    def test_parallel_matches_sequential(self):
        items = [3, 1, 4, 1, 5, 9, 2, 6]
        assert (parallel_map(_square, items, workers=4)
                == parallel_map(_square, items, workers=1))

    def test_unpicklable_fn_falls_back_to_sequential(self):
        with _obs.telemetry_session() as session:
            out = parallel_map(lambda x: x + 1, [1, 2, 3], workers=4)
            fallbacks = session.metrics.counter("perf.pool.fallbacks").value
        assert out == [2, 3, 4]
        assert fallbacks == 1

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_explode, [1, 2], workers=2)

    def test_worker_telemetry_merges_into_parent(self):
        with _obs.telemetry_session() as session:
            out = parallel_map(_instrumented, [10, 20, 30], workers=3,
                               label="test-worker")
            counters = session.metrics.snapshot()
            span_paths = [r.path for r in session.spans.records]
            events = session.events_of("worker_item")
        assert out == [11, 21, 31]
        assert counters["worker.calls"]["value"] == 3
        hist = counters["worker.load"]
        assert hist["count"] == 3
        assert hist["total"] == 60.0
        assert hist["min"] == 10.0 and hist["max"] == 30.0
        assert span_paths.count("test-worker/unit") == 3
        assert sorted(e["item"] for e in events) == [10, 20, 30]
        # merged events stay ordered by wall time
        walls = [e["wall_time"] for e in session.events]
        assert walls == sorted(walls)

    def test_no_telemetry_capture_when_disabled(self):
        # no session installed: results still correct, nothing recorded
        assert parallel_map(_square, [2, 3], workers=2) == [4, 9]


class TestMergePrimitives:
    def test_counter_and_gauge_merge(self):
        from repro.obs.metrics import MetricsRegistry

        parent = MetricsRegistry()
        parent.counter("c").inc(2)
        parent.gauge("g").set(5.0)
        donor = MetricsRegistry()
        donor.counter("c").inc(3)
        donor.gauge("g").set(1.0)
        donor.gauge("g").set(9.0)
        donor.gauge("g").set(4.0)
        parent.merge_snapshot(donor.snapshot())
        assert parent.counter("c").value == 5
        assert parent.gauge("g").value == 4.0
        assert parent.gauge("g").max_value == 9.0

    def test_histogram_merge_exact_summary(self):
        from repro.obs.metrics import MetricsRegistry

        parent = MetricsRegistry()
        for v in (1.0, 2.0):
            parent.histogram("h").observe(v)
        donor = MetricsRegistry()
        for v in (0.5, 10.0, 3.0):
            donor.histogram("h").observe(v)
        parent.merge_snapshot(donor.snapshot())
        h = parent.histogram("h")
        assert h.count == 5
        assert h.total == 16.5
        assert h.min == 0.5 and h.max == 10.0

    def test_unknown_metric_type_rejected(self):
        from repro.obs.metrics import MetricsRegistry

        with pytest.raises(ValidationError):
            MetricsRegistry().merge_snapshot({"x": {"type": "mystery"}})

    def test_span_ingest_rebases_and_prefixes(self):
        from repro.obs.spans import SpanCollector

        donor = SpanCollector()
        with donor.span("outer"):
            with donor.span("inner", k=1):
                pass
        parent = SpanCollector()
        n = parent.ingest(donor.to_list(), prefix="w0")
        assert n == 2
        recs = parent.records
        assert [r.path for r in recs] == ["w0/outer", "w0/outer/inner"]
        assert [r.depth for r in recs] == [1, 2]
        assert recs[1].attrs == {"k": 1}
        for donor_rec, rec in zip(donor.records, recs):
            assert rec.duration == pytest.approx(donor_rec.duration)
        # imported spans land in the parent's past, not its future
        now = __import__("time").perf_counter() - parent.epoch
        assert all(r.end <= now for r in recs)

    def test_span_ingest_noop_when_disabled_or_empty(self):
        from repro.obs.spans import SpanCollector

        assert SpanCollector().ingest([]) == 0
        off = SpanCollector(enabled=False)
        assert off.ingest([{"name": "x", "path": "x", "depth": 0,
                            "start": 0.0, "end": 1.0}]) == 0


@pytest.fixture(scope="module")
def determinism_specs():
    return [
        ExperimentSpec(name="aging", scenario="stress", n_runs=2,
                       base_seed=21, max_run_seconds=25_000.0),
        ExperimentSpec(name="healthy", scenario="stress", n_runs=2,
                       base_seed=21, fault_factor=0.0,
                       max_run_seconds=8_000.0),
    ]


class TestCampaignDeterminism:
    def test_workers4_bit_identical_to_workers1(self, determinism_specs):
        sequential = run_campaign(determinism_specs, workers=1)
        parallel = run_campaign(determinism_specs, workers=4)
        assert list(sequential) == list(parallel)
        for name in sequential:
            assert sequential[name] == parallel[name]
        assert cells_payload(sequential) == cells_payload(parallel)

    def test_parallel_campaign_merges_worker_telemetry(self, determinism_specs):
        with _obs.telemetry_session() as session:
            run_campaign(determinism_specs, workers=2)
            snapshot = session.metrics.snapshot()
            records = list(session.spans.records)
        assert snapshot["campaign.runs_completed"]["value"] == 4
        assert snapshot["perf.pool.units"]["value"] == 4
        # Worker spans stitch under the parent's open campaign-pool span.
        paths = [r.path for r in records]
        worker_spans = [r for r in records
                        if r.path.startswith("campaign-pool/campaign-worker/")]
        assert worker_spans
        assert not any(p.startswith("campaign-worker/") for p in paths)
        # Every stitched span is tagged with its worker's identity and
        # the campaign trace (one trace id across all workers).
        pool_span = next(r for r in records if r.path == "campaign-pool")
        trace_id = pool_span.attrs["trace_id"]
        assert session.trace_id == trace_id
        for r in worker_spans:
            assert r.attrs["trace_id"] == trace_id
            assert isinstance(r.attrs["worker_pid"], int)
            assert r.attrs["worker_ordinal"] >= 0
            assert r.attrs["span_id"]
        # Per-worker counters stay distinguishable after the merge and
        # sum to the aggregate (no double count).
        per_worker = [
            value["value"] for name, value in snapshot.items()
            if name.startswith("campaign-worker.w")
            and name.endswith(".campaign.runs_completed")
        ]
        assert sum(per_worker) == 4


class TestFleetWorkers:
    def test_fleet_workers_bit_identical(self):
        config = MachineConfig.nt4(seed=5, max_run_seconds=4_000.0)
        seq = run_fleet(config, 2, workers=1)
        par = run_fleet(config, 2, workers=2)
        assert len(seq) == len(par) == 2
        for a, b in zip(seq, par):
            assert a.crashed == b.crashed
            assert a.crash_time == b.crash_time
            assert a.duration == b.duration
            assert a.bundle.names == b.bundle.names
            for name in a.bundle.names:
                np.testing.assert_array_equal(
                    a.bundle[name].values, b.bundle[name].values)


class TestBackoffDelay:
    def test_deterministic_for_same_key_and_attempt(self):
        a = backoff_delay(2, key="campaign:3")
        b = backoff_delay(2, key="campaign:3")
        assert a == b

    def test_jitter_decorrelates_units(self):
        delays = {backoff_delay(1, key=f"unit:{i}") for i in range(8)}
        assert len(delays) > 1

    def test_exponential_growth_and_cap(self):
        base = [backoff_delay(n, base=1.0, cap=8.0, key="k") for n in (1, 2, 3, 4, 5, 6)]
        # raw schedule 1, 2, 4, 8, 8, 8 scaled by jitter in [0.5, 1.0)
        for n, delay in zip((1, 2, 3, 4, 5, 6), base):
            raw = min(8.0, 2.0 ** (n - 1))
            assert 0.5 * raw <= delay < raw

    def test_bad_attempt_rejected(self):
        with pytest.raises(ValidationError):
            backoff_delay(0)


class TestResilientMap:
    def test_all_ok_outcomes(self):
        outcomes = resilient_map(_square, [2, 3, 4], workers=1)
        assert [o.result for o in outcomes] == [4, 9, 16]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_transient_exception_retried_to_success(self):
        # every unit raises ChaosError on attempt 1, runs clean on attempt 2
        chaos = ChaosSpec(raise_rate=1.0, seed=1)
        with _obs.telemetry_session() as session:
            outcomes = resilient_map(
                _square, [2, 3], workers=1, retries=1, backoff_base=0.01,
                retry_exceptions=(ChaosError,),
                pre_unit=partial(chaos_pre_unit, chaos))
            retries = session.metrics.counter("perf.pool.retries").value
        assert [o.result for o in outcomes] == [4, 9]
        assert all(o.ok and o.attempts == 2 for o in outcomes)
        assert retries == 2

    def test_budget_exhausted_reports_failure(self):
        chaos = ChaosSpec(raise_rate=1.0, seed=1, max_failures_per_unit=99)
        outcomes = resilient_map(
            _square, [2, 3], workers=1, retries=1, backoff_base=0.01,
            retry_exceptions=(ChaosError,),
            pre_unit=partial(chaos_pre_unit, chaos))
        assert all(not o.ok for o in outcomes)
        assert all(o.error_kind == "exception" for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert all("injected" in o.error for o in outcomes)

    def test_non_retryable_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            resilient_map(_explode, [1, 2], workers=1,
                          retry_exceptions=(ChaosError,))

    def test_killed_workers_retried_bit_identical(self):
        # kill_rate=1: every worker dies mid-unit on attempt 1 (os._exit,
        # like the OOM killer); with a retry budget the fresh attempts
        # must produce exactly what a calm run produces.
        chaos = ChaosSpec(kill_rate=1.0, seed=3)
        with _obs.telemetry_session() as session:
            outcomes = resilient_map(
                _square, [2, 3, 4], workers=2, retries=2, backoff_base=0.01,
                pre_unit=partial(chaos_pre_unit, chaos))
            retries = session.metrics.counter("perf.pool.retries").value
        assert [o.result for o in outcomes] == [4, 9, 16]
        assert all(o.ok for o in outcomes)
        assert all(o.attempts >= 2 for o in outcomes)
        assert retries >= 3

    def test_hung_unit_times_out_and_fails_permanently(self):
        with _obs.telemetry_session() as session:
            outcomes = resilient_map(
                _sleep_for, [30.0, 0.01], workers=2, timeout=1.0,
                retries=1, backoff_base=0.01)
            timeouts = session.metrics.counter("perf.pool.timeouts").value
        hung, quick = outcomes
        assert not hung.ok
        assert hung.error_kind == "timeout"
        assert hung.attempts == 2
        assert "wall-clock timeout" in hung.error
        assert timeouts == 2
        assert quick.ok and quick.result == 0.01

    def test_on_result_checkpoints_successes(self):
        seen = []
        resilient_map(_square, [5, 6], workers=1,
                      on_result=lambda i, r: seen.append((i, r)))
        assert sorted(seen) == [(0, 25), (1, 36)]

    def test_validation(self):
        with pytest.raises(ValidationError):
            resilient_map(_square, [1], timeout=0.0)
        with pytest.raises(ValidationError):
            resilient_map(_square, [1], retries=-1)

    def test_parallel_map_raises_execution_error_when_budget_spent(self):
        chaos = ChaosSpec(raise_rate=1.0, seed=2, max_failures_per_unit=99)
        with pytest.raises(ExecutionError, match="failed permanently"):
            parallel_map(_square, [1, 2], workers=1,
                         retry_exceptions=(ChaosError,),
                         pre_unit=partial(chaos_pre_unit, chaos))

    def test_parallel_map_worker_death_fallback_still_works(self):
        # Historical behavior: no retry budget + mid-run worker death
        # falls back to computing in-process (attempt 2 runs clean).
        chaos = ChaosSpec(kill_rate=1.0, seed=5)
        with _obs.telemetry_session() as session:
            out = parallel_map(_square, [2, 3, 4], workers=2,
                               pre_unit=partial(chaos_pre_unit, chaos))
            fallbacks = session.metrics.counter("perf.pool.fallbacks").value
        assert out == [4, 9, 16]
        assert fallbacks >= 1
