"""Tests for the live status surface (repro.obs.statusd): the progress
board, the HTTP endpoints, and the control plane wired end to end around
a real parallel campaign — including the bit-identical guarantee."""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.analysis import cells_payload, execute_campaign
from repro.analysis.campaign import ExperimentSpec
from repro.exceptions import ValidationError
from repro.obs.resources import ResourceSampler
from repro.obs.statusd import STATUS_SCHEMA, StatusBoard, StatusServer
from repro.perf.pool import pool_worker_pids


@pytest.fixture(autouse=True)
def _clean_control_plane():
    obs.uninstall_flight_recorder()
    obs.disable_telemetry()
    yield
    obs.uninstall_flight_recorder()
    obs.disable_telemetry()


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def http_get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode()


class TestStatusBoard:
    def test_alpha_validated(self):
        with pytest.raises(ValidationError, match="ewma_alpha"):
            StatusBoard(ewma_alpha=0.0)
        with pytest.raises(ValidationError, match="ewma_alpha"):
            StatusBoard(ewma_alpha=1.5)

    def test_idle_snapshot(self):
        snap = StatusBoard(kind="watch").snapshot()
        assert snap["kind"] == "watch"
        assert snap["state"] == "idle"
        assert snap["total_units"] == 0
        assert snap["eta_seconds"] is None
        assert snap["last_progress_at"] is None

    def test_progress_eta_and_heartbeat(self):
        clock = FakeClock()
        board = StatusBoard(ewma_alpha=1.0, clock=clock)
        board.begin(total_units=4, cells={"aging": 2, "healthy": 2})
        clock.tick(10.0)
        board.unit_finished(cell="aging")
        snap = board.snapshot()
        assert snap["state"] == "running"
        assert snap["units_done"] == 1
        assert snap["units_remaining"] == 3
        assert snap["cells"]["aging"]["done"] == 1
        assert snap["last_progress_at"] == clock.now
        # alpha=1 makes the EWMA the last interval exactly: 10s x 3 left.
        assert snap["eta_seconds"] == pytest.approx(30.0)
        assert snap["units_per_second"] == pytest.approx(0.1)

    def test_failed_units_tracked(self):
        board = StatusBoard()
        board.begin(total_units=2, cells={"a": 2})
        board.unit_failed(cell="a", error="worker died")
        snap = board.snapshot()
        assert snap["units_failed"] == 1
        assert snap["cells"]["a"]["failed"] == 1
        assert snap["last_error"] == "worker died"

    def test_resumed_units_shrink_remaining(self):
        board = StatusBoard()
        board.begin(total_units=4, resumed=3)
        assert board.snapshot()["units_remaining"] == 1

    def test_remaining_never_negative(self):
        board = StatusBoard()
        board.begin(total_units=1)
        board.unit_finished()
        board.unit_finished()
        assert board.snapshot()["units_remaining"] == 0

    def test_unknown_cell_ignored(self):
        board = StatusBoard()
        board.begin(total_units=1, cells={"a": 1})
        board.unit_finished(cell="not-a-cell")  # must not raise
        assert board.snapshot()["units_done"] == 1

    def test_fields_merge_and_finish(self):
        board = StatusBoard()
        board.begin(total_units=1, journal="/tmp/j.jsonl")
        board.update(workers=2)
        board.finish("complete", missing_units=0)
        snap = board.snapshot()
        assert snap["state"] == "complete"
        assert snap["journal"] == "/tmp/j.jsonl"
        assert snap["workers"] == 2
        assert snap["missing_units"] == 0

    # -- ETA edge cases: never negative, never NaN ------------------------------

    @staticmethod
    def _assert_sane_eta(snap):
        eta = snap["eta_seconds"]
        rate = snap["units_per_second"]
        for value in (eta, rate):
            if value is not None:
                assert value == value, "ETA fields must never be NaN"
                assert value >= 0.0, "ETA fields must never be negative"

    def test_zero_duration_units(self):
        # Every unit finishes at the same clock instant (cache-hot
        # replays): the EWMA interval is 0, the ETA 0 or None — not NaN.
        clock = FakeClock()
        board = StatusBoard(clock=clock)
        board.begin(total_units=4)
        for _ in range(3):
            board.unit_finished()
        snap = board.snapshot()
        self._assert_sane_eta(snap)
        assert snap["eta_seconds"] in (None, 0.0)
        assert snap["units_remaining"] == 1

    def test_single_unit_campaign(self):
        clock = FakeClock()
        board = StatusBoard(clock=clock)
        board.begin(total_units=1)
        self._assert_sane_eta(board.snapshot())
        clock.tick(3.0)
        board.unit_finished()
        snap = board.snapshot()
        self._assert_sane_eta(snap)
        assert snap["eta_seconds"] is None  # nothing remaining
        assert snap["units_remaining"] == 0

    def test_resume_with_everything_done(self):
        # Resuming a finished campaign: zero pending units, no
        # unit_finished calls ever arrive.
        board = StatusBoard()
        board.begin(total_units=4, resumed=4)
        snap = board.snapshot()
        self._assert_sane_eta(snap)
        assert snap["eta_seconds"] is None
        assert snap["units_remaining"] == 0

    def test_eta_sane_under_clock_regression(self):
        # A clock stepping backwards between finishes must not produce a
        # negative interval, ETA or rate.
        clock = FakeClock()
        board = StatusBoard(ewma_alpha=1.0, clock=clock)
        board.begin(total_units=3)
        clock.tick(5.0)
        board.unit_finished()
        clock.tick(-10.0)
        board.unit_finished()
        snap = board.snapshot()
        self._assert_sane_eta(snap)
        assert snap["eta_seconds"] == pytest.approx(0.0)


class TestStatusServer:
    def test_port_validated(self):
        with pytest.raises(ValidationError, match="port"):
            StatusServer(port=70000)

    def test_unstarted_has_no_port(self):
        server = StatusServer()
        assert server.port is None
        assert server.url is None
        server.stop()  # idempotent no-op

    def test_endpoints(self):
        obs.enable_telemetry()
        obs.counter("campaign.runs_completed").inc(3)
        obs.counter("core.irrelevant").inc()
        board = StatusBoard()
        board.begin(total_units=3)
        sampler = ResourceSampler()
        sampler.sample_once()
        with StatusServer(board=board, resources=sampler) as server:
            assert server.port > 0

            code, body = http_get(server.url + "/healthz")
            assert code == 200
            assert json.loads(body) == {"status": "ok"}

            code, body = http_get(server.url + "/status")
            payload = json.loads(body)
            assert code == 200
            assert payload["schema"] == STATUS_SCHEMA
            assert payload["total_units"] == 3
            assert payload["counters"]["campaign.runs_completed"] == 3.0
            assert "core.irrelevant" not in payload["counters"]
            assert payload["resources"]["parent"]["pid"] == os.getpid()

            code, body = http_get(server.url + "/metrics")
            assert code == 200
            assert "# TYPE" in body
            assert body.endswith("# EOF\n")

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(server.url + "/nope")
            assert excinfo.value.code == 404
            assert "/status" in json.loads(excinfo.value.read())["paths"]
        assert server.port is None

    def test_stop_leaves_no_threads(self):
        server = StatusServer()
        server.start()
        server.stop()
        server.stop()  # idempotent
        assert "repro-statusd" not in {t.name for t in threading.enumerate()}


@pytest.fixture(scope="module")
def specs():
    return [
        ExperimentSpec(name="aging", scenario="stress", n_runs=2,
                       base_seed=31, max_run_seconds=20_000.0),
        ExperimentSpec(name="healthy", scenario="stress", n_runs=2,
                       base_seed=131, fault_factor=0.0,
                       max_run_seconds=6_000.0),
    ]


@pytest.fixture(scope="module")
def reference(specs):
    """The calm no-control-plane payload every instrumented run must equal."""
    return cells_payload(execute_campaign(specs).results)


class TestCampaignControlPlane:
    def test_live_scrapes_during_campaign(self, specs, reference, tmp_path):
        """Scrape /status and /metrics from a client thread while a real
        2-worker campaign runs with the full control plane attached."""
        session = obs.enable_telemetry()
        recorder = obs.install_flight_recorder(
            obs.FlightRecorder(path=tmp_path / "flight.json"))
        board = StatusBoard()
        sampler = ResourceSampler(
            interval=0.2, worker_pids=pool_worker_pids).start()
        server = StatusServer(board=board, resources=sampler)
        port = server.start()

        stop = threading.Event()
        statuses, metrics_pages, errors = [], [], []

        def scrape():
            base = f"http://127.0.0.1:{port}"
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(
                            base + "/status", timeout=10) as resp:
                        statuses.append(json.loads(resp.read()))
                    with urllib.request.urlopen(
                            base + "/metrics", timeout=10) as resp:
                        metrics_pages.append(resp.read().decode())
                except Exception as exc:  # pragma: no cover - fail the test
                    errors.append(exc)
                time.sleep(0.05)

        client = threading.Thread(target=scrape)
        client.start()
        try:
            outcome = execute_campaign(specs, workers=2, status=board)
        finally:
            stop.set()
            client.join(timeout=30)
            server.stop()
            sampler.stop()

        assert not errors
        assert outcome.complete

        # The control plane observed without perturbing: bit-identical
        # payload to the run with nothing attached.
        assert cells_payload(outcome.results) == reference

        # Every /status scrape was a valid, monotone document.
        assert statuses
        assert all(p["schema"] == STATUS_SCHEMA for p in statuses)
        dones = [p["units_done"] for p in statuses]
        assert dones == sorted(dones)
        assert any(p["state"] == "running" for p in statuses)

        # Every /metrics scrape was valid OpenMetrics text.
        assert metrics_pages
        assert all(page.endswith("# EOF\n") for page in metrics_pages)

        # The final document reports completion under the campaign trace.
        final = server.status_payload()
        assert final["state"] == "complete"
        assert final["units_done"] == 4
        assert final["units_remaining"] == 0
        assert final["trace_id"] == session.trace_id
        assert session.trace_id is not None
        assert final["counters"]["campaign.runs_completed"] == 4.0
        assert final["resources"]["parent"]["rss_bytes"] > 0

        # The recorder saw unit outcomes; a clean run dumps nothing.
        assert any(r["kind"] == "unit" for r in recorder.records())
        assert not (tmp_path / "flight.json").exists()

        # Clean shutdown: no control-plane threads survive.
        names = {t.name for t in threading.enumerate()}
        assert "repro-statusd" not in names
        assert "repro-resources" not in names

    def test_resume_surfaces_last_progress(self, tmp_path):
        specs = [ExperimentSpec(name="quick", scenario="stress", n_runs=1,
                                base_seed=9, fault_factor=0.0,
                                max_run_seconds=2_000.0)]
        journal = tmp_path / "j.jsonl"
        before = time.time()
        execute_campaign(specs, journal=journal)

        board = StatusBoard()
        outcome = execute_campaign(specs, journal=journal, resume=True,
                                   status=board)
        assert outcome.resumed_units == 1
        assert outcome.resumed_last_progress_at is not None
        assert before <= outcome.resumed_last_progress_at <= time.time()
        snap = board.snapshot()
        assert snap["units_resumed"] == 1
        assert (snap["resumed_last_progress_at"]
                == outcome.resumed_last_progress_at)
