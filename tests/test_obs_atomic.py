"""Atomic artifact writes: torn writes must never be visible at the
destination path, failed writes must leave nothing behind."""

import json
import os

import pytest

from repro.obs.atomic import (
    atomic_write,
    atomic_write_json,
    atomic_write_text,
    fsync_handle,
)
from repro.testing.chaos import TornWriteError, TornWriter


def no_tmp_orphans(directory) -> bool:
    return not [n for n in os.listdir(directory) if n.endswith(".tmp")]


class TestAtomicWrite:
    def test_success_replaces_path(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path) as handle:
            handle.write("payload")
        assert path.read_text() == "payload"
        assert no_tmp_orphans(tmp_path)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        with atomic_write(path) as handle:
            handle.write("x")
        assert path.read_text() == "x"

    def test_destination_absent_until_body_completes(self, tmp_path):
        path = tmp_path / "late.txt"
        with atomic_write(path) as handle:
            handle.write("almost")
            assert not path.exists()
        assert path.exists()

    def test_exception_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("partial")
                raise RuntimeError("crash mid-write")
        assert not path.exists()
        assert no_tmp_orphans(tmp_path)

    def test_exception_preserves_previous_version(self, tmp_path):
        path = tmp_path / "keep.txt"
        path.write_text("v1")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("v2 but torn")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "v1"
        assert no_tmp_orphans(tmp_path)

    def test_torn_write_leaves_destination_untouched(self, tmp_path):
        # The chaos harness' TornWriter dies partway through writing —
        # the atomic contract says the destination never shows it.
        path = tmp_path / "torn.txt"
        path.write_text("intact")
        with pytest.raises(TornWriteError):
            with atomic_write(path) as handle:
                torn = TornWriter(handle, fail_after_bytes=4)
                torn.write("this write will tear")
        assert path.read_text() == "intact"
        assert no_tmp_orphans(tmp_path)


class TestHelpers:
    def test_atomic_write_text(self, tmp_path):
        path = tmp_path / "t.txt"
        assert atomic_write_text(path, "hello") == str(path)
        assert path.read_text() == "hello"

    def test_atomic_write_json_round_trips_floats(self, tmp_path):
        payload = {"t": 1.7e9 + 0.25, "values": [1 / 3, 2**53 - 1.0]}
        path = tmp_path / "p.json"
        atomic_write_json(path, payload)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == payload

    def test_atomic_write_json_default_hook(self, tmp_path):
        path = tmp_path / "d.json"
        atomic_write_json(path, {"path": tmp_path}, default=str)
        assert json.loads(path.read_text())["path"] == str(tmp_path)

    def test_fsync_handle_tolerates_non_file(self, tmp_path):
        import io

        fsync_handle(io.StringIO())  # must not raise

        with open(tmp_path / "f.txt", "w") as handle:
            handle.write("x")
            fsync_handle(handle)
