"""Tests for the self-contained HTML dashboards (repro.obs.dashboard)."""

import re

import numpy as np
import pytest

from repro.core import OnlineAgingMonitor
from repro.exceptions import TraceError, ValidationError
from repro.generators import fbm
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.dashboard import (
    campaign_cells_from_manifests,
    render_campaign_dashboard,
    render_run_dashboard,
    write_dashboard,
)
from repro.obs.live import EventStreamWriter, LiveWatcher
from repro.obs.manifest import RunManifest


@pytest.fixture(scope="module")
def watch_events():
    """A realistic alarmed-then-crashed watch stream (module-scoped: slow)."""
    rng = np.random.default_rng(31)
    healthy = fbm(5000, 0.7, rng=rng)
    sick = healthy[-1] + 50.0 * rng.standard_normal(2000)
    x = np.concatenate([healthy, sick])
    monitor = OnlineAgingMonitor(chunk_size=128, history=512,
                                 indicator_window=256, n_warmup=1,
                                 n_calibration=10)
    engine = AlertEngine([AlertRule(
        name="ind-low", signal="indicator", kind="threshold", op="lt",
        value=0.0, severity="critical")])
    watcher = LiveWatcher(monitor, writer=EventStreamWriter(keep=True),
                          counter="x", engine=engine, sample_every=8,
                          status_every=1000.0)
    watcher.write_header({"type": "test", "seed": 31})
    for i, value in enumerate(x):
        watcher.feed(float(i), float(value))
    watcher.finalize(crash_time=float(x.size), crash_reason="memory")
    return watcher.writer.events


def cells_fixture():
    return {
        "stress-aging": {
            "scenario": "stress", "profile": "nt4", "fault_factor": 1.0,
            "runs": [
                {"seed": 1, "crashed": True, "crash_time": 9000.0,
                 "alarm_time": 4000.0, "lead_time": 5000.0,
                 "duration": 9000.0},
                {"seed": 2, "crashed": True, "crash_time": 8000.0,
                 "alarm_time": None, "lead_time": None, "duration": 8000.0},
            ],
            "crashed": 2, "detected": 1, "missed": 1, "median_lead": 5000.0,
            "false_alarms": 0, "lead_times": [5000.0],
        },
        "stress-healthy": {
            "scenario": "stress", "profile": "nt4", "fault_factor": 0.0,
            "runs": [
                {"seed": 60, "crashed": False, "crash_time": None,
                 "alarm_time": 7000.0, "lead_time": None,
                 "duration": 14000.0},
            ],
            "crashed": 0, "detected": 0, "missed": 0, "median_lead": None,
            "false_alarms": 1, "lead_times": [],
        },
    }


class TestRunDashboard:
    def test_renders_self_contained_html(self, watch_events):
        html = render_run_dashboard(watch_events)
        assert html.startswith("<!DOCTYPE html>")
        # No external resources of any kind.
        assert not re.search(r'(?:href|src)\s*=\s*"(?:https?:)?//', html)
        assert "<link" not in html
        assert "@import" not in html
        # Inline SVG charts for counter + indicator.
        assert html.count("<svg") == 2
        # Alarm and crash markers plus the alert table.
        assert "alarm" in html
        assert "crash" in html
        assert "ind-low" in html
        # KPI tiles include the lead time.
        assert "Lead time" in html

    def test_dark_mode_and_palette_tokens(self, watch_events):
        html = render_run_dashboard(watch_events)
        assert "prefers-color-scheme: dark" in html
        assert "--series-1" in html
        assert "--status-critical" in html

    def test_table_view_present(self, watch_events):
        # Contrast relief for the indicator series: a data table exists.
        html = render_run_dashboard(watch_events)
        assert "table view" in html

    def test_custom_title_escaped(self, watch_events):
        html = render_run_dashboard(watch_events,
                                    title="<script>alert(1)</script>")
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_rejects_invalid_stream(self):
        with pytest.raises(TraceError):
            render_run_dashboard([{"kind": "sample", "t": 0.0, "value": 1.0}])

    def test_quiet_run_renders(self):
        # A short, healthy watch (no alarm, no crash, no alerts).
        monitor = OnlineAgingMonitor(chunk_size=128, history=512,
                                     indicator_window=256, n_warmup=1,
                                     n_calibration=10)
        watcher = LiveWatcher(monitor, writer=EventStreamWriter(keep=True),
                              counter="x")
        watcher.write_header({"type": "test"})
        for i in range(300):
            watcher.feed(float(i), 100.0 + (i % 7))
        watcher.finalize()
        html = render_run_dashboard(watcher.writer.events)
        assert "no alerts fired" in html
        assert "survived" in html


class TestCampaignDashboard:
    def test_renders_from_manifests(self):
        manifest = RunManifest(command="campaign",
                               outcome={"cells": cells_fixture()})
        html = render_campaign_dashboard([manifest])
        assert html.startswith("<!DOCTYPE html>")
        assert "stress-aging" in html
        assert "stress-healthy" in html
        # Detection rate and false-alarm accounting.
        assert "Detection rate" in html
        assert "False alarms" in html
        # Lead-time strip plot dots carry per-run tooltips.
        assert "Lead-time distribution" in html

    def test_renders_from_cells_directly(self):
        html = render_campaign_dashboard(cells=cells_fixture())
        assert "stress-aging" in html

    def test_false_alarm_rows(self):
        html = render_campaign_dashboard(cells=cells_fixture())
        # The healthy run that alarmed at t=7000 appears in the table.
        assert "7,000s" in html

    def test_non_campaign_manifests_rejected(self):
        with pytest.raises(TraceError, match="no campaign cells"):
            render_campaign_dashboard([RunManifest(command="simulate")])

    def test_cells_extraction_skips_foreign_manifests(self):
        good = RunManifest(command="campaign",
                           outcome={"cells": cells_fixture()})
        noise = RunManifest(command="simulate", outcome={"crashed": True})
        cells = campaign_cells_from_manifests([noise, good])
        assert set(cells) == set(cells_fixture())

    def test_duplicate_cell_names_suffixed(self):
        m1 = RunManifest(command="campaign",
                         outcome={"cells": cells_fixture()})
        m2 = RunManifest(command="campaign",
                         outcome={"cells": cells_fixture()})
        cells = campaign_cells_from_manifests([m1, m2])
        assert len(cells) == 4
        assert "stress-aging#2" in cells


class TestWriteDashboard:
    def test_writes_file(self, tmp_path, watch_events):
        html = render_run_dashboard(watch_events)
        path = write_dashboard(html, tmp_path / "sub" / "report.html")
        with open(path) as handle:
            assert handle.read() == html

    def test_rejects_non_dashboard_text(self, tmp_path):
        with pytest.raises(ValidationError, match="doctype"):
            write_dashboard("<p>hello</p>", tmp_path / "x.html")
