"""Tests for the self-contained HTML dashboards (repro.obs.dashboard)."""

import re

import numpy as np
import pytest

from repro.core import OnlineAgingMonitor
from repro.exceptions import TraceError, ValidationError
from repro.generators import fbm
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.dashboard import (
    campaign_cells_from_manifests,
    render_campaign_dashboard,
    render_run_dashboard,
    write_dashboard,
)
from repro.obs.live import EventStreamWriter, LiveWatcher
from repro.obs.manifest import RunManifest


@pytest.fixture(scope="module")
def watch_events():
    """A realistic alarmed-then-crashed watch stream (module-scoped: slow)."""
    rng = np.random.default_rng(31)
    healthy = fbm(5000, 0.7, rng=rng)
    sick = healthy[-1] + 50.0 * rng.standard_normal(2000)
    x = np.concatenate([healthy, sick])
    monitor = OnlineAgingMonitor(chunk_size=128, history=512,
                                 indicator_window=256, n_warmup=1,
                                 n_calibration=10)
    engine = AlertEngine([AlertRule(
        name="ind-low", signal="indicator", kind="threshold", op="lt",
        value=0.0, severity="critical")])
    watcher = LiveWatcher(monitor, writer=EventStreamWriter(keep=True),
                          counter="x", engine=engine, sample_every=8,
                          status_every=1000.0)
    watcher.write_header({"type": "test", "seed": 31})
    for i, value in enumerate(x):
        watcher.feed(float(i), float(value))
    watcher.finalize(crash_time=float(x.size), crash_reason="memory")
    return watcher.writer.events


def cells_fixture():
    return {
        "stress-aging": {
            "scenario": "stress", "profile": "nt4", "fault_factor": 1.0,
            "runs": [
                {"seed": 1, "crashed": True, "crash_time": 9000.0,
                 "alarm_time": 4000.0, "lead_time": 5000.0,
                 "duration": 9000.0},
                {"seed": 2, "crashed": True, "crash_time": 8000.0,
                 "alarm_time": None, "lead_time": None, "duration": 8000.0},
            ],
            "crashed": 2, "detected": 1, "missed": 1, "median_lead": 5000.0,
            "false_alarms": 0, "lead_times": [5000.0],
        },
        "stress-healthy": {
            "scenario": "stress", "profile": "nt4", "fault_factor": 0.0,
            "runs": [
                {"seed": 60, "crashed": False, "crash_time": None,
                 "alarm_time": 7000.0, "lead_time": None,
                 "duration": 14000.0},
            ],
            "crashed": 0, "detected": 0, "missed": 0, "median_lead": None,
            "false_alarms": 1, "lead_times": [],
        },
    }


class TestRunDashboard:
    def test_renders_self_contained_html(self, watch_events):
        html = render_run_dashboard(watch_events)
        assert html.startswith("<!DOCTYPE html>")
        # No external resources of any kind.
        assert not re.search(r'(?:href|src)\s*=\s*"(?:https?:)?//', html)
        assert "<link" not in html
        assert "@import" not in html
        # Inline SVG charts for counter + indicator.
        assert html.count("<svg") == 2
        # Alarm and crash markers plus the alert table.
        assert "alarm" in html
        assert "crash" in html
        assert "ind-low" in html
        # KPI tiles include the lead time.
        assert "Lead time" in html

    def test_dark_mode_and_palette_tokens(self, watch_events):
        html = render_run_dashboard(watch_events)
        assert "prefers-color-scheme: dark" in html
        assert "--series-1" in html
        assert "--status-critical" in html

    def test_table_view_present(self, watch_events):
        # Contrast relief for the indicator series: a data table exists.
        html = render_run_dashboard(watch_events)
        assert "table view" in html

    def test_custom_title_escaped(self, watch_events):
        html = render_run_dashboard(watch_events,
                                    title="<script>alert(1)</script>")
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_rejects_invalid_stream(self):
        with pytest.raises(TraceError):
            render_run_dashboard([{"kind": "sample", "t": 0.0, "value": 1.0}])

    def test_quiet_run_renders(self):
        # A short, healthy watch (no alarm, no crash, no alerts).
        monitor = OnlineAgingMonitor(chunk_size=128, history=512,
                                     indicator_window=256, n_warmup=1,
                                     n_calibration=10)
        watcher = LiveWatcher(monitor, writer=EventStreamWriter(keep=True),
                              counter="x")
        watcher.write_header({"type": "test"})
        for i in range(300):
            watcher.feed(float(i), 100.0 + (i % 7))
        watcher.finalize()
        html = render_run_dashboard(watcher.writer.events)
        assert "no alerts fired" in html
        assert "survived" in html


class TestCampaignDashboard:
    def test_renders_from_manifests(self):
        manifest = RunManifest(command="campaign",
                               outcome={"cells": cells_fixture()})
        html = render_campaign_dashboard([manifest])
        assert html.startswith("<!DOCTYPE html>")
        assert "stress-aging" in html
        assert "stress-healthy" in html
        # Detection rate and false-alarm accounting.
        assert "Detection rate" in html
        assert "False alarms" in html
        # Lead-time strip plot dots carry per-run tooltips.
        assert "Lead-time distribution" in html

    def test_renders_from_cells_directly(self):
        html = render_campaign_dashboard(cells=cells_fixture())
        assert "stress-aging" in html

    def test_false_alarm_rows(self):
        html = render_campaign_dashboard(cells=cells_fixture())
        # The healthy run that alarmed at t=7000 appears in the table.
        assert "7,000s" in html

    def test_non_campaign_manifests_rejected(self):
        with pytest.raises(TraceError, match="no campaign cells"):
            render_campaign_dashboard([RunManifest(command="simulate")])

    def test_cells_extraction_skips_foreign_manifests(self):
        good = RunManifest(command="campaign",
                           outcome={"cells": cells_fixture()})
        noise = RunManifest(command="simulate", outcome={"crashed": True})
        cells = campaign_cells_from_manifests([noise, good])
        assert set(cells) == set(cells_fixture())

    def test_duplicate_cell_names_suffixed(self):
        m1 = RunManifest(command="campaign",
                         outcome={"cells": cells_fixture()})
        m2 = RunManifest(command="campaign",
                         outcome={"cells": cells_fixture()})
        cells = campaign_cells_from_manifests([m1, m2])
        assert len(cells) == 4
        assert "stress-aging#2" in cells


class TestWriteDashboard:
    def test_writes_file(self, tmp_path, watch_events):
        html = render_run_dashboard(watch_events)
        path = write_dashboard(html, tmp_path / "sub" / "report.html")
        with open(path) as handle:
            assert handle.read() == html

    def test_rejects_non_dashboard_text(self, tmp_path):
        with pytest.raises(ValidationError, match="doctype"):
            write_dashboard("<p>hello</p>", tmp_path / "x.html")


class TestGoldenBytes:
    """Byte-identity freeze: extracting the shared chart helpers into
    repro.obs._chart and adding timeline/cost panels must not change a
    single byte of existing dashboards.  These hashes were taken from
    the pre-refactor renderer on fixed synthetic inputs."""

    RUN_SHA = ("6918bfa32b18a953b68d0d37c108056371b276d0"
               "7578e35c9055c95919ff4cba")
    CAMPAIGN_SHA = ("2fe933a2d2e274f1347cab2577687218aefa095b"
                    "8d6a8624b3a04ccbaedb4de9")

    def _golden_events(self):
        monitor = OnlineAgingMonitor(chunk_size=128, history=512,
                                     indicator_window=256, n_warmup=1,
                                     n_calibration=10)
        watcher = LiveWatcher(monitor, writer=EventStreamWriter(keep=True),
                              counter="x")
        watcher.write_header({"type": "golden", "seed": 0})
        for i in range(600):
            watcher.feed(float(i), 100.0 + (i % 7) - (i % 13))
        watcher.finalize()
        return watcher.writer.events

    def test_run_dashboard_bytes_frozen(self):
        import hashlib

        html = render_run_dashboard(self._golden_events(),
                                    title="golden-run")
        digest = hashlib.sha256(html.encode("utf-8")).hexdigest()
        assert digest == self.RUN_SHA

    def test_campaign_dashboard_bytes_frozen(self):
        import hashlib

        html = render_campaign_dashboard(cells=cells_fixture(),
                                         title="golden-campaign")
        digest = hashlib.sha256(html.encode("utf-8")).hexdigest()
        assert digest == self.CAMPAIGN_SHA

    def test_absent_history_changes_nothing(self):
        base = render_campaign_dashboard(cells=cells_fixture())
        again = render_campaign_dashboard(cells=cells_fixture(),
                                          timeline=None, costs=None)
        assert again == base


class TestMultiLineChart:
    def test_series_polylines_and_legend(self):
        from repro.obs._chart import multi_line_chart

        html = multi_line_chart("rss", "Resident set size", [
            ("parent", [0.0, 1.0, 2.0], [100.0, 110.0, 120.0]),
            ("worker 0", [0.0, 1.0, 2.0], [50.0, 55.0, 60.0]),
        ])
        assert html.count("<polyline") == 2
        assert 'class="line s1"' in html
        assert 'class="line s3"' in html
        assert "parent" in html and "worker 0" in html
        assert html.count('class="swatch') == 2
        assert 'data-chart="rss"' in html

    def test_empty_series_render_placeholder(self):
        from repro.obs._chart import multi_line_chart

        html = multi_line_chart("rss", "Resident set size", [
            ("parent", [], []),
        ])
        assert "no data" in html
        assert "<svg" not in html

    def test_markers_render_dots_and_event_lines(self):
        from repro.obs._chart import _Marker, multi_line_chart

        html = multi_line_chart("x", "t", [
            ("a", [0.0, 10.0], [1.0, 2.0]),
        ], markers=[
            _Marker(2.0, "retry", "warning", dot=True, title="retry #1"),
            _Marker(5.0, "died", "crash", title="worker death"),
        ])
        assert '<circle class="mark warning"' in html
        assert '<line class="event crash"' in html
        assert "retry #1" in html

    def test_label_escaped(self):
        from repro.obs._chart import multi_line_chart

        html = multi_line_chart("x", 'a<b>"t"', [
            ("<s>", [0.0], [1.0]),
        ])
        assert "<b>" not in html
        assert "<s>" not in html


def timeline_records():
    """A hand-built valid repro.timeline/1 stream with annotations."""
    from repro.obs.timeline import TIMELINE_SCHEMA

    def frame(seq, t, done, rate, eta, parent_rss, worker_rss):
        return {
            "kind": "frame", "seq": seq, "t": t, "wall_time": 5e9 + t,
            "counters": {"campaign.runs_completed": done}, "deltas": {},
            "progress": {
                "state": "running", "total_units": 4, "units_done": done,
                "units_failed": 0, "units_remaining": 4 - done,
                "units_per_second": rate, "eta_seconds": eta,
                "last_progress_at": 5e9 + t,
            },
            "resources": {
                "parent_rss_bytes": parent_rss, "parent_cpu_seconds": t,
                "workers": [{"ordinal": 0, "rss_bytes": worker_rss,
                             "cpu_seconds": t / 2}],
            },
        }

    return [
        {"kind": "header", "schema": TIMELINE_SCHEMA, "t": 0.0,
         "wall_time": 5e9, "pid": 1, "interval": 1.0},
        frame(0, 1.0, 1, 1.0, 3.0, 1000, 400),
        {"kind": "annotation", "t": 1.5, "wall_time": 5e9 + 1.5,
         "event": "retry", "index": 2, "attempt": 1},
        frame(1, 2.0, 2, 1.2, 1.7, 1100, 600),
        {"kind": "annotation", "t": 2.5, "wall_time": 5e9 + 2.5,
         "event": "worker-death", "index": 3},
        frame(2, 3.0, 4, 0.9, 0.0, 900, 500),
        {"kind": "end", "t": 3.5, "wall_time": 5e9 + 3.5, "status": "ok",
         "frames": 3, "annotations": 2},
    ]


def costs_fixture():
    from repro.obs.costs import build_cost_profile

    spans = [
        {"path": "campaign-pool", "duration": 10.0, "attrs": {}},
        {"path": "campaign-pool/campaign-worker/cell-run/machine-run",
         "duration": 5.0, "attrs": {"worker_ordinal": 0}},
        {"path": "campaign-pool/campaign-worker/cell-run/holder",
         "duration": 3.0, "attrs": {"worker_ordinal": 0}},
    ]
    return build_cost_profile(spans)


class TestTimelineDashboard:
    def test_renders_self_contained_page(self):
        from repro.obs.dashboard import render_timeline_dashboard

        html = render_timeline_dashboard(timeline_records())
        assert html.startswith("<!DOCTYPE html>")
        assert not re.search(r'(?:href|src)\s*=\s*"(?:https?:)?//', html)
        assert "Campaign timeline" in html
        for chart_id in ("tl-throughput", "tl-rss", "tl-eta"):
            assert f'data-chart="{chart_id}"' in html
        # Per-worker RSS legend and the disruption tile.
        assert "worker 0" in html
        assert "Disruptions" in html

    def test_annotations_become_markers(self):
        from repro.obs.dashboard import render_timeline_dashboard

        html = render_timeline_dashboard(timeline_records())
        # retry -> baseline dot, worker-death -> full-height event line.
        assert '<circle class="mark warning"' in html
        assert '<line class="event crash"' in html

    def test_costs_panel_included_when_given(self):
        from repro.obs.dashboard import render_timeline_dashboard

        base = render_timeline_dashboard(timeline_records())
        html = render_timeline_dashboard(timeline_records(),
                                         costs=costs_fixture())
        assert "Cost attribution" not in base
        assert "Cost attribution" in html
        assert "pool-overhead" in html
        assert "cwt-holder" in html

    def test_rejects_invalid_stream(self):
        from repro.obs.dashboard import render_timeline_dashboard

        with pytest.raises(ValidationError):
            render_timeline_dashboard([{"kind": "frame", "seq": 0,
                                        "t": 0.0}])

    def test_campaign_dashboard_gains_history_section(self):
        html = render_campaign_dashboard(cells=cells_fixture(),
                                         timeline=timeline_records(),
                                         costs=costs_fixture())
        assert "stress-aging" in html  # cells still there
        assert "Campaign timeline" in html
        assert "Cost attribution" in html

    def test_costs_alone_render_without_timeline(self):
        html = render_campaign_dashboard(cells=cells_fixture(),
                                         costs=costs_fixture())
        assert "Cost attribution" in html
        assert "Campaign timeline" not in html
