"""Unit tests for block bootstrap and ROC scoring."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ValidationError
from repro.stats import auc, block_bootstrap_ci, roc_curve, score_detections


class TestBlockBootstrap:
    def test_mean_ci_covers_truth(self, rng):
        x = 5.0 + rng.standard_normal(400)
        point, lo, hi = block_bootstrap_ci(x, np.mean, n_resamples=300, rng=rng)
        assert lo < 5.0 < hi
        assert point == pytest.approx(5.0, abs=0.2)

    def test_interval_widens_with_confidence(self, rng):
        x = rng.standard_normal(300)
        _, lo90, hi90 = block_bootstrap_ci(x, np.mean, confidence=0.90, rng=rng)
        _, lo99, hi99 = block_bootstrap_ci(x, np.mean, confidence=0.99, rng=rng)
        assert (hi99 - lo99) > (hi90 - lo90)

    def test_dependent_series_wider_than_iid_naive(self, rng):
        # Strongly autocorrelated series: block bootstrap should produce a
        # wider interval than tiny blocks (which destroy the dependence).
        n = 600
        e = rng.standard_normal(n)
        x = np.empty(n)
        x[0] = e[0]
        for i in range(1, n):
            x[i] = 0.9 * x[i - 1] + e[i]
        _, lo_small, hi_small = block_bootstrap_ci(
            x, np.mean, block_length=2, n_resamples=400, rng=np.random.default_rng(9))
        _, lo_big, hi_big = block_bootstrap_ci(
            x, np.mean, block_length=60, n_resamples=400, rng=np.random.default_rng(9))
        assert (hi_big - lo_big) > (hi_small - lo_small)

    def test_block_length_bounds(self, rng):
        with pytest.raises(AnalysisError):
            block_bootstrap_ci(rng.standard_normal(20), np.mean, block_length=25)

    def test_bad_confidence(self, rng):
        with pytest.raises(ValidationError):
            block_bootstrap_ci(rng.standard_normal(50), np.mean, confidence=1.0)

    def test_nonfinite_statistic_rejected(self, rng):
        with pytest.raises(AnalysisError):
            block_bootstrap_ci(
                rng.standard_normal(50), lambda a: float("nan"), rng=rng)


class TestScoreDetections:
    def test_all_detected(self):
        out = score_detections([900.0, 800.0], [1000.0, 1000.0])
        assert out.n_detected == 2
        assert out.detection_rate == 1.0
        assert out.median_lead_time == pytest.approx(150.0)

    def test_missed_when_none(self):
        out = score_detections([None], [1000.0])
        assert out.n_missed == 1
        assert np.isnan(out.median_lead_time)

    def test_alarm_after_crash_is_missed(self):
        out = score_detections([1500.0], [1000.0])
        assert out.n_missed == 1

    def test_premature_alarm(self):
        # Alarm at 2% of life with max_lead_fraction=0.9 -> premature.
        out = score_detections([20.0], [1000.0])
        assert out.n_premature == 1

    def test_min_lead_enforced(self):
        out = score_detections([995.0], [1000.0], min_lead=10.0)
        assert out.n_missed == 1

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            score_detections([None], [1000.0, 2000.0])

    def test_nonpositive_crash_rejected(self):
        with pytest.raises(ValidationError):
            score_detections([None], [0.0])

    def test_mixed_accounting_sums(self):
        out = score_detections([900.0, None, 10.0, 1500.0], [1000.0] * 4)
        assert out.n_runs == 4
        assert out.n_detected + out.n_premature + out.n_missed == 4


def _roc_curve_loop(pos_scores, neg_scores):
    """The original O(n·m) sweep, kept as the reference implementation:
    the vectorised roc_curve must reproduce it bit for bit."""
    pos = np.asarray(pos_scores, dtype=float)
    neg = np.asarray(neg_scores, dtype=float)
    thresholds = np.unique(np.concatenate([pos, neg]))[::-1]
    fpr = [0.0]
    tpr = [0.0]
    for th in thresholds:
        tpr.append(np.mean(pos >= th))
        fpr.append(np.mean(neg >= th))
    fpr.append(1.0)
    tpr.append(1.0)
    return np.asarray(fpr), np.asarray(tpr)


class TestRoc:
    def test_perfect_separation(self):
        fpr, tpr = roc_curve([10.0, 11.0, 12.0], [1.0, 2.0, 3.0])
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_no_separation(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal(2000)
        fpr, tpr = roc_curve(scores[:1000], scores[1000:])
        assert auc(fpr, tpr) == pytest.approx(0.5, abs=0.05)

    def test_inverted_scores(self):
        fpr, tpr = roc_curve([1.0, 2.0], [10.0, 11.0])
        assert auc(fpr, tpr) == pytest.approx(0.0, abs=1e-12)

    def test_curve_endpoints(self):
        fpr, tpr = roc_curve([5.0], [1.0])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_auc_requires_sorted_fpr(self):
        with pytest.raises(AnalysisError):
            auc([0.0, 0.5, 0.2], [0.0, 0.5, 1.0])

    @pytest.mark.parametrize("seed", range(8))
    def test_vectorised_matches_loop_bit_for_bit(self, seed):
        # Property test over random pools, including heavy ties and
        # unbalanced sizes: the sort-based sweep must equal the loop
        # reference exactly (same counts, same float divisions).
        rng = np.random.default_rng(seed)
        n_pos = int(rng.integers(1, 40))
        n_neg = int(rng.integers(1, 40))
        if seed % 2:
            # quantised scores -> many exact ties across both pools
            pos = np.round(rng.standard_normal(n_pos) * 2) / 2 + 0.5
            neg = np.round(rng.standard_normal(n_neg) * 2) / 2
        else:
            pos = rng.standard_normal(n_pos) + 0.5
            neg = rng.standard_normal(n_neg)
        fpr_v, tpr_v = roc_curve(pos, neg)
        fpr_l, tpr_l = _roc_curve_loop(pos, neg)
        assert np.array_equal(fpr_v, fpr_l)
        assert np.array_equal(tpr_v, tpr_l)

    def test_ge_semantics_at_threshold(self):
        # A threshold equal to a score counts that score as positive
        # (>= sweep, as now documented).
        fpr, tpr = roc_curve([1.0, 2.0], [1.0])
        # at threshold 2.0: tpr=0.5, fpr=0; at threshold 1.0: tpr=1, fpr=1
        assert tpr[1] == pytest.approx(0.5) and fpr[1] == 0.0
        assert tpr[2] == 1.0 and fpr[2] == 1.0


class TestEmptyOutcomeRates:
    def test_zero_runs_rates_are_nan(self):
        # An empty cell has no evidence — 0.0 would read as "0% detected".
        from repro.stats.roc import DetectionOutcome

        out = DetectionOutcome(n_runs=0, n_detected=0, n_premature=0,
                               n_missed=0, lead_times=())
        assert np.isnan(out.detection_rate)
        assert np.isnan(out.premature_rate)

    def test_nonempty_rates_unchanged(self):
        out = score_detections([900.0, None], [1000.0, 1000.0])
        assert out.detection_rate == pytest.approx(0.5)
        assert out.premature_rate == 0.0
