"""HolderEngine protocol: registry, conformance, cross-engine equivalence."""

import numpy as np
import pytest

from repro.core import (
    HolderEngine,
    HolderResult,
    create_holder_engine,
    holder_engine_names,
    register_holder_engine,
)
from repro.core.engines import (
    BatchHolderEngine,
    OnlineHolderEngine,
    SlidingHolderEngine,
    _REGISTRY,
)
from repro.core.holder import wavelet_holder
from repro.core.online import OnlineAgingMonitor
from repro.core.pipeline import analyze_counter
from repro.exceptions import AnalysisError, ValidationError
from repro.trace import TimeSeries

ENGINES = ("batch", "sliding", "online")


def _signal(n, seed=7):
    rng = np.random.default_rng(seed)
    drift = np.linspace(0.0, 2.0, n) ** 2
    values = np.cumsum(rng.normal(size=n) * (1.0 + drift))
    return np.arange(n, dtype=float), values


class TestRegistry:
    def test_canonical_engines_registered(self):
        assert holder_engine_names() == ("batch", "online", "sliding")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="holder_engine"):
            create_holder_engine("warp")

    def test_factory_classes(self):
        assert isinstance(create_holder_engine("batch"), BatchHolderEngine)
        assert isinstance(create_holder_engine("sliding"),
                          SlidingHolderEngine)
        assert isinstance(create_holder_engine("online"), OnlineHolderEngine)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            register_holder_engine("", BatchHolderEngine)

    def test_registration_replaces_and_restores(self):
        original = _REGISTRY["batch"]
        try:
            register_holder_engine("batch", SlidingHolderEngine)
            assert isinstance(create_holder_engine("batch"),
                              SlidingHolderEngine)
        finally:
            register_holder_engine("batch", original)
        assert isinstance(create_holder_engine("batch"), BatchHolderEngine)


class TestConformance:
    """Every registered engine satisfies the protocol and its
    equivalence contract against the batch oracle."""

    @pytest.mark.parametrize("name", ENGINES)
    def test_satisfies_protocol(self, name):
        engine = create_holder_engine(name)
        assert isinstance(engine, HolderEngine)
        assert engine.name == name

    @pytest.mark.parametrize("name", ENGINES)
    def test_estimate_identical_to_batch_oracle(self, name):
        _, v = _signal(2_048)
        result = create_holder_engine(name).estimate(v)
        assert isinstance(result, HolderResult)
        assert result.engine == name
        np.testing.assert_array_equal(result.h, wavelet_holder(v))

    @pytest.mark.parametrize("name", ENGINES)
    @pytest.mark.parametrize("tail", (64, 256))
    def test_tail_matches_full_trajectory(self, name, tail):
        _, v = _signal(2_048)
        engine = create_holder_engine(name)
        np.testing.assert_allclose(
            engine.estimate_tail(v, tail), engine.estimate(v).h[-tail:],
            rtol=1e-9, atol=1e-8)

    @pytest.mark.parametrize("name", ENGINES)
    def test_holder_kwargs_plumbed_through(self, name):
        _, v = _signal(1_024)
        engine = create_holder_engine(name, n_scales=8, max_scale=16.0)
        expected = wavelet_holder(v, n_scales=8, max_scale=16.0)
        np.testing.assert_array_equal(engine.estimate(v).h, expected)
        np.testing.assert_allclose(engine.estimate_tail(v, 128),
                                   expected[-128:], rtol=1e-9, atol=1e-8)


class TestStreaming:
    @pytest.mark.parametrize("name", ENGINES)
    def test_none_until_history_fills_then_tail(self, name):
        engine = create_holder_engine(name, history=512, tail=128)
        t, v = _signal(700, seed=3)
        assert engine.update_many(t[:400], v[:400]) is None
        assert engine.n_buffered == 400
        result = engine.update_many(t[400:], v[400:])
        assert isinstance(result, HolderResult)
        assert len(result) == 128
        assert engine.n_buffered == 512  # trimmed to history

    @pytest.mark.parametrize("name", ("sliding", "online"))
    def test_stream_tail_matches_batch_stream(self, name):
        t, v = _signal(900, seed=5)
        batch = create_holder_engine("batch", history=512, tail=128)
        other = create_holder_engine(name, history=512, tail=128)
        for start, stop in ((0, 300), (300, 601), (601, 900)):
            rb = batch.update_many(t[start:stop], v[start:stop])
            ro = other.update_many(t[start:stop], v[start:stop])
            assert (rb is None) == (ro is None)
            if rb is not None:
                np.testing.assert_allclose(ro.h, rb.h,
                                           rtol=1e-9, atol=1e-8)

    def test_empty_batch_is_noop(self):
        engine = create_holder_engine("batch", history=256, tail=64)
        assert engine.update_many([], []) is None
        assert engine.n_buffered == 0

    @pytest.mark.parametrize("times,values", [
        ([0.0, 1.0], [1.0]),                        # length mismatch
        ([[0.0, 1.0]], [[1.0, 2.0]]),               # not 1-D
        ([0.0, float("nan")], [1.0, 2.0]),          # non-finite time
        ([0.0, 1.0], [1.0, float("inf")]),          # non-finite value
        ([1.0, 1.0], [1.0, 2.0]),                   # not strictly ordered
    ])
    def test_bad_batches_rejected(self, times, values):
        engine = create_holder_engine("batch", history=256, tail=64)
        with pytest.raises(AnalysisError):
            engine.update_many(times, values)

    def test_time_must_advance_across_calls(self):
        engine = create_holder_engine("batch", history=256, tail=64)
        engine.update_many([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(AnalysisError, match="strict time order"):
            engine.update_many([1.0, 2.0], [3.0, 4.0])


class TestConstructionValidation:
    def test_tail_cannot_exceed_history(self):
        with pytest.raises(ValidationError, match="cannot exceed history"):
            create_holder_engine("batch", history=256, tail=512)

    def test_history_floor(self):
        with pytest.raises(ValidationError):
            create_holder_engine("batch", history=16, tail=8)

    @pytest.mark.parametrize("name", ("sliding", "online"))
    def test_bad_holder_kwargs_fail_eagerly(self, name):
        with pytest.raises(AnalysisError, match="holder_kwargs"):
            create_holder_engine(name, no_such_kwarg=1)


class TestMonitorIntegration:
    def test_online_engine_matches_sliding_in_monitor(self):
        t, v = _signal(6_144)
        sliding = OnlineAgingMonitor(holder_engine="sliding")
        online = OnlineAgingMonitor(holder_engine="online")
        sliding.update_many(t, v)
        online.update_many(t, v)
        np.testing.assert_array_equal(sliding.indicator_history,
                                      online.indicator_history)
        np.testing.assert_array_equal(sliding.indicator_times,
                                      online.indicator_times)
        assert sliding.alarm_time == online.alarm_time

    def test_monitor_accepts_engine_instance(self):
        engine = create_holder_engine("batch", history=4096, tail=512)
        monitor = OnlineAgingMonitor(holder_engine=engine)
        t, v = _signal(5_120)
        monitor.update_many(t, v)
        assert len(monitor.indicator_history) > 0


class TestPipelineIntegration:
    @pytest.mark.parametrize("name", ("sliding", "online"))
    def test_analysis_payload_identical_across_engines(self, name):
        _, v = _signal(2_048, seed=21)
        ts = TimeSeries.from_values(v, name="avail")
        kwargs = dict(indicator_window=128, indicator_step=8)
        base = analyze_counter(ts, holder_engine="batch", **kwargs)
        other = analyze_counter(ts, holder_engine=name, **kwargs)
        np.testing.assert_array_equal(base.trajectory.h, other.trajectory.h)
        np.testing.assert_array_equal(base.indicator.series.values,
                                      other.indicator.series.values)
        assert base.alarm.fired == other.alarm.fired
        assert base.alarm.alarm_time == other.alarm.alarm_time

    def test_unknown_engine_rejected_in_pipeline(self):
        _, v = _signal(1_024)
        ts = TimeSeries.from_values(v, name="avail")
        with pytest.raises(ValidationError, match="holder_engine"):
            analyze_counter(ts, holder_engine="warp", indicator_window=128)

    def test_experiment_spec_validates_engine(self):
        from repro.analysis.campaign import ExperimentSpec

        with pytest.raises(ValidationError, match="holder_engine"):
            ExperimentSpec(name="bad", holder_engine="warp")
        spec = ExperimentSpec(name="ok", holder_engine="sliding")
        assert spec.holder_engine == "sliding"
