"""Round-trip and malformed-input tests for trace CSV I/O."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.trace import TimeSeries, TraceBundle, read_csv, write_csv


def make_bundle():
    b = TraceBundle(metadata={"crash_time": 123.5, "os_profile": "nt4"})
    b.add(TimeSeries.from_values([1.0, 2.0, 3.0], name="a", units="bytes"))
    b.add(TimeSeries(times=[0.0, 2.0], values=[10.0, 30.0], name="b"))
    return b


class TestRoundTrip:
    def test_values_survive(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(make_bundle(), path)
        back = read_csv(path)
        np.testing.assert_allclose(back["a"].values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(back["a"].times, [0.0, 1.0, 2.0])

    def test_metadata_survives(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(make_bundle(), path)
        back = read_csv(path)
        assert back.metadata["crash_time"] == 123.5
        assert back.metadata["os_profile"] == "nt4"

    def test_unaligned_series_get_gaps(self, tmp_path):
        # 'b' is sampled at t=0,2 only; on the union grid t=1 is a gap.
        path = tmp_path / "t.csv"
        write_csv(make_bundle(), path)
        back = read_csv(path)
        b = back["b"]
        assert len(b) == 3
        assert np.isnan(b.values[1])
        np.testing.assert_allclose(b.values[[0, 2]], [10.0, 30.0])

    def test_nan_gap_round_trips(self, tmp_path):
        bundle = TraceBundle()
        bundle.add(TimeSeries(times=[0, 1, 2], values=[1.0, np.nan, 3.0], name="g"))
        path = tmp_path / "t.csv"
        write_csv(bundle, path)
        back = read_csv(path)
        assert np.isnan(back["g"].values[1])

    def test_high_precision_times(self, tmp_path):
        bundle = TraceBundle()
        times = [0.123456789, 1.987654321]
        bundle.add(TimeSeries(times=times, values=[1.0, 2.0], name="p"))
        path = tmp_path / "t.csv"
        write_csv(bundle, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["p"].times, times, rtol=1e-9)


class TestErrors:
    def test_empty_bundle_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="empty"):
            write_csv(TraceBundle(), tmp_path / "t.csv")

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(TraceError, match="header"):
            read_csv(path)

    def test_wrong_first_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,a\n0,1\n")
        with pytest.raises(TraceError, match="time"):
            read_csv(path)

    def test_no_counter_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time\n0\n")
        with pytest.raises(TraceError, match="no counter columns"):
            read_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a\n0,1,extra\n")
        with pytest.raises(TraceError, match="cells"):
            read_csv(path)

    def test_malformed_metadata(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# nonsense-without-equals\ntime,a\n0,1\n")
        with pytest.raises(TraceError, match="metadata"):
            read_csv(path)

    def test_no_data_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a\n")
        with pytest.raises(TraceError, match="no data rows"):
            read_csv(path)


class TestSimulatorBundleRoundTrip:
    def test_full_run_bundle(self, tmp_path, nt4_run):
        path = tmp_path / "run.csv"
        write_csv(nt4_run.bundle, path)
        back = read_csv(path)
        assert set(back.names) == set(nt4_run.bundle.names)
        assert back.metadata["crash_time"] == pytest.approx(nt4_run.crash_time)
        orig = nt4_run.bundle["AvailableBytes"].dropna()
        readback = back["AvailableBytes"].dropna()
        np.testing.assert_allclose(readback.values, orig.values)
