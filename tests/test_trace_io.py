"""Round-trip and malformed-input tests for trace CSV I/O."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TraceError
from repro.trace import (
    TimeSeries,
    TraceBundle,
    read_csv,
    validate_metadata,
    write_csv,
)


def make_bundle():
    b = TraceBundle(metadata={"crash_time": 123.5, "os_profile": "nt4"})
    b.add(TimeSeries.from_values([1.0, 2.0, 3.0], name="a", units="bytes"))
    b.add(TimeSeries(times=[0.0, 2.0], values=[10.0, 30.0], name="b"))
    return b


class TestRoundTrip:
    def test_values_survive(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(make_bundle(), path)
        back = read_csv(path)
        np.testing.assert_allclose(back["a"].values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(back["a"].times, [0.0, 1.0, 2.0])

    def test_metadata_survives(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(make_bundle(), path)
        back = read_csv(path)
        assert back.metadata["crash_time"] == 123.5
        assert back.metadata["os_profile"] == "nt4"

    def test_unaligned_series_get_gaps(self, tmp_path):
        # 'b' is sampled at t=0,2 only; on the union grid t=1 is a gap.
        path = tmp_path / "t.csv"
        write_csv(make_bundle(), path)
        back = read_csv(path)
        b = back["b"]
        assert len(b) == 3
        assert np.isnan(b.values[1])
        np.testing.assert_allclose(b.values[[0, 2]], [10.0, 30.0])

    def test_nan_gap_round_trips(self, tmp_path):
        bundle = TraceBundle()
        bundle.add(TimeSeries(times=[0, 1, 2], values=[1.0, np.nan, 3.0], name="g"))
        path = tmp_path / "t.csv"
        write_csv(bundle, path)
        back = read_csv(path)
        assert np.isnan(back["g"].values[1])

    def test_high_precision_times(self, tmp_path):
        bundle = TraceBundle()
        times = [0.123456789, 1.987654321]
        bundle.add(TimeSeries(times=times, values=[1.0, 2.0], name="p"))
        path = tmp_path / "t.csv"
        write_csv(bundle, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["p"].times, times, rtol=1e-9)


class TestErrors:
    def test_empty_bundle_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="empty"):
            write_csv(TraceBundle(), tmp_path / "t.csv")

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(TraceError, match="header"):
            read_csv(path)

    def test_wrong_first_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,a\n0,1\n")
        with pytest.raises(TraceError, match="time"):
            read_csv(path)

    def test_no_counter_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time\n0\n")
        with pytest.raises(TraceError, match="no counter columns"):
            read_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a\n0,1,extra\n")
        with pytest.raises(TraceError, match="cells"):
            read_csv(path)

    def test_malformed_metadata(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# nonsense-without-equals\ntime,a\n0,1\n")
        with pytest.raises(TraceError, match="metadata"):
            read_csv(path)

    def test_no_data_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a\n")
        with pytest.raises(TraceError, match="no data rows"):
            read_csv(path)


class TestEpochScalePrecision:
    """Regression: times were written with ``%.10g`` (10 significant
    digits), so epoch-scale timestamps like ``1.7e9 + 0.25`` and
    ``1.7e9 + 0.5`` collapsed onto the same string — producing duplicate
    rows that failed read-back validation, or silently shifted samples."""

    def test_epoch_scale_times_round_trip_exactly(self, tmp_path):
        t0 = 1.7e9  # a 2023-ish Unix timestamp
        times = [t0 + 0.25, t0 + 0.5, t0 + 0.75]
        bundle = TraceBundle()
        bundle.add(TimeSeries(times=times, values=[1.0, 2.0, 3.0], name="e"))
        path = tmp_path / "epoch.csv"
        write_csv(bundle, path)
        back = read_csv(path)
        np.testing.assert_array_equal(back["e"].times, np.asarray(times))

    def test_near_equal_times_do_not_produce_duplicate_rows(self, tmp_path):
        # Two counters sampled 0.25 s apart at epoch scale: under %.10g
        # both rows printed the same time, so the file carried duplicate
        # time rows.  Full precision keeps them distinct union-grid rows.
        bundle = TraceBundle()
        bundle.add(TimeSeries(times=[1.7e9 + 0.25], values=[1.0], name="x"))
        bundle.add(TimeSeries(times=[1.7e9 + 0.5], values=[2.0], name="y"))
        path = tmp_path / "near.csv"
        write_csv(bundle, path)
        rows = [line for line in path.read_text().splitlines()
                if not line.startswith(("#", "time"))]
        assert len(rows) == 2
        times = [row.split(",")[0] for row in rows]
        assert times[0] != times[1]
        back = read_csv(path)
        assert float(back["x"].times[0]) == 1.7e9 + 0.25
        assert float(back["y"].times[0]) == 1.7e9 + 0.5

    def test_values_round_trip_exactly(self, tmp_path):
        values = [1 / 3, 2**53 - 1.0, 6.02e23]
        bundle = TraceBundle()
        bundle.add(TimeSeries.from_values(values, name="v"))
        path = tmp_path / "vals.csv"
        write_csv(bundle, path)
        np.testing.assert_array_equal(
            read_csv(path)["v"].values, np.asarray(values))

    def test_duplicate_time_rows_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("time,a\n0.0,1\n1.0,2\n1.0,3\n")
        with pytest.raises(TraceError, match="duplicate time rows"):
            read_csv(path)

    def test_decreasing_time_rows_rejected(self, tmp_path):
        path = tmp_path / "dec.csv"
        path.write_text("time,a\n0.0,1\n2.0,2\n1.0,3\n")
        with pytest.raises(TraceError, match="not increasing"):
            read_csv(path)


class TestRoundTripProperties:
    """Property-style round trip: whatever grid and values a series
    carries, write → read must reproduce them bit-exactly."""

    @settings(max_examples=50, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=-1e12, max_value=1e12,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=40, unique=True),
        data=st.data(),
    )
    def test_arbitrary_series_round_trips_bit_exact(
            self, tmp_path_factory, times, data):
        grid = sorted(times)
        values = data.draw(st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=len(grid), max_size=len(grid)))
        bundle = TraceBundle(metadata={"seed": 7.0})
        bundle.add(TimeSeries(times=grid, values=values, name="prop"))
        path = tmp_path_factory.mktemp("roundtrip") / "t.csv"
        write_csv(bundle, path)
        back = read_csv(path)
        np.testing.assert_array_equal(back["prop"].times, np.asarray(grid))
        np.testing.assert_array_equal(back["prop"].values, np.asarray(values))
        assert back.metadata["seed"] == 7.0


def _single_series_bundle(metadata):
    bundle = TraceBundle(metadata=metadata)
    bundle.add(TimeSeries.from_values([1.0, 2.0, 3.0], name="a"))
    return bundle


class TestMetadataValueGrammar:
    """Regression: ``_parse_metadata_value`` used bare ``float(raw)``, so
    string metadata like ``"1_000"`` (Python underscore literals) came
    back as 1000.0 and ``"nan"``/``"inf"`` became non-finite floats that
    could never be written back."""

    def test_underscore_literal_stays_a_string(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(_single_series_bundle({"tag": "1_000"}), path)
        back = read_csv(path)
        assert back.metadata["tag"] == "1_000"

    @pytest.mark.parametrize("value", ["nan", "inf", "-inf", "Infinity",
                                       "NaN", "INF"])
    def test_nan_and_inf_strings_stay_strings(self, tmp_path, value):
        path = tmp_path / "t.csv"
        write_csv(_single_series_bundle({"v": value}), path)
        assert read_csv(path).metadata["v"] == value

    @pytest.mark.parametrize("raw,want", [
        ("123", 123.0), ("-2.5", -2.5), ("+0.5", 0.5), (".5", 0.5),
        ("1e5", 1e5), ("6.02E23", 6.02e23), ("86100.0", 86100.0),
    ])
    def test_strict_decimal_grammar_still_parses_numbers(
            self, tmp_path, raw, want):
        path = tmp_path / "t.csv"
        path.write_text(f"# k={raw}\ntime,a\n0.0,1\n")
        meta = read_csv(path).metadata
        assert meta["k"] == want and isinstance(meta["k"], float)

    @pytest.mark.parametrize("raw", ["0x10", "1_0", "1e", "--1", "1.2.3"])
    def test_non_decimal_strings_stay_strings(self, tmp_path, raw):
        path = tmp_path / "t.csv"
        path.write_text(f"# k={raw}\ntime,a\n0.0,1\n")
        assert read_csv(path).metadata["k"] == raw


class TestMetadataWriteValidation:
    """Regression: ``write_csv`` wrote metadata verbatim, so a value
    containing a newline (or a key containing ``=``) produced a file
    that failed — or silently mis-parsed — on read-back.  Unrepresentable
    metadata now raises :class:`TraceError` at write time."""

    @pytest.mark.parametrize("metadata", [
        {"k": "line1\nline2"},
        {"k": "trailing\r"},
        {"k=weird": "x"},
        {"k\nj": "x"},
        {"#k": "x"},
        {"": "x"},
        {" k": "x"},
        {"k": " padded "},
        {"k": float("nan")},
        {"k": float("inf")},
        {"k": True},
        {"k": [1, 2]},
    ])
    def test_unrepresentable_metadata_rejected(self, tmp_path, metadata):
        with pytest.raises(TraceError):
            write_csv(_single_series_bundle(metadata), tmp_path / "t.csv")

    def test_validate_metadata_accepts_the_representable(self):
        validate_metadata({"crash_time": 86100.0, "os_profile": "nt4",
                           "n_rejuvenations": 3, "note": "naïve ünicode"})

    def test_newline_value_never_reaches_disk(self, tmp_path):
        path = tmp_path / "t.csv"
        with pytest.raises(TraceError):
            write_csv(_single_series_bundle({"k": "a\nb"}), path)
        assert not path.exists()


class TestMetadataPrefixStrip:
    """Regression: ``read_csv`` used ``line.lstrip("# ")``, which strips
    any leading run of ``#`` and space characters — so a key that itself
    starts with ``#`` or space was silently mangled (``# #tag=x`` gave
    key ``tag``)."""

    def test_hash_prefixed_key_survives(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# #tag=x\ntime,a\n0.0,1\n")
        assert read_csv(path).metadata == {"#tag": "x"}

    def test_spaceless_comment_line_still_parses(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("#k=v\ntime,a\n0.0,1\n")
        assert read_csv(path).metadata == {"k": "v"}

    def test_written_metadata_round_trips_one_prefix(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(_single_series_bundle({"os_profile": "nt4"}), path)
        line = path.read_text().splitlines()[0]
        assert line == "# os_profile=nt4"


class TestMetadataRoundTripProperties:
    """Property suite: any representable metadata mapping must survive
    the CSV round trip with the strict-grammar semantics."""

    _keys = st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc"),
                               blacklist_characters="=#"),
        min_size=1, max_size=20,
    ).map(str.strip).filter(lambda s: s and not s.startswith("#"))

    _float_values = st.floats(allow_nan=False, allow_infinity=False,
                              width=64)
    _str_values = st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=30,
    ).map(str.strip)

    @settings(max_examples=60, deadline=None)
    @given(metadata=st.dictionaries(_keys, _float_values | _str_values,
                                    max_size=6))
    def test_representable_metadata_round_trips(
            self, tmp_path_factory, metadata):
        path = tmp_path_factory.mktemp("meta") / "t.csv"
        write_csv(_single_series_bundle(metadata), path)
        back = read_csv(path).metadata
        assert set(back) == set(metadata)
        for key, value in metadata.items():
            if isinstance(value, float):
                assert back[key] == value
            else:
                # CSV's one representational limit: a *string* that
                # matches the decimal grammar reads back as the equal
                # float (the columnar sidecar preserves the type too).
                assert back[key] == value or (
                    isinstance(back[key], float)
                    and str(value).strip() == str(value)
                    and float(value) == back[key])


class TestSimulatorBundleRoundTrip:
    def test_full_run_bundle(self, tmp_path, nt4_run):
        path = tmp_path / "run.csv"
        write_csv(nt4_run.bundle, path)
        back = read_csv(path)
        assert set(back.names) == set(nt4_run.bundle.names)
        assert back.metadata["crash_time"] == pytest.approx(nt4_run.crash_time)
        orig = nt4_run.bundle["AvailableBytes"].dropna()
        readback = back["AvailableBytes"].dropna()
        np.testing.assert_allclose(readback.values, orig.values)
