"""Quickstart: stress a simulated host to death and get a crash warning.

Runs one NT4-profile machine under the heavy-tailed stress workload,
feeds its `Available Bytes` counter through the multifractal aging
pipeline, and prints the warning time against the true crash time.

Run with::

    python examples/quickstart.py
"""

from repro import Machine, MachineConfig, analyze_run


def main() -> None:
    print("Simulating an NT4-class host under stress (this takes a few seconds)...")
    result = Machine(MachineConfig.nt4(seed=7)).run()

    print(f"  host crashed: {result.crashed}")
    print(f"  crash time:   {result.crash_time:.0f} s "
          f"({result.crash_time / 3600:.1f} simulated hours)")
    print(f"  crash reason: {result.crash_reason}")

    print("Analysing the AvailableBytes counter (Hölder trajectory + CUSUM)...")
    report = analyze_run(result.bundle, counters=["AvailableBytes"])

    alarm = report.first_alarm_time
    if alarm is None:
        print("  no warning fired (unexpected on a crash run)")
        return
    print(f"  warning time: {alarm:.0f} s")
    print(f"  lead time:    {report.lead_time():.0f} s "
          f"({report.lead_time() / 60:.0f} minutes of warning)")

    analysis = report.analyses["AvailableBytes"]
    print(f"  indicator:    windowed Hölder {analysis.indicator.statistic}")
    print(f"  baseline:     {analysis.alarm.baseline_mean:.3f} "
          f"± {analysis.alarm.baseline_std:.3f}")


if __name__ == "__main__":
    main()
