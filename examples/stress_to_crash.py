"""Full experiment workflow: fleets, trace archival, figures and tables.

Mirrors the paper's experimental procedure end to end:

1. run stress-to-crash fleets on both OS profiles;
2. archive every run's counters to CSV (the `traces/` directory), as
   the original study archived perfmon logs;
3. analyse each run and print the warning-vs-crash table;
4. render the raw-counter and Hölder-trajectory figures for one run.

Run with::

    python examples/stress_to_crash.py [n_runs_per_profile]
"""

import sys
from pathlib import Path

from repro import MachineConfig, analyze_counter, run_fleet
from repro.report import render_series, render_table
from repro.trace import write_csv


def main(n_runs: int = 2) -> None:
    out_dir = Path("traces")
    out_dir.mkdir(exist_ok=True)

    fleets = {
        "nt4": run_fleet(MachineConfig.nt4(seed=1, max_run_seconds=80_000), n_runs),
        "w2k": run_fleet(MachineConfig.w2k(seed=101, max_run_seconds=120_000), n_runs),
    }

    rows = []
    for profile, fleet in fleets.items():
        for result in fleet:
            seed = int(result.bundle.metadata["seed"])
            path = out_dir / f"{profile}_seed{seed}.csv"
            write_csv(result.bundle, path)

            analysis = analyze_counter(result.bundle["AvailableBytes"])
            lead = analysis.alarm.lead_time(result.crash_time) \
                if analysis.alarm.fired else None
            rows.append([
                profile, seed,
                f"{result.crash_time:.0f}", result.crash_reason,
                f"{analysis.alarm.alarm_time:.0f}" if analysis.alarm.fired else "-",
                f"{lead:.0f}" if lead is not None else "missed",
                str(path),
            ])

    print(render_table(
        ["profile", "seed", "crash_s", "reason", "warning_s", "lead_s", "trace"],
        rows, title="Stress-to-crash fleet: warnings vs crashes",
    ))

    # Figures for the first NT4 run.
    run = fleets["nt4"][0]
    avail = run.bundle["AvailableBytes"].dropna()
    print()
    print(render_series(
        avail.values, title="AvailableBytes over the run",
        x_values=avail.times, markers=[(run.crash_time, "crash")],
    ))
    analysis = analyze_counter(run.bundle["AvailableBytes"])
    ind = analysis.indicator.series
    markers = [(run.crash_time, "crash")]
    if analysis.alarm.fired:
        markers.append((analysis.alarm.alarm_time, "warning"))
    print()
    print(render_series(
        ind.values,
        title=f"Windowed Hölder {analysis.indicator.statistic} with warning",
        x_values=ind.times, markers=markers,
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
