"""Web-server aging scenario (Li, Vaidyanathan & Trivedi's setting).

Models the empirical-software-engineering companion study: an
Apache-class server under sustained httperf-style load, with many small
request bursts, connection sessions, and a nightly batch job (log
rotation/reporting) layered on top.  The server ages through the same
leak mechanisms; we monitor *several* counters and compare the offline
analysis against the streaming online monitor.

Run with::

    python examples/webserver_aging.py
"""

import numpy as np

from repro.core import OnlineAgingMonitor, analyze_run
from repro.memsim import BatchWorkload, Machine, MachineConfig
from repro.memsim.config import WorkloadConfig
from repro.report import render_series, render_table

WEBSERVER_WORKLOAD = WorkloadConfig(
    n_sources=24,          # many concurrent client populations
    pareto_shape=1.3,      # heavy-tailed think/transfer times (web traffic)
    mean_on=8.0,           # short request bursts
    mean_off=16.0,
    on_rate_pages=40.0,    # small per-request buffers
    hold_time=15.0,        # responses buffered briefly
    session_rate=0.08,     # keep-alive connection sessions
    session_pages_mean=300.0,
    session_lifetime=180.0,
)


def build_server(seed: int) -> Machine:
    config = MachineConfig.nt4(
        seed=seed, max_run_seconds=60_000, workload=WEBSERVER_WORKLOAD,
    )
    machine = Machine(config)
    # Nightly-style batch job: hourly in compressed simulation time.
    batch = BatchWorkload(
        machine.sim, machine.rngs, "batch.logrotate", machine.memory,
        period=3600.0, pages=4000, run_time=90.0,
        on_failure=machine.note_failure,
    )
    batch.ensure_started()
    return machine


def main() -> None:
    print("Simulating an aging web server (stress until crash)...")
    machine = build_server(seed=31)
    result = machine.run()
    print(f"  crash at t={result.crash_time:.0f}s ({result.crash_reason})")

    # Offline analysis over several counters, as the paper monitored.
    report = analyze_run(result.bundle,
                         counters=["AvailableBytes", "PagesPerSec"])
    rows = []
    for name, analysis in report.analyses.items():
        alarm = analysis.alarm
        lead = alarm.lead_time(result.crash_time) if alarm.fired else None
        rows.append([
            name,
            f"{alarm.alarm_time:.0f}" if alarm.fired else "-",
            f"{lead:.0f}" if lead is not None else "missed",
        ])
    print(render_table(["counter", "warning_s", "lead_s"], rows,
                       title="Offline analysis per counter"))

    # Streaming analysis: replay the trace through the online monitor as
    # if it were arriving live.
    counter = result.bundle["AvailableBytes"].dropna()
    monitor = OnlineAgingMonitor(chunk_size=128, history=1024,
                                 indicator_window=512,
                                 n_warmup=1, n_calibration=6)
    online_alarm = None
    for t, v in zip(counter.times, counter.values):
        if monitor.update(float(t), float(v)):
            online_alarm = monitor.alarm_time
            break
    if online_alarm is not None:
        print(f"\nOnline monitor warning at t={online_alarm:.0f}s "
              f"(lead {result.crash_time - online_alarm:.0f}s)")
    else:
        print("\nOnline monitor did not fire")

    avail = result.bundle["AvailableBytes"].dropna()
    markers = [(result.crash_time, "crash")]
    if report.first_alarm_time is not None:
        markers.append((report.first_alarm_time, "warning"))
    print()
    print(render_series(avail.values, x_values=avail.times, markers=markers,
                        title="Web server AvailableBytes (hourly batch spikes visible)"))


if __name__ == "__main__":
    main()
