"""Tour of the fractal/multifractal analysis toolkit on synthetic signals.

Demonstrates every estimator on generators with analytically known
exponents — the same validation discipline the test suite enforces:

* Hurst exponents of fGn via five estimators;
* MFDFA generalized Hurst h(q) on a multifractal random walk vs plain
  Brownian motion;
* the exact tau(q) of a binomial cascade vs the box-method estimate;
* local Hölder exponents of a Weierstrass function.

Run with::

    python examples/multifractal_toolkit_tour.py
"""

import numpy as np

from repro.core import wavelet_holder
from repro.fractal import (
    hurst_summary,
    legendre_spectrum,
    mfdfa,
    partition_function_tau,
)
from repro.generators import (
    binomial_cascade,
    binomial_cascade_tau,
    fbm,
    fgn,
    mrw,
    weierstrass,
)
from repro.report import render_series, render_table


def hurst_demo(rng: np.random.Generator) -> None:
    rows = []
    for h_true in (0.3, 0.5, 0.7, 0.9):
        x = fgn(2**14, h_true, rng=rng)
        ests = hurst_summary(x)
        rows.append([h_true] + [f"{ests[k].h:.3f}"
                                for k in ("rs", "aggvar", "gph", "wavelet", "dfa")])
    print(render_table(
        ["true H", "R/S", "AggVar", "GPH", "Wavelet", "DFA"],
        rows, title="Hurst estimators on exact fractional Gaussian noise",
    ))


def mfdfa_demo(rng: np.random.Generator) -> None:
    q = np.linspace(-3, 3, 13)
    walk = mrw(2**15, 0.4, rng=rng)
    brown = fbm(2**15, 0.5, rng=rng)
    res_mrw = mfdfa(np.diff(walk), q=q)
    res_bm = mfdfa(np.diff(brown), q=q)
    rows = [
        ["MRW (lam=0.4)", f"{res_mrw.hurst:.3f}", f"{res_mrw.delta_h:.3f}",
         f"{legendre_spectrum(res_mrw.q, res_mrw.tau).width:.3f}"],
        ["Brownian motion", f"{res_bm.hurst:.3f}", f"{res_bm.delta_h:.3f}",
         f"{legendre_spectrum(res_bm.q, res_bm.tau).width:.3f}"],
    ]
    print(render_table(
        ["process", "h(2)", "delta h(q)", "spectrum width"],
        rows, title="MFDFA: multifractal vs monofractal",
    ))


def cascade_demo(rng: np.random.Generator) -> None:
    mu = binomial_cascade(14, 0.7, rng=rng)
    q, tau, __ = partition_function_tau(mu)
    theory = binomial_cascade_tau(q, 0.7)
    rows = [[f"{qi:+.1f}", f"{t:.4f}", f"{th:.4f}", f"{abs(t - th):.2e}"]
            for qi, t, th in zip(q[::4], tau[::4], theory[::4])]
    print(render_table(
        ["q", "tau estimated", "tau exact", "abs error"],
        rows, title="Binomial cascade: box-method tau(q) vs closed form",
    ))


def holder_demo() -> None:
    h_true = 0.4
    w = weierstrass(2**13, h_true)
    h = wavelet_holder(w)
    print(render_series(h, title=(
        f"Local Hölder exponents of a Weierstrass function "
        f"(true h = {h_true}; estimated mean = {np.mean(h):.3f})"
    ), height=8))


def main() -> None:
    rng = np.random.default_rng(2003)
    hurst_demo(rng)
    print()
    mfdfa_demo(rng)
    print()
    cascade_demo(rng)
    print()
    holder_demo()


if __name__ == "__main__":
    main()
