"""Rejuvenation policy study: act on the multifractal crash warnings.

The point of aging *detection* is aging *treatment*: restart (rejuvenate)
the software before it crashes.  This example compares three operating
policies over a fleet of aging hosts:

* ``reactive``   — do nothing; the host crashes and needs a long repair
  (unplanned outage, lost in-flight work);
* ``periodic``   — rejuvenate on a fixed timer regardless of state
  (classical time-based rejuvenation);
* ``predictive`` — rejuvenate when the multifractal detector warns.

Downtime model (simulated seconds): a crash costs a large repair outage;
a planned rejuvenation costs a short restart.  We report achieved
availability for each policy over the same fleet.

Run with::

    python examples/rejuvenation_policy.py [n_hosts]
"""

import sys

from repro import Machine, MachineConfig, analyze_counter
from repro.report import render_kv, render_table

CRASH_REPAIR_S = 3600.0       # unplanned outage after a crash
REJUVENATION_S = 120.0        # planned restart
PERIODIC_INTERVAL_S = 3000.0  # timer for the periodic policy


def run_host(seed: int):
    """One stress-to-crash run plus its warning time."""
    result = Machine(MachineConfig.nt4(seed=seed, max_run_seconds=80_000)).run()
    analysis = analyze_counter(result.bundle["AvailableBytes"])
    warning = analysis.alarm.alarm_time if analysis.alarm.fired else None
    return result, warning


def score_policies(runs):
    """Availability per policy over repeated service cycles.

    Each run models one service cycle: uptime until the policy's restart
    event, then that policy's downtime.  Availability = uptime /
    (uptime + downtime), averaged over hosts.
    """
    rows = []
    policies = {
        "reactive": lambda crash, warning: (crash, CRASH_REPAIR_S),
        "periodic": lambda crash, warning: (
            min(PERIODIC_INTERVAL_S, crash),
            REJUVENATION_S if PERIODIC_INTERVAL_S < crash else CRASH_REPAIR_S,
        ),
        "predictive": lambda crash, warning: (
            (warning, REJUVENATION_S) if warning is not None and warning < crash
            else (crash, CRASH_REPAIR_S)
        ),
    }
    for name, policy in policies.items():
        availabilities = []
        crashes_suffered = 0
        for result, warning in runs:
            uptime, downtime = policy(result.crash_time, warning)
            availabilities.append(uptime / (uptime + downtime))
            if downtime == CRASH_REPAIR_S:
                crashes_suffered += 1
        mean_avail = sum(availabilities) / len(availabilities)
        rows.append([name, f"{mean_avail:.4f}", crashes_suffered, len(runs)])
    return rows


def main(n_hosts: int = 3) -> None:
    print(f"Simulating {n_hosts} aging hosts (a few seconds each)...")
    runs = [run_host(seed) for seed in range(21, 21 + n_hosts)]

    detail = [[int(r.bundle.metadata["seed"]), f"{r.crash_time:.0f}",
               f"{w:.0f}" if w is not None else "-"]
              for r, w in runs]
    print(render_table(["seed", "crash_s", "warning_s"], detail,
                       title="Fleet: crashes and warnings"))
    print()
    rows = score_policies(runs)
    print(render_table(
        ["policy", "availability", "unplanned crashes", "hosts"],
        rows, title="Policy comparison (one service cycle per host)",
    ))
    print()
    print(render_kv({
        "crash repair (s)": CRASH_REPAIR_S,
        "planned rejuvenation (s)": REJUVENATION_S,
        "periodic interval (s)": PERIODIC_INTERVAL_S,
    }, title="Downtime model"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
