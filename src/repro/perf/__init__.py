"""Performance execution layer: process-parallel fan-out + sliding CWT.

Everything in this package is an *execution strategy*, never a new
algorithm: results are bit-identical (pool) or machine-precision
identical (sliding estimator) to the sequential / batch code paths they
accelerate, and the equivalences are guarded by tests.

* :mod:`repro.perf.pool` — :func:`parallel_map` fans deterministic work
  units across a ``ProcessPoolExecutor``, merges per-worker telemetry
  back into the parent session, and degrades gracefully to the
  sequential path when parallelism is unavailable or not worth it.
* :mod:`repro.perf.sliding_cwt` — :class:`SlidingHolderEstimator`
  recomputes only the shifted tail of the online monitor's Hölder
  window, reusing the shared wavelet kernel plan cache.
"""

from .pool import parallel_map, resolve_workers
from .sliding_cwt import SlidingHolderEstimator

__all__ = [
    "parallel_map",
    "resolve_workers",
    "SlidingHolderEstimator",
]
