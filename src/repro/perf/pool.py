"""Process-pool fan-out with telemetry capture and ordered reassembly.

:func:`parallel_map` is the one parallel primitive the library uses: it
maps a picklable function over a list of work units across worker
processes and returns results **in input order**, so callers composing
deterministic pipelines (campaign cells, fleet runs) get output that is
bit-identical to the sequential loop they replaced.

Telemetry survives the process boundary: each work unit runs under a
fresh worker-side :func:`~repro.obs.session.telemetry_session`, and the
resulting metrics snapshot, span records and event log travel back with
the result and are merged into the parent session
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`,
:meth:`~repro.obs.spans.SpanCollector.ingest`).  Counters and event
logs merge exactly; histogram quantiles and span wall-clock placement
are approximate by nature (documented on the merge methods).

Degradation is graceful and logged, never silent: ``workers=1``, a
single work unit, unpicklable inputs, or a broken pool all fall back to
the in-process sequential loop.  Exceptions raised *by the work
function itself* propagate to the caller either way.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from ..exceptions import ValidationError
from ..obs import session as _obs
from ..obs.logger import get_logger
from ..obs.profile import profile

_log = get_logger("perf.pool")

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["resolve_workers", "parallel_map"]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalise a worker-count request; ``None`` means every core."""
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def _run_unit(payload):
    """Execute one work unit inside a worker process.

    Runs the unit under a fresh telemetry session when the parent was
    collecting, so the worker's counters/spans/events can be shipped
    home with the result instead of dying with the process.
    """
    fn, item, capture = payload
    if not capture:
        return fn(item), None
    with _obs.telemetry_session() as session:
        result = fn(item)
        telemetry = {
            "metrics": session.metrics.snapshot(),
            "spans": session.spans.to_list(),
            "events": list(session.events),
        }
    return result, telemetry


def _sequential(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    return [fn(item) for item in items]


def _merge_worker_telemetry(telemetries, *, prefix: str) -> None:
    session = _obs.current_session()
    if not session.enabled:
        return
    merged_events = False
    for telemetry in telemetries:
        if telemetry is None:
            continue
        session.metrics.merge_snapshot(telemetry["metrics"])
        session.spans.ingest(telemetry["spans"], prefix=prefix)
        if telemetry["events"]:
            session.events.extend(telemetry["events"])
            merged_events = True
    if merged_events:
        session.events.sort(key=lambda e: e.get("wall_time", 0.0))


@profile("perf.parallel_map")
def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: Optional[int] = None,
    label: str = "worker",
) -> List[R]:
    """Map ``fn`` over ``items`` across processes, preserving input order.

    Parameters
    ----------
    fn:
        Module-level (picklable) function of one work unit.  Exceptions
        it raises propagate to the caller.
    items:
        Work units; each must be picklable for the parallel path.
    workers:
        Process count; ``None`` uses every core, ``1`` runs the plain
        sequential loop in-process.
    label:
        Span-path prefix for telemetry imported from workers.

    Returns
    -------
    ``[fn(item) for item in items]`` — exactly, whichever path ran.

    Notes
    -----
    Falls back to the sequential loop (with a logged warning and a
    ``perf.pool.fallbacks`` counter increment) when the inputs do not
    pickle or the pool breaks; determinism is unaffected because the
    two paths compute the identical thing.
    """
    items = list(items)
    workers = resolve_workers(workers)
    usable = min(workers, len(items))
    if usable <= 1:
        return _sequential(fn, items)

    try:
        pickle.dumps(fn)
        pickle.dumps(items)
    except Exception as exc:  # pickling errors are wildly heterogeneous
        _log.warning(
            "parallel map falling back to sequential: inputs not picklable",
            error=f"{type(exc).__name__}: {exc}",
        )
        _obs.counter("perf.pool.fallbacks").inc()
        return _sequential(fn, items)

    capture = _obs.telemetry_enabled()
    payloads = [(fn, item, capture) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=usable) as pool:
            futures = [pool.submit(_run_unit, p) for p in payloads]
            pairs = [f.result() for f in futures]
    except (BrokenProcessPool, OSError, pickle.PicklingError) as exc:
        _log.warning(
            "parallel map falling back to sequential: pool failed",
            error=f"{type(exc).__name__}: {exc}",
        )
        _obs.counter("perf.pool.fallbacks").inc()
        return _sequential(fn, items)

    _obs.gauge("perf.pool.workers").set(usable)
    _obs.counter("perf.pool.units").inc(len(items))
    _merge_worker_telemetry((t for _, t in pairs), prefix=label)
    return [result for result, _ in pairs]
