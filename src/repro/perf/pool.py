"""Process-pool fan-out with telemetry capture, ordered reassembly, and
crash tolerance.

:func:`parallel_map` is the one parallel primitive the library uses: it
maps a picklable function over a list of work units across worker
processes and returns results **in input order**, so callers composing
deterministic pipelines (campaign cells, fleet runs) get output that is
bit-identical to the sequential loop they replaced.

Resilience (:func:`resilient_map`, which :func:`parallel_map` wraps):
work units get a per-unit wall-clock **timeout** and a bounded number of
**retries with exponential backoff and deterministic jitter**.  A hung
worker is SIGKILLed with its pool and the unfinished units resubmitted
to a fresh pool; a worker that dies mid-unit (OOM killer, SIGKILL,
``os._exit``) likewise only costs the units in flight.  Because every
unit is a pure function of its work item (per-unit seeding, no hidden
state), a unit that succeeds on attempt 3 returns bit-identical output
to one that succeeds on attempt 1 — retries never perturb results.
``perf.pool.retries`` and ``perf.pool.timeouts`` counters record how
hard the pool had to work.

Telemetry survives the process boundary: each work unit runs under a
fresh worker-side :func:`~repro.obs.session.telemetry_session`, and the
resulting metrics snapshot, span records and event log travel back with
the result and are merged into the parent session
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`,
:meth:`~repro.obs.spans.SpanCollector.ingest`).  Only the successful
attempt's telemetry is merged, so retried units contribute exactly once.

Degradation is graceful and logged, never silent: ``workers=1``, a
single work unit, unpicklable inputs, or a pool that cannot even start
all fall back to the in-process sequential loop.  Exceptions raised *by
the work function itself* propagate to the caller either way (unless
listed in ``retry_exceptions``).
"""

from __future__ import annotations

import os
import pickle
import random
import time
import weakref
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..exceptions import ExecutionError, ValidationError
from ..obs import ops as _ops
from ..obs import session as _obs
from ..obs.logger import get_logger
from ..obs.profile import profile

_log = get_logger("perf.pool")

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "UnitOutcome",
    "backoff_delay",
    "resolve_workers",
    "parallel_map",
    "resilient_map",
    "pool_worker_pids",
]

# Live executors, so the resource sampler can find worker pids without
# the pool threading itself through every call signature.  Weak: a pool
# that is garbage-collected (or shut down and dropped) vanishes here too.
_ACTIVE_POOLS: "weakref.WeakSet[ProcessPoolExecutor]" = weakref.WeakSet()


def pool_worker_pids() -> List[int]:
    """Pids of every live worker process across active pools, sorted.

    Best-effort introspection for telemetry (the resource sampler);
    pools appear when :func:`resilient_map` starts one and disappear on
    shutdown/garbage collection.
    """
    pids = set()
    for pool in list(_ACTIVE_POOLS):
        processes = getattr(pool, "_processes", None) or {}
        for pid, proc in list(processes.items()):
            try:
                if proc.is_alive():
                    pids.add(pid)
            except Exception:  # pragma: no cover - mid-shutdown races
                pass
    return sorted(pids)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalise a worker-count request; ``None`` means every core."""
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.5,
    cap: float = 30.0,
    key: str = "",
) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    ``attempt`` is the attempt that just failed (1-based).  The delay is
    ``min(cap, base * 2**(attempt-1))`` scaled by a jitter factor in
    ``[0.5, 1.0)`` derived from ``crc32(key:attempt)`` — deterministic
    across runs (no salted hashing), but decorrelated across units, so
    a fleet of failed units does not thunder back in lockstep.
    """
    if attempt < 1:
        raise ValidationError(f"attempt must be >= 1, got {attempt}")
    raw = min(float(cap), float(base) * (2.0 ** (attempt - 1)))
    seed = zlib.crc32(f"{key}:{attempt}".encode())
    jitter = 0.5 + 0.5 * random.Random(seed).random()
    return raw * jitter


@dataclass
class UnitOutcome:
    """What happened to one work unit after all attempts."""

    index: int
    result: object = None
    error: Optional[str] = None
    error_kind: Optional[str] = None  # "timeout" | "worker-death" | "exception"
    attempts: int = 0

    @property
    def ok(self) -> bool:
        """True when the unit produced a result."""
        return self.error is None


def _run_unit(payload):
    """Execute one work unit inside a worker process.

    Runs the unit under a fresh telemetry session when the parent was
    collecting, so the worker's counters/spans/events can be shipped
    home with the result instead of dying with the process.
    ``pre_unit`` (when given) runs first — it is the fault-injection
    hook :mod:`repro.testing.chaos` uses to kill/hang/fail units.

    ``trace`` (a :meth:`TraceContext.to_dict` payload, or None) is the
    unit's place in the campaign's cross-process trace; it rides home in
    the telemetry's ``context`` alongside the worker's pid so the parent
    can stitch and tag what it merges.
    """
    fn, item, capture, pre_unit, index, attempt, trace = payload
    if pre_unit is not None:
        pre_unit(index, attempt)
    if not capture:
        return fn(item), None
    with _obs.telemetry_session() as session:
        if trace is not None:
            session.trace_id = trace.get("trace_id")
        result = fn(item)
        telemetry = {
            "metrics": session.metrics.snapshot(),
            "spans": session.spans.to_list(),
            "events": list(session.events),
            "context": {
                **(trace or {}),
                "pid": os.getpid(),
                "index": index,
                "attempt": attempt,
            },
        }
    return result, telemetry


def _merge_worker_telemetry(telemetries, *, prefix: str) -> None:
    """Fold worker-side telemetry into the parent session.

    Spans nest under the parent's *currently open* span path plus the
    pool label (so a campaign's worker spans land under
    ``campaign-pool/campaign-worker/...``, one coherent tree), and every
    adopted span is tagged with the worker's pid, its first-seen ordinal
    in this merge, and the unit's trace/span ids.  Aggregate metrics
    merge exactly as before (counters add, gauges last-write/max);
    additionally each worker's *counters* are mirrored under
    ``{label}.w{ordinal}.{name}`` (with a ``{label}.w{ordinal}.pid``
    gauge) so per-worker contributions stay distinguishable after the
    merge.
    """
    session = _obs.current_session()
    if not session.enabled:
        return
    base = session.spans.current_path
    span_prefix = f"{base}/{prefix}" if base else prefix
    ordinals: Dict[int, int] = {}
    merged_events = False
    for telemetry in telemetries:
        if telemetry is None:
            continue
        context = telemetry.get("context") or {}
        pid = context.get("pid")
        ordinal = None
        if pid is not None:
            ordinal = ordinals.setdefault(pid, len(ordinals))
        session.metrics.merge_snapshot(telemetry["metrics"])
        if ordinal is not None:
            worker_ns = f"{prefix}.w{ordinal}"
            session.metrics.gauge(f"{worker_ns}.pid").set(pid)
            for name, state in telemetry["metrics"].items():
                if state.get("type") == "counter":
                    session.metrics.counter(f"{worker_ns}.{name}").inc(
                        float(state.get("value") or 0.0))
        extra_attrs: Dict[str, object] = {}
        if pid is not None:
            extra_attrs["worker_pid"] = pid
            extra_attrs["worker_ordinal"] = ordinal
        for key in ("trace_id", "span_id", "parent_span_id"):
            if context.get(key) is not None:
                extra_attrs[key] = context[key]
        session.spans.ingest(telemetry["spans"], prefix=span_prefix,
                             extra_attrs=extra_attrs or None)
        if telemetry["events"]:
            session.events.extend(telemetry["events"])
            merged_events = True
    if merged_events:
        session.events.sort(key=lambda e: e.get("wall_time", 0.0))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: SIGKILL its workers, then shut it down.

    Used after a per-unit timeout — a hung worker never returns, so a
    polite ``shutdown(wait=True)`` would hang the parent with it.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already-dead process races
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # pragma: no cover - broken-pool shutdown races
        pass


def _mark_retry(outcome: UnitOutcome, *, retries: int, backoff_base: float,
                backoff_cap: float, label: str) -> Optional[float]:
    """Log/count one failed attempt; return the backoff delay if the
    unit has retry budget left, else ``None`` (permanent failure)."""
    if outcome.attempts > retries:
        _ops.flight_note("unit", index=outcome.index, status="failed",
                         kind=outcome.error_kind, attempts=outcome.attempts,
                         error=outcome.error)
        return None
    _obs.counter("perf.pool.retries").inc()
    delay = backoff_delay(outcome.attempts, base=backoff_base,
                          cap=backoff_cap, key=f"{label}:{outcome.index}")
    _ops.flight_note("retry", index=outcome.index, attempt=outcome.attempts,
                     kind=outcome.error_kind, delay_s=round(delay, 3),
                     error=outcome.error)
    _log.warning("unit failed; retrying", unit=outcome.index,
                 attempt=outcome.attempts, kind=outcome.error_kind,
                 delay_s=round(delay, 3), error=outcome.error)
    return delay


def _sequential_attempts(
    fn,
    pending: List[Tuple[int, object]],
    outcomes: List[UnitOutcome],
    *,
    capture: bool,
    pre_unit,
    on_result,
    retries: int,
    retry_exceptions: tuple,
    backoff_base: float,
    backoff_cap: float,
    label: str,
    trace=None,
) -> None:
    """In-process execution with the same retry/backoff semantics.

    Per-unit wall-clock timeouts are not enforceable in-process (there
    is no worker to kill), so ``timeout`` does not apply here; that is
    documented on :func:`resilient_map`.  Exceptions outside
    ``retry_exceptions`` propagate, as the plain sequential loop always
    did.
    """
    telemetries = []
    try:
        for index, item in pending:
            outcome = outcomes[index]
            unit_trace = (None if trace is None
                          else trace.child(f"{label}:{index}").to_dict())
            while True:
                outcome.attempts += 1
                try:
                    result, telemetry = _run_unit(
                        (fn, item, capture, pre_unit, index, outcome.attempts,
                         unit_trace))
                except retry_exceptions as exc:
                    outcome.error = f"{type(exc).__name__}: {exc}"
                    outcome.error_kind = "exception"
                    delay = _mark_retry(outcome, retries=retries,
                                        backoff_base=backoff_base,
                                        backoff_cap=backoff_cap, label=label)
                    if delay is None:
                        break
                    time.sleep(delay)
                    continue
                outcome.result = result
                outcome.error = None
                outcome.error_kind = None
                telemetries.append(telemetry)
                _ops.flight_note("unit", index=index, status="ok",
                                 attempts=outcome.attempts)
                if on_result is not None:
                    on_result(index, result)
                break
    finally:
        _merge_worker_telemetry(telemetries, prefix=label)


@profile("perf.resilient_map")
def resilient_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: Optional[int] = None,
    label: str = "worker",
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff_base: float = 0.5,
    backoff_cap: float = 30.0,
    retry_exceptions: tuple = (),
    pre_unit: Optional[Callable[[int, int], None]] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[UnitOutcome]:
    """Map ``fn`` over ``items`` with timeouts and retries, reporting
    per-unit outcomes instead of raising for infrastructure failures.

    Returns one :class:`UnitOutcome` per item, in input order.  A unit
    fails an attempt when it times out (``timeout`` seconds of wall
    clock, measured from when the parent starts waiting on it), when its
    worker process dies, or when ``fn`` raises an exception listed in
    ``retry_exceptions``; failed attempts are retried up to ``retries``
    times with exponential backoff (``backoff_base``/``backoff_cap``)
    and deterministic per-unit jitter (:func:`backoff_delay`).  Units
    that exhaust the budget come back with ``ok=False`` and an
    ``error_kind`` of ``"timeout"``, ``"worker-death"`` or
    ``"exception"``.

    An exception *not* listed in ``retry_exceptions`` is a bug in the
    work function, not an infrastructure failure: the current round is
    drained (so ``on_result`` checkpoints for completed units still
    land), then the exception propagates.

    ``pre_unit(index, attempt)`` runs inside the worker before ``fn`` —
    the chaos harness's injection point.  ``on_result(index, result)``
    runs in the parent as each unit completes successfully — the
    campaign journal's checkpoint hook.

    Notes
    -----
    * Retried units are bit-identical to first-try units because ``fn``
      is a pure function of its item; the retry machinery never feeds
      anything else in.
    * With ``workers=1`` (or one item, or unpicklable inputs) the whole
      map runs in-process; ``timeout`` cannot be enforced there, but
      ``retries``/``retry_exceptions`` still apply.
    * After a timeout the pool's workers are SIGKILLed (a hung worker
      never returns) and surviving units resubmitted to a fresh pool.
      A pool break retries *every* unfinished unit's attempt counter —
      the pool cannot tell the killer from its victims.
    * Each call runs under a cross-process trace
      (:mod:`repro.obs.ops`): an enclosing :func:`~repro.obs.ops.trace_scope`
      is reused, otherwise a fresh trace is minted for the map.  Per-unit
      child contexts ride into workers and come back stitched onto the
      merged telemetry.  When a flight recorder is installed, the buffer
      is dumped on timeout-kill, worker death, unhandled error, or
      permanent unit failure.
    """
    trace = _ops.current_trace()
    if trace is not None:
        return _resilient_map(
            fn, items, trace, workers=workers, label=label, timeout=timeout,
            retries=retries, backoff_base=backoff_base,
            backoff_cap=backoff_cap, retry_exceptions=retry_exceptions,
            pre_unit=pre_unit, on_result=on_result)
    with _ops.trace_scope(_ops.new_trace(label)) as trace:
        return _resilient_map(
            fn, items, trace, workers=workers, label=label, timeout=timeout,
            retries=retries, backoff_base=backoff_base,
            backoff_cap=backoff_cap, retry_exceptions=retry_exceptions,
            pre_unit=pre_unit, on_result=on_result)


def _resilient_map(
    fn,
    items,
    trace,
    *,
    workers,
    label,
    timeout,
    retries,
    backoff_base,
    backoff_cap,
    retry_exceptions,
    pre_unit,
    on_result,
) -> List[UnitOutcome]:
    items = list(items)
    workers = resolve_workers(workers)
    retry_exceptions = tuple(retry_exceptions)
    if timeout is not None and timeout <= 0:
        raise ValidationError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")

    outcomes = [UnitOutcome(index=i) for i in range(len(items))]
    pending: List[Tuple[int, object]] = list(enumerate(items))
    usable = min(workers, len(items))

    if usable > 1:
        try:
            pickle.dumps(fn)
            pickle.dumps(items)
            pickle.dumps(pre_unit)
        except Exception as exc:  # pickling errors are wildly heterogeneous
            _log.warning(
                "parallel map falling back to sequential: inputs not picklable",
                error=f"{type(exc).__name__}: {exc}",
            )
            _obs.counter("perf.pool.fallbacks").inc()
            usable = 1

    capture = _obs.telemetry_enabled()
    if usable <= 1:
        try:
            _sequential_attempts(
                fn, pending, outcomes, capture=capture, pre_unit=pre_unit,
                on_result=on_result, retries=retries,
                retry_exceptions=retry_exceptions, backoff_base=backoff_base,
                backoff_cap=backoff_cap, label=label, trace=trace)
        except Exception as exc:
            _ops.flight_dump("unhandled-error", label=label,
                             error=f"{type(exc).__name__}: {exc}")
            raise
        _dump_on_failures(outcomes, label=label)
        return outcomes

    telemetries = []
    fatal: Optional[BaseException] = None
    pool_round = 0
    while pending and fatal is None:
        pool_round += 1
        # Once per pool round, not per unit — timeline/flight observers
        # see round boundaries without any hot-path cost.
        _ops.flight_note("round", round=pool_round, pending=len(pending),
                         workers=min(usable, len(pending)), label=label)
        pool: Optional[ProcessPoolExecutor] = None
        futures: List[Tuple[int, object, object]] = []
        try:
            pool = ProcessPoolExecutor(max_workers=min(usable, len(pending)))
            _ACTIVE_POOLS.add(pool)
            for index, item in pending:
                attempt = outcomes[index].attempts + 1
                unit_trace = (None if trace is None
                              else trace.child(f"{label}:{index}").to_dict())
                futures.append((index, item, pool.submit(
                    _run_unit,
                    (fn, item, capture, pre_unit, index, attempt,
                     unit_trace))))
        except (BrokenProcessPool, OSError, pickle.PicklingError) as exc:
            # The pool could not even start: an environmental problem a
            # retry will not fix.  Run what is left in-process instead.
            _log.warning(
                "parallel map falling back to sequential: pool failed to start",
                error=f"{type(exc).__name__}: {exc}",
            )
            _obs.counter("perf.pool.fallbacks").inc()
            if pool is not None:
                _kill_pool(pool)
            _merge_worker_telemetry(telemetries, prefix=label)
            _sequential_attempts(
                fn, pending, outcomes, capture=capture, pre_unit=pre_unit,
                on_result=on_result, retries=retries,
                retry_exceptions=retry_exceptions, backoff_base=backoff_base,
                backoff_cap=backoff_cap, label=label, trace=trace)
            _dump_on_failures(outcomes, label=label)
            return outcomes

        tainted = False
        failed_round: List[Tuple[int, object]] = []
        for index, item, future in futures:
            outcome = outcomes[index]
            outcome.attempts += 1
            try:
                result, telemetry = future.result(timeout=timeout)
            except FutureTimeoutError:
                future.cancel()
                tainted = True
                _obs.counter("perf.pool.timeouts").inc()
                outcome.error = f"unit exceeded {timeout}s wall-clock timeout"
                outcome.error_kind = "timeout"
                failed_round.append((index, item))
                continue
            except BrokenProcessPool as exc:
                tainted = True
                outcome.error = f"worker process died: {exc}"
                outcome.error_kind = "worker-death"
                failed_round.append((index, item))
                continue
            except retry_exceptions as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.error_kind = "exception"
                failed_round.append((index, item))
                continue
            except Exception as exc:
                # A real bug in the work function: drain the round so
                # completed units checkpoint, then let it propagate.
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.error_kind = "exception"
                if fatal is None:
                    fatal = exc
                continue
            outcome.result = result
            outcome.error = None
            outcome.error_kind = None
            telemetries.append(telemetry)
            _ops.flight_note("unit", index=index, status="ok",
                             attempts=outcome.attempts)
            if on_result is not None:
                on_result(index, result)

        if tainted:
            _kill_pool(pool)
            # Buffer the failure context before dumping, so the artifact
            # is self-describing even when the round died before any
            # other record reached the recorder.
            for index, _item in sorted(failed_round):
                _ops.flight_note("unit", index=index, status="error",
                                 attempts=outcomes[index].attempts,
                                 error_kind=outcomes[index].error_kind,
                                 error=outcomes[index].error)
            kinds = {outcomes[i].error_kind for i, _ in failed_round}
            _ops.flight_dump(
                "timeout-kill" if "timeout" in kinds else "worker-death",
                label=label,
                failed_units=sorted(i for i, _ in failed_round))
        else:
            pool.shutdown(wait=True)

        pending = []
        delays = []
        for index, item in failed_round:
            delay = _mark_retry(outcomes[index], retries=retries,
                                backoff_base=backoff_base,
                                backoff_cap=backoff_cap, label=label)
            if delay is not None:
                pending.append((index, item))
                delays.append(delay)
        if pending and fatal is None:
            time.sleep(max(delays))

    _obs.gauge("perf.pool.workers").set(usable)
    _obs.counter("perf.pool.units").inc(len(items))
    _merge_worker_telemetry(telemetries, prefix=label)
    if fatal is not None:
        _ops.flight_dump("unhandled-error", label=label,
                         error=f"{type(fatal).__name__}: {fatal}")
        raise fatal
    _dump_on_failures(outcomes, label=label)
    return outcomes


def _dump_on_failures(outcomes: List[UnitOutcome], *, label: str) -> None:
    """Dump the flight recorder once when units failed permanently."""
    failed = [o.index for o in outcomes if not o.ok]
    if failed:
        _ops.flight_dump("unit-failures", label=label, failed_units=failed)


@profile("perf.parallel_map")
def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: Optional[int] = None,
    label: str = "worker",
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff_base: float = 0.5,
    backoff_cap: float = 30.0,
    retry_exceptions: tuple = (),
    pre_unit: Optional[Callable[[int, int], None]] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` across processes, preserving input order.

    Parameters
    ----------
    fn:
        Module-level (picklable) function of one work unit.  Exceptions
        it raises propagate to the caller (unless retried away via
        ``retry_exceptions``).
    items:
        Work units; each must be picklable for the parallel path.
    workers:
        Process count; ``None`` uses every core, ``1`` runs the plain
        sequential loop in-process.
    label:
        Span-path prefix for telemetry imported from workers.
    timeout, retries, backoff_base, backoff_cap, retry_exceptions, \
pre_unit, on_result:
        Resilience knobs, passed through to :func:`resilient_map`.

    Returns
    -------
    ``[fn(item) for item in items]`` — exactly, whichever path ran.

    Raises
    ------
    The work function's own exception for a non-retryable failure, or
    :class:`~repro.exceptions.ExecutionError` when a unit exhausted its
    timeout/retry budget.  Callers that want partial results instead of
    an exception use :func:`resilient_map` directly.

    Notes
    -----
    Falls back to the sequential loop (with a logged warning and a
    ``perf.pool.fallbacks`` counter increment) when the inputs do not
    pickle or the pool cannot start; with ``retries=0`` and no
    ``timeout``, a mid-run worker death also falls back rather than
    failing (the sequential loop computes the identical thing).
    """
    outcomes = resilient_map(
        fn, items, workers=workers, label=label, timeout=timeout,
        retries=retries, backoff_base=backoff_base, backoff_cap=backoff_cap,
        retry_exceptions=retry_exceptions, pre_unit=pre_unit,
        on_result=on_result,
    )
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return [o.result for o in outcomes]

    if (retries == 0 and timeout is None
            and all(o.error_kind == "worker-death" for o in failed)):
        # Historical graceful-degradation path: a broken pool without a
        # retry budget falls back to computing in-process.
        _log.warning(
            "parallel map falling back to sequential: pool broke mid-run",
            failed_units=len(failed),
        )
        _obs.counter("perf.pool.fallbacks").inc()
        items = list(items)
        _sequential_attempts(
            fn, [(o.index, items[o.index]) for o in failed], outcomes,
            capture=_obs.telemetry_enabled(), pre_unit=pre_unit,
            on_result=on_result, retries=retries,
            retry_exceptions=retry_exceptions, backoff_base=backoff_base,
            backoff_cap=backoff_cap, label=label)
        still = [o for o in outcomes if not o.ok]
        if not still:
            return [o.result for o in outcomes]
        failed = still
    summary = "; ".join(
        f"unit {o.index}: {o.error} ({o.attempts} attempt(s))"
        for o in failed[:5])
    raise ExecutionError(
        f"{len(failed)} work unit(s) failed permanently: {summary}")
