"""Process-pool fan-out with telemetry capture, ordered reassembly, and
crash tolerance.

:func:`parallel_map` is the one parallel primitive the library uses: it
maps a picklable function over a list of work units across worker
processes and returns results **in input order**, so callers composing
deterministic pipelines (campaign cells, fleet runs) get output that is
bit-identical to the sequential loop they replaced.

Resilience (:func:`resilient_map`, which :func:`parallel_map` wraps):
work units get a per-unit wall-clock **timeout** and a bounded number of
**retries with exponential backoff and deterministic jitter**.  A hung
worker is SIGKILLed with its pool and the unfinished units resubmitted
to a fresh pool; a worker that dies mid-unit (OOM killer, SIGKILL,
``os._exit``) likewise only costs the units in flight.  Because every
unit is a pure function of its work item (per-unit seeding, no hidden
state), a unit that succeeds on attempt 3 returns bit-identical output
to one that succeeds on attempt 1 — retries never perturb results.
``perf.pool.retries`` and ``perf.pool.timeouts`` counters record how
hard the pool had to work.

Telemetry survives the process boundary: each work unit runs under a
fresh worker-side :func:`~repro.obs.session.telemetry_session`, and the
resulting metrics snapshot, span records and event log travel back with
the result and are merged into the parent session
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`,
:meth:`~repro.obs.spans.SpanCollector.ingest`).  Only the successful
attempt's telemetry is merged, so retried units contribute exactly once.

Degradation is graceful and logged, never silent: ``workers=1``, a
single work unit, unpicklable inputs, or a pool that cannot even start
all fall back to the in-process sequential loop.  Exceptions raised *by
the work function itself* propagate to the caller either way (unless
listed in ``retry_exceptions``).
"""

from __future__ import annotations

import os
import pickle
import random
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..exceptions import ExecutionError, ValidationError
from ..obs import session as _obs
from ..obs.logger import get_logger
from ..obs.profile import profile

_log = get_logger("perf.pool")

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "UnitOutcome",
    "backoff_delay",
    "resolve_workers",
    "parallel_map",
    "resilient_map",
]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalise a worker-count request; ``None`` means every core."""
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.5,
    cap: float = 30.0,
    key: str = "",
) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    ``attempt`` is the attempt that just failed (1-based).  The delay is
    ``min(cap, base * 2**(attempt-1))`` scaled by a jitter factor in
    ``[0.5, 1.0)`` derived from ``crc32(key:attempt)`` — deterministic
    across runs (no salted hashing), but decorrelated across units, so
    a fleet of failed units does not thunder back in lockstep.
    """
    if attempt < 1:
        raise ValidationError(f"attempt must be >= 1, got {attempt}")
    raw = min(float(cap), float(base) * (2.0 ** (attempt - 1)))
    seed = zlib.crc32(f"{key}:{attempt}".encode())
    jitter = 0.5 + 0.5 * random.Random(seed).random()
    return raw * jitter


@dataclass
class UnitOutcome:
    """What happened to one work unit after all attempts."""

    index: int
    result: object = None
    error: Optional[str] = None
    error_kind: Optional[str] = None  # "timeout" | "worker-death" | "exception"
    attempts: int = 0

    @property
    def ok(self) -> bool:
        """True when the unit produced a result."""
        return self.error is None


def _run_unit(payload):
    """Execute one work unit inside a worker process.

    Runs the unit under a fresh telemetry session when the parent was
    collecting, so the worker's counters/spans/events can be shipped
    home with the result instead of dying with the process.
    ``pre_unit`` (when given) runs first — it is the fault-injection
    hook :mod:`repro.testing.chaos` uses to kill/hang/fail units.
    """
    fn, item, capture, pre_unit, index, attempt = payload
    if pre_unit is not None:
        pre_unit(index, attempt)
    if not capture:
        return fn(item), None
    with _obs.telemetry_session() as session:
        result = fn(item)
        telemetry = {
            "metrics": session.metrics.snapshot(),
            "spans": session.spans.to_list(),
            "events": list(session.events),
        }
    return result, telemetry


def _merge_worker_telemetry(telemetries, *, prefix: str) -> None:
    session = _obs.current_session()
    if not session.enabled:
        return
    merged_events = False
    for telemetry in telemetries:
        if telemetry is None:
            continue
        session.metrics.merge_snapshot(telemetry["metrics"])
        session.spans.ingest(telemetry["spans"], prefix=prefix)
        if telemetry["events"]:
            session.events.extend(telemetry["events"])
            merged_events = True
    if merged_events:
        session.events.sort(key=lambda e: e.get("wall_time", 0.0))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: SIGKILL its workers, then shut it down.

    Used after a per-unit timeout — a hung worker never returns, so a
    polite ``shutdown(wait=True)`` would hang the parent with it.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already-dead process races
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # pragma: no cover - broken-pool shutdown races
        pass


def _mark_retry(outcome: UnitOutcome, *, retries: int, backoff_base: float,
                backoff_cap: float, label: str) -> Optional[float]:
    """Log/count one failed attempt; return the backoff delay if the
    unit has retry budget left, else ``None`` (permanent failure)."""
    if outcome.attempts > retries:
        return None
    _obs.counter("perf.pool.retries").inc()
    delay = backoff_delay(outcome.attempts, base=backoff_base,
                          cap=backoff_cap, key=f"{label}:{outcome.index}")
    _log.warning("unit failed; retrying", unit=outcome.index,
                 attempt=outcome.attempts, kind=outcome.error_kind,
                 delay_s=round(delay, 3), error=outcome.error)
    return delay


def _sequential_attempts(
    fn,
    pending: List[Tuple[int, object]],
    outcomes: List[UnitOutcome],
    *,
    capture: bool,
    pre_unit,
    on_result,
    retries: int,
    retry_exceptions: tuple,
    backoff_base: float,
    backoff_cap: float,
    label: str,
) -> None:
    """In-process execution with the same retry/backoff semantics.

    Per-unit wall-clock timeouts are not enforceable in-process (there
    is no worker to kill), so ``timeout`` does not apply here; that is
    documented on :func:`resilient_map`.  Exceptions outside
    ``retry_exceptions`` propagate, as the plain sequential loop always
    did.
    """
    telemetries = []
    try:
        for index, item in pending:
            outcome = outcomes[index]
            while True:
                outcome.attempts += 1
                try:
                    result, telemetry = _run_unit(
                        (fn, item, capture, pre_unit, index, outcome.attempts))
                except retry_exceptions as exc:
                    outcome.error = f"{type(exc).__name__}: {exc}"
                    outcome.error_kind = "exception"
                    delay = _mark_retry(outcome, retries=retries,
                                        backoff_base=backoff_base,
                                        backoff_cap=backoff_cap, label=label)
                    if delay is None:
                        break
                    time.sleep(delay)
                    continue
                outcome.result = result
                outcome.error = None
                outcome.error_kind = None
                telemetries.append(telemetry)
                if on_result is not None:
                    on_result(index, result)
                break
    finally:
        _merge_worker_telemetry(telemetries, prefix=label)


@profile("perf.resilient_map")
def resilient_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: Optional[int] = None,
    label: str = "worker",
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff_base: float = 0.5,
    backoff_cap: float = 30.0,
    retry_exceptions: tuple = (),
    pre_unit: Optional[Callable[[int, int], None]] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[UnitOutcome]:
    """Map ``fn`` over ``items`` with timeouts and retries, reporting
    per-unit outcomes instead of raising for infrastructure failures.

    Returns one :class:`UnitOutcome` per item, in input order.  A unit
    fails an attempt when it times out (``timeout`` seconds of wall
    clock, measured from when the parent starts waiting on it), when its
    worker process dies, or when ``fn`` raises an exception listed in
    ``retry_exceptions``; failed attempts are retried up to ``retries``
    times with exponential backoff (``backoff_base``/``backoff_cap``)
    and deterministic per-unit jitter (:func:`backoff_delay`).  Units
    that exhaust the budget come back with ``ok=False`` and an
    ``error_kind`` of ``"timeout"``, ``"worker-death"`` or
    ``"exception"``.

    An exception *not* listed in ``retry_exceptions`` is a bug in the
    work function, not an infrastructure failure: the current round is
    drained (so ``on_result`` checkpoints for completed units still
    land), then the exception propagates.

    ``pre_unit(index, attempt)`` runs inside the worker before ``fn`` —
    the chaos harness's injection point.  ``on_result(index, result)``
    runs in the parent as each unit completes successfully — the
    campaign journal's checkpoint hook.

    Notes
    -----
    * Retried units are bit-identical to first-try units because ``fn``
      is a pure function of its item; the retry machinery never feeds
      anything else in.
    * With ``workers=1`` (or one item, or unpicklable inputs) the whole
      map runs in-process; ``timeout`` cannot be enforced there, but
      ``retries``/``retry_exceptions`` still apply.
    * After a timeout the pool's workers are SIGKILLed (a hung worker
      never returns) and surviving units resubmitted to a fresh pool.
      A pool break retries *every* unfinished unit's attempt counter —
      the pool cannot tell the killer from its victims.
    """
    items = list(items)
    workers = resolve_workers(workers)
    retry_exceptions = tuple(retry_exceptions)
    if timeout is not None and timeout <= 0:
        raise ValidationError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")

    outcomes = [UnitOutcome(index=i) for i in range(len(items))]
    pending: List[Tuple[int, object]] = list(enumerate(items))
    usable = min(workers, len(items))

    if usable > 1:
        try:
            pickle.dumps(fn)
            pickle.dumps(items)
            pickle.dumps(pre_unit)
        except Exception as exc:  # pickling errors are wildly heterogeneous
            _log.warning(
                "parallel map falling back to sequential: inputs not picklable",
                error=f"{type(exc).__name__}: {exc}",
            )
            _obs.counter("perf.pool.fallbacks").inc()
            usable = 1

    capture = _obs.telemetry_enabled()
    if usable <= 1:
        _sequential_attempts(
            fn, pending, outcomes, capture=capture, pre_unit=pre_unit,
            on_result=on_result, retries=retries,
            retry_exceptions=retry_exceptions, backoff_base=backoff_base,
            backoff_cap=backoff_cap, label=label)
        return outcomes

    telemetries = []
    fatal: Optional[BaseException] = None
    while pending and fatal is None:
        pool: Optional[ProcessPoolExecutor] = None
        futures: List[Tuple[int, object, object]] = []
        try:
            pool = ProcessPoolExecutor(max_workers=min(usable, len(pending)))
            for index, item in pending:
                attempt = outcomes[index].attempts + 1
                futures.append((index, item, pool.submit(
                    _run_unit, (fn, item, capture, pre_unit, index, attempt))))
        except (BrokenProcessPool, OSError, pickle.PicklingError) as exc:
            # The pool could not even start: an environmental problem a
            # retry will not fix.  Run what is left in-process instead.
            _log.warning(
                "parallel map falling back to sequential: pool failed to start",
                error=f"{type(exc).__name__}: {exc}",
            )
            _obs.counter("perf.pool.fallbacks").inc()
            if pool is not None:
                _kill_pool(pool)
            _merge_worker_telemetry(telemetries, prefix=label)
            _sequential_attempts(
                fn, pending, outcomes, capture=capture, pre_unit=pre_unit,
                on_result=on_result, retries=retries,
                retry_exceptions=retry_exceptions, backoff_base=backoff_base,
                backoff_cap=backoff_cap, label=label)
            return outcomes

        tainted = False
        failed_round: List[Tuple[int, object]] = []
        for index, item, future in futures:
            outcome = outcomes[index]
            outcome.attempts += 1
            try:
                result, telemetry = future.result(timeout=timeout)
            except FutureTimeoutError:
                future.cancel()
                tainted = True
                _obs.counter("perf.pool.timeouts").inc()
                outcome.error = f"unit exceeded {timeout}s wall-clock timeout"
                outcome.error_kind = "timeout"
                failed_round.append((index, item))
                continue
            except BrokenProcessPool as exc:
                tainted = True
                outcome.error = f"worker process died: {exc}"
                outcome.error_kind = "worker-death"
                failed_round.append((index, item))
                continue
            except retry_exceptions as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.error_kind = "exception"
                failed_round.append((index, item))
                continue
            except Exception as exc:
                # A real bug in the work function: drain the round so
                # completed units checkpoint, then let it propagate.
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.error_kind = "exception"
                if fatal is None:
                    fatal = exc
                continue
            outcome.result = result
            outcome.error = None
            outcome.error_kind = None
            telemetries.append(telemetry)
            if on_result is not None:
                on_result(index, result)

        if tainted:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True)

        pending = []
        delays = []
        for index, item in failed_round:
            delay = _mark_retry(outcomes[index], retries=retries,
                                backoff_base=backoff_base,
                                backoff_cap=backoff_cap, label=label)
            if delay is not None:
                pending.append((index, item))
                delays.append(delay)
        if pending and fatal is None:
            time.sleep(max(delays))

    _obs.gauge("perf.pool.workers").set(usable)
    _obs.counter("perf.pool.units").inc(len(items))
    _merge_worker_telemetry(telemetries, prefix=label)
    if fatal is not None:
        raise fatal
    return outcomes


@profile("perf.parallel_map")
def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: Optional[int] = None,
    label: str = "worker",
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff_base: float = 0.5,
    backoff_cap: float = 30.0,
    retry_exceptions: tuple = (),
    pre_unit: Optional[Callable[[int, int], None]] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` across processes, preserving input order.

    Parameters
    ----------
    fn:
        Module-level (picklable) function of one work unit.  Exceptions
        it raises propagate to the caller (unless retried away via
        ``retry_exceptions``).
    items:
        Work units; each must be picklable for the parallel path.
    workers:
        Process count; ``None`` uses every core, ``1`` runs the plain
        sequential loop in-process.
    label:
        Span-path prefix for telemetry imported from workers.
    timeout, retries, backoff_base, backoff_cap, retry_exceptions, \
pre_unit, on_result:
        Resilience knobs, passed through to :func:`resilient_map`.

    Returns
    -------
    ``[fn(item) for item in items]`` — exactly, whichever path ran.

    Raises
    ------
    The work function's own exception for a non-retryable failure, or
    :class:`~repro.exceptions.ExecutionError` when a unit exhausted its
    timeout/retry budget.  Callers that want partial results instead of
    an exception use :func:`resilient_map` directly.

    Notes
    -----
    Falls back to the sequential loop (with a logged warning and a
    ``perf.pool.fallbacks`` counter increment) when the inputs do not
    pickle or the pool cannot start; with ``retries=0`` and no
    ``timeout``, a mid-run worker death also falls back rather than
    failing (the sequential loop computes the identical thing).
    """
    outcomes = resilient_map(
        fn, items, workers=workers, label=label, timeout=timeout,
        retries=retries, backoff_base=backoff_base, backoff_cap=backoff_cap,
        retry_exceptions=retry_exceptions, pre_unit=pre_unit,
        on_result=on_result,
    )
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return [o.result for o in outcomes]

    if (retries == 0 and timeout is None
            and all(o.error_kind == "worker-death" for o in failed)):
        # Historical graceful-degradation path: a broken pool without a
        # retry budget falls back to computing in-process.
        _log.warning(
            "parallel map falling back to sequential: pool broke mid-run",
            failed_units=len(failed),
        )
        _obs.counter("perf.pool.fallbacks").inc()
        items = list(items)
        _sequential_attempts(
            fn, [(o.index, items[o.index]) for o in failed], outcomes,
            capture=_obs.telemetry_enabled(), pre_unit=pre_unit,
            on_result=on_result, retries=retries,
            retry_exceptions=retry_exceptions, backoff_base=backoff_base,
            backoff_cap=backoff_cap, label=label)
        still = [o for o in outcomes if not o.ok]
        if not still:
            return [o.result for o in outcomes]
        failed = still
    summary = "; ".join(
        f"unit {o.index}: {o.error} ({o.attempts} attempt(s))"
        for o in failed[:5])
    raise ExecutionError(
        f"{len(failed)} work unit(s) failed permanently: {summary}")
