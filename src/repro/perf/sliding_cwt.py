"""Sliding-tail Hölder estimation for the online monitor.

:func:`repro.core.holder.wavelet_holder` computes pointwise exponents
for *every* sample of its window, but the online monitor
(:class:`repro.core.online.OnlineAgingMonitor`) only reads the newest
``indicator_window`` of them — at default settings it throws away 7/8 of
each recomputation.  :class:`SlidingHolderEstimator` exploits the
wavelet's compact effective support to compute just that tail from a
short trailing segment, cutting the per-emit CWT cost from
``O(history log history)`` to ``O(segment log segment)``.

Why the truncation is safe (to machine precision):

* The DOG wavelet at scale ``a`` decays like ``exp(-t^2 / (2 a^2))``;
  beyond ``support_mult * max_scale`` samples (default 10 standard
  deviations) its amplitude is ~``e^-50`` ≈ 2e-22, below double-precision
  resolution relative to the modulus values it would perturb.
* The CWT here reflect-pads ``[x, reversed x]``; the segment and the
  full window share their final samples, so the *right* boundary
  extension is literally identical.  Only the segment's left edge
  differs, and every returned position sits at least
  ``support_mult * max_scale`` samples away from it.
* The cone-supremum rolling max reads at most ``max_scale`` neighbours,
  which the segment margin also covers.

Equality with the batch path is therefore floating-point-exact up to
FFT-size rounding (different transform lengths round differently at the
1e-15 level), which the test suite pins down with tight tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import ValidationError
from ..core.holder import _rolling_max, wavelet_holder
from ..fractal.wavelets import cwt
from ..obs import session as _obs
from ..obs.profile import profile

__all__ = ["SlidingHolderEstimator"]


@dataclass
class SlidingHolderEstimator:
    """Compute the newest ``tail`` Hölder exponents from a short segment.

    Parameters mirror :func:`~repro.core.holder.wavelet_holder` so the
    online monitor can forward its ``holder_kwargs`` unchanged; ``tail``
    is how many trailing exponents each call must return (the monitor's
    ``indicator_window``).

    ``support_mult`` sets the safety margin between the segment's left
    edge and the first returned position, in units of ``max_scale``.
    The default of 10 Gaussian standard deviations makes the truncation
    error ~``e^-50`` — far below double precision; lowering it trades
    exactness for speed and is only for experimentation.
    """

    tail: int
    min_scale: float = 2.0
    max_scale: float = 32.0
    n_scales: int = 12
    dog_order: int = 2
    cone_supremum: bool = True
    support_mult: float = 10.0

    def __post_init__(self) -> None:
        check_positive_int(self.tail, name="tail", minimum=1)
        check_positive_int(self.n_scales, name="n_scales", minimum=3)
        if self.max_scale <= self.min_scale:
            raise ValidationError(
                f"max_scale ({self.max_scale}) must exceed "
                f"min_scale ({self.min_scale})"
            )
        if self.support_mult < 4.0:
            raise ValidationError(
                f"support_mult must be >= 4 (got {self.support_mult}); "
                "smaller margins leak wavelet support into the result"
            )
        self._scales = np.geomspace(self.min_scale, self.max_scale,
                                    self.n_scales)
        log_a = np.log2(self._scales)
        self._la = log_a - log_a.mean()
        self._denom = float(np.sum(self._la**2))
        half_max = max(int(round(self.max_scale)), 1)
        reach = int(math.ceil(self.support_mult * self.max_scale))
        # Segment = returned tail + cone-supremum reach + wavelet support
        # margin, floored at the estimator's own minimum input length.
        self.segment_length = max(self.tail + half_max + reach, 64)

    def _holder_kwargs(self) -> dict:
        return {
            "min_scale": self.min_scale,
            "max_scale": self.max_scale,
            "n_scales": self.n_scales,
            "dog_order": self.dog_order,
            "cone_supremum": self.cone_supremum,
        }

    @profile("perf.sliding_holder")
    def holder_tail(self, window) -> np.ndarray:
        """Hölder exponents of the last ``tail`` samples of ``window``.

        Matches ``wavelet_holder(window, ...)[-tail:]`` to machine
        precision.  When the window is no longer than the segment (early
        in a run, or tiny configurations) the batch estimator runs
        directly — there is nothing to truncate.
        """
        x = as_1d_float_array(window, name="window", min_length=64)
        if x.size <= self.segment_length:
            h = wavelet_holder(x, **self._holder_kwargs())
            return h[-min(self.tail, x.size):]

        y = x[-self.segment_length:]
        _obs.counter("perf.sliding.segments").inc()
        modulus = np.abs(
            cwt(y, self._scales, wavelet="dog", dog_order=self.dog_order))
        if self.cone_supremum:
            for j, a in enumerate(self._scales):
                half = max(int(round(a)), 1)
                modulus[j] = _rolling_max(modulus[j], half)
        tiny = np.finfo(float).tiny
        log_mod = np.log2(np.maximum(modulus[:, -self.tail:], tiny))
        slopes = (self._la @ log_mod) / self._denom
        return slopes - 0.5
