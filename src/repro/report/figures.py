"""ASCII sparkline plots for figure series."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import ValidationError


def render_series(
    values,
    *,
    title: str | None = None,
    width: int = 100,
    height: int = 12,
    markers: Sequence[tuple[float, str]] | None = None,
    x_values=None,
) -> str:
    """Plot a series as an ASCII chart.

    Parameters
    ----------
    values:
        The series; it is resampled (by block means) to ``width``
        columns.
    markers:
        Optional ``(x, label)`` pairs to flag on the x axis (e.g. crash
        and alarm times).  ``x_values`` must then be given and be
        monotone.
    """
    y = as_1d_float_array(values, name="values", min_length=2)
    check_positive_int(width, name="width", minimum=10)
    check_positive_int(height, name="height", minimum=3)

    # Resample to `width` columns by block means.
    edges = np.linspace(0, y.size, width + 1).astype(int)
    cols = np.array([
        y[edges[i]:edges[i + 1]].mean() if edges[i + 1] > edges[i] else np.nan
        for i in range(width)
    ])
    valid = ~np.isnan(cols)
    lo, hi = float(np.min(cols[valid])), float(np.max(cols[valid]))
    if hi == lo:
        hi = lo + 1.0
    levels = np.clip(((cols - lo) / (hi - lo) * (height - 1)).round(), 0, height - 1)

    grid = [[" "] * width for _ in range(height)]
    for col in range(width):
        if not valid[col]:
            continue
        row = height - 1 - int(levels[col])
        grid[row][col] = "*"

    out = []
    if title:
        out.append(title)
    out.append(f"{hi:.4g}".rjust(12) + " +" + "-" * width + "+")
    for row in grid:
        out.append(" " * 12 + " |" + "".join(row) + "|")
    out.append(f"{lo:.4g}".rjust(12) + " +" + "-" * width + "+")

    if markers:
        if x_values is None:
            raise ValidationError("markers require x_values")
        x = as_1d_float_array(x_values, name="x_values", min_length=2)
        if x.size != y.size:
            raise ValidationError("x_values must match values length")
        marker_row = [" "] * width
        legend = []
        for mx, label in markers:
            frac = (mx - x[0]) / (x[-1] - x[0]) if x[-1] > x[0] else 0.0
            col = int(np.clip(frac * (width - 1), 0, width - 1))
            symbol = label[0].upper() if label else "^"
            marker_row[col] = symbol
            legend.append(f"{symbol}={label}@{mx:.5g}")
        out.append(" " * 12 + "  " + "".join(marker_row))
        out.append(" " * 12 + "  " + "  ".join(legend))
    return "\n".join(out)
