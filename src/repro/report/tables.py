"""ASCII table rendering."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import ValidationError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of rows as a boxed, column-aligned text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  All rows must have the same arity as ``headers``.
    """
    if not headers:
        raise ValidationError("headers must be non-empty")

    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    header_cells = [str(h) for h in headers]
    body = []
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        body.append([fmt(c) for c in row])

    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(header_cells))
    out.append(sep)
    for row in body:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def render_kv(pairs: Mapping[str, object], *, title: str | None = None) -> str:
    """Render a key/value mapping as an aligned two-column block."""
    if not pairs:
        raise ValidationError("pairs must be non-empty")
    width = max(len(str(k)) for k in pairs)
    out = [title] if title else []
    for key, value in pairs.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        out.append(f"  {str(key).ljust(width)} : {value}")
    return "\n".join(out)
