"""Plain-text rendering of experiment tables and figure series.

The benchmark harness regenerates every table and figure of the paper as
text: tables via :func:`render_table`, figure series via
:func:`render_series` (a fixed-height ASCII sparkline plot good enough
to eyeball trajectories in CI logs).
"""

from .tables import render_table, render_kv
from .figures import render_series

__all__ = ["render_table", "render_kv", "render_series"]
