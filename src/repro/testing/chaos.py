"""Fault injection for the resilience layer: kill, hang, raise, torn writes.

The paper's methodology is "run hosts under stress until they crash";
this module applies the same discipline to the campaign harness itself.
A :class:`ChaosSpec` deterministically schedules worker-process kills
(``os._exit`` mid-unit), hangs (sleeps past the pool timeout) and
transient :class:`ChaosError` raises against pool work units, via the
``pre_unit`` hook of :func:`repro.perf.pool.resilient_map`; the
:class:`TornWriter` wrapper and :func:`slow_write` simulate writes
interrupted partway for exercising the atomic artifact writers.

Everything is deterministic: which units fail, and on which attempts,
is a pure function of ``(spec.seed, failure kind, unit index)`` through
``crc32`` (no salted hashing), so a chaos test that fails is a chaos
test you can re-run.  Because a unit stops being sabotaged after
``max_failures_per_unit`` attempts, a retry budget of at least that
many always converges — and since the *work function* is untouched on
the successful attempt, the chaos run's results are bit-identical to a
calm run's.  That equivalence is the core assertion of the chaos tests
and the CI chaos smoke job.

Used from tests and from ``python -m repro campaign --chaos`` (a dev
flag: sabotage your own campaign, then watch retries, the checkpoint
journal and ``--resume`` repair it).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from random import Random
from typing import IO

from ..exceptions import ReproError, ValidationError

__all__ = [
    "ChaosError",
    "ChaosSpec",
    "TornWriteError",
    "TornWriter",
    "chaos_pre_unit",
    "slow_write",
]


class ChaosError(ReproError, RuntimeError):
    """A failure injected by the chaos harness.

    Campaign execution treats this as *transient* (retryable); anything
    else a unit raises is still a real bug and propagates.
    """


class TornWriteError(ChaosError):
    """Injected mid-write failure from :class:`TornWriter`."""


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic schedule of injected faults for pool work units.

    Rates are per-unit probabilities (evaluated once per unit, not per
    attempt): a unit selected for a fault suffers it on its first
    ``max_failures_per_unit`` attempts and then runs clean, so retry
    budgets ``>= max_failures_per_unit`` always converge.  ``kill``
    takes precedence over ``hang`` over ``raise`` when a unit is
    selected for several.

    ``hang_seconds`` must exceed the pool timeout to be meaningful;
    ``kill`` uses ``os._exit`` so the worker dies without running any
    cleanup — exactly like the OOM killer the campaign fears.
    """

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    hang_seconds: float = 3600.0
    seed: int = 0
    max_failures_per_unit: int = 1

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "raise_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(
                    f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds <= 0:
            raise ValidationError(
                f"hang_seconds must be positive, got {self.hang_seconds}")
        if self.max_failures_per_unit < 1:
            raise ValidationError(
                f"max_failures_per_unit must be >= 1, "
                f"got {self.max_failures_per_unit}")

    def _selected(self, kind: str, index: int, rate: float) -> bool:
        if rate <= 0.0:
            return False
        draw = Random(zlib.crc32(f"{self.seed}:{kind}:{index}".encode()))
        return draw.random() < rate

    def fault_for(self, index: int, attempt: int) -> str | None:
        """The fault (``"kill"``/``"hang"``/``"raise"``) this unit
        suffers on this attempt, or ``None``."""
        if attempt > self.max_failures_per_unit:
            return None
        for kind, rate in (("kill", self.kill_rate),
                           ("hang", self.hang_rate),
                           ("raise", self.raise_rate)):
            if self._selected(kind, index, rate):
                return kind
        return None

    def scheduled_faults(self, n_units: int) -> dict:
        """``{index: kind}`` for every unit that will be sabotaged —
        lets tests and the CLI report what the schedule holds."""
        out = {}
        for index in range(n_units):
            kind = self.fault_for(index, attempt=1)
            if kind is not None:
                out[index] = kind
        return out


def chaos_pre_unit(spec: ChaosSpec, index: int, attempt: int) -> None:
    """``pre_unit`` hook for the pool: inject this unit's scheduled fault.

    Runs inside the worker process, before the work function.  Pass as
    ``functools.partial(chaos_pre_unit, spec)`` — module-level and
    dataclass-argument, so it pickles across the process boundary.
    """
    fault = spec.fault_for(index, attempt)
    if fault == "kill":
        os._exit(17)  # die like the OOM killer: no cleanup, no excuse
    elif fault == "hang":
        time.sleep(spec.hang_seconds)
    elif fault == "raise":
        raise ChaosError(
            f"injected transient failure (unit {index}, attempt {attempt})")


class TornWriter:
    """File-handle wrapper that dies partway through writing.

    Wrap the handle yielded by an atomic writer and the write "tears"
    after ``fail_after_bytes`` — the simulated mid-write SIGKILL.  The
    atomic-write contract under test: the destination path must be left
    untouched (previous version or absent), with no partial content
    visible.
    """

    def __init__(self, handle: IO, *, fail_after_bytes: int):
        if fail_after_bytes < 0:
            raise ValidationError(
                f"fail_after_bytes must be >= 0, got {fail_after_bytes}")
        self._handle = handle
        self._budget = fail_after_bytes
        self.bytes_written = 0

    def write(self, data: str) -> int:
        remaining = self._budget - self.bytes_written
        if len(data) > remaining:
            self._handle.write(data[:remaining])
            self.bytes_written += remaining
            raise TornWriteError(
                f"injected torn write after {self._budget} byte(s)")
        self._handle.write(data)
        self.bytes_written += len(data)
        return len(data)

    def __getattr__(self, name: str):
        return getattr(self._handle, name)


def slow_write(handle: IO, data: str, *, chunk_size: int = 64,
               delay: float = 0.01) -> None:
    """Write ``data`` in small flushed chunks with sleeps in between.

    Stretches a write out in wall-clock time so an external killer (the
    CI chaos smoke's SIGKILL, a test's watchdog) has a window to land
    mid-write — the scenario the atomic writers must survive.
    """
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    if delay < 0:
        raise ValidationError(f"delay must be >= 0, got {delay}")
    for start in range(0, len(data), chunk_size):
        handle.write(data[start:start + chunk_size])
        handle.flush()
        time.sleep(delay)
