"""Test-support utilities shipped with the library.

:mod:`repro.testing.chaos` is the fault-injection harness that proves
the resilience layer (pool retries/timeouts, campaign checkpoint
journals, atomic artifact writes) actually survives the failures it
claims to: worker kills, hangs, transient exceptions and torn writes.
It ships in the package (not just the test tree) because the
``campaign --chaos`` dev flag and downstream users' own test suites
need it importable.
"""

from .chaos import (
    ChaosError,
    ChaosSpec,
    TornWriteError,
    TornWriter,
    chaos_pre_unit,
    slow_write,
)

__all__ = [
    "ChaosError",
    "ChaosSpec",
    "TornWriteError",
    "TornWriter",
    "chaos_pre_unit",
    "slow_write",
]
