"""Remaining-life forecasting from the aging indicator.

Alarms say *that* the host is aging; operators also ask *how long it has
left*.  Following the measurement-based rejuvenation literature's
time-to-exhaustion estimates (Garg et al.; Vaidyanathan & Trivedi), this
module calibrates the mapping

``indicator z-score  ->  remaining fraction of life``

on a training fleet with known crash times, then predicts remaining
seconds for new runs from their indicator trajectory.

Method: for every training run, each indicator sample contributes a pair
``(z, remaining_fraction)``; pairs are pooled, sorted by z and reduced to
a monotone (isotonic-style) stepwise curve by pool-adjacent-violators.
Prediction evaluates the curve at the target run's current z and scales
by the run's elapsed time:

``remaining ≈ elapsed * f(z) / (1 - f(z))``

which needs no knowledge of the total lifetime.

Accuracy envelope: this is a deliberately crude, assumption-light
estimator.  On held-out simulated runs it is order-of-magnitude correct
through the middle of life (roughly 40–85% of the run) and degrades at
the extremes — early on the indicator has not separated from its
baseline, and in the final minutes the Hölder indicator saturates and
can even rebound, breaking the monotone z-to-remaining relationship.
Use the alarms (:mod:`repro.core.detectors`) for the *decision*; use
this forecast only to rank hosts by urgency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import AnalysisError, ValidationError
from .indicators import IndicatorSeries


@dataclass(frozen=True)
class LifeModel:
    """Monotone mapping from indicator z-score to remaining-life fraction.

    Attributes
    ----------
    z_grid:
        Increasing z values of the stepwise curve.
    remaining_fraction:
        Monotone non-increasing remaining-life fractions at those z.
    n_training_pairs:
        Pooled (z, fraction) pairs the curve was fitted on.
    """

    z_grid: np.ndarray
    remaining_fraction: np.ndarray
    n_training_pairs: int

    def predict_fraction(self, z: float) -> float:
        """Remaining-life fraction at an indicator z-score (clipped)."""
        return float(np.interp(z, self.z_grid, self.remaining_fraction))

    def predict_remaining_seconds(self, z: float, elapsed: float) -> float:
        """Remaining seconds given the current z and elapsed uptime."""
        if elapsed <= 0:
            raise ValidationError(f"elapsed must be positive, got {elapsed}")
        fraction = min(self.predict_fraction(z), 0.99)
        return elapsed * fraction / (1.0 - fraction)


def _indicator_z_series(indicator: IndicatorSeries,
                        calibration_fraction: float = 0.3) -> tuple:
    """Z-score the indicator against its own healthy head."""
    values = indicator.series.values
    times = indicator.series.times
    n_cal = max(int(values.size * calibration_fraction), 8)
    if values.size <= n_cal + 8:
        raise AnalysisError("indicator too short to z-score")
    mean = float(np.mean(values[:n_cal]))
    std = float(np.std(values[:n_cal], ddof=1))
    if std == 0:
        std = max(abs(mean) * 1e-6, 1e-12)
    # Two-sided deviation: aging can move the indicator either way.
    z = np.abs(values - mean) / std
    return times, z


def fit_life_model(
    training: Sequence[tuple],
    *,
    n_grid: int = 40,
) -> LifeModel:
    """Fit the z -> remaining-fraction curve on (indicator, crash_time) pairs.

    Parameters
    ----------
    training:
        Sequence of ``(IndicatorSeries, crash_time)`` from runs whose
        death was observed.
    n_grid:
        Resolution of the fitted stepwise curve.
    """
    check_positive_int(n_grid, name="n_grid", minimum=5)
    if len(training) < 2:
        raise ValidationError("need at least 2 training runs")

    zs: List[float] = []
    fractions: List[float] = []
    for indicator, crash_time in training:
        if crash_time is None or crash_time <= 0:
            raise ValidationError("training runs must have positive crash times")
        times, z = _indicator_z_series(indicator)
        usable = times < crash_time
        t_use = times[usable]
        z_use = z[usable]
        t0 = t_use[0]
        life = crash_time - t0
        remaining = (crash_time - t_use) / life
        zs.extend(z_use.tolist())
        fractions.extend(remaining.tolist())
    if len(zs) < n_grid:
        raise AnalysisError("too few training pairs for the requested grid")

    order = np.argsort(zs)
    z_sorted = np.asarray(zs)[order]
    f_sorted = np.asarray(fractions)[order]

    # Bin to the grid, then enforce monotonicity (non-increasing in z)
    # with pool-adjacent-violators.
    edges = np.linspace(0, z_sorted.size, n_grid + 1).astype(int)
    grid_z = np.array([z_sorted[edges[i]:edges[i + 1]].mean()
                       for i in range(n_grid)])
    grid_f = np.array([f_sorted[edges[i]:edges[i + 1]].mean()
                       for i in range(n_grid)])
    grid_f = _pava_nonincreasing(grid_f)

    # Deduplicate any equal z (np.interp needs increasing x).
    keep = np.concatenate([[True], np.diff(grid_z) > 0])
    return LifeModel(
        z_grid=grid_z[keep],
        remaining_fraction=np.clip(grid_f[keep], 0.0, 1.0),
        n_training_pairs=len(zs),
    )


def predict_remaining_life(
    model: LifeModel,
    indicator: IndicatorSeries,
) -> float:
    """Remaining-seconds prediction for a run in progress.

    Uses the indicator's latest z-score and the elapsed monitored time.
    """
    times, z = _indicator_z_series(indicator)
    elapsed = float(times[-1] - times[0])
    if elapsed <= 0:
        raise AnalysisError("indicator spans no time")
    # Smooth the operating point over the last few samples.
    current_z = float(np.median(z[-5:]))
    return model.predict_remaining_seconds(current_z, elapsed)


def _pava_nonincreasing(values: np.ndarray) -> np.ndarray:
    """Pool-adjacent-violators for a non-increasing fit (equal weights)."""
    # Fit non-decreasing on the negated series, then negate back.
    y = -values.astype(float)
    n = y.size
    result = y.copy()
    weights = np.ones(n)
    # Classic stack-based PAVA.
    means: List[float] = []
    counts: List[float] = []
    for i in range(n):
        means.append(result[i])
        counts.append(1.0)
        while len(means) > 1 and means[-2] > means[-1]:
            total = counts[-1] + counts[-2]
            merged = (means[-1] * counts[-1] + means[-2] * counts[-2]) / total
            means.pop(); counts.pop()
            means[-1] = merged
            counts[-1] = total
    out = np.empty(n)
    idx = 0
    for mean, count in zip(means, counts):
        out[idx: idx + int(count)] = mean
        idx += int(count)
    return -out
