"""End-to-end aging analysis: trace in, warnings out.

``analyze_counter`` runs the full chain on one performance counter:

    fill gaps -> resample -> Hölder trajectory -> windowed variance
    indicator -> calibrated detector -> alarm

``analyze_run`` applies it to every requested counter of a
:class:`~repro.trace.series.TraceBundle` and combines the per-counter
alarms (the run-level warning is the earliest counter alarm, mirroring
the paper's practice of monitoring several memory counters at once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import AnalysisError
from ..obs import get_logger
from ..obs import session as _obs
from ..obs.profile import profile
from ..trace.series import TimeSeries, TraceBundle
from ..trace.preprocess import fill_gaps, resample_uniform
from .engines import create_holder_engine
from .holder import HolderTrajectory, holder_trajectory
from .indicators import IndicatorSeries, holder_mean_series, holder_variance_series
from .detectors import AgingAlarm, DetectorConfig, HolderVarianceDetector

_log = get_logger("core.pipeline")


@dataclass(frozen=True)
class AgingAnalysis:
    """Full analysis artefacts for one counter.

    Attributes
    ----------
    counter:
        The preprocessed (gap-free, uniform) series that was analysed.
    trajectory:
        Pointwise Hölder exponents.
    indicator:
        The windowed-variance indicator series.
    alarm:
        Detector outcome.
    """

    counter: TimeSeries
    trajectory: HolderTrajectory
    indicator: IndicatorSeries
    alarm: AgingAlarm


@dataclass
class AgingReport:
    """Run-level report: one analysis per counter plus the combined alarm."""

    analyses: Dict[str, AgingAnalysis] = field(default_factory=dict)
    crash_time: Optional[float] = None

    @property
    def first_alarm_time(self) -> Optional[float]:
        """Earliest alarm across counters, or None when nothing fired."""
        times = [
            a.alarm.alarm_time for a in self.analyses.values() if a.alarm.fired
        ]
        return min(times) if times else None

    @property
    def alarmed_counters(self) -> list[str]:
        """Names of counters whose detector fired, in alarm-time order."""
        fired = [
            (a.alarm.alarm_time, name)
            for name, a in self.analyses.items()
            if a.alarm.fired
        ]
        return [name for _, name in sorted(fired)]

    def lead_time(self) -> Optional[float]:
        """Crash time minus first alarm; None without both."""
        if self.crash_time is None or self.first_alarm_time is None:
            return None
        return float(self.crash_time) - float(self.first_alarm_time)


@profile("core.analyze_counter")
def analyze_counter(
    ts: TimeSeries,
    *,
    holder_method: str = "wavelet",
    holder_kwargs: Optional[dict] = None,
    holder_engine: str = "batch",
    indicator: str = "mean",
    indicator_window: int = 512,
    indicator_step: int = 8,
    detector_config: Optional[DetectorConfig] = None,
) -> AgingAnalysis:
    """Run the full aging-analysis chain on one counter series.

    Parameters
    ----------
    ts:
        The raw counter (gaps and slight sampling jitter are handled).
    holder_method:
        ``"wavelet"`` or ``"oscillation"``.
    holder_kwargs:
        Extra arguments for the Hölder estimator (scales, radii, ...).
    holder_engine:
        Which registered :class:`~repro.core.engines.HolderEngine`
        computes the wavelet trajectory.  Full-window estimates are
        identical across engines by protocol contract, so the analysis
        payload is bit-identical whatever is selected; the knob exists
        so campaign specs and streaming callers share one vocabulary.
        Ignored for ``holder_method="oscillation"``.
    indicator:
        Which Hölder moment to monitor: ``"mean"`` (default — on the
        simulator substrate the first moment of h(t) carries the
        cleanest aging signature, declining as paging roughens the
        counters) or ``"variance"`` (the paper's original windowed
        second moment).
    indicator_window, indicator_step:
        Sliding-window geometry of the indicator, in samples.
    detector_config:
        Detector knobs; defaults to the two-sided CUSUM scheme.
    """
    from .._validation import check_choice

    check_choice(indicator, name="indicator", choices=("mean", "variance"))
    check_positive_int(indicator_window, name="indicator_window", minimum=8)
    check_positive_int(indicator_step, name="indicator_step")
    with _obs.span("analyze-counter", counter=ts.name, indicator=indicator):
        with _obs.span("preprocess", counter=ts.name):
            clean = ts
            if clean.has_gaps:
                clean = fill_gaps(clean)
            if not clean.is_uniform:
                clean = resample_uniform(clean)
        if len(clean) < 4 * indicator_window:
            raise AnalysisError(
                f"counter {ts.name!r} has {len(clean)} usable samples; "
                f"need >= {4 * indicator_window} for window {indicator_window}"
            )

        with _obs.span("holder", counter=ts.name, method=holder_method,
                       engine=holder_engine):
            if holder_method == "wavelet":
                # Same hot-path name as the direct holder_trajectory
                # route, so profiles stay comparable across engines.
                with profile("core.holder_trajectory"):
                    engine = create_holder_engine(
                        holder_engine, **(holder_kwargs or {}))
                    result = engine.estimate(clean.values)
                    trajectory = HolderTrajectory(
                        times=clean.times.copy(), h=result.h,
                        method=holder_method, source_name=clean.name,
                    )
            else:
                trajectory = holder_trajectory(
                    clean, method=holder_method, **(holder_kwargs or {}))
        with _obs.span("indicator", counter=ts.name, statistic=indicator):
            make_series = (holder_mean_series if indicator == "mean"
                           else holder_variance_series)
            indicator_series = make_series(
                trajectory, window=indicator_window, step=indicator_step
            )
        with _obs.span("detector", counter=ts.name):
            detector = HolderVarianceDetector(
                config=detector_config or DetectorConfig())
            alarm = detector.run(indicator_series)

    if _obs.telemetry_enabled():
        _obs.counter("analysis.counters_analyzed").inc()
        _obs.counter("analysis.samples_processed").inc(len(clean))
        _obs.counter("analysis.indicator_windows").inc(
            len(indicator_series.series))
        if alarm.fired:
            _obs.counter("analysis.alarms_fired").inc()
            _obs.record_event("alarm", counter=ts.name,
                              sim_time=alarm.alarm_time, scheme=alarm.scheme,
                              statistic=indicator_series.statistic)
    if alarm.fired:
        _log.info("alarm fired", counter=ts.name, sim_time=alarm.alarm_time,
                  scheme=alarm.scheme)
    else:
        _log.debug("no alarm", counter=ts.name,
                   samples=len(clean), windows=len(indicator_series.series))
    return AgingAnalysis(
        counter=clean, trajectory=trajectory, indicator=indicator_series, alarm=alarm,
    )


def analyze_run(
    bundle: TraceBundle,
    *,
    counters: Optional[Sequence[str]] = None,
    **kwargs,
) -> AgingReport:
    """Analyse several counters of a run and combine their alarms.

    ``counters`` defaults to every series in the bundle.  The bundle's
    ``crash_time`` metadata (written by the simulator) is carried into
    the report so lead times can be computed.
    """
    names = list(counters) if counters is not None else bundle.names
    if not names:
        raise AnalysisError("no counters to analyse")
    crash_time = bundle.metadata.get("crash_time")
    report = AgingReport(
        crash_time=float(crash_time) if crash_time is not None else None
    )
    for name in names:
        report.analyses[name] = analyze_counter(bundle[name], **kwargs)
    return report
