"""Streaming (online) aging monitor.

The offline pipeline (:mod:`repro.core.pipeline`) analyses a completed
trace.  Production monitoring needs the same decision *as samples
arrive*; :class:`OnlineAgingMonitor` provides it:

* counter samples are pushed one at a time (:meth:`update`);
* every ``chunk_size`` samples, the local Hölder trajectory of the
  trailing ``history`` samples is recomputed and the newest
  ``indicator_window`` Hölder values are summarised into one indicator
  point (mean or variance of h);
* the first ``n_calibration`` indicator points — after ``n_warmup``
  discarded ones — calibrate the baseline; thereafter each point feeds
  a two-sided CUSUM, and the first excursion raises the alarm.

The recompute-on-chunk design keeps the amortised cost per sample at
``O(history / chunk_size)`` wavelet work, a few microseconds at the
default settings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .._validation import check_choice, check_positive_int
from ..exceptions import AnalysisError
from ..obs import get_logger
from ..obs import session as _obs
from ..stats.changepoint import CusumDetector
from .engines import HolderEngine, create_holder_engine

_log = get_logger("core.online")


@dataclass
class OnlineAgingMonitor:
    """Push-based aging monitor over one performance counter.

    Parameters
    ----------
    chunk_size:
        Samples between successive Hölder recomputations (also the
        spacing of indicator points, so points are near-independent).
    history:
        Trailing samples the Hölder estimator sees each recomputation.
    indicator_window:
        Newest Hölder values summarised into each indicator point.
    indicator:
        ``"mean"`` or ``"variance"`` of the windowed Hölder values.
    n_warmup:
        Leading indicator points discarded (startup transient).
    n_calibration:
        Indicator points forming the healthy baseline.
    cusum_k, cusum_h:
        CUSUM allowance and decision threshold, in baseline sigmas.
    holder_kwargs:
        Extra arguments for :func:`repro.core.holder.wavelet_holder`.
    holder_engine:
        A registered engine name (see
        :func:`repro.core.engines.holder_engine_names`) or a
        :class:`~repro.core.engines.HolderEngine` instance.  ``"batch"``
        recomputes the full-window Hölder trajectory per emit;
        ``"sliding"``/``"online"`` compute only the
        ``indicator_window`` tail through the truncated-support CWT —
        same indicator points to machine precision, a fraction of the
        CWT work.
    on_indicator:
        Optional callback ``(time, value)`` invoked for every indicator
        point (live watchers stream these).
    on_state_change:
        Optional callback ``(time, old_state, new_state)`` invoked on
        every :attr:`state` transition.
    """

    chunk_size: int = 256
    history: int = 4096
    indicator_window: int = 512
    indicator: str = "mean"
    n_warmup: int = 2
    n_calibration: int = 12
    cusum_k: float = 1.5
    cusum_h: float = 8.0
    holder_kwargs: dict = field(default_factory=dict)
    holder_engine: str | HolderEngine = "batch"
    on_indicator: Optional[Callable[[float, float], None]] = None
    on_state_change: Optional[Callable[[float, str, str], None]] = None

    def __post_init__(self) -> None:
        check_positive_int(self.chunk_size, name="chunk_size", minimum=16)
        check_positive_int(self.history, name="history", minimum=256)
        check_positive_int(self.indicator_window, name="indicator_window", minimum=16)
        check_choice(self.indicator, name="indicator", choices=("mean", "variance"))
        check_positive_int(self.n_calibration, name="n_calibration", minimum=4)
        if self.indicator_window > self.history:
            raise AnalysisError("indicator_window cannot exceed history")
        # The Hölder estimator needs max_scale <= history / 4; catching a
        # too-coarse scale band here fails construction instead of the
        # first recomputation, thousands of samples into a live run.
        max_scale = float(self.holder_kwargs.get("max_scale", 32.0))
        if self.history < 4 * max_scale:
            raise AnalysisError(
                f"history ({self.history}) is shorter than the wavelet "
                f"support: need at least 4 * max_scale = {4 * max_scale:.0f} "
                f"samples"
            )
        # Resolve the Hölder engine once, here — every emit then goes
        # through the same estimate_tail call, whatever the engine.
        if isinstance(self.holder_engine, str):
            self._engine = create_holder_engine(
                self.holder_engine, history=self.history,
                tail=self.indicator_window, **self.holder_kwargs)
        else:
            self._engine = self.holder_engine
        self._times: List[float] = []
        self._values: List[float] = []
        self._since_recompute = 0
        self._indicator_points: List[float] = []
        self._indicator_times: List[float] = []
        self._detectors: Optional[List[CusumDetector]] = None
        self._baseline_mean = float("nan")
        self._alarm_time: Optional[float] = None

    # -- state ---------------------------------------------------------------

    @property
    def alarm_time(self) -> Optional[float]:
        """First alarm time, or None while quiet."""
        return self._alarm_time

    @property
    def alarmed(self) -> bool:
        """True once the alarm has fired (latched)."""
        return self._alarm_time is not None

    @property
    def calibrated(self) -> bool:
        """True once the baseline has been established."""
        return self._detectors is not None

    @property
    def state(self) -> str:
        """Detector lifecycle state.

        ``"buffering"`` (filling the first history window, no indicator
        points yet) → ``"calibrating"`` (accumulating baseline points) →
        ``"watching"`` (armed) → ``"alarmed"`` (latched).
        """
        if self.alarmed:
            return "alarmed"
        if self.calibrated:
            return "watching"
        if self._indicator_points:
            return "calibrating"
        return "buffering"

    @property
    def n_samples(self) -> int:
        """Counter samples consumed so far."""
        return len(self._values)

    @property
    def indicator_history(self) -> np.ndarray:
        """All indicator points produced so far (diagnostics)."""
        return np.asarray(self._indicator_points)

    @property
    def indicator_times(self) -> np.ndarray:
        """Sample times of the indicator points (diagnostics)."""
        return np.asarray(self._indicator_times)

    @property
    def baseline_mean(self) -> float:
        """Calibrated baseline mean (NaN before calibration)."""
        return self._baseline_mean

    # -- feeding ---------------------------------------------------------------

    def update(self, time: float, value: float) -> bool:
        """Push one counter sample; returns True when the alarm is up."""
        time = float(time)
        value = float(value)
        if not math.isfinite(time) or not math.isfinite(value):
            raise AnalysisError(
                f"samples must be finite (got t={time}, value={value}); "
                "drop or impute collector gaps before feeding the monitor"
            )
        if self._times and time <= self._times[-1]:
            raise AnalysisError(
                f"samples must arrive in time order ({time} after {self._times[-1]})"
            )
        before = self.state
        self._times.append(time)
        self._values.append(value)
        self._since_recompute += 1
        if (self._since_recompute >= self.chunk_size
                and len(self._values) >= self.history):
            self._since_recompute = 0
            self._emit_indicator_point()
        after = self.state
        if after != before and self.on_state_change is not None:
            self.on_state_change(time, before, after)
        return self.alarmed

    def update_many(self, times, values) -> bool:
        """Push a batch of samples; returns True when the alarm is up.

        Equivalent to calling :meth:`update` per sample — identical
        indicator points, state transitions and callback invocations at
        the same sample times — but validated with one vectorised pass
        and appended in bulk, advancing straight from one emit boundary
        to the next.  Unlike the per-sample path, an invalid batch
        (non-finite or out-of-order samples) is rejected *whole*, before
        anything is consumed.
        """
        if not hasattr(times, "__len__"):
            times = list(times)
        if not hasattr(values, "__len__"):
            values = list(values)
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or v.ndim != 1 or t.size != v.size:
            raise AnalysisError(
                f"times and values must be 1-D and equally long "
                f"(got {t.shape} and {v.shape})"
            )
        if t.size == 0:
            return self.alarmed
        if not np.all(np.isfinite(t)) or not np.all(np.isfinite(v)):
            raise AnalysisError(
                "samples must be finite; drop or impute collector gaps "
                "before feeding the monitor"
            )
        if (self._times and t[0] <= self._times[-1]) \
                or np.any(np.diff(t) <= 0):
            raise AnalysisError("samples must arrive in strict time order")

        i = 0
        n = int(t.size)
        while i < n:
            # Samples until the next possible emit: the chunk stride and
            # the history fill must *both* be satisfied, so the binding
            # constraint is their max (>= 1 keeps degenerate configs
            # moving).  This reproduces the per-sample emit positions
            # exactly.
            need = max(self.chunk_size - self._since_recompute,
                       self.history - len(self._values), 1)
            take = min(need, n - i)
            before = self.state
            self._times.extend(t[i:i + take].tolist())
            self._values.extend(v[i:i + take].tolist())
            self._since_recompute += take
            if (self._since_recompute >= self.chunk_size
                    and len(self._values) >= self.history):
                self._since_recompute = 0
                self._emit_indicator_point()
            after = self.state
            if after != before and self.on_state_change is not None:
                self.on_state_change(float(t[i + take - 1]), before, after)
            i += take
        return self.alarmed

    # -- internals ---------------------------------------------------------------

    def _emit_indicator_point(self) -> None:
        window = np.asarray(self._values[-self.history:])
        recent = self._engine.estimate_tail(window, self.indicator_window)
        point = float(np.mean(recent)) if self.indicator == "mean" \
            else float(np.var(recent))
        self._indicator_points.append(point)
        self._indicator_times.append(self._times[-1])
        _obs.counter("online.indicator_points").inc()
        if self.on_indicator is not None:
            self.on_indicator(self._times[-1], point)

        usable = len(self._indicator_points) - self.n_warmup
        if usable == self.n_calibration and self._detectors is None:
            self._calibrate()
            _log.debug("online monitor calibrated",
                       baseline_mean=self._baseline_mean,
                       sim_time=self._indicator_times[-1])
            return
        if self._detectors is None or self.alarmed:
            return
        # Two-sided: one CUSUM on the point, one on its mirror image.
        for detector, signed in zip(self._detectors, (1.0, -1.0)):
            monitored = self._baseline_mean + signed * (point - self._baseline_mean)
            if detector.update(monitored):
                self._alarm_time = self._indicator_times[-1]
                _log.info("online alarm", sim_time=self._alarm_time,
                          indicator=self.indicator, point=point,
                          baseline_mean=self._baseline_mean)
                _obs.counter("online.alarms").inc()
                _obs.record_event("online_alarm", sim_time=self._alarm_time,
                                  indicator=self.indicator, point=point)
                return

    def _calibrate(self) -> None:
        baseline = np.asarray(self._indicator_points[self.n_warmup:])
        mean = float(np.mean(baseline))
        std = float(np.std(baseline, ddof=1))
        if std == 0:
            std = max(abs(mean) * 1e-6, 1e-12)
        self._baseline_mean = mean
        detectors = []
        for _ in range(2):
            det = CusumDetector(k=self.cusum_k, h=self.cusum_h)
            det.calibrate_from_moments(mean, std)
            detectors.append(det)
        self._detectors = detectors
