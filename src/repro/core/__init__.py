"""The paper's primary contribution: multifractality-based aging detection.

Pipeline stages, each its own module:

:mod:`.holder`
    Pointwise (local) Hölder exponent estimation — the wavelet-modulus
    estimator (regression of ``log |W(a, t)|`` across fine scales) and
    the direct oscillation estimator, plus windowed Hölder *trajectories*.
:mod:`.engines`
    The :class:`~repro.core.engines.HolderEngine` protocol and name
    registry unifying the batch, sliding and online estimation routes.
:mod:`.indicators`
    Aging indicators derived from the Hölder trajectory: the windowed
    second moment (the paper's headline statistic), windowed mean, and
    fractal-dimension-flavoured summaries.
:mod:`.detectors`
    Turning an indicator series into crash warnings: threshold, CUSUM
    and EWMA detectors with a calibration window, alarm latching and
    warning-time extraction ("fractal collapse" detection).
:mod:`.pipeline`
    End-to-end: trace bundle -> preprocessing -> h(t) -> indicator ->
    alarms -> per-run report; multi-run evaluation drivers.
"""

from .holder import (
    local_holder,
    holder_trajectory,
    HolderTrajectory,
    oscillation_holder,
    wavelet_holder,
)
from .engines import (
    HolderEngine,
    HolderResult,
    create_holder_engine,
    holder_engine_names,
    register_holder_engine,
)
from .indicators import (
    windowed_moments,
    holder_variance_series,
    holder_mean_series,
    IndicatorSeries,
)
from .detectors import (
    AgingAlarm,
    HolderVarianceDetector,
    DetectorConfig,
    detect_fractal_collapse,
)
from .pipeline import (
    AgingAnalysis,
    AgingReport,
    analyze_counter,
    analyze_run,
)
from .online import OnlineAgingMonitor
from .forecasting import LifeModel, fit_life_model, predict_remaining_life

__all__ = [
    "local_holder",
    "holder_trajectory",
    "HolderTrajectory",
    "oscillation_holder",
    "wavelet_holder",
    "HolderEngine",
    "HolderResult",
    "create_holder_engine",
    "holder_engine_names",
    "register_holder_engine",
    "windowed_moments",
    "holder_variance_series",
    "holder_mean_series",
    "IndicatorSeries",
    "AgingAlarm",
    "HolderVarianceDetector",
    "DetectorConfig",
    "detect_fractal_collapse",
    "AgingAnalysis",
    "AgingReport",
    "analyze_counter",
    "analyze_run",
    "OnlineAgingMonitor",
    "LifeModel",
    "fit_life_model",
    "predict_remaining_life",
]
