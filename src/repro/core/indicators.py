"""Aging indicators derived from a Hölder trajectory.

The paper's central statistic is the **windowed second moment of the
Hölder exponent series**: a sliding window slides over ``h(t)`` and each
position reports the variance inside the window.  Under healthy operation
the multifractal structure of the counter is stationary and the variance
series is flat; as aging degrades the memory subsystem, the regularity of
the counter destabilises and the variance jumps — the "fractal collapse"
precursor.

:func:`windowed_moments` computes mean/variance (and optional higher
moments) trajectories in O(n) with prefix sums;
:func:`holder_variance_series` / :func:`holder_mean_series` are the
convenience entry points used by the detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .._validation import check_positive_int
from ..exceptions import AnalysisError, ValidationError
from ..trace.series import TimeSeries
from .holder import HolderTrajectory


@dataclass(frozen=True)
class IndicatorSeries:
    """An aging-indicator series with provenance.

    Attributes
    ----------
    series:
        The indicator values over time (right-edge aligned: the value at
        time t uses only samples at or before t, so the series is causal
        and usable online).
    window:
        Window length in samples of the source trajectory.
    step:
        Stride between window positions, in trajectory samples.
        Consecutive indicator values share ``window - step`` samples, so
        roughly ``window / step`` consecutive indicator points are one
        effective observation — detectors use this to decimate.
    statistic:
        ``"variance"``, ``"mean"``, ``"skewness"`` or ``"kurtosis"``.
    source_name:
        Name of the counter the Hölder trajectory came from.
    """

    series: TimeSeries
    window: int
    step: int
    statistic: str
    source_name: str

    @property
    def decorrelation_stride(self) -> int:
        """Indicator samples per effectively independent observation."""
        return max(1, int(np.ceil(self.window / max(self.step, 1))))


def windowed_moments(
    trajectory: HolderTrajectory,
    *,
    window: int,
    step: int = 1,
) -> Dict[str, TimeSeries]:
    """Sliding-window moments of a Hölder trajectory.

    Returns a dict with ``"mean"``, ``"variance"``, ``"skewness"`` and
    ``"kurtosis"`` series.  Window positions are right-edge aligned:
    the sample at output time ``t`` summarises the ``window`` Hölder
    values ending at ``t``.  Runs in O(n) via prefix sums.
    """
    check_positive_int(window, name="window", minimum=4)
    check_positive_int(step, name="step")
    n = len(trajectory)
    if n < window:
        raise AnalysisError(
            f"trajectory has {n} samples; window of {window} does not fit"
        )
    h = trajectory.h
    if not np.all(np.isfinite(h)):
        raise AnalysisError("Hölder trajectory contains non-finite values")

    # Prefix-sum raw moments are numerically fragile: a large common
    # offset makes `m2 - m1**2` cancel catastrophically, and extreme
    # magnitudes (|h| ~ 1e-100 or 1e+100) drive h**4 out of float range,
    # turning the standardized moments into infinities.  Shift by the
    # global mean and scale to |g| <= 1 first; the raw-moment algebra
    # then runs on well-conditioned O(1) numbers and the window moments
    # are recovered exactly (mean is shift-equivariant, variance
    # scale-equivariant, skewness/kurtosis invariant).
    shift = float(np.mean(h))
    centered = h - shift
    scale = float(np.max(np.abs(centered)))
    if not np.isfinite(scale) or scale == 0.0:
        scale = 1.0
    g = centered / scale

    # Prefix sums of powers 1..4 of the conditioned values.
    p1 = np.concatenate([[0.0], np.cumsum(g)])
    p2 = np.concatenate([[0.0], np.cumsum(g**2)])
    p3 = np.concatenate([[0.0], np.cumsum(g**3)])
    p4 = np.concatenate([[0.0], np.cumsum(g**4)])

    ends = np.arange(window, n + 1, step)  # exclusive end indices
    starts = ends - window
    w = float(window)
    m1 = (p1[ends] - p1[starts]) / w
    m2 = (p2[ends] - p2[starts]) / w
    m3 = (p3[ends] - p3[starts]) / w
    m4 = (p4[ends] - p4[starts]) / w

    var_g = np.maximum(m2 - m1**2, 0.0)
    # Central moments from raw moments (of the conditioned values).
    mu3 = m3 - 3 * m1 * m2 + 2 * m1**3
    mu4 = m4 - 4 * m1 * m3 + 6 * m1**2 * m2 - 3 * m1**4
    denom_skew = var_g**1.5
    denom_kurt = var_g**2
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        skew = np.divide(mu3, denom_skew,
                         out=np.zeros_like(mu3), where=denom_skew > 0)
        kurt = np.divide(mu4, denom_kurt,
                         out=np.full_like(mu4, 3.0), where=denom_kurt > 0) - 3.0
    # Near-degenerate windows can still push the standardized ratios
    # past their mathematical bounds (|g1| <= sqrt(w), g2 <= w) through
    # rounding in the tiny denominators; clamp to those bounds so the
    # indicator series is always finite.
    skew = np.clip(np.nan_to_num(skew, nan=0.0), -np.sqrt(w), np.sqrt(w))
    kurt = np.clip(np.nan_to_num(kurt, nan=0.0), -3.0, w)

    mean = shift + scale * m1
    var = scale**2 * var_g

    times = trajectory.times[ends - 1]
    base = trajectory.source_name

    def mk(vals: np.ndarray, stat: str) -> TimeSeries:
        return TimeSeries(times=times, values=vals, name=f"{base}.h_{stat}", units="")

    return {
        "mean": mk(mean, "mean"),
        "variance": mk(var, "variance"),
        "skewness": mk(skew, "skewness"),
        "kurtosis": mk(kurt, "kurtosis"),
    }


def holder_variance_series(
    trajectory: HolderTrajectory, *, window: int, step: int = 1,
) -> IndicatorSeries:
    """The paper's indicator: windowed variance of the Hölder trajectory."""
    moments = windowed_moments(trajectory, window=window, step=step)
    return IndicatorSeries(
        series=moments["variance"], window=window, step=step,
        statistic="variance", source_name=trajectory.source_name,
    )


def holder_mean_series(
    trajectory: HolderTrajectory, *, window: int, step: int = 1,
) -> IndicatorSeries:
    """Windowed mean of the Hölder trajectory (drift companion indicator)."""
    moments = windowed_moments(trajectory, window=window, step=step)
    return IndicatorSeries(
        series=moments["mean"], window=window, step=step,
        statistic="mean", source_name=trajectory.source_name,
    )


def validate_indicator(indicator: IndicatorSeries) -> None:
    """Raise unless the indicator series is finite and non-degenerate."""
    values = indicator.series.values
    if not np.all(np.isfinite(values)):
        raise ValidationError("indicator series contains non-finite values")
    if values.size < 8:
        raise ValidationError("indicator series has fewer than 8 points")
