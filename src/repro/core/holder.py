"""Local (pointwise) Hölder exponent estimation.

The Hölder exponent ``h(t0)`` measures the regularity of a signal at one
point: the largest h such that ``|X(t) - P(t)| <= C |t - t0|^h`` near t0
for some polynomial P.  Two estimators are provided, following the
methodology of the DSN'03 paper (which used wavelet-based pointwise
estimates in the FracLab tradition):

* :func:`wavelet_holder` — regress ``log |W(a, t)|`` on ``log a`` over a
  band of fine scales, where W is the CWT with a derivative-of-Gaussian
  wavelet.  Inside the cone of influence of a singularity the modulus
  scales as ``a^{h + 1/2}`` (unit-energy normalisation), so
  ``h(t) = slope - 1/2``.  The modulus is stabilised by taking the
  supremum over the cone ``|t' - t| <= a`` at each scale.
* :func:`oscillation_holder` — the direct definition: the oscillation
  ``osc_r(t) = max - min`` of the signal over balls of radius r scales
  as ``r^{h(t)}``.

Both return one exponent per sample.  :func:`holder_trajectory` applies
an estimator over a sliding window and summarises each window, producing
the (mean h, variance h) trajectories that the aging indicators consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    as_1d_float_array,
    check_choice,
    check_positive_int,
)
from ..exceptions import AnalysisError, ValidationError
from ..obs.profile import profile
from ..trace.series import TimeSeries
from ..fractal.wavelets import cwt


def wavelet_holder(
    values,
    *,
    min_scale: float = 2.0,
    max_scale: float = 32.0,
    n_scales: int = 12,
    dog_order: int = 2,
    cone_supremum: bool = True,
) -> np.ndarray:
    """Pointwise Hölder exponents via wavelet-modulus regression.

    Parameters
    ----------
    values:
        The signal (a path; pass a cumulated counter, or the raw counter
        when it is already path-like, e.g. AvailableBytes).
    min_scale, max_scale, n_scales:
        The fine-scale band regressed over (log-spaced).
    dog_order:
        Vanishing moments of the analysing wavelet; must exceed the
        local polynomial trend order.
    cone_supremum:
        Replace ``|W(a, t)|`` by its supremum over the cone
        ``|t' - t| <= a`` (more faithful to the Hölder definition and
        markedly less noisy; on by default).

    Returns
    -------
    Array of h estimates, one per sample (edge samples use the shrunken
    cone that fits).
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    if max_scale <= min_scale:
        raise ValidationError(f"max_scale ({max_scale}) must exceed min_scale ({min_scale})")
    check_positive_int(n_scales, name="n_scales", minimum=3)
    if max_scale > x.size / 4:
        raise ValidationError(
            f"max_scale ({max_scale}) too coarse for series of length {x.size}"
        )
    scales = np.geomspace(min_scale, max_scale, n_scales)
    modulus = np.abs(cwt(x, scales, wavelet="dog", dog_order=dog_order))

    if cone_supremum:
        for j, a in enumerate(scales):
            half = max(int(round(a)), 1)
            modulus[j] = _rolling_max(modulus[j], half)

    # Floor the modulus: exact zeros happen on locally polynomial stretches.
    tiny = np.finfo(float).tiny
    log_mod = np.log2(np.maximum(modulus, tiny))
    log_a = np.log2(scales)

    # Per-sample regression of log|W| on log a, vectorised:
    # slope_t = cov(log_a, log_mod[:, t]) / var(log_a).
    la = log_a - log_a.mean()
    denom = np.sum(la**2)
    slopes = (la @ log_mod) / denom
    return slopes - 0.5


def oscillation_holder(
    values,
    *,
    radii=(4, 8, 16, 32, 64),
) -> np.ndarray:
    """Pointwise Hölder exponents from the oscillation scaling.

    ``osc_r(t) = max_{|u-t|<=r} X - min_{|u-t|<=r} X ~ r^{h(t)}``; the
    slope of ``log osc`` on ``log r`` across the given radii estimates
    h(t).  Simple and assumption-light, but carries a known finite-scale
    upward bias of order +0.1 to +0.2 (the oscillation converges to its
    scaling regime slowly), so it serves as the qualitative cross-check
    while :func:`wavelet_holder` is the quantitative estimator.
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    radii_arr = np.asarray(radii, dtype=int)
    if radii_arr.ndim != 1 or radii_arr.size < 3:
        raise ValidationError("need at least 3 radii")
    if np.any(radii_arr < 1) or np.any(np.diff(radii_arr) <= 0):
        raise ValidationError("radii must be positive and strictly increasing")
    if radii_arr[-1] >= x.size // 2:
        raise ValidationError(f"largest radius {radii_arr[-1]} too big for length {x.size}")

    tiny = np.finfo(float).tiny
    log_osc = np.empty((radii_arr.size, x.size))
    for i, r in enumerate(radii_arr):
        osc = _rolling_max(x, int(r)) - _rolling_min(x, int(r))
        log_osc[i] = np.log2(np.maximum(osc, tiny))
    log_r = np.log2(radii_arr.astype(float))
    lr = log_r - log_r.mean()
    denom = np.sum(lr**2)
    return (lr @ log_osc) / denom


def local_holder(values, *, method: str = "wavelet", **kwargs) -> np.ndarray:
    """Dispatch to :func:`wavelet_holder` or :func:`oscillation_holder`."""
    check_choice(method, name="method", choices=("wavelet", "oscillation"))
    if method == "wavelet":
        return wavelet_holder(values, **kwargs)
    return oscillation_holder(values, **kwargs)


@dataclass(frozen=True)
class HolderTrajectory:
    """Pointwise Hölder exponents of a series plus its sampling times.

    Attributes
    ----------
    times:
        Sample times carried over from the source series.
    h:
        Pointwise Hölder estimates, one per sample.
    method:
        Which estimator produced them.
    source_name:
        Name of the analysed counter.
    """

    times: np.ndarray
    h: np.ndarray
    method: str
    source_name: str

    def as_series(self) -> TimeSeries:
        """View the trajectory as a :class:`TimeSeries` named ``<src>.holder``."""
        return TimeSeries(
            times=self.times, values=self.h,
            name=f"{self.source_name}.holder", units="exponent",
        )

    def __len__(self) -> int:
        return int(self.times.size)


@profile("core.holder_trajectory")
def holder_trajectory(
    ts: TimeSeries,
    *,
    method: str = "wavelet",
    **kwargs,
) -> HolderTrajectory:
    """Compute the pointwise Hölder trajectory of a (gap-free) series.

    The series must be gap-free and uniformly sampled — run it through
    :func:`repro.trace.fill_gaps` / :func:`repro.trace.resample_uniform`
    first if needed.
    """
    if ts.has_gaps:
        raise AnalysisError(
            f"series {ts.name!r} has gaps; fill them before Hölder estimation"
        )
    h = local_holder(ts.values, method=method, **kwargs)
    return HolderTrajectory(
        times=ts.times.copy(), h=h, method=method, source_name=ts.name,
    )


# ---------------------------------------------------------------------------
# Rolling extrema (O(n) monotonic-deque implementations)
# ---------------------------------------------------------------------------


def _rolling_max(x: np.ndarray, half_window: int) -> np.ndarray:
    """Centered rolling maximum with window ``[i - half, i + half]``."""
    return _rolling_extremum(x, half_window, np.maximum)


def _rolling_min(x: np.ndarray, half_window: int) -> np.ndarray:
    """Centered rolling minimum with window ``[i - half, i + half]``."""
    return _rolling_extremum(x, half_window, np.minimum)


def _rolling_extremum(x: np.ndarray, half_window: int, op) -> np.ndarray:
    """Centered rolling max/min via the two-pass block-scan trick.

    Runs in O(n log w) using repeated shifted reductions — plenty fast in
    numpy, and branch-free.
    """
    if half_window < 1:
        return x.copy()
    out = x.copy()
    shift = 1
    remaining = half_window
    # Doubling trick: combine with shifts 1, 2, 4, ... both directions.
    while remaining > 0:
        step = min(shift, remaining)
        left = np.empty_like(out)
        left[step:] = out[:-step]
        left[:step] = out[0]
        right = np.empty_like(out)
        right[:-step] = out[step:]
        right[-step:] = out[-1]
        out = op(op(out, left), right)
        remaining -= step
        shift *= 2
    return out
