"""Crash-warning detectors on aging-indicator series.

The detection protocol follows the paper's operational story: a machine
runs, the analyst watches the windowed Hölder variance, and raises a
warning when it departs from the level established while the system was
healthy.  Concretely:

1. **Calibrate** on the first ``calibration_fraction`` of the indicator
   series (the system is assumed healthy at the start of a run).
2. **Monitor** the remainder with one of three schemes:
   ``"threshold"`` (fixed multiple of the calibration level), ``"cusum"``
   or ``"ewma"`` (the control charts from :mod:`repro.stats.changepoint`).
3. The first alarm time is the **warning**; the lead time is the crash
   time minus the warning time.

:func:`detect_fractal_collapse` is the one-call wrapper; the
:class:`HolderVarianceDetector` object form keeps the calibration around
for inspection and reuse across counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .._validation import check_choice, check_in_range, check_positive
from ..exceptions import AnalysisError
from ..stats.changepoint import CusumDetector, EwmaDetector
from ..trace.series import TimeSeries
from .indicators import IndicatorSeries


@dataclass(frozen=True)
class DetectorConfig:
    """Detector knobs.

    Attributes
    ----------
    scheme:
        ``"threshold"``, ``"cusum"`` or ``"ewma"``.
    direction:
        ``"up"``, ``"down"`` or ``"both"`` (default): which way the
        indicator must move to count as an alarm.  Aging lowers the mean
        Hölder exponent but raises its variance, so the combined default
        watches both sides.
    warmup_fraction:
        Leading fraction of the indicator series discarded entirely:
        freshly booted systems show a startup transient (memory filling,
        caches warming) that is neither healthy baseline nor aging.
    robust_calibration:
        Estimate the baseline level/scale with median and MAD instead of
        mean and standard deviation; resists the occasional spikes the
        variance indicator produces even in health.
    calibration_fraction:
        Fraction of the indicator series (after warmup) treated as the
        healthy baseline.
    threshold_multiplier:
        For the threshold scheme: alarm when the indicator exceeds
        ``baseline_mean + threshold_multiplier * baseline_std``.
    cusum_k, cusum_h:
        CUSUM allowance and decision interval (in baseline sigmas).
    ewma_lambda, ewma_L:
        EWMA smoothing factor and control-limit width.
    min_consecutive:
        Threshold scheme only: require this many consecutive exceedances
        before alarming (debounces single-sample spikes).
    """

    scheme: str = "cusum"
    direction: str = "both"
    warmup_fraction: float = 0.05
    robust_calibration: bool = False
    calibration_fraction: float = 0.3
    threshold_multiplier: float = 4.0
    cusum_k: float = 1.5
    cusum_h: float = 8.0
    ewma_lambda: float = 0.2
    ewma_L: float = 5.0
    min_consecutive: int = 5

    def __post_init__(self) -> None:
        check_choice(self.scheme, name="scheme", choices=("threshold", "cusum", "ewma"))
        check_choice(self.direction, name="direction", choices=("up", "down", "both"))
        check_in_range(self.warmup_fraction, name="warmup_fraction", low=0.0, high=0.5)
        check_in_range(self.calibration_fraction, name="calibration_fraction",
                       low=0.02, high=0.8)
        check_positive(self.threshold_multiplier, name="threshold_multiplier")
        check_positive(self.cusum_h, name="cusum_h")
        check_positive(self.ewma_L, name="ewma_L")


@dataclass(frozen=True)
class AgingAlarm:
    """Outcome of running a detector over one indicator series.

    Attributes
    ----------
    alarm_time:
        First warning time (seconds), or None if no alarm fired.
    calibration_end_time:
        Time at which calibration ended and monitoring began.
    baseline_mean, baseline_std:
        The healthy-level statistics used for the decision.
    statistic_at_alarm:
        The indicator value at the alarm sample (NaN when no alarm).
    scheme:
        Which monitoring scheme fired.
    source_name:
        Counter whose indicator was monitored.
    """

    alarm_time: Optional[float]
    calibration_end_time: float
    baseline_mean: float
    baseline_std: float
    statistic_at_alarm: float
    scheme: str
    source_name: str

    @property
    def fired(self) -> bool:
        """True when a warning was raised."""
        return self.alarm_time is not None

    def lead_time(self, crash_time: float) -> Optional[float]:
        """Crash time minus alarm time; None when no alarm fired."""
        if self.alarm_time is None:
            return None
        return float(crash_time) - float(self.alarm_time)


@dataclass
class HolderVarianceDetector:
    """Calibrate-then-monitor detector over an indicator series."""

    config: DetectorConfig = field(default_factory=DetectorConfig)

    def _prepare(self, indicator: IndicatorSeries):
        """Shared warmup/decimation/calibration for run() and
        decision_scores(); returns ``(times, values, n_cal, mean, std)``."""
        series = indicator.series
        if self.config.scheme != "threshold":
            # Decimate toward independent samples, but never below ~50
            # monitoring decisions per run — with very long windows full
            # decorrelation would leave too few points to detect anything.
            stride = min(indicator.decorrelation_stride,
                         max(1, series.values.size // 50))
        else:
            stride = 1
        n_warm = int(np.floor(series.values.size * self.config.warmup_fraction))
        values = series.values[n_warm:][::stride]
        times = series.times[n_warm:][::stride]
        n = values.size
        n_cal = int(np.floor(n * self.config.calibration_fraction))
        if n_cal < 8:
            raise AnalysisError(
                f"calibration window has only {n_cal} samples; need >= 8 "
                "(indicator series too short or calibration_fraction too small)"
            )
        baseline = values[:n_cal]
        if self.config.robust_calibration:
            mean = float(np.median(baseline))
            mad = float(np.median(np.abs(baseline - mean)))
            std = 1.4826 * mad  # consistent scale estimate under normality
        else:
            mean = float(np.mean(baseline))
            std = float(np.std(baseline, ddof=1))
        if std == 0:
            # A perfectly constant baseline makes every scheme degenerate;
            # use a tiny floor so a later change still alarms.
            std = max(abs(mean) * 1e-6, 1e-12)
        return times, values, n_cal, mean, std

    def run(self, indicator: IndicatorSeries) -> AgingAlarm:
        """Calibrate on the head of the series, monitor the tail.

        Consecutive indicator samples from overlapping windows are
        heavily autocorrelated, which would let the accumulating schemes
        (CUSUM/EWMA) count one excursion many times over.  Those schemes
        therefore monitor the series decimated to one sample per
        ``indicator.decorrelation_stride``; the level-based threshold
        scheme keeps the full rate.
        """
        times, values, n_cal, mean, std = self._prepare(indicator)
        monitored = values[n_cal:]
        mon_times = times[n_cal:]

        # Directional handling: every scheme is built one-sided (upward).
        # A downward watch runs the same scheme on the series mirrored
        # about the baseline mean; "both" runs both and takes the earlier
        # alarm.  Aging can push an indicator either way (roughening
        # lowers the mean Hölder exponent, destabilisation raises its
        # variance), so "both" is the safe default.
        scheme = self.config.scheme
        candidates = []
        directions = ("up", "down") if self.config.direction == "both" \
            else (self.config.direction,)
        for direction in directions:
            data = monitored if direction == "up" else 2.0 * mean - monitored
            if scheme == "threshold":
                alarm, stat = self._run_threshold(mon_times, data, mean, std)
            elif scheme == "cusum":
                det = CusumDetector(k=self.config.cusum_k, h=self.config.cusum_h)
                det.calibrate_from_moments(mean, std)
                alarm, stat = _stream(det, mon_times, data)
            else:
                det = EwmaDetector(lam=self.config.ewma_lambda, L=self.config.ewma_L)
                det.calibrate_from_moments(mean, std)
                alarm, stat = _stream(det, mon_times, data)
            if alarm is not None and direction == "down":
                stat = 2.0 * mean - stat  # report the original-scale value
            candidates.append((alarm, stat))
        fired = [(a, s) for a, s in candidates if a is not None]
        if fired:
            alarm_time, stat = min(fired, key=lambda pair: pair[0])
        else:
            alarm_time, stat = None, float("nan")

        return AgingAlarm(
            alarm_time=alarm_time,
            calibration_end_time=float(times[n_cal - 1]),
            baseline_mean=mean,
            baseline_std=std,
            statistic_at_alarm=stat,
            scheme=scheme,
            source_name=indicator.source_name,
        )

    def decision_scores(self, indicator: IndicatorSeries) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample decision statistic over the monitored segment.

        Returns ``(times, scores)`` for the same monitored samples
        :meth:`run` inspects, with the score expressed in the scheme's
        own alarm units so a threshold sweep is meaningful:

        * ``threshold`` — baseline z-score; the configured alarm sits at
          ``threshold_multiplier`` (consecutive-sample debouncing is an
          alarm-path nicety, not part of the statistic).
        * ``cusum`` — the accumulated statistic ``g_t`` (alarm at
          ``cusum_h``), run over the full segment without the alarm
          latch.
        * ``ewma`` — the smoothed deviation in steady-state EWMA sigmas
          (alarm at ``ewma_L``).

        For ``direction="both"`` the score is the pointwise max of the
        upward and mirrored-downward statistics.  This is a pure
        observation: it never feeds back into :meth:`run`, whose alarms
        stay bit-identical whether or not scores are collected.
        """
        times, values, n_cal, mean, std = self._prepare(indicator)
        monitored = values[n_cal:]
        mon_times = times[n_cal:]
        directions = ("up", "down") if self.config.direction == "both" \
            else (self.config.direction,)
        per_direction = []
        for direction in directions:
            data = monitored if direction == "up" else 2.0 * mean - monitored
            z = (data - mean) / std
            if self.config.scheme == "threshold":
                scores = z
            elif self.config.scheme == "cusum":
                scores = np.empty_like(z)
                g = 0.0
                for i, zi in enumerate(z):
                    g = max(0.0, g + zi - self.config.cusum_k)
                    scores[i] = g
            else:  # ewma
                lam = self.config.ewma_lambda
                sigma_z = std * np.sqrt(lam / (2.0 - lam))
                scores = np.empty_like(z)
                smoothed = mean
                for i, x in enumerate(data):
                    smoothed = (1.0 - lam) * smoothed + lam * float(x)
                    scores[i] = (smoothed - mean) / sigma_z
            per_direction.append(scores)
        combined = per_direction[0] if len(per_direction) == 1 \
            else np.maximum(per_direction[0], per_direction[1])
        return mon_times, combined

    def _run_threshold(
        self, times: np.ndarray, values: np.ndarray, mean: float, std: float,
    ) -> tuple[Optional[float], float]:
        """Fixed-threshold monitoring with consecutive-sample debouncing."""
        limit = mean + self.config.threshold_multiplier * std
        above = values > limit
        needed = self.config.min_consecutive
        run_length = 0
        for i, flag in enumerate(above):
            run_length = run_length + 1 if flag else 0
            if run_length >= needed:
                return float(times[i]), float(values[i])
        return None, float("nan")


def _stream(detector, times: np.ndarray, values: np.ndarray) -> tuple[Optional[float], float]:
    """Feed a calibrated control chart; return (first alarm time, stat)."""
    for t, v in zip(times, values):
        if detector.update(v):
            return float(t), float(v)
    return None, float("nan")


def detect_fractal_collapse(
    indicator: IndicatorSeries,
    *,
    config: DetectorConfig | None = None,
) -> AgingAlarm:
    """One-call wrapper: run the configured detector over an indicator."""
    detector = HolderVarianceDetector(config=config or DetectorConfig())
    return detector.run(indicator)


def collapse_onset_estimate(indicator: IndicatorSeries) -> float:
    """Offline estimate of when the indicator level shifted (for scoring).

    Uses the least-squares single changepoint on the indicator values and
    returns the corresponding time.  Unlike the online detectors this
    sees the whole series, so it approximates the "true" onset against
    which online warning delay can be measured.
    """
    from ..stats.changepoint import find_single_changepoint

    values = indicator.series.values
    tau = find_single_changepoint(values, min_segment=max(5, values.size // 20))
    return float(indicator.series.times[tau])
