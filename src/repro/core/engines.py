"""Unified Hölder-estimation engines behind one protocol.

Three code routes historically computed pointwise Hölder exponents —
the batch estimator (:func:`repro.core.holder.wavelet_holder`), the
sliding tail estimator (:class:`repro.perf.sliding_cwt.SlidingHolderEstimator`)
and the online monitor's private branch between the two.  Every caller
(the analysis pipeline, ``watch``, campaigns, the bench suite) picked a
route with its own ``if``-ladder.  This module extracts the single
:class:`HolderEngine` protocol they all satisfy, plus a name registry so
call sites select an engine with a string — the same pattern as
:mod:`repro.analysis.detector_registry`.

The protocol's equivalence contract (enforced by the engine conformance
tests and the ``online.stream`` bench gate):

* ``estimate(values)`` — the full pointwise trajectory — is *identical*
  across engines: every engine delegates the full-window computation to
  the one batch implementation, so selecting an engine can never change
  a campaign payload.
* ``estimate_tail(values, tail)`` matches ``estimate(values).h[-tail:]``
  to machine precision; engines differ only in how much CWT work the
  tail costs (the sliding/online engines truncate to the wavelet's
  effective support — the >= 5x FLOP cut the bench suite gates).
* ``update_many(times, values)`` feeds samples incrementally and
  returns the newest tail estimate once enough history has accumulated
  (``None`` before that) — the streaming shape serve/distributed
  callers consume.

Registered engines: ``"batch"``, ``"sliding"``, ``"online"``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from .._validation import check_positive_int
from ..exceptions import AnalysisError, ValidationError
from .holder import wavelet_holder

__all__ = [
    "HolderEngine",
    "HolderResult",
    "BatchHolderEngine",
    "SlidingHolderEngine",
    "OnlineHolderEngine",
    "register_holder_engine",
    "holder_engine_names",
    "create_holder_engine",
]


class HolderResult:
    """Pointwise Hölder estimates plus the engine that produced them."""

    __slots__ = ("h", "engine")

    def __init__(self, h: np.ndarray, engine: str) -> None:
        self.h = np.asarray(h, dtype=float)
        self.engine = str(engine)

    def __len__(self) -> int:
        return int(self.h.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HolderResult(engine={self.engine!r}, n={len(self)})"


@runtime_checkable
class HolderEngine(Protocol):
    """What every Hölder engine provides.

    ``name`` identifies the engine in registries and telemetry;
    ``estimate`` returns the full pointwise trajectory, ``estimate_tail``
    just the newest ``tail`` exponents, and ``update_many`` streams
    samples into the engine's own buffer.
    """

    name: str

    def estimate(self, values) -> HolderResult:
        """Full pointwise Hölder trajectory of ``values``."""
        ...

    def estimate_tail(self, values, tail: int) -> np.ndarray:
        """Newest ``tail`` exponents of ``values`` (machine-precision
        equal to ``estimate(values).h[-tail:]``)."""
        ...

    def update_many(self, times, values) -> Optional[HolderResult]:
        """Feed a batch of samples; returns the newest tail estimate
        once the buffer holds enough history, else None."""
        ...


class _BufferedEngine:
    """Shared streaming state: a bounded (times, values) buffer that
    ``update_many`` appends to, with the newest tail re-estimated per
    call through the subclass's ``estimate_tail``."""

    #: samples of trailing history update_many retains (and hands to the
    #: tail estimator); mirrors the online monitor's default ``history``.
    DEFAULT_HISTORY = 4096
    #: tail length update_many re-estimates; mirrors the monitor's
    #: default ``indicator_window``.
    DEFAULT_TAIL = 512

    def __init__(self, *, history: int = DEFAULT_HISTORY,
                 tail: int = DEFAULT_TAIL, **holder_kwargs) -> None:
        check_positive_int(history, name="history", minimum=256)
        check_positive_int(tail, name="tail", minimum=1)
        if tail > history:
            raise ValidationError(
                f"tail ({tail}) cannot exceed history ({history})")
        self.history = int(history)
        self.tail = int(tail)
        self.holder_kwargs = dict(holder_kwargs)
        self._times: List[float] = []
        self._values: List[float] = []

    # -- batch path (identical for every engine) ---------------------------

    def estimate(self, values) -> HolderResult:
        h = wavelet_holder(values, **self.holder_kwargs)
        return HolderResult(h=h, engine=self.name)

    # -- streaming ---------------------------------------------------------

    @property
    def n_buffered(self) -> int:
        """Samples currently held in the streaming buffer."""
        return len(self._values)

    def update_many(self, times, values) -> Optional[HolderResult]:
        t = np.asarray(list(times) if not hasattr(times, "__len__")
                       else times, dtype=float)
        v = np.asarray(list(values) if not hasattr(values, "__len__")
                       else values, dtype=float)
        if t.ndim != 1 or v.ndim != 1 or t.size != v.size:
            raise AnalysisError(
                f"times and values must be 1-D and equally long "
                f"(got {t.shape} and {v.shape})")
        if t.size:
            if not np.all(np.isfinite(t)) or not np.all(np.isfinite(v)):
                raise AnalysisError("samples must be finite")
            if (self._times and t[0] <= self._times[-1]) \
                    or np.any(np.diff(t) <= 0):
                raise AnalysisError(
                    "samples must arrive in strict time order")
            self._times.extend(t.tolist())
            self._values.extend(v.tolist())
            if len(self._values) > self.history:
                del self._times[:-self.history]
                del self._values[:-self.history]
        if len(self._values) < self.history:
            return None
        window = np.asarray(self._values)
        return HolderResult(h=self.estimate_tail(window, self.tail),
                            engine=self.name)


class BatchHolderEngine(_BufferedEngine):
    """The reference engine: every call recomputes the full trajectory
    with :func:`~repro.core.holder.wavelet_holder` and slices the tail.
    Most CWT work, zero approximation machinery — the oracle the other
    engines are gated against."""

    name = "batch"

    def estimate_tail(self, values, tail: int) -> np.ndarray:
        check_positive_int(tail, name="tail", minimum=1)
        h = wavelet_holder(values, **self.holder_kwargs)
        return h[-tail:]


class SlidingHolderEngine(_BufferedEngine):
    """Tail estimates through the truncated-support sliding CWT
    (:class:`repro.perf.sliding_cwt.SlidingHolderEstimator`): machine-
    precision equal to the batch tail at a fraction of the FLOPs.  One
    estimator is built (and cached) per distinct tail length."""

    name = "sliding"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._estimators: Dict[int, object] = {}
        # Surface bad holder_kwargs at construction, not thousands of
        # samples into a live stream.
        self._estimator(self.tail)

    def _estimator(self, tail: int):
        if tail not in self._estimators:
            # Imported here, not at module top: repro.perf sits above
            # repro.core in the layer diagram.
            from ..perf.sliding_cwt import SlidingHolderEstimator

            try:
                self._estimators[tail] = SlidingHolderEstimator(
                    tail=tail, **self.holder_kwargs)
            except TypeError as exc:
                raise AnalysisError(
                    f"holder_kwargs not supported by the sliding engine: "
                    f"{exc}") from exc
        return self._estimators[tail]

    def estimate_tail(self, values, tail: int) -> np.ndarray:
        check_positive_int(tail, name="tail", minimum=1)
        return self._estimator(tail).holder_tail(values)


class OnlineHolderEngine(SlidingHolderEngine):
    """The streaming engine: sliding-CWT tails over the engine's own
    bounded buffer.  Identical arithmetic to ``"sliding"`` — the
    distinct name exists so stream-owning callers (serve/distributed
    paths that have no monitor of their own) can request the buffered
    shape explicitly and telemetry can tell the two apart."""

    name = "online"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., HolderEngine]] = {}


def register_holder_engine(name: str,
                           factory: Callable[..., HolderEngine]) -> None:
    """Register an engine factory under ``name``.

    ``factory(**kwargs)`` must return a :class:`HolderEngine`.
    Registering an existing name replaces it — deliberate, so studies
    can swap in tuned variants under the canonical names.
    """
    if not name:
        raise ValidationError("holder engine name must be non-empty")
    _REGISTRY[name] = factory


def holder_engine_names() -> Tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_holder_engine(name: str, **kwargs) -> HolderEngine:
    """Build the engine registered under ``name``.

    ``kwargs`` are the engine's construction knobs: ``history``/``tail``
    for the streaming buffer plus any
    :func:`~repro.core.holder.wavelet_holder` arguments.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"holder_engine must be one of {holder_engine_names()!r}, "
            f"got {name!r}") from None
    return factory(**kwargs)


register_holder_engine("batch", BatchHolderEngine)
register_holder_engine("sliding", SlidingHolderEngine)
register_holder_engine("online", OnlineHolderEngine)
