"""Preprocessing transforms on :class:`~repro.trace.series.TimeSeries`.

These are the standard conditioning steps applied before fractal analysis:
gap filling, resampling onto a uniform grid, detrending, differencing and
standardisation, plus segmentation and sliding-window iteration used by the
aging detectors.
"""

from __future__ import annotations

from typing import Iterator, List, Literal, Tuple

import numpy as np

from .._validation import check_choice, check_positive, check_positive_int
from ..exceptions import AnalysisError, ValidationError
from .series import TimeSeries

DetrendMode = Literal["mean", "linear", "poly2"]


def detrend(ts: TimeSeries, mode: DetrendMode = "linear") -> TimeSeries:
    """Remove a global trend from the series.

    ``mode`` selects the trend model: the mean, a least-squares line, or a
    quadratic.  Gaps are preserved (the fit ignores them).
    """
    check_choice(mode, name="mode", choices=("mean", "linear", "poly2"))
    values = ts.values.copy()
    mask = ~np.isnan(values)
    if mask.sum() < 3:
        raise AnalysisError("detrend needs at least 3 non-gap samples")
    t = ts.times[mask]
    v = values[mask]
    degree = {"mean": 0, "linear": 1, "poly2": 2}[mode]
    # Centre/scale time for numerical conditioning of the polynomial fit.
    t0, tspan = t[0], max(t[-1] - t[0], 1.0)
    coeffs = np.polyfit((t - t0) / tspan, v, deg=degree)
    trend = np.polyval(coeffs, (ts.times - t0) / tspan)
    values = values - trend
    return ts.with_values(values, name=f"{ts.name}.detrended")


def difference(ts: TimeSeries, order: int = 1) -> TimeSeries:
    """Return the ``order``-th difference of the series.

    The result keeps the time stamps of the *later* sample of each pair,
    so the output has ``len(ts) - order`` samples.  Gaps propagate.
    """
    check_positive_int(order, name="order")
    if len(ts) <= order:
        raise AnalysisError(f"series too short to difference {order} times")
    values = np.diff(ts.values, n=order)
    return TimeSeries(
        times=ts.times[order:], values=values,
        name=f"{ts.name}.diff{order}", units=ts.units,
    )


def standardize(ts: TimeSeries) -> TimeSeries:
    """Scale to zero mean and unit variance (ignoring gaps)."""
    clean = ts.values[~np.isnan(ts.values)]
    if clean.size < 2:
        raise AnalysisError("standardize needs at least 2 non-gap samples")
    std = float(np.std(clean))
    if std == 0:
        raise AnalysisError(f"series {ts.name!r} is constant; cannot standardize")
    return ts.with_values((ts.values - np.mean(clean)) / std, name=f"{ts.name}.z")


def fill_gaps(ts: TimeSeries, method: Literal["interpolate", "ffill"] = "interpolate") -> TimeSeries:
    """Replace NaN gaps by linear interpolation or forward fill.

    Leading gaps are filled with the first observed value in both modes.
    """
    check_choice(method, name="method", choices=("interpolate", "ffill"))
    values = ts.values.copy()
    mask = np.isnan(values)
    if not mask.any():
        return ts
    if mask.all():
        raise AnalysisError(f"series {ts.name!r} is all gaps")
    good = np.flatnonzero(~mask)
    if method == "interpolate":
        values[mask] = np.interp(ts.times[mask], ts.times[good], values[good])
    else:
        # Forward fill: index of the most recent good sample at each position.
        last_good = np.maximum.accumulate(np.where(~mask, np.arange(len(values)), -1))
        first = good[0]
        last_good[last_good < 0] = first
        values = values[last_good]
    return ts.with_values(values)


def resample_uniform(ts: TimeSeries, dt: float | None = None) -> TimeSeries:
    """Resample onto a uniform grid by linear interpolation.

    ``dt`` defaults to the series' median sampling interval.  Gap samples
    are dropped before interpolating.
    """
    clean = ts.dropna()
    if len(clean) < 2:
        raise AnalysisError("resample_uniform needs at least 2 non-gap samples")
    if dt is None:
        dt = clean.dt
    check_positive(dt, name="dt")
    n = int(np.floor((clean.times[-1] - clean.times[0]) / dt)) + 1
    grid = clean.times[0] + dt * np.arange(n)
    values = np.interp(grid, clean.times, clean.values)
    return TimeSeries(times=grid, values=values, name=ts.name, units=ts.units)


def segment(ts: TimeSeries, n_segments: int) -> List[TimeSeries]:
    """Split into ``n_segments`` contiguous, near-equal-length pieces."""
    check_positive_int(n_segments, name="n_segments")
    if len(ts) < n_segments:
        raise ValidationError(
            f"cannot split {len(ts)} samples into {n_segments} segments"
        )
    bounds = np.linspace(0, len(ts), n_segments + 1).astype(int)
    pieces = []
    for i in range(n_segments):
        lo, hi = bounds[i], bounds[i + 1]
        pieces.append(TimeSeries(
            times=ts.times[lo:hi], values=ts.values[lo:hi],
            name=f"{ts.name}.seg{i}", units=ts.units,
        ))
    return pieces


def sliding_windows(
    ts: TimeSeries, window: int, step: int = 1,
) -> Iterator[Tuple[float, TimeSeries]]:
    """Yield ``(right_edge_time, window_series)`` pairs.

    Windows contain ``window`` consecutive samples and advance by ``step``
    samples.  The yielded time is the timestamp of the window's last
    sample, which is when that window's statistic becomes available to an
    online detector.
    """
    check_positive_int(window, name="window", minimum=2)
    check_positive_int(step, name="step")
    if len(ts) < window:
        return
    for start in range(0, len(ts) - window + 1, step):
        stop = start + window
        piece = TimeSeries(
            times=ts.times[start:stop], values=ts.values[start:stop],
            name=ts.name, units=ts.units,
        )
        yield float(ts.times[stop - 1]), piece
