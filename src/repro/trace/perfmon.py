"""Importer for Windows perfmon CSV logs.

Real-world entry point: the paper's data came from perfmon; a downstream
user reproducing the study on a live host exports counters with
``relog -f CSV`` and feeds the file here.  Format handled:

* first column ``"(PDH-CSV 4.0) (...)"`` with ``MM/dd/yyyy HH:mm:ss.fff``
  timestamps;
* remaining columns named ``\\\\MACHINE\\Object\\Counter`` (e.g.
  ``\\\\SRV1\\Memory\\Available Bytes``);
* blank or ``" "`` cells for missed samples.

Counter names are normalised to the library's conventions
(``Available Bytes`` -> ``AvailableBytes``, ``Pages/sec`` ->
``PagesPerSec``) where a mapping is known, and kept raw otherwise.
"""

from __future__ import annotations

import csv
import os
from datetime import datetime
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import TraceError
from .series import TimeSeries, TraceBundle

_TIMESTAMP_FORMATS = (
    "%m/%d/%Y %H:%M:%S.%f",
    "%m/%d/%Y %H:%M:%S",
    "%Y-%m-%d %H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
)

_NAME_MAP = {
    "available bytes": "AvailableBytes",
    "available mbytes": "AvailableMBytes",
    "committed bytes": "CommittedBytes",
    "commit limit": "CommitLimitBytes",
    "pages/sec": "PagesPerSec",
    "page faults/sec": "PageFaultsPerSec",
    "pool nonpaged bytes": "PoolNonpagedBytes",
    "working set": "WorkingSetBytes",
}


def _parse_timestamp(raw: str) -> datetime:
    raw = raw.strip().strip('"')
    for fmt in _TIMESTAMP_FORMATS:
        try:
            return datetime.strptime(raw, fmt)
        except ValueError:
            continue
    raise TraceError(f"unparseable perfmon timestamp: {raw!r}")


def normalize_counter_name(column: str) -> str:
    """Map a ``\\\\MACHINE\\Object\\Counter`` column to a library name.

    Unknown counters keep their final path component with spaces and
    slashes compacted (``Foo Bar/sec`` -> ``FooBarPerSec``).
    """
    leaf = column.strip().strip('"').split("\\")[-1]
    mapped = _NAME_MAP.get(leaf.lower())
    if mapped is not None:
        return mapped
    cleaned = leaf.replace("/sec", "PerSec").replace("/", "Per")
    return "".join(part.capitalize() if part.islower() else part
                   for part in cleaned.split())


def read_perfmon_csv(
    path: str | os.PathLike,
    *,
    counters: Optional[List[str]] = None,
) -> TraceBundle:
    """Read a perfmon/relog CSV export into a :class:`TraceBundle`.

    Parameters
    ----------
    path:
        The CSV file.
    counters:
        Optional allowlist of *normalised* counter names to keep (e.g.
        ``["AvailableBytes"]``); all counters are kept by default.

    Times are converted to seconds since the first sample.
    """
    with open(path, "r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceError(f"{path} is empty") from None
        if len(header) < 2:
            raise TraceError("perfmon CSV needs a timestamp column and counters")
        names = [normalize_counter_name(col) for col in header[1:]]

        timestamps: List[datetime] = []
        cells: List[List[str]] = []
        for row in reader:
            if not row or not row[0].strip():
                continue
            if len(row) != len(header):
                raise TraceError(
                    f"row has {len(row)} cells, expected {len(header)}: {row[:3]!r}..."
                )
            timestamps.append(_parse_timestamp(row[0]))
            cells.append(row[1:])

    if not timestamps:
        raise TraceError(f"{path} contains no data rows")
    t0 = timestamps[0]
    times = np.array([(ts - t0).total_seconds() for ts in timestamps])
    # Perfmon occasionally duplicates a timestamp on laggy samples; nudge
    # duplicates forward so the series stays strictly increasing.
    for i in range(1, times.size):
        if times[i] <= times[i - 1]:
            times[i] = times[i - 1] + 1e-6

    bundle = TraceBundle(metadata={"source": "perfmon", "t0": t0.isoformat()})
    keep = set(counters) if counters is not None else None
    for j, name in enumerate(names):
        if keep is not None and name not in keep:
            continue
        values = np.array([
            _parse_cell(row[j]) for row in cells
        ])
        if np.all(np.isnan(values)):
            continue
        if name in bundle:
            raise TraceError(f"duplicate counter {name!r} after normalisation")
        bundle.add(TimeSeries(times=times, values=values, name=name))
    if len(bundle) == 0:
        raise TraceError("no requested counters found in the file")
    return bundle


def _parse_cell(cell: str) -> float:
    cell = cell.strip().strip('"')
    if not cell:
        return np.nan
    try:
        return float(cell)
    except ValueError:
        return np.nan
