"""Memory-mapped columnar trace store.

CSV (:mod:`repro.trace.io`) is the import/export codec — human-readable,
collector-shaped, slow.  At campaign scale the analysis side re-reads
per-run traces constantly, and parsing text dominates.  This module
stores a :class:`~repro.trace.series.TraceBundle` as a *run directory*:

.. code-block:: text

    run0001/
        meta.json           # schema, counter table, run metadata
        c0000.times.npy     # contiguous float64 sample times
        c0000.values.npy    # contiguous float64 values (NaN = gap)
        c0001.times.npy
        c0001.values.npy
        ...

Shards are indexed, not named after counters, so arbitrary counter names
(slashes, unicode) never touch the filesystem; the ``meta.json`` sidecar
maps names to shards and carries the run metadata with native JSON types
— a float stays a float and a string stays a string, with none of the
type-guessing a ``# key=value`` comment line needs.  Every file goes
through :mod:`repro.obs.atomic`, and the sidecar is written *last*: a
crash mid-write leaves either the previous complete run directory or
shards without a sidecar (which readers treat as "no store here"), never
a torn store.

Reads use ``np.load(..., mmap_mode="r")``: opening a store touches only
the sidecar, and each counter's columns are mapped lazily on first
access (:class:`ColumnarStore`), so analysing one counter of a
million-run grid never faults in the others.

:func:`read_bundle` / :func:`write_bundle` autodetect the format from
the path — a ``.csv`` file keeps going through the CSV codec, anything
else is columnar — so call sites stay format-agnostic.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping

import numpy as np

from ..exceptions import TraceError
from ..obs.atomic import atomic_write, atomic_write_json
from .io import read_csv, validate_metadata, write_csv
from .series import TimeSeries, TraceBundle

__all__ = [
    "STORE_SCHEMA",
    "ColumnarStore",
    "is_columnar_store",
    "read_bundle",
    "read_columnar",
    "write_bundle",
    "write_columnar",
]

STORE_SCHEMA = "repro.trace-store/1"
_SIDECAR = "meta.json"


def _shard_names(index: int) -> tuple[str, str]:
    return f"c{index:04d}.times.npy", f"c{index:04d}.values.npy"


def write_columnar(bundle: TraceBundle, path: str | os.PathLike) -> str:
    """Write ``bundle`` as a columnar run directory at ``path``.

    Each series becomes one pair of contiguous float64 ``.npy`` shards;
    run metadata (validated by the same contract as the CSV writer) and
    the counter table land in the ``meta.json`` sidecar, written last as
    the commit point.  Returns the directory path.
    """
    if len(bundle) == 0:
        raise TraceError("cannot write an empty bundle")
    validate_metadata(bundle.metadata)
    path = os.fspath(path)
    if os.path.isfile(path):
        raise TraceError(
            f"columnar store path {path!r} is an existing file; "
            "pass a directory (or a .csv path for the CSV codec)")
    os.makedirs(path, exist_ok=True)

    counters = []
    for index, name in enumerate(bundle.names):
        ts = bundle[name]
        times_file, values_file = _shard_names(index)
        for fname, column in ((times_file, ts.times),
                              (values_file, ts.values)):
            shard = np.ascontiguousarray(column, dtype=np.float64)
            with atomic_write(os.path.join(path, fname), mode="wb") as fh:
                np.save(fh, shard, allow_pickle=False)
        counters.append({
            "name": name,
            "units": ts.units,
            "n": int(len(ts)),
            "times": times_file,
            "values": values_file,
        })

    sidecar = {
        "schema": STORE_SCHEMA,
        "counters": counters,
        "metadata": _jsonable_metadata(bundle.metadata),
    }
    atomic_write_json(os.path.join(path, _SIDECAR), sidecar)
    return path


def _jsonable_metadata(metadata: Mapping[str, object]) -> Dict[str, object]:
    """Normalise metadata for the sidecar: numpy scalars become native
    floats, everything else passes through (already validated)."""
    out: Dict[str, object] = {}
    for key, value in metadata.items():
        if isinstance(value, (np.integer, np.floating)):
            out[key] = float(value)
        else:
            out[key] = value
    return out


def is_columnar_store(path: str | os.PathLike) -> bool:
    """True when ``path`` is a directory holding a trace-store sidecar."""
    return os.path.isfile(os.path.join(os.fspath(path), _SIDECAR))


class ColumnarStore:
    """Lazy reader over one columnar run directory.

    Opening the store reads only the sidecar.  Each counter's columns
    are memory-mapped (``mmap_mode="r"``) on first access and cached, so
    touching one counter of a wide bundle never pages in the rest.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        sidecar_path = os.path.join(self.path, _SIDECAR)
        if not os.path.isfile(sidecar_path):
            raise TraceError(
                f"{self.path!r} is not a columnar trace store "
                f"(no {_SIDECAR})")
        try:
            with open(sidecar_path, "r") as fh:
                sidecar = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise TraceError(
                f"unreadable trace-store sidecar {sidecar_path!r}: {exc}"
            ) from exc
        if sidecar.get("schema") != STORE_SCHEMA:
            raise TraceError(
                f"unsupported trace-store schema "
                f"{sidecar.get('schema')!r} (expected {STORE_SCHEMA!r})")
        self._counters: Dict[str, dict] = {}
        for entry in sidecar.get("counters", []):
            self._counters[entry["name"]] = entry
        if not self._counters:
            raise TraceError(f"trace store {self.path!r} lists no counters")
        self.metadata: Dict[str, object] = dict(sidecar.get("metadata", {}))
        self._cache: Dict[str, TimeSeries] = {}

    @property
    def names(self) -> list[str]:
        """Counter names, in the order they were written."""
        return list(self._counters)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def _load_column(self, fname: str) -> np.ndarray:
        full = os.path.join(self.path, fname)
        try:
            arr = np.load(full, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise TraceError(
                f"unreadable trace-store shard {full!r}: {exc}") from exc
        if arr.ndim != 1 or arr.dtype != np.float64:
            raise TraceError(
                f"trace-store shard {full!r} is not a 1-D float64 column "
                f"(shape {arr.shape}, dtype {arr.dtype})")
        return arr

    def series(self, name: str) -> TimeSeries:
        """Memory-map one counter (cached)."""
        try:
            entry = self._counters[name]
        except KeyError:
            raise TraceError(
                f"no series named {name!r} in store {self.path!r}; "
                f"available: {sorted(self._counters)}") from None
        if name not in self._cache:
            self._cache[name] = TimeSeries(
                times=self._load_column(entry["times"]),
                values=self._load_column(entry["values"]),
                name=name, units=entry.get("units", ""),
            )
        return self._cache[name]

    def bundle(self) -> TraceBundle:
        """View the whole store as a :class:`TraceBundle` of memory-mapped
        series (columns still load lazily from the page cache)."""
        out = TraceBundle(metadata=dict(self.metadata))
        for name in self._counters:
            out.add(self.series(name))
        return out


def read_columnar(path: str | os.PathLike) -> TraceBundle:
    """Read a columnar run directory back into a :class:`TraceBundle`."""
    return ColumnarStore(path).bundle()


def write_bundle(bundle: TraceBundle, path: str | os.PathLike,
                 *, format: str = "auto") -> str:
    """Write ``bundle`` to ``path``, autodetecting the format.

    ``format="auto"`` picks the CSV codec for paths ending in ``.csv``
    and the columnar store for everything else; ``"csv"`` and
    ``"columnar"`` force a codec.  Returns the path written.
    """
    path = os.fspath(path)
    if format == "auto":
        format = "csv" if path.lower().endswith(".csv") else "columnar"
    if format == "csv":
        write_csv(bundle, path)
        return path
    if format == "columnar":
        return write_columnar(bundle, path)
    raise TraceError(
        f"unknown trace format {format!r}; expected 'auto', 'csv' or "
        "'columnar'")


def read_bundle(path: str | os.PathLike) -> TraceBundle:
    """Read a trace from ``path``, autodetecting the format.

    A directory (with a store sidecar) reads as columnar; a regular
    file reads as CSV.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        return read_columnar(path)
    # Files — and missing paths — go through the CSV codec, which raises
    # the usual FileNotFoundError for paths that don't exist.
    return read_csv(path)
