"""Trace toolkit: time-series container, I/O, and preprocessing.

This subpackage is the common currency of the library: the memory
simulator produces :class:`TimeSeries` objects, the fractal estimators and
aging detectors consume them.

Public API
----------
:class:`TimeSeries`
    Immutable, uniformly-sampled (or timestamped) scalar series.
:class:`TraceBundle`
    A named collection of aligned series (one per performance counter).
:func:`read_csv` / :func:`write_csv`
    Round-trip a bundle through a plain CSV file.
:func:`read_bundle` / :func:`write_bundle`
    Format-autodetecting I/O: ``.csv`` paths use the CSV codec, anything
    else the memory-mapped columnar store (:mod:`repro.trace.store`).
:class:`ColumnarStore`
    Lazy per-counter reader over one columnar run directory.
Preprocessing helpers
    :func:`detrend`, :func:`difference`, :func:`standardize`,
    :func:`resample_uniform`, :func:`fill_gaps`, :func:`segment`,
    :func:`sliding_windows`.
"""

from .series import TimeSeries, TraceBundle
from .io import read_csv, validate_metadata, write_csv
from .store import (
    ColumnarStore,
    is_columnar_store,
    read_bundle,
    read_columnar,
    write_bundle,
    write_columnar,
)
from .perfmon import read_perfmon_csv, normalize_counter_name
from .align import align_series, correlation_matrix, lagged_correlation
from .preprocess import (
    detrend,
    difference,
    standardize,
    resample_uniform,
    fill_gaps,
    segment,
    sliding_windows,
)

__all__ = [
    "TimeSeries",
    "TraceBundle",
    "read_csv",
    "write_csv",
    "validate_metadata",
    "read_bundle",
    "write_bundle",
    "read_columnar",
    "write_columnar",
    "ColumnarStore",
    "is_columnar_store",
    "read_perfmon_csv",
    "normalize_counter_name",
    "align_series",
    "correlation_matrix",
    "lagged_correlation",
    "detrend",
    "difference",
    "standardize",
    "resample_uniform",
    "fill_gaps",
    "segment",
    "sliding_windows",
]
