"""CSV round-trip for trace bundles.

The on-disk format mirrors what real performance-counter collectors (e.g.
perfmon CSV relogs) produce: a header row naming the time column and each
counter, one row per sample time, empty cells for missed samples.  Run
metadata is stored in ``#``-prefixed comment lines before the header:

.. code-block:: text

    # crash_time=86100.0
    # os_profile=nt4
    time,AvailableBytes,PagesPerSec
    0.0,512034816,12.0
    1.0,511942656,
"""

from __future__ import annotations

import csv
import io as _io
import math
import os
import re
from typing import Dict, Mapping

import numpy as np

from ..exceptions import TraceError
from ..obs.atomic import atomic_write
from .series import TimeSeries, TraceBundle

_METADATA_PREFIX = "# "

# Strict decimal grammar for metadata values.  ``float()`` is far too
# permissive for round-tripping: it accepts underscore literals
# (``"1_000"`` -> 1000.0), ``"nan"``/``"inf"`` (which don't survive a
# write-back), and surrounding whitespace — all of which silently turned
# string metadata into numbers.  Only strings matching this grammar are
# coerced; everything else stays a string.
_DECIMAL_RE = re.compile(r"[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?\Z")


def validate_metadata(metadata: Mapping[str, object]) -> None:
    """Reject metadata that cannot survive a round trip through disk.

    Shared by the CSV writer and the columnar sidecar writer
    (:func:`repro.trace.store.write_columnar`) so both formats enforce
    one contract: keys are non-empty strings with no ``=``, ``#`` prefix,
    newlines or surrounding whitespace; string values carry no newlines
    or surrounding whitespace; numeric values are finite.  Violations
    raise :class:`~repro.exceptions.TraceError` at *write* time, instead
    of producing a file that fails (or silently mis-parses) on read.
    """
    for key, value in metadata.items():
        if not isinstance(key, str) or not key:
            raise TraceError(
                f"metadata keys must be non-empty strings, got {key!r}")
        if key != key.strip():
            raise TraceError(
                f"metadata key {key!r} has surrounding whitespace, which "
                "does not survive a round trip")
        if "=" in key or "\n" in key or "\r" in key or key.startswith("#"):
            raise TraceError(
                f"metadata key {key!r} contains '=', '#' prefix or a "
                "newline and cannot be represented")
        if isinstance(value, str):
            if "\n" in value or "\r" in value:
                raise TraceError(
                    f"metadata value for {key!r} contains a newline and "
                    "cannot be represented")
            if value != value.strip():
                raise TraceError(
                    f"metadata value for {key!r} has surrounding "
                    "whitespace, which does not survive a round trip")
        elif isinstance(value, bool):
            raise TraceError(
                f"metadata value for {key!r} is a bool; store floats or "
                "strings")
        elif isinstance(value, (int, float, np.integer, np.floating)):
            if not math.isfinite(float(value)):
                raise TraceError(
                    f"metadata value for {key!r} is non-finite "
                    f"({value!r}) and cannot round-trip")
        else:
            raise TraceError(
                f"metadata value for {key!r} must be a float or string, "
                f"got {type(value).__name__}")


def _fmt(x: float) -> str:
    """Shortest decimal string that round-trips ``x`` exactly.

    ``repr(float)`` is the shortest-repr algorithm (17 significant
    digits when needed), so distinct floats always render distinctly —
    ``%.10g`` collapsed epoch-scale timestamps like ``1e9 + 0.25`` and
    ``1e9 + 0.5`` onto the same string, producing files that failed
    their own strictly-increasing-times validation on read-back.
    """
    return repr(float(x))


def write_csv(bundle: TraceBundle, path: str | os.PathLike) -> None:
    """Write a bundle to ``path``.

    Series are aligned on the union of their time grids; cells without a
    sample (or with a NaN gap) are written empty.
    """
    if len(bundle) == 0:
        raise TraceError("cannot write an empty bundle")
    names = bundle.names
    grid = np.unique(np.concatenate([bundle[name].times for name in names]))
    columns: Dict[str, np.ndarray] = {}
    for name in names:
        ts = bundle[name]
        col = np.full(grid.size, np.nan)
        idx = np.searchsorted(grid, ts.times)
        col[idx] = ts.values
        columns[name] = col

    validate_metadata(bundle.metadata)
    with atomic_write(path, newline="") as handle:
        for key in sorted(bundle.metadata):
            handle.write(f"{_METADATA_PREFIX}{key}={bundle.metadata[key]}\n")
        writer = csv.writer(handle)
        writer.writerow(["time", *names])
        for i, t in enumerate(grid):
            row = [_fmt(t)]
            for name in names:
                v = columns[name][i]
                row.append("" if np.isnan(v) else _fmt(v))
            writer.writerow(row)


def read_csv(path: str | os.PathLike) -> TraceBundle:
    """Read a bundle previously written by :func:`write_csv`.

    Missing cells become gaps only where the counter was sampled at other
    times; rows where a counter was never sampled are dropped from that
    counter's series.
    """
    metadata: Dict[str, float | str] = {}
    header_line = None
    data_lines = []
    with open(path, "r", newline="") as handle:
        for line in handle:
            if line.startswith("#"):
                # Strip exactly the "# " the writer emitted (falling back
                # to a bare "#"); lstrip("# ") over-stripped any leading
                # '#'/' ' run from the *key* itself ("# #tag=x" -> "tag").
                if line.startswith(_METADATA_PREFIX):
                    stripped = line[len(_METADATA_PREFIX):]
                else:
                    stripped = line[1:]
                stripped = stripped.rstrip("\n")
                if "=" not in stripped:
                    raise TraceError(f"malformed metadata line: {line!r}")
                key, _, raw = stripped.partition("=")
                metadata[key.strip()] = _parse_metadata_value(raw.strip())
            elif header_line is None:
                header_line = line
            else:
                data_lines.append(line)
    if header_line is None:
        raise TraceError(f"{path} contains no header row")

    reader = csv.reader(_io.StringIO(header_line + "".join(data_lines)))
    header = next(reader)
    if not header or header[0] != "time":
        raise TraceError(f"first column must be 'time', got {header[:1]!r}")
    names = header[1:]
    if not names:
        raise TraceError("no counter columns in file")

    times = []
    cells: list[list[str]] = []
    for row in reader:
        if not row:
            continue
        if len(row) != len(header):
            raise TraceError(f"row has {len(row)} cells, expected {len(header)}: {row!r}")
        times.append(float(row[0]))
        cells.append(row[1:])

    grid = np.asarray(times, dtype=float)
    if grid.size >= 2:
        diffs = np.diff(grid)
        if np.any(diffs == 0):
            dup = float(grid[1:][diffs == 0][0])
            raise TraceError(
                f"duplicate time rows in {path}: t={dup!r} appears more "
                f"than once (each sample time must be a single row)"
            )
        if np.any(diffs < 0):
            raise TraceError(f"time rows in {path} are not increasing")
    bundle = TraceBundle(metadata=metadata)
    for j, name in enumerate(names):
        raw = [r[j] for r in cells]
        present = np.array([cell != "" for cell in raw])
        if not present.any():
            continue
        # Keep the span where the counter was actually collected; interior
        # missing cells become NaN gaps.
        first, last = np.flatnonzero(present)[[0, -1]]
        vals = np.array(
            [float(c) if c != "" else np.nan for c in raw[first:last + 1]], dtype=float
        )
        bundle.add(TimeSeries(times=grid[first:last + 1], values=vals, name=name))
    if len(bundle) == 0:
        raise TraceError(f"{path} contains no data rows")
    return bundle


def _parse_metadata_value(raw: str) -> float | str:
    """Metadata values are floats when they match the strict decimal
    grammar (optional sign, digits, optional fraction and exponent);
    everything else — including ``"1_000"``, ``"nan"``, ``"inf"`` and
    hex-ish strings ``float()`` would happily coerce — stays a string."""
    if _DECIMAL_RE.match(raw):
        return float(raw)
    return raw
