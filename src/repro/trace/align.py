"""Multi-series alignment and cross-counter statistics.

The aging analysis monitors several counters of the same run; these
helpers put them on a common footing:

* :func:`align_series` — inner-join several series onto their common
  uniform grid (intersection of time spans, shared dt), interpolating
  each.
* :func:`correlation_matrix` — Pearson correlations of aligned counters
  (on increments by default, since the levels share the aging trend and
  would all correlate trivially).
* :func:`lagged_correlation` — cross-correlation of two counters over a
  window of lags, used to ask "which counter moves first?".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .._validation import check_positive, check_positive_int
from ..exceptions import AnalysisError, ValidationError
from .preprocess import fill_gaps, resample_uniform
from .series import TimeSeries


def align_series(
    series: Sequence[TimeSeries],
    *,
    dt: float | None = None,
) -> List[TimeSeries]:
    """Inner-join several series onto a shared uniform grid.

    Each series is gap-filled and linearly interpolated onto the grid
    covering the *intersection* of their time spans with step ``dt``
    (default: the coarsest of the series' median sampling intervals).
    """
    if len(series) < 2:
        raise ValidationError("need at least 2 series to align")
    clean = [fill_gaps(ts) if ts.has_gaps else ts for ts in series]
    start = max(ts.times[0] for ts in clean)
    stop = min(ts.times[-1] for ts in clean)
    if stop <= start:
        raise AnalysisError("series time spans do not overlap")
    if dt is None:
        dt = max(ts.dt for ts in clean)
    check_positive(dt, name="dt")

    n = int(np.floor((stop - start) / dt)) + 1
    if n < 8:
        raise AnalysisError("overlap too short after alignment")
    grid = start + dt * np.arange(n)
    out = []
    for ts in clean:
        values = np.interp(grid, ts.times, ts.values)
        out.append(TimeSeries(times=grid, values=values,
                              name=ts.name, units=ts.units))
    return out


def correlation_matrix(
    series: Sequence[TimeSeries],
    *,
    on_increments: bool = True,
) -> Tuple[List[str], np.ndarray]:
    """Pearson correlation matrix of aligned counters.

    Returns ``(names, matrix)``.  By default correlations are computed
    on first differences — the levels of co-aging counters correlate
    near ±1 trivially through the shared trend.
    """
    aligned = align_series(series)
    names = [ts.name for ts in aligned]
    data = np.vstack([ts.values for ts in aligned])
    if on_increments:
        data = np.diff(data, axis=1)
    stds = data.std(axis=1)
    if np.any(stds == 0):
        flat = [names[i] for i in np.flatnonzero(stds == 0)]
        raise AnalysisError(f"constant series after differencing: {flat}")
    return names, np.corrcoef(data)


def lagged_correlation(
    a: TimeSeries,
    b: TimeSeries,
    *,
    max_lag: int = 60,
    on_increments: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cross-correlation of two counters over lags ``-max_lag..max_lag``.

    Positive lag means ``a`` leads ``b`` (a's past correlates with b's
    present).  Returns ``(lags, correlations)``.
    """
    check_positive_int(max_lag, name="max_lag")
    aligned = align_series([a, b])
    xa, xb = aligned[0].values, aligned[1].values
    if on_increments:
        xa, xb = np.diff(xa), np.diff(xb)
    n = xa.size
    if n <= 2 * max_lag + 8:
        raise AnalysisError("overlap too short for the requested max_lag")
    xa = (xa - xa.mean()) / (xa.std() or 1.0)
    xb = (xb - xb.mean()) / (xb.std() or 1.0)

    lags = np.arange(-max_lag, max_lag + 1)
    corr = np.empty(lags.size)
    for i, lag in enumerate(lags):
        if lag >= 0:
            corr[i] = float(np.mean(xa[: n - lag] * xb[lag:]))
        else:
            corr[i] = float(np.mean(xa[-lag:] * xb[: n + lag]))
    return lags, corr
