"""Time-series containers used throughout the library.

:class:`TimeSeries` is a small immutable value object pairing sample times
with values.  It deliberately does *not* try to be pandas: the fractal
estimators need plain contiguous float arrays, and the simulator needs a
cheap append-free construction path, so a thin wrapper over two numpy
arrays is the right altitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Sequence

import numpy as np

from .._validation import as_1d_float_array_allow_nan, check_positive
from ..exceptions import TraceError, ValidationError


@dataclass(frozen=True)
class TimeSeries:
    """A scalar time series: sample times (seconds) and values.

    Parameters
    ----------
    times:
        Strictly increasing sample times, in seconds.
    values:
        Sample values; ``NaN`` marks a gap (a missed sample).
    name:
        Counter name, e.g. ``"AvailableBytes"``.
    units:
        Human-readable unit label, e.g. ``"bytes"``.

    The container is frozen; all transformations return new instances.
    """

    times: np.ndarray
    values: np.ndarray
    name: str = "series"
    units: str = ""

    def __post_init__(self) -> None:
        times = as_1d_float_array_allow_nan(self.times, name="times", min_length=0)
        values = as_1d_float_array_allow_nan(self.values, name="values", min_length=0)
        if np.any(np.isnan(times)):
            raise ValidationError("times may not contain NaN")
        if times.size != values.size:
            raise ValidationError(
                f"times and values must have equal length, got {times.size} != {values.size}"
            )
        if times.size >= 2 and np.any(np.diff(times) <= 0):
            raise ValidationError("times must be strictly increasing")
        times.flags.writeable = False
        values.flags.writeable = False
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_values(
        cls,
        values: Sequence[float],
        *,
        dt: float = 1.0,
        t0: float = 0.0,
        name: str = "series",
        units: str = "",
    ) -> "TimeSeries":
        """Build a uniformly sampled series from values alone."""
        check_positive(dt, name="dt")
        values = np.asarray(values, dtype=float)
        times = t0 + dt * np.arange(values.size)
        return cls(times=times, values=values, name=name, units=units)

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def duration(self) -> float:
        """Elapsed time between the first and last samples."""
        if len(self) < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def dt(self) -> float:
        """Median sampling interval (robust to occasional jitter)."""
        if len(self) < 2:
            raise TraceError("dt is undefined for a series with fewer than 2 samples")
        return float(np.median(np.diff(self.times)))

    @property
    def is_uniform(self) -> bool:
        """True when every sampling interval matches the median within 1e-9."""
        if len(self) < 3:
            return True
        diffs = np.diff(self.times)
        return bool(np.all(np.abs(diffs - np.median(diffs)) < 1e-9 * max(1.0, abs(np.median(diffs)))))

    @property
    def has_gaps(self) -> bool:
        """True when any value is NaN."""
        return bool(np.any(np.isnan(self.values)))

    # -- transformations ----------------------------------------------------

    def with_values(self, values: Sequence[float], *, name: str | None = None,
                    units: str | None = None) -> "TimeSeries":
        """Return a copy with new values on the same time grid."""
        return TimeSeries(
            times=self.times.copy(),
            values=np.asarray(values, dtype=float),
            name=self.name if name is None else name,
            units=self.units if units is None else units,
        )

    def slice_time(self, start: float, stop: float) -> "TimeSeries":
        """Return the sub-series with ``start <= t < stop``."""
        if stop <= start:
            raise ValidationError(f"stop ({stop}) must exceed start ({start})")
        mask = (self.times >= start) & (self.times < stop)
        return TimeSeries(
            times=self.times[mask], values=self.values[mask],
            name=self.name, units=self.units,
        )

    def head(self, n: int) -> "TimeSeries":
        """Return the first ``n`` samples (``n >= 0``)."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        return TimeSeries(times=self.times[:n], values=self.values[:n],
                          name=self.name, units=self.units)

    def tail(self, n: int) -> "TimeSeries":
        """Return the last ``n`` samples (``n >= 0``; 0 gives an empty series)."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        start = max(len(self) - n, 0)
        return TimeSeries(times=self.times[start:], values=self.values[start:],
                          name=self.name, units=self.units)

    def dropna(self) -> "TimeSeries":
        """Return the series with gap (NaN) samples removed."""
        mask = ~np.isnan(self.values)
        return TimeSeries(times=self.times[mask], values=self.values[mask],
                          name=self.name, units=self.units)

    def map(self, func: Callable[[np.ndarray], np.ndarray], *, name: str | None = None) -> "TimeSeries":
        """Apply an elementwise function to the values."""
        out = np.asarray(func(self.values.copy()), dtype=float)
        if out.shape != self.values.shape:
            raise ValidationError("map function must preserve the shape of values")
        return self.with_values(out, name=name)

    # -- summary ------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Simple summary statistics, ignoring gaps."""
        clean = self.values[~np.isnan(self.values)]
        if clean.size == 0:
            raise TraceError(f"series {self.name!r} has no non-gap samples")
        return {
            "n": float(len(self)),
            "n_gaps": float(np.sum(np.isnan(self.values))),
            "mean": float(np.mean(clean)),
            "std": float(np.std(clean)),
            "min": float(np.min(clean)),
            "max": float(np.max(clean)),
            "first": float(clean[0]),
            "last": float(clean[-1]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"[{self.times[0]:g}, {self.times[-1]:g}]s" if len(self) else "[]"
        return f"TimeSeries({self.name!r}, n={len(self)}, t={span})"


@dataclass
class TraceBundle:
    """A set of performance-counter series collected from one run.

    All series share a machine/run identity but need not share a time grid
    (real collectors drop samples).  Metadata records run-level facts such
    as the crash time.
    """

    series: Dict[str, TimeSeries] = field(default_factory=dict)
    metadata: Dict[str, float | str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Accept a name -> TimeSeries mapping or any iterable of
        # TimeSeries (keyed by each series' name).  A plain list used to
        # be silently stored, so ``bundle[name]`` later died with
        # ``TypeError: list indices must be integers``.
        if isinstance(self.series, Mapping):
            coerced: Dict[str, TimeSeries] = {}
            for name, ts in self.series.items():
                if not isinstance(ts, TimeSeries):
                    raise ValidationError(
                        f"series[{name!r}] must be a TimeSeries, "
                        f"got {type(ts).__name__}"
                    )
                if ts.name != name:
                    ts = TimeSeries(times=ts.times, values=ts.values,
                                    name=name, units=ts.units)
                coerced[name] = ts
        else:
            try:
                items = list(self.series)
            except TypeError:
                raise ValidationError(
                    f"series must be a mapping or an iterable of "
                    f"TimeSeries, got {type(self.series).__name__}"
                ) from None
            coerced = {}
            for ts in items:
                if not isinstance(ts, TimeSeries):
                    raise ValidationError(
                        f"series items must be TimeSeries, "
                        f"got {type(ts).__name__}"
                    )
                if ts.name in coerced:
                    raise TraceError(
                        f"bundle already contains a series named {ts.name!r}"
                    )
                coerced[ts.name] = ts
        self.series = coerced
        if not isinstance(self.metadata, Mapping):
            raise ValidationError(
                f"metadata must be a mapping, got {type(self.metadata).__name__}"
            )
        self.metadata = dict(self.metadata)

    def add(self, ts: TimeSeries) -> None:
        """Insert a series, keyed by its name.  Duplicate names are an error."""
        if ts.name in self.series:
            raise TraceError(f"bundle already contains a series named {ts.name!r}")
        self.series[ts.name] = ts

    def __getitem__(self, name: str) -> TimeSeries:
        try:
            return self.series[name]
        except KeyError:
            raise TraceError(
                f"no series named {name!r}; available: {sorted(self.series)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.series

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self.series.values())

    def __len__(self) -> int:
        return len(self.series)

    @property
    def names(self) -> list[str]:
        """Counter names present in the bundle, in insertion order."""
        return list(self.series)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, TimeSeries],
                     metadata: Mapping[str, float | str] | None = None) -> "TraceBundle":
        """Build a bundle from a name -> series mapping."""
        bundle = cls(metadata=dict(metadata or {}))
        for name, ts in mapping.items():
            if ts.name != name:
                ts = TimeSeries(times=ts.times, values=ts.values, name=name, units=ts.units)
            bundle.add(ts)
        return bundle
