"""Batched, counter-based random streams for vectorised fleet simulation.

The object-model :class:`~repro.simkernel.rng.RngRegistry` hands each machine
a family of sequential ``numpy.random.Generator`` streams.  That design is
exactly right for a discrete-event loop but wrong for a struct-of-arrays
fleet engine, where every tick wants *one* draw per host as a contiguous
array and where a host's trajectory must not depend on which other hosts
happen to share the process (otherwise sharding a fleet across workers, or
comparing a batch against a singleton run, would change the numbers).

:class:`FleetRng` therefore derives every variate from a *counter-based*
construction: a splitmix64-style mixing function applied to

    ``mix(key(host_seed, stream)  ^  mix(counter))``

so the draw for host ``i`` on stream ``s`` at counter ``c`` is a pure
function of ``(base_seed + i, s, c)``.  Two consequences the fleet engine
relies on:

* **batch decomposition** — simulating host ``i`` alone yields bit-identical
  draws to simulating it inside any fleet, which is what makes the
  batch-vs-singleton equivalence oracle exact;
* **shard invariance** — splitting a fleet across worker processes cannot
  perturb results, so ``run_fleet(..., engine="vector", workers=k)`` is
  bit-identical for every ``k``.

Counters are managed by the caller (the fleet engine uses
``tick * LANE_STRIDE + lane``), keeping this module stateless apart from the
cached per-stream keys.

The derived samplers (exponential, Pareto, lognormal, geometric, Poisson,
binomial) are deliberately the inverse-CDF / moment-matched forms documented
in ``docs/PERFORMANCE.md``: they match the object model's distributions, not
its bit patterns — cross-engine equivalence is statistical by design.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "FleetRng",
    "host_seeds",
    "exponential",
    "pareto_duration",
    "lognormal",
    "geometric",
    "poisson",
    "binomial",
    "stochastic_round",
]

# splitmix64 constants (Steele, Lea & Flood 2014), as uint64 scalars.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
_U53 = np.float64(1.0 / (1 << 53))

# Distinct lanes within one (stream, tick) live this far apart in counter
# space; ticks advance the counter by LANE_STRIDE so a stream can burn up to
# LANE_STRIDE independent draws per host per tick without collisions.
LANE_STRIDE = 64


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a uint64 array."""
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN).astype(np.uint64, copy=False)
        z = (z ^ (z >> np.uint64(30))) * _MIX_A
        z = (z ^ (z >> np.uint64(27))) * _MIX_B
        return z ^ (z >> np.uint64(31))


def _stream_tag(name: str) -> np.uint64:
    """Stable 64-bit tag for a stream name (FNV-1a, no hash randomisation)."""
    h = np.uint64(0xCBF29CE484222325)
    prime = np.uint64(0x100000001B3)
    with np.errstate(over="ignore"):
        for byte in name.encode("utf-8"):
            h = (h ^ np.uint64(byte)) * prime
    return h


def host_seeds(base_seed: float, n_hosts: int) -> np.ndarray:
    """Per-host seeds using the same ``base_seed + i`` derivation as
    :func:`repro.memsim.machine.run_fleet`."""
    return (np.int64(int(base_seed)) + np.arange(n_hosts, dtype=np.int64)).view(
        np.uint64
    )


class FleetRng:
    """Counter-based uniform source for a fleet of hosts.

    Parameters
    ----------
    seeds:
        Per-host integer seeds (``host_seeds(base_seed, n)`` for the standard
        derivation).  May be any integer array; values are mixed, so adjacent
        seeds yield decorrelated streams.
    """

    def __init__(self, seeds: np.ndarray) -> None:
        seeds = np.asarray(seeds)
        if seeds.ndim != 1 or seeds.size == 0:
            raise ValueError("seeds must be a non-empty 1-d array")
        self._seeds = seeds.astype(np.int64, copy=True).view(np.uint64)
        self._keys: Dict[str, np.ndarray] = {}

    @property
    def n_hosts(self) -> int:
        return int(self._seeds.size)

    def _key(self, stream: str) -> np.ndarray:
        key = self._keys.get(stream)
        if key is None:
            with np.errstate(over="ignore"):
                key = _mix64(self._seeds ^ _mix64(np.full_like(self._seeds, _stream_tag(stream))))
            self._keys[stream] = key
        return key

    def uniforms(self, stream: str, counter: int, lanes: int = 0) -> np.ndarray:
        """Uniform(0, 1) draws on ``stream`` at ``counter``.

        With ``lanes == 0`` returns shape ``(n_hosts,)`` using the single
        counter value; with ``lanes == k`` returns ``(n_hosts, k)`` using
        counters ``counter + 0 .. counter + k - 1``.  Values lie in
        ``[0, 1)`` with 53-bit resolution.
        """
        key = self._key(stream)
        if lanes:
            ctr = np.arange(counter, counter + lanes, dtype=np.int64).view(np.uint64)
            with np.errstate(over="ignore"):
                bits = _mix64(key[:, None] ^ _mix64(ctr)[None, :])
        else:
            ctr = np.uint64(np.int64(counter).view(np.uint64))
            with np.errstate(over="ignore"):
                bits = _mix64(key ^ _mix64(np.full(1, ctr, dtype=np.uint64))[0])
        return (bits >> np.uint64(11)).astype(np.float64) * _U53

    def normals(self, stream: str, counter: int, lanes: int = 0) -> np.ndarray:
        """Standard-normal draws via Box–Muller (two uniforms per normal)."""
        if lanes:
            u = self.uniforms(stream, counter, lanes=2 * lanes)
            u1, u2 = u[:, :lanes], u[:, lanes:]
        else:
            u1 = self.uniforms(stream, counter)
            u2 = self.uniforms(stream, counter + 1)
        r = np.sqrt(-2.0 * np.log1p(-u1))
        return r * np.cos(2.0 * np.pi * u2)


# -- derived samplers (inverse CDF / moment matched) ------------------------


def exponential(u: np.ndarray, mean) -> np.ndarray:
    """Exponential with the given mean via inverse CDF."""
    return -np.log1p(-u) * mean


def pareto_duration(u: np.ndarray, shape: float, mean: float) -> np.ndarray:
    """Pareto phase duration matching ``repro.memsim.workloads._pareto``.

    The object model draws ``xm * (1 + rng.pareto(shape))`` with
    ``xm = mean * (shape - 1) / shape``; the Lomax ``1 + pareto`` form has
    CDF ``1 - x**-shape`` for ``x >= 1``, inverted here.
    """
    xm = mean * (shape - 1.0) / shape
    return xm * np.power(1.0 - u, -1.0 / shape)


def lognormal(z: np.ndarray, mu: float, sigma: float) -> np.ndarray:
    """Lognormal from standard normals."""
    return np.exp(mu + sigma * z)


def geometric(u: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Geometric (support 1, 2, ...) matching ``rng.geometric(p)``."""
    p = np.clip(p, 1e-12, 1.0 - 1e-12)
    return np.floor(np.log1p(-u) / np.log1p(-p)).astype(np.int64) + 1


def poisson(lam: np.ndarray, u: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Poisson counts: exact inverse-CDF for small means, normal
    approximation above ``lam >= 32`` (fleet engine draws both a uniform and
    a normal per sample so the branch is vectorised, not per-host)."""
    lam = np.asarray(lam, dtype=np.float64)
    out = np.zeros(np.broadcast(lam, u).shape, dtype=np.int64)
    big = lam >= 32.0
    if np.any(big):
        approx = np.rint(lam + np.sqrt(np.maximum(lam, 0.0)) * z)
        out = np.where(big, np.maximum(approx, 0.0).astype(np.int64), out)
    small = ~big & (lam > 0)
    if np.any(small):
        # Vectorised inverse-CDF walk; bounded by mean + 12*sd + 12 terms.
        lam_s = np.where(small, lam, 0.0)
        pmf = np.exp(-lam_s)
        cdf = pmf.copy()
        k = np.zeros_like(out)
        kmax = int(np.ceil(np.max(lam_s) + 12.0 * np.sqrt(np.max(lam_s)) + 12.0))
        uu = np.broadcast_to(u, cdf.shape)
        for step in range(1, kmax + 1):
            undecided = small & (uu > cdf)
            if not np.any(undecided):
                break
            k = k + undecided.astype(np.int64)
            pmf = pmf * lam_s / step
            cdf = cdf + pmf
        out = np.where(small, k, out)
    return out


def binomial(n: np.ndarray, p: float, u: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Binomial(n, p) counts, moment-matched.

    Small-mean cells (the common case: leak fractions of a few pages per
    tick) use the Poisson limit with exact inverse CDF; larger means use the
    normal approximation.  Always clipped to ``[0, n]``.
    """
    n = np.asarray(n, dtype=np.int64)
    mean = n * p
    out = poisson(np.where(mean < 32.0, mean, 0.0), u, z)
    big = mean >= 32.0
    if np.any(big):
        sd = np.sqrt(np.maximum(n * p * (1.0 - p), 0.0))
        approx = np.maximum(np.rint(mean + sd * z), 0.0).astype(np.int64)
        out = np.where(big, approx, out)
    return np.clip(out, 0, n)


def stochastic_round(x: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Round ``x`` to an integer, up with probability ``frac(x)``."""
    lo = np.floor(x)
    return (lo + (u < (x - lo))).astype(np.int64)
