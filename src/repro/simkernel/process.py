"""Process base classes: components that live on the event loop.

A :class:`Process` owns a handle to the simulator and an RNG stream and
reschedules itself; :class:`PeriodicProcess` is the common fixed-period
special case (samplers, schedulers' housekeeping ticks).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from .._validation import check_positive
from ..exceptions import SimulationError
from .engine import EventHandle, Simulator
from .rng import RngRegistry


class Process(ABC):
    """A named simulation component with its own RNG stream.

    Subclasses implement :meth:`start`, scheduling their first event(s).
    """

    def __init__(self, sim: Simulator, rngs: RngRegistry, name: str) -> None:
        if not name:
            raise SimulationError("process name must be non-empty")
        self.sim = sim
        self.name = name
        self.rng: np.random.Generator = rngs.stream(name)
        self._started = False

    @abstractmethod
    def start(self) -> None:
        """Schedule this process's first event(s).  Called exactly once."""

    def ensure_started(self) -> None:
        """Idempotent wrapper used by machine assembly code."""
        if not self._started:
            self._started = True
            self.start()


class PeriodicProcess(Process):
    """A process whose :meth:`tick` fires every ``period`` seconds.

    The first tick fires at ``phase`` (default: one period in).  Stops
    rescheduling after :meth:`stop` is called.
    """

    def __init__(
        self, sim: Simulator, rngs: RngRegistry, name: str,
        period: float, phase: Optional[float] = None,
    ) -> None:
        super().__init__(sim, rngs, name)
        check_positive(period, name="period")
        self.period = float(period)
        self.phase = float(period if phase is None else phase)
        if self.phase < 0:
            raise SimulationError(f"phase must be non-negative, got {phase}")
        self._stopped = False
        self._handle: Optional[EventHandle] = None

    @abstractmethod
    def tick(self) -> None:
        """Periodic work.  Subclasses implement this."""

    def start(self) -> None:
        self._handle = self.sim.schedule_in(self.phase, self._fire, label=self.name)

    def stop(self) -> None:
        """Stop future ticks; the currently scheduled one is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self.tick()
        if not self._stopped:
            self._handle = self.sim.schedule_in(self.period, self._fire, label=self.name)
