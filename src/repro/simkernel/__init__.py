"""Deterministic discrete-event simulation kernel.

The OS memory simulator (:mod:`repro.memsim`) runs on this engine.  It is
a classic event-list kernel:

* :class:`Event` — a scheduled callback with a firing time, priority and
  stable sequence number (ties break deterministically).
* :class:`Simulator` — the event loop: schedule, cancel, run-until.
* :class:`RngRegistry` — named, independently seeded random streams, so
  adding a new stochastic component never perturbs existing streams
  (common random numbers across experiments).
* :class:`Process` — a convenience base class for components that
  repeatedly reschedule themselves.
* :class:`FleetRng` (:mod:`.batch_rng`) — counter-based batched random
  streams for the vectorised fleet engine: one array draw per tick,
  bit-identical per host regardless of fleet composition or sharding.
"""

from .engine import Event, EventHandle, Simulator
from .rng import RngRegistry
from .process import Process, PeriodicProcess
from . import batch_rng
from .batch_rng import FleetRng

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "RngRegistry",
    "Process",
    "PeriodicProcess",
    "batch_rng",
    "FleetRng",
]
