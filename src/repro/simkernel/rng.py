"""Named, independently seeded random streams.

Every stochastic component of a simulation draws from its own stream,
derived deterministically from ``(root_seed, stream_name)`` via numpy's
``SeedSequence.spawn``-style keying.  Consequences:

* adding a new component does not perturb the draws of existing ones, so
  experiments stay comparable across code revisions ("common random
  numbers");
* a run is fully reproducible from its root seed alone.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

from ..exceptions import SimulationError


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, (int, np.integer)) or isinstance(root_seed, bool):
            raise SimulationError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this registry was built from."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object (and hence a
        continuing sequence of draws) within one registry.
        """
        if not name:
            raise SimulationError("stream name must be non-empty")
        if name not in self._streams:
            # Key the child seed on a stable hash of the stream name so the
            # mapping is independent of creation order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._root_seed, spawn_key=(name_key,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def spawn(self, salt: int) -> "RngRegistry":
        """Derive a new registry for a related-but-independent run.

        Used by multi-run experiment drivers: run ``i`` gets
        ``registry.spawn(i)`` so runs are independent yet reproducible.
        """
        if not isinstance(salt, (int, np.integer)) or isinstance(salt, bool):
            raise SimulationError(f"salt must be an int, got {type(salt).__name__}")
        mixed = np.random.SeedSequence(entropy=self._root_seed, spawn_key=(0xA6E, int(salt)))
        return RngRegistry(int(mixed.generate_state(1, dtype=np.uint64)[0]))
