"""The discrete-event engine: event list, virtual clock, run loop.

Determinism contract
--------------------
Given the same schedule of callbacks and the same RNG seeds, a simulation
replays bit-identically.  Two properties guarantee this:

1. Events fire in ``(time, priority, seq)`` order, where ``seq`` is a
   monotonically increasing insertion counter — simultaneous events fire
   in a stable, insertion-defined order.
2. Cancelled events are tombstoned in place (lazy deletion), so heap
   structure never depends on cancellation timing.

Tombstones are additionally swept in bulk when they come to dominate the
heap (see :meth:`Simulator.schedule`): because ``(time, priority, seq)``
is a *total* order (``seq`` is unique), rebuilding the heap from only the
live events cannot reorder any future pop — the sweep changes memory
footprint, never firing order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .._validation import check_finite
from ..exceptions import SimulationError
from ..obs import session as _obs
from ..obs.profile import profile

EventCallback = Callable[[], None]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.  Ordering key: (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; supports cancel."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: Optional["Simulator"] = None) -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            # Count only tombstones actually sitting in the heap: a
            # cancel after firing is a semantic no-op.
            if not event.fired and self._sim is not None:
                self._sim._note_tombstone()

    @property
    def cancelled(self) -> bool:
        """True when the event will not fire."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """The scheduled firing time."""
        return self._event.time


class Simulator:
    """Event loop with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("fires at t=10"))
        sim.run_until(100.0)
    """

    # Sweep the heap of tombstones when at least this many have piled up
    # AND they outnumber the live events — dead handles from cancelled
    # sessions/timers otherwise linger until the clock reaches them.
    _SWEEP_MIN_TOMBSTONES = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._n_fired = 0
        self._stop_requested = False
        self._n_tombstones = 0

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far."""
        return self._n_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return len(self._heap) - self._n_tombstones

    def _note_tombstone(self) -> None:
        """An in-heap event was just cancelled (called by its handle)."""
        self._n_tombstones += 1

    def _sweep_tombstones(self) -> None:
        """Drop every tombstone and re-heapify the survivors.

        Safe at any moment: ``(time, priority, seq)`` totally orders
        events, so the rebuilt heap pops in exactly the order the old
        one would have — lazy deletion and bulk sweeping are
        observationally identical.
        """
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._n_tombstones = 0

    def schedule(
        self, time: float, callback: EventCallback, *,
        priority: int = 0, label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Scheduling in the past raises :class:`SimulationError` — a
        component that does this is buggy, and silently clamping would
        hide the bug.
        """
        check_finite(time, name="time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} before now={self._now}"
            )
        event = Event(time=float(time), priority=priority,
                      seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        if (self._n_tombstones >= self._SWEEP_MIN_TOMBSTONES
                and self._n_tombstones * 2 > len(self._heap)):
            self._sweep_tombstones()
        return EventHandle(event, self)

    def schedule_in(self, delay: float, callback: EventCallback, *,
                    priority: int = 0, label: str = "") -> EventHandle:
        """Schedule ``callback`` after a relative ``delay >= 0``."""
        check_finite(delay, name="delay")
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, priority=priority, label=label)

    def stop(self) -> None:
        """Request the run loop to stop after the current event returns."""
        self._stop_requested = True

    @profile("simkernel.run_until")
    def run_until(self, t_end: float, *, max_events: Optional[int] = None) -> None:
        """Fire events in order until the clock would pass ``t_end``.

        On return the clock equals ``t_end`` (or the time of the event
        that triggered :meth:`stop`).  ``max_events`` guards against
        runaway self-rescheduling loops.
        """
        check_finite(t_end, name="t_end")
        if t_end < self._now:
            raise SimulationError(f"t_end ({t_end}) is before now ({self._now})")
        if self._running:
            raise SimulationError("run_until called re-entrantly from inside an event")
        self._running = True
        self._stop_requested = False
        fired_this_run = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    self._n_tombstones -= 1
                    continue
                if event.time > t_end:
                    break
                heapq.heappop(self._heap)
                event.fired = True
                self._now = event.time
                event.callback()
                self._n_fired += 1
                fired_this_run += 1
                if self._stop_requested:
                    return
                if max_events is not None and fired_this_run >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before reaching t={t_end}"
                    )
            self._now = t_end
        finally:
            self._running = False
            if _obs.telemetry_enabled():
                # Whole-run aggregates only: per-event instrumentation in
                # this loop would dominate the loop body itself.
                _obs.counter("sim.events_fired").inc(fired_this_run)
                _obs.gauge("sim.queue_depth").set(len(self._heap))
                _obs.gauge("sim.clock_seconds").set(self._now)

    def run_next(self) -> bool:
        """Fire exactly the next pending event.  Returns False when empty."""
        if self._running:
            raise SimulationError("run_next called re-entrantly from inside an event")
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._n_tombstones -= 1
                continue
            self._running = True
            try:
                event.fired = True
                self._now = event.time
                event.callback()
                self._n_fired += 1
            finally:
                self._running = False
            return True
        return False
