"""Deterministic fractal test signals with known pointwise regularity.

:func:`weierstrass` has uniform Hölder exponent ``h`` at *every* point —
the cleanest possible target for a local Hölder estimator (no sampling
variability in the truth).  :func:`cantor_staircase` is the devil's
staircase, whose increments concentrate on a measure-zero set.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_positive, check_positive_int


def weierstrass(
    n: int,
    h: float = 0.5,
    *,
    gamma: float = 2.0,
    n_terms: int = 60,
    t_max: float = 1.0,
) -> np.ndarray:
    """Sample the Weierstrass function ``W(t) = sum gamma^{-k h} cos(gamma^k t)``.

    For ``gamma > 1`` and ``0 < h < 1`` the function is continuous,
    nowhere differentiable, with Hölder exponent exactly ``h`` at every
    point.

    Parameters
    ----------
    n:
        Number of uniformly spaced samples on ``[0, t_max]``.
    h:
        The target uniform Hölder exponent, in (0, 1).
    gamma:
        Lacunarity parameter (> 1).
    n_terms:
        Truncation of the infinite sum; 60 terms with gamma = 2 reaches
        far below double-precision resolution.
    """
    check_positive_int(n, name="n", minimum=2)
    check_in_range(h, name="h", low=0.0, high=1.0, inclusive_low=False, inclusive_high=False)
    check_positive(t_max, name="t_max")
    if gamma <= 1.0:
        from ..exceptions import ValidationError

        raise ValidationError(f"gamma must exceed 1, got {gamma}")
    check_positive_int(n_terms, name="n_terms")

    t = np.linspace(0.0, t_max, n)
    out = np.zeros(n)
    # Sum highest-frequency terms first so the small terms are not lost
    # to floating-point absorption.
    for k in reversed(range(n_terms)):
        out += gamma ** (-k * h) * np.cos((gamma**k) * 2.0 * np.pi * t)
    return out


def cantor_staircase(n_levels: int = 12) -> np.ndarray:
    """The devil's staircase sampled on a grid of ``3 ** n_levels`` points.

    Built as the cumulative distribution of the uniform measure on the
    middle-thirds Cantor set: mass splits (1/2, 0, 1/2) across each
    triadic refinement.  The staircase is constant almost everywhere yet
    climbs from 0 to 1; its increments have Hölder exponent
    ``log 2 / log 3 ≈ 0.6309`` on the Cantor set.
    """
    check_positive_int(n_levels, name="n_levels")
    if n_levels > 15:
        from ..exceptions import ValidationError

        raise ValidationError(f"n_levels={n_levels} would allocate 3^{n_levels} cells")
    masses = np.array([1.0])
    for level in range(n_levels):
        children = np.zeros(masses.size * 3)
        children[0::3] = masses / 2.0
        children[2::3] = masses / 2.0
        masses = children
    return np.cumsum(masses)
