"""ARFIMA(0, d, 0) long-memory noise.

Fractionally integrated white noise: ``(1 - B)^d X_t = eps_t``.  For
``d`` in (-1/2, 1/2) the process is stationary with Hurst exponent
``H = d + 1/2``, giving a second, structurally different long-memory
generator to cross-check the fGn-based estimator validation (an estimator
that only works on Gaussian fGn would be caught here).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_positive_int


def arfima(
    n: int,
    d: float,
    *,
    rng: np.random.Generator | None = None,
    burn_in: int | None = None,
    innovations: str = "gaussian",
) -> np.ndarray:
    """Sample ARFIMA(0, d, 0) noise of length ``n``.

    Parameters
    ----------
    n:
        Output length.
    d:
        Fractional differencing parameter in (-0.5, 0.5); the Hurst
        exponent of the output is ``d + 0.5``.
    burn_in:
        Extra samples generated and discarded from the front so the MA
        truncation does not bias the start; defaults to ``n``.
    innovations:
        ``"gaussian"`` (default) or ``"student"`` — Student-t(4)
        innovations produce heavy-tailed long-memory noise, closer to
        bursty systems counters.

    Notes
    -----
    Synthesis uses the MA(inf) representation truncated at
    ``n + burn_in`` terms, evaluated by FFT convolution:
    ``psi_0 = 1, psi_k = psi_{k-1} (k - 1 + d) / k``.
    """
    check_positive_int(n, name="n")
    check_in_range(d, name="d", low=-0.5, high=0.5, inclusive_low=False, inclusive_high=False)
    if rng is None:
        rng = np.random.default_rng()
    if burn_in is None:
        burn_in = n
    total = n + int(burn_in)

    if innovations == "gaussian":
        eps = rng.standard_normal(total)
    elif innovations == "student":
        eps = rng.standard_t(df=4, size=total)
    else:
        from ..exceptions import ValidationError

        raise ValidationError(f"innovations must be 'gaussian' or 'student', got {innovations!r}")

    # MA(inf) weights psi_k of (1-B)^{-d}, computed by the stable recursion.
    k = np.arange(1, total, dtype=float)
    psi = np.concatenate([[1.0], np.cumprod((k - 1.0 + d) / k)])

    # Linear convolution via FFT, keeping the first `total` lags.
    size = 1 << int(np.ceil(np.log2(2 * total - 1)))
    out = np.fft.irfft(np.fft.rfft(eps, size) * np.fft.rfft(psi, size), size)[:total]
    return out[burn_in:]
