"""Standalone heavy-tailed ON/OFF aggregate-rate generator.

The theoretical backbone of the workload model, available directly: the
superposition of M independent sources with Pareto(shape) ON and OFF
durations has an aggregate instantaneous rate whose cumulative process
converges (after centring/rescaling) to fractional Brownian motion with

``H = (3 - shape) / 2``    (Taqqu, Willinger & Sherman 1997).

Used to validate that the memsim workload really inherits the predicted
Hurst exponent, independent of the memory-manager dynamics.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_positive, check_positive_int


def onoff_aggregate_rate(
    n: int,
    *,
    n_sources: int = 32,
    shape: float = 1.4,
    mean_on: float = 10.0,
    mean_off: float = 20.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample the aggregate ON-count of M Pareto ON/OFF sources.

    Returns an integer-valued series of length ``n`` (unit time step):
    the number of sources that are ON in each slot.  Its cumulative sum
    approaches fBm with ``H = (3 - shape) / 2``.
    """
    check_positive_int(n, name="n")
    check_positive_int(n_sources, name="n_sources")
    check_in_range(shape, name="shape", low=1.0, high=2.0,
                   inclusive_low=False, inclusive_high=False)
    check_positive(mean_on, name="mean_on")
    check_positive(mean_off, name="mean_off")
    if rng is None:
        rng = np.random.default_rng()

    def pareto(mean: float, size: int) -> np.ndarray:
        xm = mean * (shape - 1.0) / shape
        return xm * (1.0 + rng.pareto(shape, size=size))

    out = np.zeros(n)
    duty = mean_on / (mean_on + mean_off)
    for _ in range(n_sources):
        # Start each source in stationary phase: ON with probability
        # = duty cycle, at a uniformly random point of its period.
        t = 0.0
        on = bool(rng.random() < duty)
        # Residual of the first period.
        first = pareto(mean_on if on else mean_off, 1)[0] * rng.random()
        intervals = [first]
        # Pre-draw enough periods to cover the horizon.
        expected = int(n / (mean_on + mean_off) * 2 + 16)
        ons = pareto(mean_on, expected)
        offs = pareto(mean_off, expected)
        i_on = i_off = 0
        state = on
        while t < n:
            dur = intervals.pop() if intervals else None
            if dur is None:
                if state:
                    dur = ons[i_on % expected]
                    i_on += 1
                else:
                    dur = offs[i_off % expected]
                    i_off += 1
            if state:
                lo = int(np.floor(t))
                hi = int(np.ceil(min(t + dur, n)))
                # Add the exact covered fraction per slot.
                for slot in range(lo, hi):
                    cover = min(t + dur, slot + 1) - max(t, slot)
                    if cover > 0:
                        out[slot] += cover
            t += dur
            state = not state
    return out
