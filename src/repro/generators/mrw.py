"""Multifractal random walk (Bacry, Delour & Muzy 2001).

The MRW is the simplest continuous multifractal process with exactly
known scaling: increments are ``dX = e^{omega} * dB`` where ``dB`` is
Gaussian white noise and ``omega`` is a Gaussian log-volatility field with
logarithmically decaying covariance

``Cov(omega_i, omega_j) = lambda^2 * ln( L / (|i-j|+1) )`` for |i-j| < L.

Its structure-function scaling exponents are the parabola

``zeta(q) = (q/2) (1 + 2 lambda^2) - lambda^2 q^2 / 2``  (for H = 1/2),

so ``zeta(2) = 1`` and the intermittency ``lambda^2`` is read directly off
the curvature — a sharp test for MFDFA implementations.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_positive_int
from ..exceptions import AnalysisError, ValidationError


def mrw(
    n: int,
    lam: float = 0.3,
    *,
    correlation_length: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample an MRW path of length ``n``.

    Parameters
    ----------
    n:
        Path length (the returned array is the walk, starting at 0).
    lam:
        Intermittency coefficient lambda (not squared); 0 gives plain
        Brownian motion.
    correlation_length:
        The integral scale L of the log-volatility covariance; defaults
        to ``n`` (scaling holds up to the full sample length).

    Notes
    -----
    The log-volatility field is synthesised exactly with circulant
    embedding of its covariance, the same machinery as Davies–Harte.
    """
    check_positive_int(n, name="n", minimum=2)
    check_in_range(lam, name="lam", low=0.0, high=1.0, inclusive_low=True, inclusive_high=False)
    if rng is None:
        rng = np.random.default_rng()
    L = n if correlation_length is None else int(correlation_length)
    if L < 2 or L > n:
        raise ValidationError(f"correlation_length must lie in [2, n], got {L}")

    gauss = rng.standard_normal(n)
    if lam == 0.0:
        increments = gauss
    else:
        omega = _logcorrelated_field(n, lam, L, rng)
        # Normalise so E[e^{2 omega}] = 1, keeping variance of increments ~ 1.
        omega = omega - np.mean(omega) - np.var(omega)
        increments = np.exp(omega) * gauss
    path = np.cumsum(increments)
    return path - path[0]


def _logcorrelated_field(n: int, lam: float, L: int, rng: np.random.Generator) -> np.ndarray:
    """Gaussian field with covariance lam^2 ln(L / (|k|+1))_+ via circulant embedding."""
    k = np.arange(n, dtype=float)
    cov = lam**2 * np.log(np.maximum(L / (k + 1.0), 1.0))
    row = np.concatenate([cov, cov[-2:0:-1]])
    m = row.size
    eig = np.fft.rfft(row).real
    # The log covariance is not exactly nonneg-definite on a circle; the
    # standard fix is clipping the (small) negative eigenvalues.
    worst = float(np.min(eig))
    if worst < -0.1 * float(np.max(eig)):
        raise AnalysisError(f"log-correlated embedding badly indefinite (min eig {worst:g})")
    eig = np.clip(eig, 0.0, None)
    n_freq = eig.size
    z = (rng.standard_normal(n_freq) + 1j * rng.standard_normal(n_freq)) / np.sqrt(2.0)
    z[0] = rng.standard_normal()
    z[-1] = rng.standard_normal()
    field = np.sqrt(m) * np.fft.irfft(np.sqrt(eig) * z, n=m)
    return field[:n]


def mrw_tau(q, lam: float = 0.3) -> np.ndarray:
    """Exact partition-function scaling ``tau(q) = zeta(q) - 1`` of the MRW.

    ``zeta(q) = (q/2)(1 + 2 lam^2) - lam^2 q^2 / 2``; the conventional
    MFDFA relation ``tau(q) = q h(q) - 1`` then gives the returned values.
    """
    check_in_range(lam, name="lam", low=0.0, high=1.0, inclusive_low=True, inclusive_high=False)
    q = np.asarray(q, dtype=float)
    zeta = 0.5 * q * (1.0 + 2.0 * lam**2) - 0.5 * lam**2 * q**2
    return zeta - 1.0
