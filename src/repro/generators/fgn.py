"""Fractional Gaussian noise and fractional Brownian motion.

Three exact synthesis methods are provided:

* ``"davies-harte"`` (default) — circulant embedding of the fGn
  autocovariance; O(n log n), exact when the embedding is non-negative
  definite (it is for all H in (0, 1) with this covariance).
* ``"cholesky"`` — O(n^3) factorisation of the covariance matrix; slow
  but unconditionally exact, used to cross-validate the fast path.
* ``"hosking"`` — O(n^2) recursive (Durbin–Levinson) synthesis; exact,
  streams sample-by-sample.

fBm is the cumulative sum of fGn: ``B_H(k) = sum_{i<=k} G_H(i)``, which
has pointwise Hölder exponent ``H`` almost surely — the canonical
monofractal control signal in the paper's methodology.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_choice, check_in_range, check_positive, check_positive_int
from ..exceptions import AnalysisError


def _fgn_autocovariance(n: int, hurst: float) -> np.ndarray:
    """Autocovariance gamma(k) of unit-variance fGn, k = 0..n-1."""
    k = np.arange(n, dtype=float)
    return 0.5 * (
        np.abs(k + 1) ** (2 * hurst)
        - 2 * np.abs(k) ** (2 * hurst)
        + np.abs(k - 1) ** (2 * hurst)
    )


def fgn(
    n: int,
    hurst: float,
    *,
    rng: np.random.Generator | None = None,
    method: str = "davies-harte",
    sigma: float = 1.0,
) -> np.ndarray:
    """Sample ``n`` points of fractional Gaussian noise with exponent ``hurst``.

    Parameters
    ----------
    n:
        Series length.
    hurst:
        Hurst exponent in (0, 1).  ``H = 0.5`` gives white noise; larger H
        gives long-range dependence.
    rng:
        Source of randomness; a fresh default generator when omitted.
    method:
        ``"davies-harte"``, ``"cholesky"`` or ``"hosking"``.
    sigma:
        Marginal standard deviation of each sample.
    """
    check_positive_int(n, name="n")
    check_in_range(hurst, name="hurst", low=0.0, high=1.0,
                   inclusive_low=False, inclusive_high=False)
    check_positive(sigma, name="sigma")
    check_choice(method, name="method", choices=("davies-harte", "cholesky", "hosking"))
    if rng is None:
        rng = np.random.default_rng()

    if abs(hurst - 0.5) < 1e-12:
        return sigma * rng.standard_normal(n)

    if method == "davies-harte":
        out = _fgn_davies_harte(n, hurst, rng)
    elif method == "cholesky":
        out = _fgn_cholesky(n, hurst, rng)
    else:
        out = _fgn_hosking(n, hurst, rng)
    return sigma * out


def _fgn_davies_harte(n: int, hurst: float, rng: np.random.Generator) -> np.ndarray:
    """Circulant-embedding synthesis (exact, O(n log n)).

    Builds the circulant extension of the fGn covariance, takes the
    square root of its eigenvalues, fills the spectrum with complex
    Gaussians respecting Hermitian symmetry, and inverts.  The target is

    ``X_j = m^{-1/2} * sum_k sqrt(lambda_k) Z_k e^{2 pi i j k / m}``

    which with numpy's ``irfft`` convention (which divides by m) becomes
    ``sqrt(m) * irfft(Y)`` for the half-spectrum ``Y_k = sqrt(lambda_k) Z_k``.
    """
    if n == 1:
        return rng.standard_normal(1)
    gamma = _fgn_autocovariance(n, hurst)
    # First row of the circulant matrix: gamma(0..n-1), then mirror.
    row = np.concatenate([gamma, gamma[-2:0:-1]])
    m = row.size  # 2n - 2, always even for n >= 2
    eigenvalues = np.fft.rfft(row).real
    # Tiny negative eigenvalues from roundoff are clipped; genuinely
    # negative ones would mean the embedding failed.
    if np.min(eigenvalues) < -1e-8 * np.max(eigenvalues):
        raise AnalysisError(
            f"circulant embedding not nonneg-definite for n={n}, H={hurst}"
        )
    eigenvalues = np.clip(eigenvalues, 0.0, None)

    n_freq = eigenvalues.size  # m//2 + 1
    z = (rng.standard_normal(n_freq) + 1j * rng.standard_normal(n_freq)) / np.sqrt(2.0)
    # DC and Nyquist components of a real signal's spectrum are real.
    z[0] = rng.standard_normal()
    z[-1] = rng.standard_normal()
    spectrum = np.sqrt(eigenvalues) * z
    sample = np.sqrt(m) * np.fft.irfft(spectrum, n=m)
    return sample[:n]


def _fgn_cholesky(n: int, hurst: float, rng: np.random.Generator) -> np.ndarray:
    """Covariance-matrix Cholesky synthesis (exact, O(n^3))."""
    if n > 4096:
        raise AnalysisError("cholesky method is O(n^3); use davies-harte for n > 4096")
    gamma = _fgn_autocovariance(n, hurst)
    idx = np.abs(np.arange(n)[:, None] - np.arange(n)[None, :])
    cov = gamma[idx]
    chol = np.linalg.cholesky(cov)
    return chol @ rng.standard_normal(n)


def _fgn_hosking(n: int, hurst: float, rng: np.random.Generator) -> np.ndarray:
    """Durbin–Levinson recursive synthesis (exact, O(n^2))."""
    gamma = _fgn_autocovariance(n, hurst)
    out = np.empty(n)
    phi = np.zeros(n)
    prev_phi = np.zeros(n)
    v = gamma[0]
    out[0] = rng.standard_normal() * np.sqrt(v)
    for t in range(1, n):
        # Update partial-correlation coefficients.
        kappa = gamma[t]
        if t > 1:
            kappa -= np.dot(prev_phi[: t - 1], gamma[t - 1 : 0 : -1])
        kappa /= v
        phi[t - 1] = kappa
        if t > 1:
            phi[: t - 1] = prev_phi[: t - 1] - kappa * prev_phi[t - 2 :: -1]
        v *= 1.0 - kappa**2
        mean = np.dot(phi[:t], out[t - 1 :: -1][:t])
        out[t] = mean + rng.standard_normal() * np.sqrt(v)
        prev_phi[:t] = phi[:t]
    return out


def fbm(
    n: int,
    hurst: float,
    *,
    rng: np.random.Generator | None = None,
    method: str = "davies-harte",
    sigma: float = 1.0,
) -> np.ndarray:
    """Sample fractional Brownian motion (cumulative sum of fGn).

    The returned path starts at 0 and has ``n`` points; its pointwise
    Hölder exponent equals ``hurst`` everywhere, almost surely.
    """
    noise = fgn(n, hurst, rng=rng, method=method, sigma=sigma)
    path = np.cumsum(noise)
    path -= path[0]
    return path
