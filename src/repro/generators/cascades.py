"""Multiplicative cascade measures — canonical multifractal test signals.

A multiplicative cascade distributes unit mass over ``[0, 1]`` by
recursively splitting every dyadic interval in two and multiplying the
children's masses by random (or fixed) weights.  The resulting measure is
multifractal with a *closed-form* scaling function, which makes cascades
the standard ground truth for MFDFA/WTMM estimators.

Binomial (deterministic weights p, 1-p):
    ``tau(q) = -log2(p^q + (1-p)^q)`` and the partition-function exponents
    follow exactly; the singularity spectrum is a smooth bump between
    ``alpha_min = -log2(max(p,1-p))`` and ``alpha_max = -log2(min(p,1-p))``.

Log-normal weights ``W = 2^{-(lambda N(0,1) + lambda^2 ln2 / 2 ... )}``
normalised to mean 1/2 give a parabolic ``tau(q)``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_positive, check_positive_int
from ..exceptions import ValidationError


def binomial_cascade(
    n_levels: int,
    p: float = 0.7,
    *,
    rng: np.random.Generator | None = None,
    randomize: bool = True,
) -> np.ndarray:
    """Generate a binomial cascade measure of length ``2 ** n_levels``.

    Parameters
    ----------
    n_levels:
        Number of dyadic refinement levels; output has ``2**n_levels``
        cells.
    p:
        Weight multiplier for one child (the other gets ``1 - p``);
        ``p = 0.5`` degenerates to the uniform (monofractal) measure.
    randomize:
        When True (default) the weights (p, 1-p) are assigned to the
        left/right child uniformly at random at every split, giving a
        statistically stationary measure.  When False, p always goes
        left — the classical deterministic binomial measure.

    Returns
    -------
    The cell masses, summing to 1.
    """
    check_positive_int(n_levels, name="n_levels")
    check_in_range(p, name="p", low=0.0, high=1.0, inclusive_low=False, inclusive_high=False)
    if n_levels > 26:
        raise ValidationError(f"n_levels={n_levels} would allocate 2^{n_levels} cells")
    if rng is None:
        rng = np.random.default_rng()

    masses = np.array([1.0])
    for level in range(n_levels):
        if randomize:
            flips = rng.random(masses.size) < 0.5
            left = np.where(flips, p, 1.0 - p)
        else:
            left = np.full(masses.size, p)
        children = np.empty(masses.size * 2)
        children[0::2] = masses * left
        children[1::2] = masses * (1.0 - left)
        masses = children
    return masses


def binomial_cascade_tau(q, p: float = 0.7) -> np.ndarray:
    """Exact scaling function tau(q) of the binomial cascade measure.

    ``tau(q) = -log2(p^q + (1-p)^q)``.  For the uniform case p = 0.5 this
    reduces to the linear (monofractal) ``tau(q) = q - 1``.
    """
    check_in_range(p, name="p", low=0.0, high=1.0, inclusive_low=False, inclusive_high=False)
    q = np.asarray(q, dtype=float)
    return -np.log2(p**q + (1.0 - p) ** q)


def lognormal_cascade(
    n_levels: int,
    lam: float = 0.3,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate a log-normal multiplicative cascade of length ``2**n_levels``.

    Each child's weight is ``W = 2^{-(1/2 + lam * Z - lam^2 ln2 / ...)}``
    arranged so that ``E[W] = 1/2`` (mass conserved on average).  The
    scaling function is the parabola given by
    :func:`lognormal_cascade_tau`.

    ``lam`` is the intermittency parameter; ``lam = 0`` degenerates to
    the uniform measure.
    """
    check_positive_int(n_levels, name="n_levels")
    check_in_range(lam, name="lam", low=0.0, high=2.0, inclusive_low=True, inclusive_high=False)
    if n_levels > 26:
        raise ValidationError(f"n_levels={n_levels} would allocate 2^{n_levels} cells")
    if rng is None:
        rng = np.random.default_rng()

    ln2 = np.log(2.0)
    masses = np.array([1.0])
    for level in range(n_levels):
        # log2 W = -(1 + lam^2 ln2 / 2) + lam Z  =>  E[W] = 2^{-1}.
        z = rng.standard_normal(masses.size * 2)
        log2_w = -(1.0 + lam**2 * ln2 / 2.0) + lam * z
        weights = np.exp2(log2_w)
        children = np.repeat(masses, 2) * weights
        masses = children
    total = masses.sum()
    if total <= 0:
        raise ValidationError("cascade mass vanished; lam too large for this depth")
    return masses / total


def lognormal_cascade_tau(q, lam: float = 0.3) -> np.ndarray:
    """Exact scaling function of the log-normal cascade.

    Derivation: an interval at dyadic level ``j`` carries the product of
    ``j`` i.i.d. weights, so the expected partition function is
    ``E[Z(q, j)] = 2^j (E[W^q])^j`` and with scale ``s = 2^-j``,
    ``tau(q) = -(1 + log2 E[W^q])``.  Our weights have
    ``log2 W ~ N(-(1 + lam^2 ln2 / 2), lam^2)``, hence

    ``tau(q) = q (1 + lam^2 ln2 / 2) - q^2 lam^2 ln2 / 2 - 1``

    a downward parabola with ``tau(0) = -1`` and ``tau(1) = 0`` (mass
    conservation), degenerating to the linear ``q - 1`` at ``lam = 0``.
    """
    check_in_range(lam, name="lam", low=0.0, high=2.0, inclusive_low=True, inclusive_high=False)
    q = np.asarray(q, dtype=float)
    ln2 = np.log(2.0)
    return q * (1.0 + lam**2 * ln2 / 2.0) - q**2 * lam**2 * ln2 / 2.0 - 1.0
