"""Synthetic signal generators with analytically known fractal properties.

These signals are the library's ground truth: each generator documents the
exact Hurst exponent, scaling function tau(q), or pointwise Hölder
regularity of its output, and the test suite checks that every estimator
in :mod:`repro.fractal` and :mod:`repro.core` recovers those values.

Monofractal
-----------
:func:`fgn` / :func:`fbm`
    Fractional Gaussian noise / Brownian motion (Davies–Harte circulant
    embedding, with Cholesky and Hosking fallbacks), ``H`` exact.
:func:`arfima`
    ARFIMA(0, d, 0) noise, long memory with ``H = d + 1/2``.

Multifractal
------------
:func:`binomial_cascade`
    Deterministic/random binomial measure; tau(q) in closed form via
    :func:`binomial_cascade_tau`.
:func:`lognormal_cascade`
    Log-normal multiplicative cascade with parabolic tau(q).
:func:`mrw`
    Multifractal random walk (Bacry–Delour–Muzy) with intermittency
    lambda²; tau(q) in closed form via :func:`mrw_tau`.

Deterministic test signals
--------------------------
:func:`weierstrass`
    Uniform Hölder exponent ``h`` everywhere.
:func:`cantor_staircase`
    Devil's staircase (singular measure support).
"""

from .fgn import fgn, fbm
from .arfima import arfima
from .cascades import (
    binomial_cascade,
    binomial_cascade_tau,
    lognormal_cascade,
    lognormal_cascade_tau,
)
from .mrw import mrw, mrw_tau
from .deterministic import weierstrass, cantor_staircase
from .onoff import onoff_aggregate_rate

__all__ = [
    "fgn",
    "fbm",
    "arfima",
    "binomial_cascade",
    "binomial_cascade_tau",
    "lognormal_cascade",
    "lognormal_cascade_tau",
    "mrw",
    "mrw_tau",
    "weierstrass",
    "cantor_staircase",
    "onoff_aggregate_rate",
]
