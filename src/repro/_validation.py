"""Shared argument-validation helpers.

Every public entry point in the library validates its arguments eagerly so
errors surface at the call site with a message naming the offending
parameter, instead of deep inside numpy with an inscrutable broadcast
error.  These helpers centralise the checks; they all raise
:class:`repro.exceptions.ValidationError`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import ValidationError


def as_1d_float_array(values, *, name: str, min_length: int = 1) -> np.ndarray:
    """Coerce ``values`` to a 1-D float64 array and check its length.

    Accepts any sequence or array-like.  Rejects arrays with more than one
    dimension, arrays containing NaN or infinity, and arrays shorter than
    ``min_length``.
    """
    try:
        arr = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be numeric, got {type(values).__name__}") from exc
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size < min_length:
        raise ValidationError(f"{name} must have at least {min_length} samples, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def as_1d_float_array_allow_nan(values, *, name: str, min_length: int = 1) -> np.ndarray:
    """Like :func:`as_1d_float_array` but NaN values are allowed (gaps)."""
    try:
        arr = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be numeric, got {type(values).__name__}") from exc
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size < min_length:
        raise ValidationError(f"{name} must have at least {min_length} samples, got {arr.size}")
    if np.any(np.isinf(arr)):
        raise ValidationError(f"{name} contains infinite values")
    return arr


def check_positive(value: float, *, name: str) -> float:
    """Require ``value`` to be a finite number strictly greater than zero."""
    value = check_finite(value, name=name)
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(value: float, *, name: str) -> float:
    """Require ``value`` to be a finite number greater than or equal to zero."""
    value = check_finite(value, name=name)
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def check_finite(value: float, *, name: str) -> float:
    """Require ``value`` to be a finite real number."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    return value


def check_positive_int(value, *, name: str, minimum: int = 1) -> int:
    """Require ``value`` to be an integer at least ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_in_range(
    value: float, *, name: str, low: float, high: float,
    inclusive_low: bool = True, inclusive_high: bool = True,
) -> float:
    """Require ``low`` (<|<=) ``value`` (<|<=) ``high``."""
    value = check_finite(value, name=name)
    ok_low = value >= low if inclusive_low else value > low
    ok_high = value <= high if inclusive_high else value < high
    if not (ok_low and ok_high):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ValidationError(f"{name} must lie in {lo_b}{low}, {high}{hi_b}, got {value}")
    return value


def check_choice(value, *, name: str, choices: Iterable) -> object:
    """Require ``value`` to be one of ``choices``."""
    options = tuple(choices)
    if value not in options:
        raise ValidationError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def check_increasing(values: Sequence[float], *, name: str, strict: bool = True) -> np.ndarray:
    """Require a 1-D sequence to be (strictly) increasing."""
    arr = as_1d_float_array(values, name=name)
    diffs = np.diff(arr)
    if strict and np.any(diffs <= 0):
        raise ValidationError(f"{name} must be strictly increasing")
    if not strict and np.any(diffs < 0):
        raise ValidationError(f"{name} must be non-decreasing")
    return arr
