"""repro — reproduction of *Software Aging and Multifractality of Memory
Resources* (Shereshevsky et al., DSN 2003).

The library has three layers:

**Substrates** (everything the analysis stands on, built from scratch):

* :mod:`repro.simkernel` — deterministic discrete-event engine.
* :mod:`repro.memsim` — OS memory-subsystem simulator with heavy-tailed
  stress workloads and aging faults; replaces the paper's Windows
  NT/2000 testbed.
* :mod:`repro.generators` — synthetic fractal signals with known
  exponents (fBm, cascades, MRW, ARFIMA, Weierstrass).
* :mod:`repro.fractal` — wavelets (DWT/MODWT/CWT), DFA, MFDFA, WTMM,
  Hurst estimators, singularity spectra.
* :mod:`repro.trace`, :mod:`repro.stats`, :mod:`repro.report` —
  time-series plumbing, statistics and text rendering.

**Core** (the paper's contribution):

* :mod:`repro.core` — local Hölder exponent estimation, the windowed
  Hölder-variance aging indicator, fractal-collapse detectors, and the
  end-to-end crash-warning pipeline.

**Baselines**:

* :mod:`repro.baselines` — trend-extrapolation exhaustion prediction
  (Vaidyanathan–Trivedi) and the naive raw-counter threshold.

**Observability**:

* :mod:`repro.obs` — structured logging, metrics registry, stage-span
  tracing and per-run manifest artifacts for the simulator and the
  analysis pipeline (disabled by default; the CLI's ``--log-level`` and
  ``--telemetry-out`` flags switch it on).

Sixty-second tour::

    from repro.memsim import Machine, MachineConfig
    from repro.core import analyze_run

    result = Machine(MachineConfig.nt4(seed=7)).run()
    report = analyze_run(result.bundle, counters=["AvailableBytes"])
    print("crash at", result.crash_time)
    print("warning at", report.first_alarm_time)
    print("lead time", report.lead_time())
"""

from .exceptions import (
    ReproError,
    ValidationError,
    AnalysisError,
    SimulationError,
    TraceError,
)
from .trace import TimeSeries, TraceBundle
from .core import (
    analyze_counter,
    analyze_run,
    local_holder,
    holder_trajectory,
    holder_variance_series,
    detect_fractal_collapse,
    DetectorConfig,
)
from .memsim import Machine, MachineConfig, run_fleet
from . import obs

__version__ = "1.1.0"

__all__ = [
    "ReproError",
    "ValidationError",
    "AnalysisError",
    "SimulationError",
    "TraceError",
    "TimeSeries",
    "TraceBundle",
    "analyze_counter",
    "analyze_run",
    "local_holder",
    "holder_trajectory",
    "holder_variance_series",
    "detect_fractal_collapse",
    "DetectorConfig",
    "Machine",
    "MachineConfig",
    "run_fleet",
    "obs",
    "__version__",
]
