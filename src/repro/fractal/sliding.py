"""Sliding-window multifractal analysis.

The experiments compare the multifractal signature of *segments*
(healthy head vs aged tail); this module generalises that to a
*trajectory*: MFDFA run over a window sliding along the series, yielding
time series of h(2), the generalized-Hurst span and the spectrum width.
Used by the F6 benchmark (evolution of the spectrum under aging) and
available to downstream users as a drift monitor in its own right.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..exceptions import AnalysisError
from ..obs.profile import profile
from ..trace.series import TimeSeries
from .mfdfa import mfdfa
from .spectrum import legendre_spectrum


@dataclass(frozen=True)
class SlidingMfdfaResult:
    """Trajectories of multifractal summary statistics.

    Attributes
    ----------
    times:
        Right-edge time of each window.
    h2:
        Generalized Hurst exponent h(2) per window.
    delta_h:
        Generalized-Hurst span h(q_min) - h(q_max) per window.
    width:
        Legendre spectrum width per window (NaN where the spectrum was
        not defined, e.g. a badly non-concave tau in a noisy window).
    """

    times: np.ndarray
    h2: np.ndarray
    delta_h: np.ndarray
    width: np.ndarray

    def __len__(self) -> int:
        return int(self.times.size)


@profile("fractal.sliding_mfdfa")
def sliding_mfdfa(
    ts: TimeSeries,
    *,
    window: int = 2048,
    step: int = 512,
    q=None,
    difference_first: bool = True,
) -> SlidingMfdfaResult:
    """Run MFDFA over a sliding window of a series.

    Parameters
    ----------
    ts:
        Gap-free series (fill/resample first).
    window, step:
        Window length and stride, in samples.
    q:
        Moment orders (default [-3, 3] in 13 steps).
    difference_first:
        Analyse increments of each window (appropriate for level-like
        counters such as AvailableBytes).
    """
    check_positive_int(window, name="window", minimum=256)
    check_positive_int(step, name="step")
    if ts.has_gaps:
        raise AnalysisError("series has gaps; fill them before sliding MFDFA")
    n = len(ts)
    if n < window:
        raise AnalysisError(f"series has {n} samples; window of {window} does not fit")
    q_arr = np.linspace(-3.0, 3.0, 13) if q is None else np.asarray(q, dtype=float)

    times, h2s, spans, widths = [], [], [], []
    for start in range(0, n - window + 1, step):
        segment = ts.values[start: start + window]
        data = np.diff(segment) if difference_first else segment
        try:
            res = mfdfa(data, q=q_arr)
        except AnalysisError:
            continue  # degenerate window (constant stretch); skip
        times.append(float(ts.times[start + window - 1]))
        h2s.append(res.hurst)
        spans.append(res.delta_h)
        try:
            widths.append(legendre_spectrum(res.q, res.tau).width)
        except AnalysisError:
            widths.append(float("nan"))
    if len(times) < 2:
        raise AnalysisError("fewer than 2 usable windows")
    return SlidingMfdfaResult(
        times=np.asarray(times),
        h2=np.asarray(h2s),
        delta_h=np.asarray(spans),
        width=np.asarray(widths),
    )
