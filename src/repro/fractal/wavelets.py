"""Wavelet machinery built from scratch (no pywt dependency).

Discrete side
-------------
* :func:`daubechies_filter` — orthonormal Daubechies scaling filters for
  1..10 vanishing moments, constructed by spectral factorisation of the
  Daubechies half-band polynomial (db1 is Haar).
* :func:`dwt` / :func:`idwt` — periodic (circular) orthonormal DWT and
  its exact inverse.
* :func:`modwt` — maximal-overlap (undecimated) transform; shift
  invariant, defined for any length, the workhorse behind the
  Abry–Veitch Hurst estimator.

Continuous side
---------------
* :func:`cwt` — FFT-based continuous transform with Mexican-hat (DOG-2),
  general derivative-of-Gaussian, or Morlet wavelets; the substrate for
  WTMM and the wavelet-modulus local Hölder estimator.

Repeated transforms over the same (padded size, wavelet, scale band) —
the shape of every sliding-window and online workload — reuse a cached
:class:`WaveletPlan` holding the stacked conjugate frequency-domain
kernels, and the per-scale inverse transforms run as one batched 2-D
``ifft``.  Both are bit-identical to the naive per-scale loop; the plan
cache is a small LRU whose memory bound is documented on
:func:`wavelet_plan_cache_info`.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.special import comb

from .._validation import (
    as_1d_float_array,
    check_choice,
    check_positive,
    check_positive_int,
)
from ..exceptions import AnalysisError, ValidationError
from ..obs import session as _obs
from ..obs.profile import profile

# ---------------------------------------------------------------------------
# Filter construction
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def daubechies_filter(n_moments: int) -> np.ndarray:
    """Daubechies scaling (low-pass) filter with ``n_moments`` vanishing moments.

    Length ``2 * n_moments``; normalised so coefficients sum to sqrt(2)
    and have unit l2 norm.  ``n_moments = 1`` is the Haar filter.

    Construction: the half-band polynomial
    ``P(y) = sum_k C(N-1+k, k) y^k`` is mapped to the z-domain through
    ``y = (2 - z - 1/z) / 4``, factorised, and the minimum-phase root set
    (roots inside the unit circle) is combined with the ``(1 + z)^N``
    factor.  This is the textbook spectral-factorisation construction.
    """
    check_positive_int(n_moments, name="n_moments")
    if n_moments > 10:
        raise ValidationError(f"n_moments must be <= 10, got {n_moments}")
    if n_moments == 1:
        haar = np.array([1.0, 1.0]) / np.sqrt(2.0)
        haar.flags.writeable = False
        return haar

    N = n_moments
    # P(y) = sum_{k=0}^{N-1} C(N-1+k, k) y^k, coefficients low -> high.
    p_y = np.array([comb(N - 1 + k, k, exact=True) for k in range(N)], dtype=float)

    # Substitute y = (2 - z - z^{-1}) / 4 and multiply by z^{N-1} to get a
    # Laurent-free polynomial in z of degree 2(N-1).
    # y^k -> ((2 - z - z^{-1}) / 4)^k; track as polynomial in z times z^{-k}.
    base = np.array([-1.0, 2.0, -1.0]) / 4.0  # coefficients of -z/4 + 1/2 - 1/(4z), in z^{1},z^{0},z^{-1}
    total = np.zeros(2 * (N - 1) + 1)
    for k in range(N):
        # (base)^k is a polynomial spanning z^{k} .. z^{-k} with 2k+1 terms.
        poly = np.array([1.0])
        for _ in range(k):
            poly = np.convolve(poly, base)
        # Align at z^{N-1} top power: poly spans powers k .. -k; embed into
        # the 2(N-1)+1 array spanning N-1 .. -(N-1).
        offset = (N - 1) - k
        total[offset : offset + poly.size] += p_y[k] * poly

    # Roots of the polynomial in z (coefficients highest power first).
    roots = np.roots(total)
    # Keep the minimum-phase half: inside the unit circle.
    inside = roots[np.abs(roots) < 1.0]
    if inside.size != N - 1:
        raise AnalysisError(
            f"spectral factorisation found {inside.size} interior roots, expected {N - 1}"
        )

    # Q(z) = prod (z - r_i); m0(z) = ((1+z)/2)^N * Q(z) / Q(1) * sqrt(2)... build
    # and normalise at the end instead of tracking constants.
    q = np.array([1.0])
    for r in inside:
        q = np.convolve(q, np.array([1.0, -r]))
    q = q.real

    h = np.array([1.0])
    for _ in range(N):
        h = np.convolve(h, np.array([0.5, 0.5]))
    h = np.convolve(h, q)

    # Normalise: sum h = sqrt(2) for an orthonormal scaling filter.
    h = h * (np.sqrt(2.0) / np.sum(h))
    # Guard the l2 norm, which must come out as 1 for a valid filter.
    if abs(np.sum(h**2) - 1.0) > 1e-8:
        raise AnalysisError(f"Daubechies-{N} filter failed the orthonormality check")
    # The lru_cache hands every caller the same ndarray; freeze it so an
    # in-place mutation cannot silently corrupt every later DWT.
    h.flags.writeable = False
    return h


def _qmf(h: np.ndarray) -> np.ndarray:
    """Quadrature-mirror high-pass filter of a scaling filter."""
    g = h[::-1].copy()
    g[1::2] *= -1.0
    return g


# ---------------------------------------------------------------------------
# Periodic DWT
# ---------------------------------------------------------------------------


def dwt_max_level(n: int, filter_length: int) -> int:
    """Deepest level such that each scale still has >= filter_length coefficients."""
    check_positive_int(n, name="n")
    check_positive_int(filter_length, name="filter_length", minimum=2)
    level = 0
    length = n
    while length >= 2 * filter_length and length % 2 == 0:
        length //= 2
        level += 1
    return level


def _dwt_step(x: np.ndarray, h: np.ndarray, g: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One periodic analysis step: returns (approximation, detail)."""
    n = x.size
    if n % 2 != 0:
        raise AnalysisError(f"periodic DWT needs even length, got {n}")
    L = h.size
    # Circular convolution then downsample by 2.
    idx = (np.arange(0, n, 2)[:, None] + np.arange(L)[None, :]) % n
    windows = x[idx]
    approx = windows @ h
    detail = windows @ g
    return approx, detail


def _idwt_step(approx: np.ndarray, detail: np.ndarray, h: np.ndarray, g: np.ndarray) -> np.ndarray:
    """One periodic synthesis step (exact inverse of :func:`_dwt_step`)."""
    if approx.size != detail.size:
        raise AnalysisError("approximation and detail lengths differ")
    n = 2 * approx.size
    L = h.size
    x = np.zeros(n)
    # Transpose of the analysis operator: scatter-add each output sample.
    starts = np.arange(0, n, 2)
    for tap in range(L):
        pos = (starts + tap) % n
        np.add.at(x, pos, approx * h[tap] + detail * g[tap])
    return x


@profile("fractal.dwt")
def dwt(values, *, wavelet: int = 2, level: int | None = None) -> List[np.ndarray]:
    """Periodic orthonormal DWT.

    Parameters
    ----------
    values:
        Input series; its length must be divisible by ``2**level``.
    wavelet:
        Number of Daubechies vanishing moments (1 = Haar, 2 = db2, ...).
    level:
        Decomposition depth; defaults to the maximum allowed by the
        length and filter.

    Returns
    -------
    ``[approx_J, detail_J, detail_J-1, ..., detail_1]`` — coarsest first,
    matching the conventional coefficient layout.
    """
    x = as_1d_float_array(values, name="values", min_length=2)
    h = daubechies_filter(wavelet)
    g = _qmf(h)
    max_level = dwt_max_level(x.size, h.size)
    if level is None:
        level = max_level
    check_positive_int(level, name="level")
    if level > max_level:
        raise ValidationError(
            f"level {level} too deep for length {x.size} with db{wavelet} "
            f"(max {max_level})"
        )
    details: List[np.ndarray] = []
    approx = x
    for _ in range(level):
        approx, detail = _dwt_step(approx, h, g)
        details.append(detail)
    return [approx] + details[::-1]


def idwt(coeffs: Sequence[np.ndarray], *, wavelet: int = 2) -> np.ndarray:
    """Exact inverse of :func:`dwt` (periodic orthonormal synthesis)."""
    if len(coeffs) < 2:
        raise ValidationError("coeffs must contain an approximation and >= 1 detail")
    h = daubechies_filter(wavelet)
    g = _qmf(h)
    approx = np.asarray(coeffs[0], dtype=float)
    for detail in coeffs[1:]:
        detail = np.asarray(detail, dtype=float)
        approx = _idwt_step(approx, detail, h, g)
    return approx


# ---------------------------------------------------------------------------
# MODWT (maximal overlap)
# ---------------------------------------------------------------------------


@profile("fractal.modwt")
def modwt(values, *, wavelet: int = 2, level: int | None = None) -> Dict[int, np.ndarray]:
    """Maximal-overlap DWT detail coefficients per level.

    Returns a dict ``{j: W_j}`` for levels ``j = 1..level``, each ``W_j``
    the same length as the input (undecimated, circular boundary).  The
    MODWT variance of level ``j`` estimates the wavelet variance at scale
    ``2**j`` samples, the quantity the Abry–Veitch Hurst estimator
    regresses.
    """
    x = as_1d_float_array(values, name="values", min_length=4)
    h = daubechies_filter(wavelet) / np.sqrt(2.0)
    g = _qmf(daubechies_filter(wavelet)) / np.sqrt(2.0)
    max_level = int(np.floor(np.log2(x.size / (h.size - 1.0)))) if x.size > h.size else 1
    max_level = max(max_level, 1)
    if level is None:
        level = max_level
    check_positive_int(level, name="level")
    if (h.size - 1) * 2 ** (level - 1) >= x.size:
        raise ValidationError(
            f"level {level} too deep for length {x.size} with db{wavelet}"
        )

    out: Dict[int, np.ndarray] = {}
    v = x
    n = x.size
    for j in range(1, level + 1):
        dilation = 2 ** (j - 1)
        taps = np.arange(h.size) * dilation
        idx = (np.arange(n)[:, None] - taps[None, :]) % n
        w = v[idx] @ g
        v_next = v[idx] @ h
        out[j] = w
        v = v_next
    return out


# ---------------------------------------------------------------------------
# CWT
# ---------------------------------------------------------------------------


def _dog_wavelet_hat(omega: np.ndarray, scale: float, order: int) -> np.ndarray:
    """Fourier transform of the ``order``-th derivative-of-Gaussian wavelet.

    Normalised to unit l2 energy at every scale, the convention under
    which wavelet-modulus maxima of a signal with Hölder exponent h scale
    as ``a^{h + 1/2}``.
    """
    from scipy.special import gamma as gamma_fn

    so = scale * omega
    norm = 1j**order / np.sqrt(gamma_fn(order + 0.5))
    return norm * (so**order) * np.exp(-(so**2) / 2.0) * np.sqrt(scale)


def _morlet_wavelet_hat(omega: np.ndarray, scale: float, omega0: float = 6.0) -> np.ndarray:
    """Fourier transform of the (analytic) Morlet wavelet, unit l2 energy."""
    so = scale * omega
    hat = np.pi**-0.25 * np.exp(-0.5 * (so - omega0) ** 2) * (so > 0)
    return hat * np.sqrt(scale)


class WaveletPlan:
    """Frozen frequency-domain kernels for one CWT configuration.

    Holds the stacked *conjugate* wavelet spectra for a fixed
    (padded size, wavelet family, scale band), so repeated transforms —
    every sliding-window and online workload — skip rebuilding
    ``len(scales)`` kernel arrays per call and run the inverse transform
    as one batched 2-D ``ifft``.
    """

    __slots__ = ("size", "wavelet", "dog_order", "scales", "kernels")

    def __init__(self, size: int, wavelet: str, dog_order: int,
                 scales: np.ndarray) -> None:
        self.size = size
        self.wavelet = wavelet
        self.dog_order = dog_order
        self.scales = scales
        omega = 2.0 * np.pi * np.fft.fftfreq(size)
        kernels = np.empty((scales.size, size), dtype=complex)
        for i, a in enumerate(scales):
            if wavelet == "morlet":
                hat = _morlet_wavelet_hat(omega, a)
            else:
                order = 2 if wavelet == "mexican_hat" else dog_order
                hat = _dog_wavelet_hat(omega, a, order)
            kernels[i] = np.conj(hat)
        kernels.flags.writeable = False
        self.kernels = kernels

    @property
    def nbytes(self) -> int:
        """Memory held by the stacked kernels."""
        return int(self.kernels.nbytes)


# LRU of WaveletPlan keyed on (padded size, wavelet, order, scales bytes).
# Each plan costs n_scales * size * 16 bytes (complex128); with the
# default cap of 8 plans and typical shapes (12 scales, 16k padding)
# the cache tops out around 12 MB.
_PLAN_CACHE: "OrderedDict[tuple, WaveletPlan]" = OrderedDict()
_PLAN_CACHE_MAX = 8
_plan_hits = 0
_plan_misses = 0


def _wavelet_plan(size: int, wavelet: str, dog_order: int,
                  scales_arr: np.ndarray) -> WaveletPlan:
    global _plan_hits, _plan_misses
    order = 2 if wavelet == "mexican_hat" else dog_order
    key = (size, wavelet, order, scales_arr.tobytes())
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_CACHE.move_to_end(key)
        _plan_hits += 1
        _obs.counter("fractal.cwt_plan_hits").inc()
        return plan
    _plan_misses += 1
    _obs.counter("fractal.cwt_plan_misses").inc()
    plan = WaveletPlan(size, wavelet, order, scales_arr.copy())
    _PLAN_CACHE[key] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plan


def wavelet_plan_cache_info() -> dict:
    """Plan-cache occupancy: entries, byte total, hit/miss counts.

    The cache is bounded at ``max_entries`` plans evicted LRU-first;
    ``bytes`` is the summed kernel storage, whose worst case is
    ``max_entries * n_scales * padded_size * 16`` bytes.
    """
    return {
        "entries": len(_PLAN_CACHE),
        "max_entries": _PLAN_CACHE_MAX,
        "bytes": sum(p.nbytes for p in _PLAN_CACHE.values()),
        "hits": _plan_hits,
        "misses": _plan_misses,
    }


def clear_wavelet_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    global _plan_hits, _plan_misses
    _PLAN_CACHE.clear()
    _plan_hits = 0
    _plan_misses = 0


@profile("fractal.cwt")
def cwt(
    values,
    scales,
    *,
    wavelet: str = "mexican_hat",
    dog_order: int = 2,
) -> np.ndarray:
    """Continuous wavelet transform via FFT.

    Parameters
    ----------
    values:
        Input series (uniform sampling assumed, unit spacing).
    scales:
        Sequence of positive scales in samples.
    wavelet:
        ``"mexican_hat"`` (DOG-2, default), ``"dog"`` (order
        ``dog_order``) or ``"morlet"``.

    Returns
    -------
    Array of shape ``(len(scales), len(values))``; real for DOG wavelets,
    complex for Morlet.

    Notes
    -----
    The frequency-domain kernels are cached per (padded size, wavelet,
    scale band) in a small LRU (:func:`wavelet_plan_cache_info`), and
    every scale's inverse transform runs in one batched 2-D ``ifft``;
    both are bit-identical to the per-scale loop they replaced.
    """
    x = as_1d_float_array(values, name="values", min_length=8)
    scales_arr = as_1d_float_array(scales, name="scales", min_length=1)
    if np.any(scales_arr <= 0):
        raise ValidationError("scales must be positive")
    check_choice(wavelet, name="wavelet", choices=("mexican_hat", "dog", "morlet"))
    if wavelet == "dog":
        check_positive_int(dog_order, name="dog_order")
    n = x.size
    # Reflect-pad to exactly 2n: the circular extension [x, reversed x]
    # is continuous everywhere, including the wrap point.  A zero pad
    # would manufacture jump singularities at the edges that dominate
    # the coarse scales.
    padded = np.concatenate([x, x[::-1]])
    size = padded.size
    spectrum = np.fft.fft(padded)
    plan = _wavelet_plan(size, wavelet, dog_order, scales_arr)

    # FLOP proxy for the transform work: (forward + one inverse per
    # scale) * N log2 N.  The online monitor's sliding path is judged by
    # how far it drives this counter down, so it lives here, on the one
    # code path every CWT consumer shares.
    _obs.counter("fractal.cwt_flops").inc(
        (scales_arr.size + 1) * size * math.log2(size))

    conv = np.fft.ifft(spectrum[None, :] * plan.kernels, axis=1)[:, :n]
    if wavelet == "morlet":
        return conv
    return conv.real.copy()
