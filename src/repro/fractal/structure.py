"""q-order structure functions.

For a path/profile ``X(t)``, the structure function of order ``q`` is

``S_q(l) = mean_t |X(t + l) - X(t)|^q ~ l^{zeta(q)}``.

A linear ``zeta(q) = q H`` indicates a monofractal path; concavity in q
indicates multifractality.  Structure functions are the increments-domain
counterpart of MFDFA (which is more robust for nonstationary data), and
the two are cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array
from ..exceptions import AnalysisError, ValidationError
from ..stats.regression import fit_line


@dataclass(frozen=True)
class StructureFunctionResult:
    """Structure-function scaling output.

    Attributes
    ----------
    q:
        Moment orders (must be positive for absolute moments to exist
        robustly).
    zeta:
        Scaling exponents zeta(q).
    zeta_stderr:
        Standard errors of each zeta(q) slope.
    lags:
        Lags used.
    sq:
        S_q(l) matrix, shape (len(q), len(lags)).
    """

    q: np.ndarray
    zeta: np.ndarray
    zeta_stderr: np.ndarray
    lags: np.ndarray
    sq: np.ndarray

    @property
    def linearity_defect(self) -> float:
        """Max deviation of zeta(q) from the straight line through (0,0) and (q_max, zeta_max).

        Zero for a perfect monofractal; grows with multifractality.
        """
        ref = self.zeta[-1] * self.q / self.q[-1]
        return float(np.max(np.abs(self.zeta - ref)))


def structure_functions(
    path,
    *,
    q=None,
    lags=None,
) -> StructureFunctionResult:
    """Compute structure-function exponents of a path.

    Parameters
    ----------
    path:
        The process path (e.g. fBm, MRW, or an integrated counter).
    q:
        Positive moment orders; default ``[0.5, 1, 1.5, ..., 5]``.
    lags:
        Increment lags; default log-spaced in ``[1, n/8]``.
    """
    x = as_1d_float_array(path, name="path", min_length=64)
    q_arr = np.arange(0.5, 5.01, 0.5) if q is None else np.asarray(q, dtype=float)
    if q_arr.ndim != 1 or q_arr.size < 2:
        raise ValidationError("q must be a 1-D grid with at least 2 orders")
    if np.any(q_arr <= 0):
        raise ValidationError("structure-function orders must be positive")

    n = x.size
    if lags is None:
        lags_arr = np.unique(np.round(np.geomspace(1, n // 8, 16)).astype(int))
    else:
        lags_arr = np.unique(np.asarray(lags, dtype=int))
        if lags_arr[0] < 1 or lags_arr[-1] >= n:
            raise ValidationError(f"lags must lie in [1, {n - 1}]")
    if lags_arr.size < 3:
        raise ValidationError("need at least 3 distinct lags")

    sq = np.empty((q_arr.size, lags_arr.size))
    for j, lag in enumerate(lags_arr):
        inc = np.abs(x[lag:] - x[:-lag])
        inc = inc[inc > 0]
        if inc.size < 8:
            raise AnalysisError(f"too few nonzero increments at lag {lag}")
        log_inc = np.log(inc)
        for i, qi in enumerate(q_arr):
            # Compute moments in log space for numerical stability.
            sq[i, j] = np.exp(_log_mean_exp(qi * log_inc))

    log_l = np.log2(lags_arr.astype(float))
    zeta = np.empty(q_arr.size)
    zeta_err = np.empty(q_arr.size)
    for i in range(q_arr.size):
        fit = fit_line(log_l, np.log2(sq[i]))
        zeta[i] = fit.slope
        zeta_err[i] = fit.stderr_slope
    return StructureFunctionResult(
        q=q_arr, zeta=zeta, zeta_stderr=zeta_err, lags=lags_arr, sq=sq,
    )


def _log_mean_exp(values: np.ndarray) -> float:
    """log(mean(exp(values))) computed without overflow."""
    peak = np.max(values)
    return float(peak + np.log(np.mean(np.exp(values - peak))))
