"""Surrogate-data tests for multifractality.

A wide singularity spectrum alone does not prove multifractal *dynamics*:
heavy-tailed marginals or simple linear correlations can fake it.  The
standard methodology (Theiler et al.; Schreiber & Schmitz) compares the
statistic of interest on the data against its distribution over
*surrogates* that destroy the suspected structure while preserving the
rest:

* :func:`phase_randomized` — preserves the power spectrum (hence all
  linear correlations) exactly, destroys all phase structure; Gaussian
  marginals.
* :func:`iaaft` — Iterative Amplitude-Adjusted Fourier Transform:
  preserves both the marginal distribution and (approximately) the power
  spectrum; destroys higher-order/phase dependence.
* :func:`shuffle` — preserves the marginal only.

:func:`multifractality_test` wraps the workflow: spectrum width of the
data vs an ensemble of surrogates, returning a z-score.  Genuinely
multifractal processes (cascades, MRW) score high; linear LRD noise does
not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, check_choice, check_positive_int
from ..exceptions import AnalysisError
from .mfdfa import mfdfa
from .spectrum import legendre_spectrum


def shuffle(values, *, rng: np.random.Generator | None = None) -> np.ndarray:
    """Random permutation surrogate (keeps the marginal, kills all order)."""
    x = as_1d_float_array(values, name="values", min_length=8)
    if rng is None:
        rng = np.random.default_rng()
    out = x.copy()
    rng.shuffle(out)
    return out


def phase_randomized(values, *, rng: np.random.Generator | None = None) -> np.ndarray:
    """Phase-randomised surrogate: same periodogram, random phases."""
    x = as_1d_float_array(values, name="values", min_length=8)
    if rng is None:
        rng = np.random.default_rng()
    n = x.size
    spectrum = np.fft.rfft(x)
    magnitudes = np.abs(spectrum)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=magnitudes.size)
    phases[0] = 0.0
    if n % 2 == 0:
        phases[-1] = 0.0
    return np.fft.irfft(magnitudes * np.exp(1j * phases), n=n)


def iaaft(
    values,
    *,
    rng: np.random.Generator | None = None,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """IAAFT surrogate: same marginal, (near-)same power spectrum.

    Alternates between imposing the data's Fourier magnitudes and its
    rank-ordered marginal until the spectrum stops improving.
    """
    x = as_1d_float_array(values, name="values", min_length=8)
    check_positive_int(max_iterations, name="max_iterations")
    if rng is None:
        rng = np.random.default_rng()
    n = x.size
    sorted_values = np.sort(x)
    target_magnitudes = np.abs(np.fft.rfft(x))

    out = x.copy()
    rng.shuffle(out)
    previous_error = np.inf
    for _ in range(max_iterations):
        # Impose the spectrum.
        spectrum = np.fft.rfft(out)
        nonzero = np.abs(spectrum) > 0
        adjusted = np.where(
            nonzero, spectrum / np.maximum(np.abs(spectrum), 1e-300), 1.0
        ) * target_magnitudes
        out = np.fft.irfft(adjusted, n=n)
        # Impose the marginal by rank mapping.
        ranks = np.argsort(np.argsort(out))
        out = sorted_values[ranks]
        error = float(np.mean((np.abs(np.fft.rfft(out)) - target_magnitudes) ** 2))
        if previous_error - error < tolerance * max(previous_error, 1e-300):
            break
        previous_error = error
    return out


@dataclass(frozen=True)
class SurrogateTestResult:
    """Outcome of the surrogate multifractality test.

    Attributes
    ----------
    statistic_data:
        Spectrum width of the original series.
    statistic_surrogates:
        Widths over the surrogate ensemble.
    z_score:
        ``(data - mean(surrogates)) / std(surrogates)``; values above ~2
        indicate multifractality beyond what the surrogate class
        explains.
    surrogate_kind:
        Which surrogate generator was used.
    """

    statistic_data: float
    statistic_surrogates: np.ndarray
    z_score: float
    surrogate_kind: str

    @property
    def significant(self) -> bool:
        """True when the data's width exceeds the surrogates by > 2 sigma."""
        return self.z_score > 2.0


def multifractality_test(
    values,
    *,
    kind: str = "iaaft",
    n_surrogates: int = 20,
    q=None,
    rng: np.random.Generator | None = None,
) -> SurrogateTestResult:
    """Test whether a series is multifractal beyond its linear structure.

    Computes the MFDFA singularity-spectrum width of ``values`` and of
    ``n_surrogates`` surrogates of the chosen ``kind``; reports the
    z-score of the data against the surrogate ensemble.
    """
    check_choice(kind, name="kind", choices=("shuffle", "phase", "iaaft"))
    check_positive_int(n_surrogates, name="n_surrogates", minimum=5)
    if rng is None:
        rng = np.random.default_rng()
    q_arr = np.linspace(-3.0, 3.0, 13) if q is None else np.asarray(q, dtype=float)
    generator = {"shuffle": shuffle, "phase": phase_randomized, "iaaft": iaaft}[kind]

    width_data = _spectrum_width_of(values, q_arr)
    widths = np.empty(n_surrogates)
    for i in range(n_surrogates):
        widths[i] = _spectrum_width_of(generator(values, rng=rng), q_arr)
    spread = float(np.std(widths, ddof=1))
    if spread == 0:
        raise AnalysisError("surrogate widths are all identical; test degenerate")
    z = (width_data - float(np.mean(widths))) / spread
    return SurrogateTestResult(
        statistic_data=width_data,
        statistic_surrogates=widths,
        z_score=float(z),
        surrogate_kind=kind,
    )


def _spectrum_width_of(values, q_arr) -> float:
    res = mfdfa(values, q=q_arr)
    return legendre_spectrum(res.q, res.tau).width
