"""Box-counting and generalized (Rényi) dimensions.

Two classical geometric tools used alongside the spectrum analyses:

* :func:`boxcount_dimension` — the Minkowski–Bouligand dimension of a
  signal's *graph*, estimated by covering the graph with square boxes
  of shrinking side.  For fBm with exponent H the graph dimension is
  ``2 - H``; for a smooth curve it is 1.
* :func:`generalized_dimensions` — the Rényi dimension profile
  ``D(q) = tau(q) / (q - 1)`` of a measure on a dyadic grid.  For a
  multifractal measure ``D(q)`` decreases in q; for the uniform measure
  it is identically 1.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import as_1d_float_array
from ..exceptions import AnalysisError, ValidationError
from ..stats.regression import LineFit, fit_line
from .spectrum import partition_function_tau


def boxcount_dimension(
    values,
    *,
    min_exponent: int = 1,
    max_exponent: int | None = None,
) -> Tuple[float, float, LineFit]:
    """Box-counting dimension of the signal's graph.

    The signal is rescaled to the unit square; boxes of side ``2**-k``
    cover its graph column by column (for each column, the number of
    boxes is the vertical extent of the signal inside it).  The slope of
    ``log2 N(k)`` against ``k`` estimates the dimension.

    Returns ``(dimension, stderr, fit)``.
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    n = x.size
    n_levels = int(np.floor(np.log2(n)))
    if max_exponent is None:
        max_exponent = n_levels - 2
    if not (1 <= min_exponent < max_exponent <= n_levels):
        raise ValidationError(
            f"exponent range [{min_exponent}, {max_exponent}] invalid for length {n}"
        )

    span = float(np.max(x) - np.min(x))
    if span == 0:
        raise AnalysisError("constant signal: graph dimension undefined")
    unit = (x - np.min(x)) / span  # into [0, 1]

    exponents = np.arange(min_exponent, max_exponent + 1)
    counts = np.empty(exponents.size)
    for i, k in enumerate(exponents):
        n_boxes = 2**k
        eps = 1.0 / n_boxes
        edges = np.linspace(0, n, n_boxes + 1).astype(int)
        total = 0
        for b in range(n_boxes):
            lo, hi = edges[b], edges[b + 1]
            if hi <= lo:
                continue
            seg = unit[lo:hi + 1 if hi < n else hi]
            v_lo = np.floor(np.min(seg) / eps)
            v_hi = np.floor(np.max(seg) / eps)
            total += int(v_hi - v_lo) + 1
        counts[i] = total

    fit = fit_line(exponents.astype(float), np.log2(counts))
    return float(fit.slope), float(fit.stderr_slope), fit


def generalized_dimensions(measure, *, q=None) -> Tuple[np.ndarray, np.ndarray]:
    """Rényi dimensions ``D(q) = tau(q) / (q - 1)`` of a dyadic measure.

    ``q = 1`` (the information dimension) is evaluated by the standard
    limit ``D1 = d tau / d q`` at 1, approximated with a small secant.
    Returns ``(q, D)``.
    """
    q_arr = np.linspace(-5.0, 5.0, 21) if q is None else np.asarray(q, dtype=float)
    eps = 1e-3
    # Evaluate tau on the requested grid plus the secant points around 1.
    q_eval = np.unique(np.concatenate([q_arr, [1.0 - eps, 1.0 + eps]]))
    q_out, tau, __ = partition_function_tau(measure, q=q_eval)

    tau_of = dict(zip(q_out.tolist(), tau.tolist()))
    d1 = (tau_of[1.0 + eps] - tau_of[1.0 - eps]) / (2 * eps)

    dims = np.empty(q_arr.size)
    for i, qi in enumerate(q_arr):
        if abs(qi - 1.0) < 1e-9:
            dims[i] = d1
        else:
            dims[i] = tau_of[qi] / (qi - 1.0)
    return q_arr, dims
