"""Wavelet-leader multifractal formalism (Jaffard/Wendt/Abry).

The modern, statistically better-behaved successor of WTMM.  From an
orthonormal DWT of the signal, the *leader* at scale ``j`` and position
``k`` is the supremum of wavelet-coefficient magnitudes over the three
dyadic neighbours of ``(j, k)`` and **all finer scales** beneath them:

``L(j, k) = sup { |d(j', k')| : lambda(j', k') within 3*lambda(j, k), j' <= j }``

Structure functions of the leaders scale as
``S(q, j) = mean_k L(j, k)^q ~ 2^{j zeta(q)}``, and the log-cumulants of
``log L(j, .)`` give the expansion ``zeta(q) = c1 q + c2 q^2/2 + ...``
where ``c1`` estimates the typical Hölder exponent and ``c2 < 0``
quantifies multifractality (c2 = 0 for monofractal signals).

Implemented here: leader computation on top of :func:`repro.fractal.
wavelets.dwt`, zeta(q) estimation, and the first two log-cumulants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import AnalysisError, ValidationError
from ..stats.regression import fit_line
from .wavelets import daubechies_filter, dwt, dwt_max_level


@dataclass(frozen=True)
class WaveletLeaderResult:
    """Wavelet-leader analysis output.

    Attributes
    ----------
    q:
        Moment orders.
    zeta:
        Scaling exponents zeta(q) of the leader structure functions.
    zeta_stderr:
        Standard errors of the zeta slopes.
    c1, c2:
        First two log-cumulants: the typical Hölder exponent and the
        (non-positive for multifractals) intermittency coefficient.
    c1_stderr, c2_stderr:
        Standard errors of the cumulant slopes.
    levels:
        DWT levels used in the regressions.
    """

    q: np.ndarray
    zeta: np.ndarray
    zeta_stderr: np.ndarray
    c1: float
    c2: float
    c1_stderr: float
    c2_stderr: float
    levels: np.ndarray


def wavelet_leaders(values, *, wavelet: int = 3, level: int | None = None,
                    ) -> Dict[int, np.ndarray]:
    """Compute the wavelet leaders of a signal per DWT level.

    Parameters
    ----------
    values:
        Input signal; its length is truncated to the largest usable
        power-of-two-compatible length for the periodic DWT.
    wavelet:
        Daubechies vanishing moments for the underlying DWT.
    level:
        Decomposition depth (default: maximum minus one, so the
        coarsest level keeps several leaders).

    Returns
    -------
    ``{j: leaders_j}`` with ``leaders_j`` of length ``n / 2**j``.
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    # Reflect-extend to [x, reversed x]: the periodic DWT then sees a
    # continuous circular signal.  Without this, nonstationary inputs
    # (fBm-like paths) present a jump singularity at the wrap-around
    # that contaminates every coarse-scale leader.
    x = np.concatenate([x, x[::-1]])
    h = daubechies_filter(wavelet)
    max_lv = dwt_max_level(x.size, h.size)
    if max_lv < 3:
        # Truncate to a power-of-two length to unlock deeper transforms.
        n_pow2 = 1 << int(np.floor(np.log2(x.size)))
        x = x[:n_pow2]
        max_lv = dwt_max_level(x.size, h.size)
    if level is None:
        level = max(max_lv - 1, 3)
    check_positive_int(level, name="level", minimum=3)
    if level > max_lv:
        raise ValidationError(f"level {level} too deep for length {x.size}")
    usable = (x.size // (2**level)) * (2**level)
    coeffs = dwt(x[:usable], wavelet=wavelet, level=level)
    details: List[np.ndarray] = coeffs[1:][::-1]  # index 0 -> finest (j=1)
    # L1 renormalisation: the multifractal formalism needs coefficients
    # scaling as 2^{j h}, but the orthonormal DWT's scale as
    # 2^{j (h + 1/2)}; divide level j by 2^{j/2}.
    details = [d * 2.0 ** (-j / 2.0) for j, d in enumerate(details, start=1)]

    leaders: Dict[int, np.ndarray] = {}
    # Running per-position supremum over finer scales, coarsened as we go.
    sup_fine: np.ndarray | None = None
    for j, d in enumerate(details, start=1):
        mag = np.abs(d)
        if sup_fine is None:
            sup_here = mag
        else:
            # Coarsen the finer-scale supremum by pairwise max, then
            # combine with this level's own magnitudes.
            paired = np.maximum(sup_fine[0::2], sup_fine[1::2])
            sup_here = np.maximum(mag, paired[: mag.size])
        # The leader includes the three dyadic neighbours at this scale.
        left = np.roll(sup_here, 1)
        right = np.roll(sup_here, -1)
        leaders[j] = np.maximum(np.maximum(left, sup_here), right)
        sup_fine = sup_here
    return leaders


def wavelet_leader_analysis(
    values,
    *,
    q=None,
    wavelet: int = 3,
    min_level: int = 3,
    max_level: int | None = None,
) -> WaveletLeaderResult:
    """Full wavelet-leader multifractal analysis.

    For a signal with uniform Hölder exponent h: ``zeta(q) = q h`` and
    ``c1 = h, c2 = 0``.  For an MRW with intermittency lambda²:
    ``c2 = -lambda²``.
    """
    q_arr = np.linspace(-5.0, 5.0, 21) if q is None else np.asarray(q, dtype=float)
    leaders = wavelet_leaders(values, wavelet=wavelet, level=max_level)
    available = sorted(leaders)
    usable = [j for j in available if j >= min_level and leaders[j].size >= 8]
    if len(usable) < 3:
        raise AnalysisError(
            f"only {len(usable)} usable leader levels; signal too short"
        )

    log_s = []        # structure functions: (n_levels, n_q)
    cum1 = []
    cum2 = []
    for j in usable:
        lead = leaders[j]
        lead = lead[lead > 1e-300]
        if lead.size < 8:
            raise AnalysisError(f"level {j} has too few nonzero leaders")
        logs = np.log(lead)
        row = [_log_mean_exp(qi * logs) / np.log(2.0) for qi in q_arr]
        log_s.append(row)
        cum1.append(np.mean(logs) / np.log(2.0))
        centred = logs - np.mean(logs)
        cum2.append(np.mean(centred**2) / np.log(2.0))

    levels = np.asarray(usable, dtype=float)
    log_s_mat = np.asarray(log_s)

    zeta = np.empty(q_arr.size)
    zeta_err = np.empty(q_arr.size)
    for i in range(q_arr.size):
        fit = fit_line(levels, log_s_mat[:, i])
        zeta[i] = fit.slope
        zeta_err[i] = fit.stderr_slope

    # Both cumulant series were divided by ln 2, so their slopes against
    # the level j estimate c1 and c2 directly (C_m(j) ~ c_m * j * ln 2).
    fit1 = fit_line(levels, np.asarray(cum1))
    fit2 = fit_line(levels, np.asarray(cum2))
    return WaveletLeaderResult(
        q=q_arr, zeta=zeta, zeta_stderr=zeta_err,
        c1=fit1.slope, c2=fit2.slope,
        c1_stderr=fit1.stderr_slope, c2_stderr=fit2.stderr_slope,
        levels=levels.astype(int),
    )


def _log_mean_exp(values: np.ndarray) -> float:
    """log(mean(exp(values))) without overflow."""
    peak = np.max(values)
    return float(peak + np.log(np.mean(np.exp(values - peak))))
