"""Multifractal spectra: partition functions and the Legendre transform.

Two routes to the singularity spectrum ``f(alpha)``:

* From a *measure* (histogram-like positive data, e.g. a cascade or the
  increments of a resource counter): the box-method partition function
  ``Z(q, s) = sum_boxes mu(box)^q ~ s^{tau(q)}`` via
  :func:`partition_function_tau`.
* From any estimated ``tau(q)`` (MFDFA, WTMM, partition function): the
  numerical Legendre transform ``alpha = tau'(q)``,
  ``f(alpha) = q alpha - tau(q)`` via :func:`legendre_spectrum`.

The *width* of the spectrum (:func:`spectrum_width`) is the scalar
multifractality indicator used in the aged-vs-healthy comparison
(experiment T2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import AnalysisError, ValidationError
from ..stats.regression import fit_line


@dataclass(frozen=True)
class SingularitySpectrum:
    """The Legendre spectrum (alpha, f(alpha)) with its source tau(q).

    Attributes
    ----------
    alpha:
        Singularity strengths (Hölder exponents), one per interior q.
    f:
        Spectrum values f(alpha); the Hausdorff-dimension profile.
    q:
        Interior moment orders each (alpha, f) pair came from.
    tau:
        The tau(q) values at those orders.
    """

    alpha: np.ndarray
    f: np.ndarray
    q: np.ndarray
    tau: np.ndarray

    @property
    def width(self) -> float:
        """alpha_max - alpha_min over the estimated support."""
        return float(np.max(self.alpha) - np.min(self.alpha))

    @property
    def alpha_peak(self) -> float:
        """The alpha at which f(alpha) is maximal (the typical exponent)."""
        return float(self.alpha[np.argmax(self.f)])

    @property
    def asymmetry(self) -> float:
        """(right width - left width) / total width, in [-1, 1].

        Positive values mean the spectrum extends further towards weak
        singularities (large alpha).
        """
        peak = self.alpha_peak
        left = peak - float(np.min(self.alpha))
        right = float(np.max(self.alpha)) - peak
        total = left + right
        return 0.0 if total == 0 else (right - left) / total


def legendre_spectrum(q, tau) -> SingularitySpectrum:
    """Numerical Legendre transform of a scaling function.

    ``alpha(q) = d tau / d q`` (central differences) and
    ``f(alpha) = q alpha - tau``.  The endpoints of q are dropped
    (one-sided derivatives there are too noisy to trust).

    Raises :class:`AnalysisError` if tau is so non-concave that the
    transform would be meaningless (alpha must be non-increasing in q up
    to estimation noise).
    """
    q_arr = as_1d_float_array(q, name="q", min_length=5)
    tau_arr = as_1d_float_array(tau, name="tau", min_length=5)
    if q_arr.size != tau_arr.size:
        raise ValidationError("q and tau must have equal length")
    if np.any(np.diff(q_arr) <= 0):
        raise ValidationError("q must be strictly increasing")

    alpha = np.gradient(tau_arr, q_arr)
    # Keep the interior.
    alpha_in = alpha[1:-1]
    q_in = q_arr[1:-1]
    tau_in = tau_arr[1:-1]
    f = q_in * alpha_in - tau_in

    # Sanity: a legitimate tau(q) is concave, so alpha(q) decreases.
    increases = np.diff(alpha_in)
    tol = 0.05 * (np.max(np.abs(alpha_in)) + 1e-12)
    if np.any(increases > tol * 5):
        raise AnalysisError(
            "tau(q) is badly non-concave; the Legendre spectrum is not defined "
            "(estimation failed or the scaling range is invalid)"
        )
    return SingularitySpectrum(alpha=alpha_in, f=f, q=q_in, tau=tau_in)


def spectrum_width(q, tau) -> float:
    """Convenience: width of the Legendre spectrum of ``tau(q)``."""
    return legendre_spectrum(q, tau).width


def partition_function_tau(
    measure,
    *,
    q=None,
    min_exponent: int = 1,
    max_exponent: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Box-method scaling function tau(q) of a positive measure.

    The measure is given as cell masses on a uniform grid whose length
    must be a power of two.  Boxes of size ``2**k`` are formed by dyadic
    aggregation, and ``log2 Z(q, s)`` is regressed on ``log2 s``.

    Returns
    -------
    (q, tau, tau_stderr)
    """
    mu = as_1d_float_array(measure, name="measure", min_length=8)
    if np.any(mu < 0):
        raise ValidationError("measure cells must be non-negative")
    total = mu.sum()
    if total <= 0:
        raise ValidationError("measure has zero total mass")
    mu = mu / total
    n = mu.size
    n_levels = int(np.log2(n))
    if 2**n_levels != n:
        raise ValidationError(f"measure length must be a power of two, got {n}")

    q_arr = np.linspace(-5.0, 5.0, 21) if q is None else np.asarray(q, dtype=float)
    check_positive_int(min_exponent, name="min_exponent")
    if max_exponent is None:
        max_exponent = n_levels - 2
    if max_exponent <= min_exponent:
        raise ValidationError(
            f"exponent range [{min_exponent}, {max_exponent}] is empty"
        )

    exponents = np.arange(min_exponent, max_exponent + 1)
    log_z = np.full((q_arr.size, exponents.size), np.nan)
    for j, k in enumerate(exponents):
        box = mu.reshape(-1, 2**k).sum(axis=1)
        positive = box[box > 1e-300]
        if positive.size < 2:
            raise AnalysisError(f"fewer than 2 occupied boxes at scale 2^{k}")
        logs = np.log2(positive)
        for i, qi in enumerate(q_arr):
            log_z[i, j] = _log2_sum_exp2(qi * logs)

    log_s = exponents.astype(float) - n_levels  # log2 of box size relative to [0,1]
    tau = np.empty(q_arr.size)
    tau_err = np.empty(q_arr.size)
    for i in range(q_arr.size):
        fit = fit_line(log_s, log_z[i])
        tau[i] = fit.slope
        tau_err[i] = fit.stderr_slope
    return q_arr, tau, tau_err


def _log2_sum_exp2(values: np.ndarray) -> float:
    """log2(sum(2**values)) without overflow."""
    peak = np.max(values)
    return float(peak + np.log2(np.sum(np.exp2(values - peak))))
