"""Fractal and multifractal analysis substrate.

Everything the paper's Hölder/aging analysis rests on, built from
scratch on numpy:

Wavelets (:mod:`.wavelets`)
    Daubechies filters by spectral factorisation, periodic DWT/inverse,
    MODWT, and an FFT-based CWT (Mexican hat / derivative-of-Gaussian /
    Morlet).
Global scaling estimators
    :func:`dfa` (detrended fluctuation analysis), :func:`mfdfa`
    (its q-order multifractal generalisation), :func:`wtmm`
    (wavelet-transform modulus maxima), the Hurst toolbox in
    :mod:`.hurst` (R/S, aggregated variance, periodogram, wavelet
    variance), and q-order structure functions.
Spectra (:mod:`.spectrum`)
    Legendre transform from tau(q) to the singularity spectrum f(alpha),
    spectrum width, and box-method partition functions for measures.
"""

from .wavelets import (
    daubechies_filter,
    dwt,
    idwt,
    dwt_max_level,
    modwt,
    cwt,
)
from .dfa import dfa, DfaResult
from .mfdfa import mfdfa, MfdfaResult
from .hurst import (
    rs_analysis,
    aggregated_variance,
    periodogram_gph,
    wavelet_variance_hurst,
    hurst_summary,
)
from .structure import structure_functions, StructureFunctionResult
from .spectrum import (
    legendre_spectrum,
    SingularitySpectrum,
    partition_function_tau,
    spectrum_width,
)
from .wtmm import wtmm, WtmmResult
from .leaders import wavelet_leaders, wavelet_leader_analysis, WaveletLeaderResult
from .boxcount import boxcount_dimension, generalized_dimensions
from .sliding import sliding_mfdfa, SlidingMfdfaResult
from .surrogates import (
    shuffle,
    phase_randomized,
    iaaft,
    multifractality_test,
    SurrogateTestResult,
)

__all__ = [
    "daubechies_filter",
    "dwt",
    "idwt",
    "dwt_max_level",
    "modwt",
    "cwt",
    "dfa",
    "DfaResult",
    "mfdfa",
    "MfdfaResult",
    "rs_analysis",
    "aggregated_variance",
    "periodogram_gph",
    "wavelet_variance_hurst",
    "hurst_summary",
    "structure_functions",
    "StructureFunctionResult",
    "legendre_spectrum",
    "SingularitySpectrum",
    "partition_function_tau",
    "spectrum_width",
    "wtmm",
    "WtmmResult",
    "wavelet_leaders",
    "wavelet_leader_analysis",
    "WaveletLeaderResult",
    "boxcount_dimension",
    "generalized_dimensions",
    "sliding_mfdfa",
    "SlidingMfdfaResult",
    "shuffle",
    "phase_randomized",
    "iaaft",
    "multifractality_test",
    "SurrogateTestResult",
]
