"""Classical Hurst-exponent estimators.

Four structurally different estimators of the self-similarity exponent H
of a stationary (noise-like) series, used together in the paper-style
"is this counter long-range dependent?" table (experiment T1):

* :func:`rs_analysis` — Hurst's rescaled-range statistic.
* :func:`aggregated_variance` — variance of block means vs block size.
* :func:`periodogram_gph` — Geweke–Porter-Hudak log-periodogram
  regression at low frequencies.
* :func:`wavelet_variance_hurst` — Abry–Veitch wavelet-variance slope,
  built on our MODWT.

:func:`hurst_summary` runs all of them and reports the spread, which is
itself a useful robustness check (a well-behaved LRD series gives
mutually consistent estimates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .._validation import as_1d_float_array, check_in_range, check_positive_int
from ..exceptions import AnalysisError
from ..stats.regression import fit_line, fit_line_wls
from .wavelets import daubechies_filter, modwt


@dataclass(frozen=True)
class HurstEstimate:
    """A single Hurst estimate with its regression standard error."""

    h: float
    stderr: float
    method: str


def rs_analysis(values, *, min_block: int = 16, n_block_sizes: int = 12) -> HurstEstimate:
    """Rescaled-range (R/S) estimate of H.

    For each block size ``m``, the series is cut into blocks; in each
    block the range of the cumulative mean-adjusted sums is divided by
    the block standard deviation; ``E[R/S] ~ m^H``.
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    check_positive_int(min_block, name="min_block", minimum=4)
    n = x.size
    max_block = n // 4
    if max_block <= min_block:
        raise AnalysisError(f"series too short for R/S: need > {4 * min_block} samples")
    sizes = np.unique(np.round(np.geomspace(min_block, max_block, n_block_sizes)).astype(int))

    log_m, log_rs = [], []
    for m in sizes:
        n_blocks = n // m
        blocks = x[: n_blocks * m].reshape(n_blocks, m)
        means = blocks.mean(axis=1, keepdims=True)
        cums = np.cumsum(blocks - means, axis=1)
        ranges = cums.max(axis=1) - cums.min(axis=1)
        stds = blocks.std(axis=1)
        ok = stds > 0
        if ok.sum() < 1:
            continue
        rs = np.mean(ranges[ok] / stds[ok])
        if rs > 0:
            log_m.append(np.log2(m))
            log_rs.append(np.log2(rs))
    if len(log_m) < 3:
        raise AnalysisError("fewer than 3 usable block sizes in R/S analysis")
    fit = fit_line(np.asarray(log_m), np.asarray(log_rs))
    return HurstEstimate(h=fit.slope, stderr=fit.stderr_slope, method="rs")


def aggregated_variance(values, *, min_block: int = 4, n_block_sizes: int = 15) -> HurstEstimate:
    """Aggregated-variance estimate of H.

    The variance of block means of an LRD series decays as
    ``m^{2H - 2}``; the slope of log Var vs log m gives ``2H - 2``.
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    check_positive_int(min_block, name="min_block", minimum=2)
    n = x.size
    max_block = n // 8
    if max_block <= min_block:
        raise AnalysisError(f"series too short for aggregated variance")
    sizes = np.unique(np.round(np.geomspace(min_block, max_block, n_block_sizes)).astype(int))

    log_m, log_var = [], []
    for m in sizes:
        n_blocks = n // m
        if n_blocks < 4:
            continue
        means = x[: n_blocks * m].reshape(n_blocks, m).mean(axis=1)
        v = np.var(means)
        if v > 0:
            log_m.append(np.log2(m))
            log_var.append(np.log2(v))
    if len(log_m) < 3:
        raise AnalysisError("fewer than 3 usable block sizes in aggregated variance")
    fit = fit_line(np.asarray(log_m), np.asarray(log_var))
    h = 1.0 + fit.slope / 2.0
    return HurstEstimate(h=float(h), stderr=fit.stderr_slope / 2.0, method="aggvar")


def periodogram_gph(values, *, bandwidth_exponent: float = 0.5) -> HurstEstimate:
    """Geweke–Porter-Hudak log-periodogram regression.

    Regresses ``log I(w_j)`` on ``-2 log(2 sin(w_j / 2))`` over the lowest
    ``m = n ** bandwidth_exponent`` Fourier frequencies; the slope
    estimates the memory parameter ``d`` and ``H = d + 1/2``.
    """
    x = as_1d_float_array(values, name="values", min_length=128)
    check_in_range(bandwidth_exponent, name="bandwidth_exponent", low=0.1, high=0.9)
    n = x.size
    m = int(n**bandwidth_exponent)
    if m < 8:
        raise AnalysisError("too few low frequencies for GPH")
    centered = x - np.mean(x)
    spec = np.abs(np.fft.rfft(centered)) ** 2 / (2.0 * np.pi * n)
    freqs = 2.0 * np.pi * np.arange(len(spec)) / n
    # Skip the zero frequency; use frequencies 1..m.
    I = spec[1 : m + 1]
    w = freqs[1 : m + 1]
    if np.any(I <= 0):
        raise AnalysisError("zero periodogram ordinates (constant input?)")
    regressor = -2.0 * np.log(2.0 * np.sin(w / 2.0))
    fit = fit_line(regressor, np.log(I))
    d = fit.slope
    return HurstEstimate(h=float(d + 0.5), stderr=fit.stderr_slope, method="gph")


def wavelet_variance_hurst(
    values, *, wavelet: int = 2, min_level: int = 2, max_level: int | None = None,
) -> HurstEstimate:
    """Abry–Veitch wavelet-variance estimate of H for a noise-like series.

    The *MODWT* detail variance at level ``j`` of an LRD noise scales as
    ``2^{j (2H - 2)}`` (the undecimated transform carries an extra
    ``2^{-j}`` relative to the DWT's ``2^{j (2H - 1)}`` because its
    filters are renormalised by ``2^{-j/2}`` per level); a weighted
    regression of log2 variance on j therefore estimates
    ``H = (slope + 2) / 2``.  Weights follow the per-level coefficient
    counts.
    """
    x = as_1d_float_array(values, name="values", min_length=128)
    h_filter = daubechies_filter(wavelet)
    deepest = int(np.floor(np.log2(x.size / (h_filter.size - 1.0))))
    if max_level is None:
        max_level = max(deepest - 1, min_level + 1)
    if max_level <= min_level:
        raise AnalysisError(f"level range [{min_level}, {max_level}] is empty")
    coeffs = modwt(x, wavelet=wavelet, level=max_level)

    levels, log_var, weights = [], [], []
    n = x.size
    for j in range(min_level, max_level + 1):
        w = coeffs[j]
        # Discard boundary-affected coefficients.
        n_boundary = (h_filter.size - 1) * (2**j - 1)
        core = w[min(n_boundary, w.size - 8):]
        v = float(np.mean(core**2))
        if v <= 0:
            continue
        levels.append(float(j))
        log_var.append(np.log2(v))
        # Variance of log2 of a chi^2 mean ~ 2 / (n_j ln^2 2); relative
        # weights are just effective counts.
        weights.append(max(core.size, 1))
    if len(levels) < 3:
        raise AnalysisError("fewer than 3 usable levels in wavelet variance")
    fit = fit_line_wls(np.asarray(levels), np.asarray(log_var), np.asarray(weights, dtype=float))
    h_est = (fit.slope + 2.0) / 2.0
    return HurstEstimate(h=float(h_est), stderr=fit.stderr_slope / 2.0, method="wavelet")


def hurst_summary(values) -> Dict[str, HurstEstimate]:
    """Run every Hurst estimator (plus DFA) and return them keyed by method."""
    from .dfa import dfa as run_dfa

    out: Dict[str, HurstEstimate] = {}
    out["rs"] = rs_analysis(values)
    out["aggvar"] = aggregated_variance(values)
    out["gph"] = periodogram_gph(values)
    out["wavelet"] = wavelet_variance_hurst(values)
    d = run_dfa(values)
    out["dfa"] = HurstEstimate(h=d.alpha, stderr=d.stderr, method="dfa")
    return out
