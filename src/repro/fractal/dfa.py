"""Detrended fluctuation analysis (Peng et al. 1994).

DFA estimates the long-range scaling exponent ``alpha`` of a series:
integrate the (mean-removed) series into a profile, split the profile
into boxes of size ``s``, remove a polynomial trend in each box, and
regress the log RMS fluctuation on log box size.  For fGn input,
``alpha = H``; for fBm input, ``alpha = H + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import AnalysisError, ValidationError
from ..stats.regression import LineFit, fit_line


@dataclass(frozen=True)
class DfaResult:
    """DFA output.

    Attributes
    ----------
    alpha:
        Fitted scaling exponent (slope of log2 F(s) on log2 s).
    stderr:
        Standard error of the slope.
    scales:
        Box sizes used.
    fluctuations:
        RMS fluctuation F(s) per box size.
    fit:
        The underlying line fit, for diagnostics (R^2 etc.).
    """

    alpha: float
    stderr: float
    scales: np.ndarray
    fluctuations: np.ndarray
    fit: LineFit


def default_scales(n: int, *, min_scale: int = 8, n_scales: int = 20,
                   max_fraction: float = 0.25) -> np.ndarray:
    """Log-spaced integer box sizes from ``min_scale`` to ``n * max_fraction``."""
    check_positive_int(n, name="n")
    max_scale = int(n * max_fraction)
    if max_scale <= min_scale:
        raise AnalysisError(
            f"series too short for DFA: max usable scale {max_scale} <= min {min_scale}"
        )
    raw = np.unique(np.round(np.geomspace(min_scale, max_scale, n_scales)).astype(int))
    return raw


def dfa(
    values,
    *,
    order: int = 1,
    scales=None,
    integrate: bool = True,
) -> DfaResult:
    """Run DFA-``order`` on ``values``.

    Parameters
    ----------
    values:
        The series to analyse (e.g. a noise-like counter increment
        series).
    order:
        Degree of the polynomial removed in each box (DFA-1 removes a
        line, DFA-2 a parabola, ...).
    scales:
        Box sizes; defaults to ~20 log-spaced sizes in
        ``[8, len/4]``.
    integrate:
        When True (default), the profile (cumulative sum of the
        mean-removed series) is analysed — the standard convention under
        which fGn yields ``alpha = H``.  Set False when the input is
        already a profile/path (then fBm yields ``alpha = H + 1``).
    """
    x = as_1d_float_array(values, name="values", min_length=32)
    check_positive_int(order, name="order")
    profile = np.cumsum(x - np.mean(x)) if integrate else x.copy()
    n = profile.size
    if scales is None:
        scales_arr = default_scales(n)
    else:
        scales_arr = np.unique(np.asarray(scales, dtype=int))
        if scales_arr.size < 3:
            raise ValidationError("need at least 3 distinct scales")
        if scales_arr[0] < order + 2:
            raise ValidationError(
                f"smallest scale {scales_arr[0]} cannot fit an order-{order} detrend"
            )
        if scales_arr[-1] > n:
            raise ValidationError(f"largest scale {scales_arr[-1]} exceeds series length {n}")

    fluct = np.empty(scales_arr.size)
    for i, s in enumerate(scales_arr):
        fluct[i] = _dfa_fluctuation(profile, int(s), order)
    if np.any(fluct <= 0):
        raise AnalysisError("zero fluctuation at some scale; series may be constant")

    fit = fit_line(np.log2(scales_arr), np.log2(fluct))
    return DfaResult(
        alpha=fit.slope,
        stderr=fit.stderr_slope,
        scales=scales_arr,
        fluctuations=fluct,
        fit=fit,
    )


def _dfa_fluctuation(profile: np.ndarray, s: int, order: int) -> float:
    """RMS detrended fluctuation at box size ``s`` (forward + backward boxes)."""
    n = profile.size
    n_boxes = n // s
    if n_boxes < 1:
        raise AnalysisError(f"scale {s} exceeds series length {n}")

    t = np.arange(s, dtype=float)
    # Vandermonde basis for the in-box polynomial fit, shared by all boxes.
    basis = np.vander(t, order + 1)
    q, _ = np.linalg.qr(basis)

    def boxes_rms(segment: np.ndarray) -> np.ndarray:
        boxes = segment[: n_boxes * s].reshape(n_boxes, s)
        # Project out the polynomial component in all boxes at once.
        coeffs = boxes @ q  # (n_boxes, order+1)
        resid = boxes - coeffs @ q.T
        return np.mean(resid**2, axis=1)

    variances = np.concatenate([boxes_rms(profile), boxes_rms(profile[::-1])])
    return float(np.sqrt(np.mean(variances)))
