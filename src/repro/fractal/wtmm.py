"""Wavelet-transform modulus maxima (WTMM) multifractal formalism.

The method of Muzy, Bacry & Arneodo — and the machinery behind the
paper's wavelet-based multifractal characterisation of memory traces:

1. CWT of the signal with a derivative-of-Gaussian wavelet over
   log-spaced scales.
2. At each scale, locate the local maxima of ``|W(a, t)|`` in t.
3. Chain maxima across scales into *maxima lines* (a maximum at a coarse
   scale connects to the nearest maximum at the next finer scale).
4. Partition function over lines, with the supremum refinement that
   stabilises negative moments:
   ``Z(q, a) = sum_lines ( sup_{a' <= a} |W(a', t(a'))| )^q ~ a^{tau(q)}``.
5. Regress ``log Z`` on ``log a`` per q.

For a signal with uniform Hölder exponent h, WTMM gives
``tau(q) = q (h + 1/2) - 1`` under the unit-energy CWT normalisation
used by :func:`repro.fractal.wavelets.cwt` (the +1/2 is the l2
normalisation offset; callers comparing against l1-normalised theory
subtract q/2, which :func:`wtmm` exposes via ``l1_normalise=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import AnalysisError, ValidationError
from ..obs.profile import profile
from ..stats.regression import fit_line
from .wavelets import cwt


@dataclass(frozen=True)
class WtmmResult:
    """WTMM output.

    Attributes
    ----------
    q:
        Moment orders.
    tau:
        Scaling exponents tau(q) (after optional l1 renormalisation).
    tau_stderr:
        Standard errors from the per-q regression.
    scales:
        CWT scales used.
    n_lines:
        Number of maxima lines that survived chaining.
    """

    q: np.ndarray
    tau: np.ndarray
    tau_stderr: np.ndarray
    scales: np.ndarray
    n_lines: int


def _local_maxima(row: np.ndarray) -> np.ndarray:
    """Indices of strict interior local maxima of ``row``."""
    interior = (row[1:-1] > row[:-2]) & (row[1:-1] >= row[2:])
    return np.flatnonzero(interior) + 1


@profile("fractal.wtmm")
def wtmm(
    values,
    *,
    q=None,
    scales=None,
    dog_order: int = 2,
    l1_normalise: bool = True,
    min_line_length: int = 4,
) -> WtmmResult:
    """Run the WTMM multifractal formalism on a signal.

    Parameters
    ----------
    values:
        Input signal (a path; apply ``np.cumsum`` to analyse a noise).
    q:
        Moment orders; default 21 values in [-5, 5].
    scales:
        CWT scales; default log-spaced in ``[4, n/8]``.
    dog_order:
        Order of the derivative-of-Gaussian analysing wavelet (2 =
        Mexican hat).  The wavelet must have more vanishing moments than
        the strongest polynomial trend present.
    l1_normalise:
        Convert from the CWT's unit-energy (l2) convention to the l1
        convention under which ``tau(q) = q h - 1`` for uniform Hölder
        signals (subtracts q/2 from the raw exponents).
    min_line_length:
        Scales carrying fewer than this many modulus maxima are dropped
        from the partition-function regression (too few maxima make the
        sum statistically meaningless).
    """
    x = as_1d_float_array(values, name="values", min_length=128)
    n = x.size
    q_arr = np.linspace(-5.0, 5.0, 21) if q is None else np.asarray(q, dtype=float)
    if scales is None:
        scales_arr = np.geomspace(4.0, n / 8.0, 24)
    else:
        scales_arr = as_1d_float_array(scales, name="scales", min_length=4)
        if np.any(np.diff(scales_arr) <= 0):
            raise ValidationError("scales must be strictly increasing")
    check_positive_int(min_line_length, name="min_line_length", minimum=2)

    coeffs = np.abs(cwt(x, scales_arr, wavelet="dog", dog_order=dog_order))
    n_scales = scales_arr.size

    # Maxima inside the cone of influence of the series edges reflect
    # boundary handling, not signal structure; exclude them.
    maxima_per_scale: List[np.ndarray] = []
    for j in range(n_scales):
        m = _local_maxima(coeffs[j])
        margin = scales_arr[j]
        m = m[(m >= margin) & (m <= n - 1 - margin)]
        maxima_per_scale.append(m)
    if sum(m.size for m in maxima_per_scale) == 0:
        raise AnalysisError("no modulus maxima found (signal too smooth or constant?)")

    # --- descend maxima lines by dynamic programming ------------------------
    # sup_down[j][k] = sup of the modulus along the maxima line descending
    # from maximum k at scale j down to the finest scale, where the line is
    # built by linking each maximum to the nearest maximum at the next finer
    # scale (within a window proportional to the scale).  Every maximum at
    # every scale contributes — the canonical Muzy–Bacry–Arneodo partition.
    sup_down: List[np.ndarray] = [np.empty(0)] * n_scales
    sup_down[0] = coeffs[0][maxima_per_scale[0]].copy()
    for j in range(1, n_scales):
        here = maxima_per_scale[j]
        below = maxima_per_scale[j - 1]
        own = coeffs[j][here]
        if below.size == 0 or here.size == 0:
            sup_down[j] = own
            continue
        window = max(2.0, scales_arr[j])
        # Nearest finer-scale maximum for each maximum at this scale.
        pos = np.searchsorted(below, here)
        left = np.clip(pos - 1, 0, below.size - 1)
        right = np.clip(pos, 0, below.size - 1)
        pick = np.where(
            np.abs(below[left] - here) <= np.abs(below[right] - here), left, right
        )
        dist = np.abs(below[pick] - here)
        child_sup = sup_down[j - 1][pick]
        linked = dist <= window
        sup_down[j] = np.where(linked, np.maximum(own, child_sup), own)

    # --- partition function over scales -------------------------------------
    log_z = []
    usable_scales = []
    for j in range(n_scales):
        sups = sup_down[j]
        sups = sups[sups > 1e-300]
        if sups.size < min_line_length:
            break
        logs = np.log2(sups)
        row = np.empty(q_arr.size)
        for i, qi in enumerate(q_arr):
            row[i] = _log2_sum_exp2(qi * logs)
        log_z.append(row)
        usable_scales.append(scales_arr[j])
    if len(log_z) < 4:
        raise AnalysisError("fewer than 4 usable scales in the WTMM partition function")

    log_z_mat = np.asarray(log_z)  # (n_usable, n_q)
    log_a = np.log2(np.asarray(usable_scales))

    tau = np.empty(q_arr.size)
    tau_err = np.empty(q_arr.size)
    for i in range(q_arr.size):
        fit = fit_line(log_a, log_z_mat[:, i])
        tau[i] = fit.slope
        tau_err[i] = fit.stderr_slope
    if l1_normalise:
        tau = tau - q_arr / 2.0
    return WtmmResult(
        q=q_arr, tau=tau, tau_stderr=tau_err,
        scales=np.asarray(usable_scales), n_lines=int(maxima_per_scale[0].size),
    )


def _log2_sum_exp2(values: np.ndarray) -> float:
    """log2(sum(2**values)) without overflow."""
    peak = np.max(values)
    return float(peak + np.log2(np.sum(np.exp2(values - peak))))
