"""Multifractal detrended fluctuation analysis (Kantelhardt et al. 2002).

MFDFA generalises DFA to q-th order moments of the box fluctuations:

``F_q(s) = ( mean_v [F^2(v, s)]^{q/2} )^{1/q} ~ s^{h(q)}``

(with the logarithmic mean at q = 0).  A q-dependent ``h(q)`` signals
multifractality; the scaling function is ``tau(q) = q h(q) - 1`` and the
singularity spectrum follows by Legendre transform
(:func:`repro.fractal.spectrum.legendre_spectrum`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import AnalysisError, ValidationError
from ..obs.profile import profile
from ..stats.regression import fit_line
from .dfa import default_scales


@dataclass(frozen=True)
class MfdfaResult:
    """MFDFA output.

    Attributes
    ----------
    q:
        Moment orders analysed.
    hq:
        Generalised Hurst exponents h(q) (slopes per q).
    hq_stderr:
        Standard errors of the h(q) slopes.
    tau:
        Scaling function tau(q) = q h(q) - 1.
    scales:
        Box sizes used.
    fluctuations:
        F_q(s) matrix of shape (len(q), len(scales)).
    """

    q: np.ndarray
    hq: np.ndarray
    hq_stderr: np.ndarray
    tau: np.ndarray
    scales: np.ndarray
    fluctuations: np.ndarray

    @property
    def hurst(self) -> float:
        """h(2), the classical Hurst-like exponent."""
        idx = int(np.argmin(np.abs(self.q - 2.0)))
        return float(self.hq[idx])

    @property
    def delta_h(self) -> float:
        """h(q_min) - h(q_max): a scalar multifractality strength measure."""
        return float(self.hq[0] - self.hq[-1])

    def as_dict(self) -> Dict[str, np.ndarray]:
        """Plain-dict view for serialisation."""
        return {
            "q": self.q, "hq": self.hq, "tau": self.tau,
            "scales": self.scales, "fluctuations": self.fluctuations,
        }


def default_q() -> np.ndarray:
    """Conventional q grid: -5..5 excluding nothing (q=0 handled specially)."""
    return np.linspace(-5.0, 5.0, 21)


@profile("fractal.mfdfa")
def mfdfa(
    values,
    *,
    q=None,
    order: int = 1,
    scales=None,
    integrate: bool = True,
) -> MfdfaResult:
    """Run MFDFA on ``values``.

    Parameters
    ----------
    values:
        Input series (noise-like; see ``integrate``).
    q:
        Moment orders; defaults to 21 values in [-5, 5].
    order:
        Detrending polynomial order per box.
    scales:
        Box sizes; defaults to log-spaced sizes in ``[8, len/4]``.
    integrate:
        Analyse the profile (cumulative sum of mean-removed values) when
        True — the standard convention.

    Notes
    -----
    Negative q orders amplify the *smallest* fluctuations, so boxes with
    exactly zero variance would blow up; such degenerate boxes are
    excluded with a floor guard and an error is raised if fewer than
    half the boxes survive.
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    check_positive_int(order, name="order")
    q_arr = default_q() if q is None else np.asarray(q, dtype=float)
    if q_arr.ndim != 1 or q_arr.size < 3:
        raise ValidationError("q must be a 1-D grid with at least 3 orders")

    profile = np.cumsum(x - np.mean(x)) if integrate else x.copy()
    n = profile.size
    scales_arr = default_scales(n) if scales is None else np.unique(np.asarray(scales, dtype=int))
    if scales_arr.size < 3:
        raise ValidationError("need at least 3 distinct scales")
    if scales_arr[0] < order + 2 or scales_arr[-1] > n // 2:
        raise ValidationError(
            f"scales must lie in [{order + 2}, {n // 2}], got "
            f"[{scales_arr[0]}, {scales_arr[-1]}]"
        )

    fq = np.empty((q_arr.size, scales_arr.size))
    for j, s in enumerate(scales_arr):
        variances = _box_variances(profile, int(s), order)
        positive = variances[variances > 1e-300]
        if positive.size < max(2, variances.size // 2):
            raise AnalysisError(
                f"too many zero-fluctuation boxes at scale {s} "
                f"({variances.size - positive.size}/{variances.size})"
            )
        for i, qi in enumerate(q_arr):
            if abs(qi) < 1e-12:
                fq[i, j] = np.exp(0.5 * np.mean(np.log(positive)))
            else:
                fq[i, j] = np.mean(positive ** (qi / 2.0)) ** (1.0 / qi)

    log_s = np.log2(scales_arr)
    hq = np.empty(q_arr.size)
    hq_err = np.empty(q_arr.size)
    for i in range(q_arr.size):
        fit = fit_line(log_s, np.log2(fq[i]))
        hq[i] = fit.slope
        hq_err[i] = fit.stderr_slope

    tau = q_arr * hq - 1.0
    return MfdfaResult(
        q=q_arr, hq=hq, hq_stderr=hq_err, tau=tau,
        scales=scales_arr, fluctuations=fq,
    )


def _box_variances(profile: np.ndarray, s: int, order: int) -> np.ndarray:
    """Detrended variance per box (forward and backward passes)."""
    n = profile.size
    n_boxes = n // s
    if n_boxes < 2:
        raise AnalysisError(f"scale {s} leaves fewer than 2 boxes for length {n}")
    t = np.arange(s, dtype=float)
    basis = np.vander(t, order + 1)
    q_mat, _ = np.linalg.qr(basis)

    def box_var(segment: np.ndarray) -> np.ndarray:
        boxes = segment[: n_boxes * s].reshape(n_boxes, s)
        resid = boxes - (boxes @ q_mat) @ q_mat.T
        return np.mean(resid**2, axis=1)

    return np.concatenate([box_var(profile), box_var(profile[::-1])])
