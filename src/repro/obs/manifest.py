"""Per-run manifest artifacts: what ran, how long, what it saw.

A :class:`RunManifest` is the durable record of one CLI invocation (or
any embedding-defined "run"): command, configuration, seed, component
versions, wall-clock envelope, completed stage spans, a metrics
snapshot, the event log, a hot-path profile (when the session ran with
profiling on), and a command-specific ``outcome`` block.

On disk a run is a directory::

    <out>/
      manifest.json    # the full manifest, one pretty-printed object
      events.jsonl     # the event log again, one JSON object per line

``events.jsonl`` duplicates ``manifest["events"]`` on purpose: line-
oriented logs can be tailed, grepped and concatenated across runs
without parsing the whole manifest, which is how fleet-scale tooling
wants to consume them.

:func:`load_manifests` accepts a single ``manifest.json``, a run
directory, or a directory of run directories, so ``python -m repro
telemetry <path>`` summarises one run or a whole campaign archive with
the same invocation.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import TraceError, ValidationError
from .atomic import atomic_write, atomic_write_json
from .session import TelemetrySession

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_FILENAME",
    "EVENTS_FILENAME",
    "RunManifest",
    "build_manifest",
    "write_manifest",
    "read_manifest",
    "load_manifests",
]

MANIFEST_SCHEMA = "repro.run-manifest/1"
MANIFEST_FILENAME = "manifest.json"
EVENTS_FILENAME = "events.jsonl"


def _versions() -> Dict[str, str]:
    import numpy

    from .. import __version__

    return {
        "repro": __version__,
        "numpy": numpy.__version__,
        "python": platform.python_version(),
    }


@dataclass
class RunManifest:
    """Everything worth keeping about one run, JSON-able as-is."""

    command: str
    config: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    versions: Dict[str, str] = field(default_factory=_versions)
    started_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    spans: List[dict] = field(default_factory=list)
    metrics: Dict[str, dict] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    profile: Dict[str, object] = field(default_factory=dict)
    outcome: Dict[str, object] = field(default_factory=dict)
    schema: str = MANIFEST_SCHEMA

    @property
    def wall_seconds(self) -> Optional[float]:
        """Total wall-clock duration, once finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def events_of(self, kind: str) -> List[dict]:
        """Every recorded event of one kind, in order (mirrors the
        session-side helper, so consumers aggregate live sessions and
        archived runs with the same code)."""
        return [e for e in self.events if e.get("kind") == kind]

    def stage_durations(self) -> Dict[str, float]:
        """Completed span path → summed duration in seconds."""
        out: Dict[str, float] = {}
        for record in self.spans:
            if record.get("duration") is None:
                continue
            path = record["path"]
            out[path] = out.get(path, 0.0) + float(record["duration"])
        return out

    def to_dict(self) -> dict:
        """Plain-dict form written to ``manifest.json``."""
        return {
            "schema": self.schema,
            "command": self.command,
            "config": self.config,
            "seed": self.seed,
            "versions": self.versions,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "spans": self.spans,
            "metrics": self.metrics,
            "events": self.events,
            "profile": self.profile,
            "outcome": self.outcome,
        }


def build_manifest(
    session: TelemetrySession,
    *,
    command: str,
    config: Optional[Dict[str, object]] = None,
    seed: Optional[int] = None,
    outcome: Optional[Dict[str, object]] = None,
) -> RunManifest:
    """Freeze a telemetry session into a finished manifest."""
    if not command:
        raise ValidationError("manifest command must be non-empty")
    return RunManifest(
        command=command,
        config=dict(config or {}),
        seed=seed,
        started_at=session.started_at,
        finished_at=time.time(),
        spans=session.spans.to_list(),
        metrics=session.metrics.snapshot(),
        events=list(session.events),
        profile=session.profiler.snapshot() if session.profiler else {},
        outcome=dict(outcome or {}),
    )


def write_manifest(manifest: RunManifest, out_dir: str | os.PathLike) -> str:
    """Write ``manifest.json`` + ``events.jsonl`` under ``out_dir``.

    Creates the directory as needed; returns the manifest path.  Both
    files are written atomically (temp + rename), and the event log is
    written *before* the manifest: a crash mid-write can never leave a
    ``manifest.json`` pointing at a truncated or missing event log.
    """
    os.makedirs(out_dir, exist_ok=True)
    manifest_path = os.path.join(out_dir, MANIFEST_FILENAME)
    with atomic_write(os.path.join(out_dir, EVENTS_FILENAME)) as handle:
        for event in manifest.events:
            handle.write(json.dumps(event, default=str))
            handle.write("\n")
    atomic_write_json(manifest_path, manifest.to_dict(), default=str)
    return manifest_path


def read_manifest(path: str | os.PathLike) -> RunManifest:
    """Read one ``manifest.json`` back into a :class:`RunManifest`."""
    with open(path, "r") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceError(f"corrupt manifest {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise TraceError(f"corrupt manifest {path}: expected a JSON object")
    schema = payload.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise TraceError(
            f"unsupported manifest schema {schema!r} in {path} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    return RunManifest(
        command=payload["command"],
        config=payload.get("config", {}),
        seed=payload.get("seed"),
        versions=payload.get("versions", {}),
        started_at=payload.get("started_at", 0.0),
        finished_at=payload.get("finished_at"),
        spans=payload.get("spans", []),
        metrics=payload.get("metrics", {}),
        events=payload.get("events", []),
        profile=payload.get("profile", {}),
        outcome=payload.get("outcome", {}),
    )


def load_manifests(path: str | os.PathLike) -> List[RunManifest]:
    """Load every manifest reachable from ``path``.

    Accepts a ``manifest.json`` file, a run directory containing one,
    or a directory whose immediate subdirectories are run directories.
    Results are ordered by ``started_at``.
    """
    path = os.fspath(path)
    found: List[str] = []
    if os.path.isfile(path):
        found.append(path)
    elif os.path.isdir(path):
        direct = os.path.join(path, MANIFEST_FILENAME)
        if os.path.isfile(direct):
            found.append(direct)
        for entry in sorted(os.listdir(path)):
            nested = os.path.join(path, entry, MANIFEST_FILENAME)
            if os.path.isfile(nested):
                found.append(nested)
    else:
        raise TraceError(f"no manifest at {path!r}")
    if not found:
        raise TraceError(f"no {MANIFEST_FILENAME} found under {path!r}")
    manifests = [read_manifest(p) for p in found]
    manifests.sort(key=lambda m: m.started_at)
    return manifests
