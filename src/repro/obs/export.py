"""Exporters: telemetry as Prometheus/OpenMetrics text, flat JSON and CSV.

A telemetry session (or a saved :class:`~repro.obs.manifest.RunManifest`)
is a tree of snapshots; monitoring systems want flat, typed samples.
Three renderings cover the consumers we care about:

* :func:`manifests_to_prometheus` / :func:`session_to_prometheus` —
  OpenMetrics text (the Prometheus exposition format): one metric
  family per instrument, counters suffixed ``_total``, histograms and
  timers rendered as summaries with ``quantile`` labels, stage
  durations, event counts and hot-path profile data as labelled
  families, terminated by ``# EOF``.
* :func:`flatten_metrics` / :func:`manifests_to_json` — a flat
  ``{"name.field": value}`` dict per run, the shape dashboards and
  ad-hoc scripts index painlessly.
* :func:`manifests_to_csv` — one ``run,command,seed,metric,value`` row
  per scalar, concatenable across runs and loadable anywhere.

Everything here is pure formatting over snapshots — no I/O, no global
state — so the CLI, tests and embedders can call it on anything.
"""

from __future__ import annotations

import csv
import io
import json
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ValidationError
from .manifest import RunManifest
from .session import TelemetrySession

__all__ = [
    "flatten_metrics",
    "manifests_to_json",
    "manifests_to_csv",
    "manifests_to_prometheus",
    "scoreboard_to_prometheus",
    "session_to_prometheus",
    "timeline_to_prometheus",
    "watch_events_to_prometheus",
    "span_tree_rows",
    "PrometheusWriter",
]

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


# -- flat dumps ----------------------------------------------------------------

def flatten_metrics(metrics: Mapping[str, Mapping[str, object]]) -> Dict[str, object]:
    """Flatten a registry snapshot to ``{"name.field": value}``.

    The ``type`` discriminator and empty (None) fields are dropped; what
    remains is exactly the numeric content of the snapshot.
    """
    flat: Dict[str, object] = {}
    for name, snap in metrics.items():
        for field, value in snap.items():
            if field == "type" or value is None:
                continue
            flat[f"{name}.{field}"] = value
    return flat


def manifests_to_json(manifests: Sequence[RunManifest]) -> List[dict]:
    """One JSON-able record per run: identity, envelope, flat metrics."""
    records = []
    for index, manifest in enumerate(manifests):
        records.append({
            "run": index,
            "command": manifest.command,
            "seed": manifest.seed,
            "started_at": manifest.started_at,
            "wall_seconds": manifest.wall_seconds,
            "n_spans": len(manifest.spans),
            "n_events": len(manifest.events),
            "stage_seconds": manifest.stage_durations(),
            "metrics": flatten_metrics(manifest.metrics),
            "profile": manifest.profile,
            "outcome": manifest.outcome,
        })
    return records


def manifests_to_csv(manifests: Sequence[RunManifest]) -> str:
    """Flat CSV: ``run,command,seed,metric,value`` rows for every scalar.

    Stage durations and profile hot-path stats are included under
    ``stage.<path>.seconds`` and ``profile.<hotpath>.<field>`` names, so
    one CSV carries the whole quantitative content of a run.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["run", "command", "seed", "metric", "value"])
    for index, manifest in enumerate(manifests):
        seed = "" if manifest.seed is None else manifest.seed
        rows: List[Tuple[str, object]] = list(
            flatten_metrics(manifest.metrics).items())
        if manifest.wall_seconds is not None:
            rows.append(("run.wall_seconds", manifest.wall_seconds))
        for path, seconds in manifest.stage_durations().items():
            rows.append((f"stage.{path}.seconds", seconds))
        for hotpath, stats in manifest.profile.get("hotpaths", {}).items():
            for field, value in stats.items():
                if value is not None:
                    rows.append((f"profile.{hotpath}.{field}", value))
        for metric, value in rows:
            writer.writerow([index, manifest.command, seed, metric, value])
    return buffer.getvalue()


def span_tree_rows(spans: Sequence[Mapping[str, object]]) -> List[List[str]]:
    """Render span dicts as indented ``[stage, seconds, status, worker]`` rows.

    Input is the JSON form produced by ``SpanCollector.to_list()`` (or a
    manifest's ``spans``), entry order.  Depth becomes two-space
    indentation, so merged cross-process trees — worker spans ingested
    under the campaign span — read as one tree.  The worker column shows
    ``pid@ordinal`` when the merge tagged the span, blank for local
    spans.
    """
    rows: List[List[str]] = []
    for span in spans:
        depth = int(span.get("depth") or 0)
        duration = span.get("duration")
        attrs = span.get("attrs") or {}
        worker_pid = attrs.get("worker_pid")
        worker = ("" if worker_pid is None
                  else f"{worker_pid}@{attrs.get('worker_ordinal', '?')}")
        rows.append([
            "  " * depth + str(span.get("name", "?")),
            "" if duration is None else f"{float(duration):.4f}",
            str(span.get("status", "open")),
            worker,
        ])
    return rows


# -- Prometheus / OpenMetrics --------------------------------------------------

def _metric_name(name: str, prefix: str) -> str:
    full = prefix + _INVALID_NAME_CHARS.sub("_", name)
    # The exposition grammar is [a-zA-Z_:][a-zA-Z0-9_:]* — guard the
    # first character (an empty or digit-leading prefix would break it).
    if not full or not re.match(r"[a-zA-Z_:]", full[0]):
        full = "_" + full
    return full


def _label_str(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    parts = []
    for key in labels:
        value = str(labels[key])
        value = value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
        safe_key = _INVALID_LABEL_CHARS.sub("_", str(key))
        parts.append(f'{safe_key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: object) -> str:
    number = float(value)  # bools and ints included
    if number != number:
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


class PrometheusWriter:
    """Accumulates samples into OpenMetrics text, one family per name.

    Families are declared once (``# TYPE``/``# HELP``) in first-use
    order; samples within a family keep insertion order.  Re-adding a
    family with a conflicting type is an error — the exposition format
    forbids it, and a silent override would corrupt scrapes.

    Names are sanitized to the exposition charset at :meth:`sample`
    time, so instrument paths like ``campaign.stress-aging@entropy.runs``
    export as legal metric names — and two raw names that sanitize to
    the same family merge (same type) or raise (conflicting types)
    instead of emitting duplicate ``# TYPE`` declarations.
    """

    def __init__(self, *, prefix: str = "repro_") -> None:
        self.prefix = prefix
        self._families: Dict[str, dict] = {}

    def sample(
        self, name: str, mtype: str, value: object, *,
        labels: Optional[Mapping[str, object]] = None,
        suffix: str = "", help: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Record one sample of family ``name`` (suffix for _sum/_count etc.).

        ``timestamp`` (UNIX seconds) is appended to the exposition line
        when given — the form timeline backfills use.
        """
        if mtype not in ("counter", "gauge", "summary", "info", "unknown"):
            raise ValidationError(f"unsupported metric type {mtype!r}")
        name = _INVALID_NAME_CHARS.sub("_", name)
        family = self._families.get(name)
        if family is None:
            family = {"type": mtype, "help": help, "samples": []}
            self._families[name] = family
        elif family["type"] != mtype:
            raise ValidationError(
                f"metric family {name!r} already declared as "
                f"{family['type']}, not {mtype}"
            )
        family["samples"].append((suffix, dict(labels or {}), value, timestamp))

    def render(self) -> str:
        """The full OpenMetrics exposition, terminated by ``# EOF``."""
        lines: List[str] = []
        for name, family in self._families.items():
            full = _metric_name(name, self.prefix)
            if family["help"]:
                lines.append(f"# HELP {full} {family['help']}")
            lines.append(f"# TYPE {full} {family['type']}")
            for suffix, labels, value, timestamp in family["samples"]:
                sample_name = full + suffix
                if family["type"] == "counter" and not suffix:
                    sample_name = full + "_total"
                stamp = "" if timestamp is None else f" {float(timestamp)!r}"
                lines.append(
                    f"{sample_name}{_label_str(labels)} "
                    f"{_format_value(value)}{stamp}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _add_metrics_samples(
    writer: PrometheusWriter,
    metrics: Mapping[str, Mapping[str, object]],
    labels: Mapping[str, object],
) -> None:
    for name, snap in metrics.items():
        kind = snap.get("type")
        if kind == "counter":
            writer.sample(name, "counter", snap["value"], labels=labels)
        elif kind == "gauge":
            writer.sample(name, "gauge", snap["value"], labels=labels)
            if snap.get("max") is not None:
                writer.sample(f"{name}_max", "gauge", snap["max"], labels=labels)
        elif kind in ("histogram", "timer"):
            if not snap.get("count"):
                continue
            writer.sample(name, "summary", snap["count"],
                          labels=labels, suffix="_count")
            writer.sample(name, "summary", snap["total"],
                          labels=labels, suffix="_sum")
            for field, quantile in (("p50", "0.5"), ("p90", "0.9"),
                                    ("p99", "0.99")):
                if snap.get(field) is not None:
                    writer.sample(name, "summary", snap[field],
                                  labels={**labels, "quantile": quantile})
            for bound in ("min", "max"):
                if snap.get(bound) is not None:
                    writer.sample(f"{name}_{bound}", "gauge",
                                  snap[bound], labels=labels)


def _add_profile_samples(
    writer: PrometheusWriter,
    profile: Mapping[str, object],
    labels: Mapping[str, object],
) -> None:
    peak_rss = profile.get("peak_rss_bytes")
    if peak_rss is not None:
        writer.sample("process_peak_rss_bytes", "gauge", peak_rss,
                      labels=labels,
                      help="process-lifetime peak resident set size")
    for hotpath, stats in profile.get("hotpaths", {}).items():
        hp_labels = {**labels, "hotpath": hotpath}
        writer.sample("profile_calls", "counter", stats["calls"],
                      labels=hp_labels,
                      help="profiled hot-path call count")
        writer.sample("profile_wall_seconds", "counter", stats["wall_total"],
                      labels=hp_labels,
                      help="profiled hot-path wall-clock seconds")
        writer.sample("profile_cpu_seconds", "counter", stats["cpu_total"],
                      labels=hp_labels,
                      help="profiled hot-path CPU seconds")
        if stats.get("mem_peak_bytes") is not None:
            writer.sample("profile_mem_peak_bytes", "gauge",
                          stats["mem_peak_bytes"], labels=hp_labels,
                          help="peak traced allocation size per call")


def manifests_to_prometheus(
    manifests: Sequence[RunManifest], *, prefix: str = "repro_",
) -> str:
    """Render run manifests as one OpenMetrics exposition.

    Each run's samples carry ``run``/``command`` (and ``seed`` when set)
    labels, so a multi-run archive exports as distinct series of shared
    metric families rather than colliding declarations.
    """
    if not manifests:
        raise ValidationError("no manifests to export")
    writer = PrometheusWriter(prefix=prefix)
    for index, manifest in enumerate(manifests):
        labels: Dict[str, object] = {"run": index, "command": manifest.command}
        if manifest.seed is not None:
            labels["seed"] = manifest.seed
        if manifest.wall_seconds is not None:
            writer.sample("run_wall_seconds", "gauge", manifest.wall_seconds,
                          labels=labels, help="total run wall-clock seconds")
        for path, seconds in manifest.stage_durations().items():
            writer.sample("stage_seconds", "gauge", seconds,
                          labels={**labels, "stage": path},
                          help="summed stage-span duration")
        event_counts: Dict[str, int] = {}
        for event in manifest.events:
            kind = str(event.get("kind", "unknown"))
            event_counts[kind] = event_counts.get(kind, 0) + 1
        for kind, count in sorted(event_counts.items()):
            writer.sample("events", "counter", count,
                          labels={**labels, "kind": kind},
                          help="recorded telemetry events by kind")
        _add_metrics_samples(writer, manifest.metrics, labels)
        _add_profile_samples(writer, manifest.profile, labels)
    return writer.render()


def watch_events_to_prometheus(
    events: Sequence[Mapping], *, prefix: str = "repro_",
) -> str:
    """Render a watch event stream as OpenMetrics text.

    Scrapeable summary of a live session: event counts by kind, alert
    firings labelled by rule and severity, the detector state (as an
    info-style gauge), and the alarm/crash/lead timings from the ``end``
    event when present.
    """
    if not events:
        raise ValidationError("no watch events to export")
    writer = PrometheusWriter(prefix=prefix)
    kind_counts: Dict[str, int] = {}
    alert_counts: Dict[Tuple[str, str], int] = {}
    for event in events:
        kind = str(event.get("kind", "unknown"))
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        if kind == "alert":
            key = (str(event.get("rule", "unknown")),
                   str(event.get("severity", "unknown")))
            alert_counts[key] = alert_counts.get(key, 0) + 1
    for kind, count in sorted(kind_counts.items()):
        writer.sample("watch_events", "counter", count,
                      labels={"kind": kind},
                      help="watch stream events by kind")
    for (rule, severity), count in sorted(alert_counts.items()):
        writer.sample("watch_alerts_fired", "counter", count,
                      labels={"rule": rule, "severity": severity},
                      help="alert rule firings")
    end = next((e for e in reversed(list(events))
                if e.get("kind") == "end"), None)
    if end is not None:
        writer.sample("watch_samples", "counter", end.get("n_samples", 0),
                      help="counter samples consumed by the watcher")
        for field, name in (("alarm_time", "watch_alarm_time_seconds"),
                            ("crash_time", "watch_crash_time_seconds"),
                            ("lead_time", "watch_lead_seconds")):
            value = end.get(field)
            if value is not None:
                writer.sample(name, "gauge", value,
                              help=f"{field.replace('_', ' ')} (simulated s)")
        writer.sample("watch_state", "gauge", 1,
                      labels={"state": str(end.get("state", "unknown"))},
                      help="final detector state")
    return writer.render()


def scoreboard_to_prometheus(
    scoreboard: Mapping, *, prefix: str = "repro_",
) -> str:
    """Render a ``repro.scoreboard/1`` artifact as OpenMetrics text.

    Per-detector pooled figures are labelled ``detector``; per-cell
    figures add a ``cell`` label, so one scrape carries both the league
    table and the grid breakdown.  Undefined figures (no crashed runs,
    no ROC sweep) are simply omitted rather than exported as fake zeros.
    """
    if not scoreboard.get("detectors") and not scoreboard.get("cells"):
        raise ValidationError("no scoreboard entries to export")
    writer = PrometheusWriter(prefix=prefix)
    gauges = (
        ("auc", "scoreboard_auc", "peak-statistic ROC area under curve"),
        ("detection_rate", "scoreboard_detection_rate",
         "detected / crashed runs"),
        ("lead_p50", "scoreboard_lead_p50_seconds",
         "median crash lead time (simulated s)"),
        ("lead_p90", "scoreboard_lead_p90_seconds",
         "p90 crash lead time (simulated s)"),
        ("false_alarms_per_hour", "scoreboard_false_alarms_per_hour",
         "false alarms per hour of healthy runtime"),
    )
    counters = (
        ("n_runs", "scoreboard_runs", "runs scored"),
        ("crashed", "scoreboard_crashes", "runs that crashed"),
        ("detected", "scoreboard_detections", "crashes detected in time"),
        ("premature", "scoreboard_premature", "alarms before the lead gate"),
        ("missed", "scoreboard_missed", "crashes never alarmed"),
        ("false_alarms", "scoreboard_false_alarms",
         "alarms on runs that never crashed"),
    )
    def emit(entry: Mapping, labels: Dict[str, object]) -> None:
        for key, name, help_text in gauges:
            value = entry.get(key)
            if value is not None:
                writer.sample(name, "gauge", value, labels=labels,
                              help=help_text)
        for key, name, help_text in counters:
            writer.sample(name, "counter", entry.get(key, 0), labels=labels,
                          help=help_text)
    for name, det in scoreboard.get("detectors", {}).items():
        emit(det, {"detector": name})
    for name, cell in scoreboard.get("cells", {}).items():
        emit(cell, {"detector": cell.get("detector", "holder"), "cell": name})
    return writer.render()


def timeline_to_prometheus(
    records: Sequence[Mapping], *, prefix: str = "repro_",
) -> str:
    """Render a ``repro.timeline/1`` stream as timestamped OpenMetrics.

    Each frame's progress and resource figures become one sample per
    frame carrying the frame's ``wall_time`` — the backfill form
    ``promtool tsdb create-blocks-from openmetrics`` (and any TSDB
    importer) accepts, so a finished campaign's history can be loaded
    into a real monitoring stack after the fact.  Annotations export as
    plain counters by event kind.
    """
    frames = [r for r in records if r.get("kind") == "frame"]
    if not frames:
        raise ValidationError("no timeline frames to export")
    writer = PrometheusWriter(prefix=prefix)
    progress_gauges = (
        ("units_done", "timeline_units_done", "units completed so far"),
        ("units_failed", "timeline_units_failed", "units permanently failed"),
        ("units_remaining", "timeline_units_remaining", "units still queued"),
        ("units_per_second", "timeline_units_per_second",
         "EWMA completion throughput"),
        ("eta_seconds", "timeline_eta_seconds", "EWMA time-to-completion"),
    )
    for frame in frames:
        stamp = frame.get("wall_time")
        progress = frame.get("progress") or {}
        for key, name, help_text in progress_gauges:
            value = progress.get(key)
            if value is not None:
                writer.sample(name, "gauge", value, timestamp=stamp,
                              help=help_text)
        resources = frame.get("resources") or {}
        parent_rss = resources.get("parent_rss_bytes")
        if parent_rss is not None:
            writer.sample("timeline_rss_bytes", "gauge", parent_rss,
                          labels={"process": "parent"}, timestamp=stamp,
                          help="resident set size per process")
        for worker in resources.get("workers") or []:
            rss = worker.get("rss_bytes")
            if rss is not None:
                writer.sample(
                    "timeline_rss_bytes", "gauge", rss,
                    labels={"process": f"worker{worker.get('ordinal')}"},
                    timestamp=stamp, help="resident set size per process")
    event_counts: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "annotation":
            event = str(record.get("event", "unknown"))
            event_counts[event] = event_counts.get(event, 0) + 1
    for event, count in sorted(event_counts.items()):
        writer.sample("timeline_annotations", "counter", count,
                      labels={"event": event},
                      help="timeline annotations by event kind")
    return writer.render()


def session_to_prometheus(
    session: TelemetrySession, *, prefix: str = "repro_",
    labels: Optional[Mapping[str, object]] = None,
) -> str:
    """Render a live telemetry session as OpenMetrics text."""
    writer = PrometheusWriter(prefix=prefix)
    base = dict(labels or {})
    _add_metrics_samples(writer, session.metrics.snapshot(), base)
    if session.profiler is not None:
        _add_profile_samples(writer, session.profiler.snapshot(), base)
    return writer.render()
