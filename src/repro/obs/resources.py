"""Process resource telemetry: /proc sampling, pool-worker gauges, self-watch.

The paper's whole premise is that memory counters age before failure —
and a multi-hour campaign is itself a long-running process worth the
same scrutiny.  This module closes the loop:

* :func:`sample_process` reads one process's RSS / CPU / thread / fd
  counts from ``/proc`` (stdlib only, no psutil).  On platforms without
  ``/proc`` the calling process degrades to :mod:`resource`.getrusage
  (``source="rusage"``); other pids come back as None rather than
  guesses.
* :class:`ResourceSampler` publishes those numbers for the parent and
  every live pool worker into the metrics registry on a background
  thread (``resources.parent.rss_bytes``,
  ``resources.worker.<ordinal>.rss_bytes``, …), so a ``/metrics``
  scrape or a run manifest shows the harness's own memory trajectory.
* ``self_watch=True`` streams the parent's RSS through a sliding-engine
  :class:`~repro.core.online.OnlineAgingMonitor` and the declarative
  alert engine (:class:`SelfWatch`): the pipeline watching its *own*
  aging with its *own* detector.

Everything is synchronously drivable (:meth:`ResourceSampler.sample_once`)
so tests and status endpoints never race a thread they do not control.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ValidationError
from .alerts import AlertEngine, AlertFiring, AlertRule
from .logger import get_logger
from . import session as _obs

__all__ = [
    "ProcessSample",
    "read_proc_stat",
    "sample_process",
    "compact_resources",
    "ResourceSampler",
    "SelfWatch",
    "DEFAULT_SELF_WATCH_RULES",
]

_log = get_logger("obs.resources")

# Fields of /proc/<pid>/stat *after* the (comm) field, 0-indexed from
# field 3 ("state").  utime=14, stime=15, num_threads=20, rss=24 in the
# 1-indexed proc(5) numbering.
_STAT_UTIME = 14 - 3
_STAT_STIME = 15 - 3
_STAT_THREADS = 20 - 3
_STAT_RSS_PAGES = 24 - 3


@dataclass(frozen=True)
class ProcessSample:
    """One instantaneous resource reading for one process."""

    pid: int
    rss_bytes: Optional[float] = None
    cpu_seconds: Optional[float] = None
    num_threads: Optional[int] = None
    open_fds: Optional[int] = None
    source: str = "proc"

    def to_dict(self) -> dict:
        """JSON-able form used by ``/status`` payloads."""
        return {
            "pid": self.pid,
            "rss_bytes": self.rss_bytes,
            "cpu_seconds": self.cpu_seconds,
            "num_threads": self.num_threads,
            "open_fds": self.open_fds,
            "source": self.source,
        }


def read_proc_stat(pid: int, *, proc_root: str = "/proc") -> Optional[dict]:
    """Parse ``/proc/<pid>/stat``; None when unreadable (no /proc, dead pid).

    The comm field can contain spaces and parentheses (``(tmux: server)``),
    so the line is split at the *last* ``)`` — the only robust parse.
    """
    try:
        with open(os.path.join(proc_root, str(pid), "stat"), "rb") as handle:
            raw = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    _, _, tail = raw.rpartition(")")
    fields = tail.split()
    if len(fields) <= _STAT_RSS_PAGES:
        return None
    try:
        ticks = os.sysconf("SC_CLK_TCK") or 100
        page = os.sysconf("SC_PAGE_SIZE") or 4096
        return {
            "cpu_seconds": (int(fields[_STAT_UTIME])
                            + int(fields[_STAT_STIME])) / ticks,
            "num_threads": int(fields[_STAT_THREADS]),
            "rss_bytes": int(fields[_STAT_RSS_PAGES]) * page,
        }
    except (ValueError, OSError):
        return None


def _count_fds(pid: int, *, proc_root: str = "/proc") -> Optional[int]:
    try:
        return len(os.listdir(os.path.join(proc_root, str(pid), "fd")))
    except OSError:
        return None


def _rusage_self_sample() -> ProcessSample:
    """Best-effort self sample for platforms without /proc."""
    rss = None
    cpu = None
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; both are "at least
        # this much" peaks — good enough for a fallback trajectory.
        scale = 1 if os.uname().sysname == "Darwin" else 1024
        rss = float(usage.ru_maxrss) * scale
        cpu = float(usage.ru_utime + usage.ru_stime)
    except Exception:  # pragma: no cover - exotic platforms
        pass
    return ProcessSample(
        pid=os.getpid(),
        rss_bytes=rss,
        cpu_seconds=cpu,
        num_threads=threading.active_count(),
        open_fds=None,
        source="rusage",
    )


def sample_process(
    pid: int, *, proc_root: str = "/proc",
) -> Optional[ProcessSample]:
    """Sample one process; None when it cannot be read at all.

    The calling process always gets *something*: when ``/proc`` is
    absent the rusage fallback reports what the platform can
    (``source="rusage"``).  Foreign pids without ``/proc`` are
    unknowable and return None.
    """
    stat = read_proc_stat(pid, proc_root=proc_root)
    if stat is None:
        if pid == os.getpid():
            _obs.counter("resources.sampler_fallbacks").inc()
            return _rusage_self_sample()
        return None
    return ProcessSample(
        pid=pid,
        rss_bytes=float(stat["rss_bytes"]),
        cpu_seconds=float(stat["cpu_seconds"]),
        num_threads=int(stat["num_threads"]),
        open_fds=_count_fds(pid, proc_root=proc_root),
        source="proc",
    )


# Deliberately conservative: a campaign parent growing faster than
# 100 MB/s for a minute is pathological on any hardware this runs on.
# Deployments with tighter budgets pass their own rules.
DEFAULT_SELF_WATCH_RULES = (
    AlertRule(
        name="parent-rss-growth",
        signal="self.rss",
        kind="rate",
        op="gt",
        value=100e6,
        cooldown=60.0,
        severity="warning",
        description="campaign parent RSS growing > 100 MB/s",
    ),
)


def compact_resources(snapshot: Optional[dict]) -> Optional[dict]:
    """Reduce a :meth:`ResourceSampler.sample_once` snapshot to the small
    per-frame digest timeline frames store.

    Keeps the parent's RSS/CPU, one ``{ordinal, rss_bytes, cpu_seconds}``
    entry per worker and the self-watch state + firing count; drops
    pids, fd counts, thread counts and sampling provenance.  None in,
    None out.
    """
    if snapshot is None:
        return None
    parent = snapshot.get("parent") or {}
    compact: dict = {
        "parent_rss_bytes": parent.get("rss_bytes"),
        "parent_cpu_seconds": parent.get("cpu_seconds"),
        "workers": [
            {
                "ordinal": worker.get("ordinal"),
                "rss_bytes": worker.get("rss_bytes"),
                "cpu_seconds": worker.get("cpu_seconds"),
            }
            for worker in snapshot.get("workers", [])
        ],
    }
    self_watch = snapshot.get("self_watch")
    if self_watch is not None:
        compact["self_watch_state"] = self_watch.get("state")
        compact["self_watch_alerts"] = self_watch.get("alerts_fired")
    return compact


class SelfWatch:
    """The harness watching its own RSS with its own detector.

    Feeds ``(time, rss)`` observations to a sliding-engine
    :class:`~repro.core.online.OnlineAgingMonitor` (default geometry
    sized for second-scale sampling: chunk 16, history 256) and to an
    :class:`~repro.obs.alerts.AlertEngine` under signal ``"self.rss"``.
    Indicator points are forwarded to the engine as ``"self.indicator"``.

    ``state`` summarises both: the monitor's lifecycle state, promoted
    to ``"warning"`` once any alert rule has fired (and ``"alarmed"``
    always wins — the detector's word is final).
    """

    def __init__(self, *, monitor=None,
                 rules: Optional[Sequence[AlertRule]] = None) -> None:
        if monitor is None:
            # Imported lazily: repro.core sits above repro.obs in the
            # layer diagram, exactly like the sliding engine in online.py.
            from ..core.online import OnlineAgingMonitor

            monitor = OnlineAgingMonitor(
                chunk_size=16, history=256, indicator_window=64,
                n_warmup=0, n_calibration=4, holder_engine="sliding",
            )
        self.monitor = monitor
        self.engine = AlertEngine(
            list(DEFAULT_SELF_WATCH_RULES if rules is None else rules))
        self.firings: List[AlertFiring] = []
        self._last_time: Optional[float] = None
        previous = monitor.on_indicator

        def forward(t: float, value: float) -> None:
            self._on_indicator(t, value)
            if previous is not None:  # pragma: no cover - caller-supplied
                previous(t, value)

        monitor.on_indicator = forward

    def _on_indicator(self, t: float, value: float) -> None:
        self._fire(self.engine.observe("self.indicator", t, value))

    def _fire(self, firings: List[AlertFiring]) -> None:
        for firing in firings:
            self.firings.append(firing)
            _obs.counter("resources.self_watch_alerts").inc()
            _obs.record_event(
                "self_watch_alert", rule=firing.rule, severity=firing.severity,
                time=firing.time, value=firing.value, message=firing.message)
            _log.warning("self-watch alert", rule=firing.rule,
                         severity=firing.severity, message=firing.message)

    def observe(self, t: float, rss: float) -> None:
        """Feed one (time, parent-RSS) observation to detector + rules."""
        if rss is None or not (rss == rss):  # None or NaN
            return
        self._fire(self.engine.observe("self.rss", float(t), float(rss)))
        # The monitor insists on strictly increasing, finite times.
        if self._last_time is not None and t <= self._last_time:
            return
        self._last_time = float(t)
        self.monitor.update(float(t), float(rss))

    @property
    def alerts_fired(self) -> int:
        """Total alert-rule firings so far."""
        return len(self.firings)

    @property
    def state(self) -> str:
        """Combined detector + alert state (see class docstring)."""
        monitor_state = self.monitor.state
        if monitor_state == "alarmed":
            return "alarmed"
        if self.firings:
            return "warning"
        return monitor_state

    def snapshot(self) -> dict:
        """JSON-able digest for ``/status``."""
        return {
            "state": self.state,
            "monitor_state": self.monitor.state,
            "n_samples": self.monitor.n_samples,
            "n_indicators": len(self.monitor.indicator_history),
            "alerts_fired": self.alerts_fired,
            "alarm_time": self.monitor.alarm_time,
        }


class ResourceSampler:
    """Background sampler publishing parent + pool-worker resource gauges.

    ``worker_pids`` is a zero-argument callable returning the pids to
    sample besides the parent — pass
    :func:`repro.perf.pool.pool_worker_pids` to follow whatever pool is
    live (the sampler deliberately does not import the pool: ``perf``
    sits above ``obs``).  Worker ordinals are assigned in first-seen
    order and sticky for the sampler's lifetime, so
    ``resources.worker.0.rss_bytes`` stays one worker's series even as
    pools are torn down and rebuilt around it.

    :meth:`start`/:meth:`stop` run :meth:`sample_once` on a daemon
    thread every ``interval`` seconds; :meth:`sample_once` is public and
    synchronous so tests and endpoints can drive it deterministically.
    """

    def __init__(
        self,
        *,
        interval: float = 1.0,
        worker_pids: Optional[Callable[[], Sequence[int]]] = None,
        proc_root: str = "/proc",
        self_watch: bool = False,
        self_watch_monitor=None,
        self_watch_rules: Optional[Sequence[AlertRule]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValidationError(
                f"sampler interval must be positive, got {interval}")
        self.interval = float(interval)
        self.proc_root = proc_root
        self._worker_pids = worker_pids
        self._clock = clock
        self._ordinals: Dict[int, int] = {}
        self._latest: Optional[dict] = None
        self._latest_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.n_samples = 0
        self.self_watch: Optional[SelfWatch] = (
            SelfWatch(monitor=self_watch_monitor, rules=self_watch_rules)
            if self_watch else None
        )

    # -- sampling --------------------------------------------------------------

    def _publish(self, role: str, sample: ProcessSample) -> None:
        base = f"resources.{role}"
        if sample.rss_bytes is not None:
            _obs.gauge(f"{base}.rss_bytes").set(sample.rss_bytes)
        if sample.cpu_seconds is not None:
            _obs.gauge(f"{base}.cpu_seconds").set(sample.cpu_seconds)
        if sample.num_threads is not None:
            _obs.gauge(f"{base}.threads").set(sample.num_threads)
        if sample.open_fds is not None:
            _obs.gauge(f"{base}.open_fds").set(sample.open_fds)
        _obs.gauge(f"{base}.pid").set(sample.pid)

    def sample_once(self) -> dict:
        """Take one sample sweep; publish gauges; return the snapshot.

        The returned dict is the ``/status`` ``resources`` payload:
        ``{"sampled_at", "parent", "workers", "self_watch"}``.
        """
        now = self._clock()
        parent = sample_process(os.getpid(), proc_root=self.proc_root)
        workers: List[dict] = []
        if self._worker_pids is not None:
            for pid in self._worker_pids():
                sample = sample_process(pid, proc_root=self.proc_root)
                if sample is None:
                    continue
                ordinal = self._ordinals.setdefault(pid, len(self._ordinals))
                self._publish(f"worker.{ordinal}", sample)
                workers.append({"ordinal": ordinal, **sample.to_dict()})
        if parent is not None:
            self._publish("parent", parent)
            if self.self_watch is not None:
                self.self_watch.observe(now, parent.rss_bytes)
        _obs.counter("resources.samples").inc()
        self.n_samples += 1
        snapshot = {
            "sampled_at": time.time(),
            "parent": None if parent is None else parent.to_dict(),
            "workers": workers,
            "self_watch": (None if self.self_watch is None
                           else self.self_watch.snapshot()),
        }
        with self._latest_lock:
            self._latest = snapshot
        return snapshot

    def latest(self) -> Optional[dict]:
        """Most recent :meth:`sample_once` snapshot (None before the first)."""
        with self._latest_lock:
            return self._latest

    def latest_compact(self) -> Optional[dict]:
        """:func:`compact_resources` of :meth:`latest` — the per-frame
        digest the timeline recorder stores."""
        return compact_resources(self.latest())

    # -- background thread -----------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.sample_once()
            except Exception as exc:  # pragma: no cover - defensive: a
                # sampler bug must never take down the campaign it watches
                _log.warning("resource sample failed",
                             error=f"{type(exc).__name__}: {exc}")
            self._stop.wait(self.interval)

    def start(self) -> "ResourceSampler":
        """Start the daemon sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resources", daemon=True)
        self._thread.start()
        return self

    def stop(self, *, timeout: float = 5.0) -> None:
        """Stop and join the sampling thread (no-op when not running)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
