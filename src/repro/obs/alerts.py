"""Declarative alert rules over live counter and indicator streams.

A watch session (``python -m repro watch``) streams two kinds of scalar
signals: raw performance-counter samples (``AvailableBytes``, …) and the
monitor's indicator points (``indicator``).  This module evaluates a
user-declared rule set against those signals as they arrive:

* ``threshold`` — fire when the value crosses a fixed bound (re-arms
  once the signal returns in bounds, with an optional cooldown);
* ``rate`` — fire on the per-second rate of change between consecutive
  samples (leak-slope alarms);
* ``sustained`` — fire only when an excursion persists continuously for
  at least ``window`` seconds (debounced thresholds: one paging burst
  is weather, ten minutes of paging is aging).

Rules are plain data (:class:`AlertRule`), loadable from a TOML or JSON
file (:func:`load_rules`)::

    [[rule]]
    name = "low-available"
    signal = "AvailableBytes"
    kind = "threshold"
    op = "lt"
    value = 50e6
    severity = "critical"

The engine itself is pure — :meth:`AlertEngine.observe` maps a sample to
zero or more :class:`AlertFiring`\\ s — so the stream writer owns the
side effects: each firing becomes a structured ``alert`` event in the
watch stream and a Prometheus-compatible counter
(``repro_watch_alerts_fired_total{...}`` via the session metrics).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import ValidationError

__all__ = [
    "ALERT_KINDS",
    "ALERT_OPS",
    "ALERT_SEVERITIES",
    "AlertRule",
    "AlertFiring",
    "AlertEngine",
    "parse_rules",
    "load_rules",
]

ALERT_KINDS = ("threshold", "rate", "sustained")
ALERT_OPS = ("lt", "le", "gt", "ge")
ALERT_SEVERITIES = ("info", "warning", "critical")

_OP_FUNCS = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_OP_SYMBOLS = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule over one signal.

    Attributes
    ----------
    name:
        Unique label; appears in events, metrics and dashboards.
    signal:
        Counter name (e.g. ``"AvailableBytes"``) or ``"indicator"``.
    kind:
        ``"threshold"``, ``"rate"`` or ``"sustained"``.
    op, value:
        The excursion condition: sample ``op`` value (for ``rate``, the
        per-second derivative ``op`` value).
    window:
        ``sustained`` only — seconds the excursion must persist.
    cooldown:
        Minimum seconds between consecutive firings of this rule
        (0 = every re-entry into excursion fires).
    severity:
        ``"info"``, ``"warning"`` or ``"critical"``.
    description:
        Free-form text carried into events and dashboards.
    """

    name: str
    signal: str
    kind: str
    op: str
    value: float
    window: float = 0.0
    cooldown: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("alert rule name must be non-empty")
        if not self.signal:
            raise ValidationError(f"rule {self.name!r}: signal must be non-empty")
        if self.kind not in ALERT_KINDS:
            raise ValidationError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(choose from {ALERT_KINDS})"
            )
        if self.op not in ALERT_OPS:
            raise ValidationError(
                f"rule {self.name!r}: unknown op {self.op!r} "
                f"(choose from {ALERT_OPS})"
            )
        if self.severity not in ALERT_SEVERITIES:
            raise ValidationError(
                f"rule {self.name!r}: unknown severity {self.severity!r} "
                f"(choose from {ALERT_SEVERITIES})"
            )
        if self.kind == "sustained" and self.window <= 0:
            raise ValidationError(
                f"rule {self.name!r}: sustained rules need window > 0"
            )
        if self.window < 0 or self.cooldown < 0:
            raise ValidationError(
                f"rule {self.name!r}: window/cooldown must be non-negative"
            )
        float(self.value)  # must be numeric

    @property
    def condition(self) -> str:
        """Human-readable excursion condition."""
        quantity = {"threshold": self.signal, "sustained": self.signal,
                    "rate": f"d({self.signal})/dt"}[self.kind]
        text = f"{quantity} {_OP_SYMBOLS[self.op]} {self.value:g}"
        if self.kind == "sustained":
            text += f" for {self.window:g}s"
        return text


@dataclass(frozen=True)
class AlertFiring:
    """One rule firing: what fired, when, on what value."""

    rule: str
    signal: str
    severity: str
    time: float
    value: float
    message: str


@dataclass
class _RuleState:
    """Per-rule evaluation state (the engine owns one per rule)."""

    in_excursion: bool = False
    excursion_start: Optional[float] = None
    fired_this_excursion: bool = False
    last_fired: Optional[float] = None
    prev_time: Optional[float] = None
    prev_value: Optional[float] = None


class AlertEngine:
    """Evaluate a rule set against arriving (signal, time, value) samples."""

    def __init__(self, rules: Sequence[AlertRule]) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate alert rule names: {names}")
        self.rules = list(rules)
        self._by_signal: Dict[str, List[AlertRule]] = {}
        for rule in self.rules:
            self._by_signal.setdefault(rule.signal, []).append(rule)
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        self._counts: Dict[str, int] = {rule.name: 0 for rule in self.rules}

    @property
    def signals(self) -> tuple:
        """Signals at least one rule listens to."""
        return tuple(self._by_signal)

    def counts(self) -> Dict[str, int]:
        """Firings per rule so far (includes zero-count rules)."""
        return dict(self._counts)

    @property
    def total_fired(self) -> int:
        """Total firings across all rules."""
        return sum(self._counts.values())

    def observe(self, signal: str, time: float, value: float) -> List[AlertFiring]:
        """Feed one sample; returns the firings it triggered (often none)."""
        rules = self._by_signal.get(signal)
        if not rules:
            return []
        firings = []
        for rule in rules:
            firing = self._evaluate(rule, self._states[rule.name], time, value)
            if firing is not None:
                self._counts[rule.name] += 1
                firings.append(firing)
        return firings

    # -- evaluation ------------------------------------------------------------

    def _evaluate(
        self, rule: AlertRule, state: _RuleState, time: float, value: float,
    ) -> Optional[AlertFiring]:
        if rule.kind == "rate":
            monitored = self._rate(state, time, value)
            if monitored is None:
                return None  # first sample: no rate yet
        else:
            monitored = value

        excursion = _OP_FUNCS[rule.op](monitored, rule.value)
        if not excursion:
            state.in_excursion = False
            state.excursion_start = None
            state.fired_this_excursion = False
            return None

        if not state.in_excursion:
            state.in_excursion = True
            state.excursion_start = time
            state.fired_this_excursion = False

        if rule.kind == "sustained":
            if time - state.excursion_start < rule.window:
                return None
        if state.fired_this_excursion:
            return None
        if (state.last_fired is not None
                and time - state.last_fired < rule.cooldown):
            return None

        state.fired_this_excursion = True
        state.last_fired = time
        return AlertFiring(
            rule=rule.name, signal=rule.signal, severity=rule.severity,
            time=time, value=monitored,
            message=f"{rule.condition} (observed {monitored:g})",
        )

    @staticmethod
    def _rate(state: _RuleState, time: float, value: float) -> Optional[float]:
        prev_t, prev_v = state.prev_time, state.prev_value
        state.prev_time, state.prev_value = time, value
        if prev_t is None or time <= prev_t:
            return None
        return (value - prev_v) / (time - prev_t)


# -- loading -------------------------------------------------------------------

def parse_rules(payload: Mapping) -> List[AlertRule]:
    """Build rules from a parsed config mapping.

    Accepts ``{"rule": [{...}, ...]}`` (the TOML array-of-tables shape)
    or ``{"rules": [...]}``; unknown keys in a rule entry are an error —
    a typoed ``windw`` silently ignored is a rule that never debounces.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError("alert config must be a mapping")
    entries = payload.get("rule", payload.get("rules"))
    if not isinstance(entries, list) or not entries:
        raise ValidationError(
            "alert config needs a non-empty [[rule]] list "
            "(or a 'rules' array in JSON)"
        )
    known = {f.name for f in AlertRule.__dataclass_fields__.values()}
    rules = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ValidationError(f"rule #{i}: expected a table/object")
        unknown = set(entry) - known
        if unknown:
            raise ValidationError(
                f"rule #{i}: unknown field(s) {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        try:
            rules.append(AlertRule(**entry))
        except TypeError as exc:
            raise ValidationError(f"rule #{i}: {exc}") from exc
    names = [r.name for r in rules]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate alert rule names: {names}")
    return rules


def load_rules(path: str | os.PathLike) -> List[AlertRule]:
    """Load alert rules from a ``.toml`` or ``.json`` file."""
    path = os.fspath(path)
    suffix = os.path.splitext(path)[1].lower()
    if suffix == ".toml":
        import tomllib

        with open(path, "rb") as handle:
            try:
                payload = tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                raise ValidationError(f"bad TOML in {path}: {exc}") from exc
    elif suffix == ".json":
        with open(path, "r") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"bad JSON in {path}: {exc}") from exc
    else:
        raise ValidationError(
            f"unsupported alert-rule file type {suffix!r} in {path} "
            "(use .toml or .json)"
        )
    return parse_rules(payload)
