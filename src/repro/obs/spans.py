"""Nestable stage-tracing spans.

A *span* times one named stage of work (a pipeline step, a simulation
phase, a campaign cell).  Spans nest: entering a span while another is
open records the parent path, so the collected records reconstruct the
stage tree of a run::

    with collector.span("analyze"):
        with collector.span("holder", counter="AvailableBytes"):
            ...

produces records with paths ``analyze`` and ``analyze/holder``.  Each
record carries wall-clock start/end (``time.perf_counter`` based, so
durations are monotonic), depth, outcome (``"ok"`` or ``"error"``) and
free-form attributes.

The collector is deliberately single-threaded (the whole library is);
a disabled collector hands out a shared no-op context manager so traced
code costs ~a function call when tracing is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import ValidationError

__all__ = ["SpanRecord", "SpanCollector", "NULL_SPAN"]


@dataclass
class SpanRecord:
    """One completed (or still-open) stage timing.

    ``start``/``end`` are ``perf_counter`` readings relative to the
    collector's epoch, so they order and subtract correctly within a
    run but are not wall-clock datetimes.
    """

    name: str
    path: str
    depth: int
    start: float
    end: Optional[float] = None
    status: str = "open"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Seconds from entry to exit; None while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-able form used by manifests."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _ActiveSpan:
    """Context manager produced by :meth:`SpanCollector.span`."""

    __slots__ = ("_collector", "_record")

    def __init__(self, collector: "SpanCollector", record: SpanRecord) -> None:
        self._collector = collector
        self._record = record

    def annotate(self, **attrs) -> None:
        """Attach extra attributes to the span while it is open."""
        self._record.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._collector._push(self._record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._collector._pop(self._record, ok=exc_type is None)
        return False


class _NullSpan:
    """Shared no-op span for disabled tracing."""

    __slots__ = ()

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanCollector:
    """Records a run's stage tree as a flat list of :class:`SpanRecord`."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self._stack: List[SpanRecord] = []
        self._records: List[SpanRecord] = []
        # Called with each SpanRecord as it closes (flight recorder hook).
        self.on_close: Optional[Callable[[SpanRecord], None]] = None

    def span(self, name: str, **attrs):
        """Open a nested span named ``name`` (use as a context manager)."""
        if not self.enabled:
            return NULL_SPAN
        if not name:
            raise ValidationError("span name must be non-empty")
        if "/" in name:
            raise ValidationError(
                f"span name cannot contain '/' (got {name!r}); "
                "nesting builds the path"
            )
        parent = self._stack[-1].path if self._stack else ""
        record = SpanRecord(
            name=name,
            path=f"{parent}/{name}" if parent else name,
            depth=len(self._stack),
            start=time.perf_counter() - self.epoch,
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, record)

    # -- internals (driven by _ActiveSpan) ------------------------------------

    def _push(self, record: SpanRecord) -> None:
        self._stack.append(record)
        self._records.append(record)

    def _pop(self, record: SpanRecord, *, ok: bool) -> None:
        if not self._stack or self._stack[-1] is not record:
            raise ValidationError(
                f"span {record.path!r} exited out of order; "
                "spans must strictly nest"
            )
        self._stack.pop()
        record.end = time.perf_counter() - self.epoch
        record.status = "ok" if ok else "error"
        if self.on_close is not None:
            self.on_close(record)

    # -- reading ---------------------------------------------------------------

    @property
    def records(self) -> List[SpanRecord]:
        """Every span opened so far, in entry order."""
        return list(self._records)

    @property
    def open_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @property
    def current_path(self) -> str:
        """Path of the innermost open span, or "" at top level."""
        return self._stack[-1].path if self._stack else ""

    def completed(self) -> List[SpanRecord]:
        """Only the spans that have exited."""
        return [r for r in self._records if r.end is not None]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every completed span called ``name``."""
        return sum(
            r.duration for r in self._records
            if r.name == name and r.end is not None
        )

    def to_list(self) -> List[dict]:
        """JSON-able records, entry order (manifest payload)."""
        return [r.to_dict() for r in self._records]

    def ingest(self, records: List[dict], *, prefix: Optional[str] = None,
               extra_attrs: Optional[Dict[str, object]] = None) -> int:
        """Adopt span dicts recorded by another collector (another process).

        Worker collectors start their own ``perf_counter`` epoch, so the
        imported timings are rebased: the batch is shifted so its latest
        end lands at this collector's *now*, keeping durations and the
        workers' internal ordering exact while their absolute placement
        is only as good as "they finished just before the merge".  With
        ``prefix`` every imported path is nested under ``prefix/`` so
        worker trees stay distinguishable in the parent's stage tree; a
        multi-segment prefix (``"campaign-pool/campaign-worker"``) nests
        that many levels deeper.  ``extra_attrs`` (worker pid, trace
        ids, …) are merged into every adopted record's attrs without
        overriding keys the worker set itself.  Returns the number of
        records adopted.
        """
        if not self.enabled or not records:
            return 0
        latest = max(
            (r["end"] if r.get("end") is not None else r["start"])
            for r in records
        )
        shift = (time.perf_counter() - self.epoch) - latest
        for r in records:
            path = r["path"]
            depth = int(r["depth"])
            if prefix:
                path = f"{prefix}/{path}"
                depth += prefix.count("/") + 1
            end = r.get("end")
            attrs = dict(r.get("attrs") or {})
            if extra_attrs:
                for key, value in extra_attrs.items():
                    attrs.setdefault(key, value)
            self._records.append(SpanRecord(
                name=r["name"],
                path=path,
                depth=depth,
                start=r["start"] + shift,
                end=None if end is None else end + shift,
                status=r.get("status", "open"),
                attrs=attrs,
            ))
        return len(records)

    def reset(self) -> None:
        """Drop all records and restart the epoch."""
        if self._stack:
            raise ValidationError("cannot reset collector with open spans")
        self._records.clear()
        self.epoch = time.perf_counter()
