"""Live watch sessions: a versioned JSONL event stream over a running host.

The offline tooling (PR 1/2) explains a run *after* it finished; this
module is the live surface the paper's operational story needs — an
analyst watching the windowed Hölder indicator of a running host and
raising a crash warning before failure.  Three pieces:

* the **event schema** ``repro.watch-events/1``: one JSON object per
  line, every event carrying ``kind`` + simulation time ``t``.  Kinds:
  ``header`` (stream identity: source, counter, monitor config, alert
  rules), ``sample`` (counter samples, optionally decimated),
  ``indicator`` (Hölder indicator points), ``detector_state`` (monitor
  lifecycle transitions), ``alarm`` (the detector's latched warning),
  ``alert`` (rule-engine firings), ``status`` (periodic heartbeat),
  ``crash`` and ``end`` (termination summary).  Streams are validated
  line-by-line (:func:`validate_event`, :func:`validate_stream`) so a
  consumer never has to guess at half-written or foreign files.
* :class:`EventStreamWriter` — emits schema-valid events to a line
  handle (flushing per line, so streams can be tailed), mirrors alert
  firings into the current telemetry session as events plus
  Prometheus-compatible counters, and keeps per-kind counts.
* :class:`LiveWatcher` — glues an
  :class:`~repro.core.online.OnlineAgingMonitor` and an optional
  :class:`~repro.obs.alerts.AlertEngine` to a sample source: either a
  live :class:`~repro.memsim.machine.Machine` (attached as an in-sim
  periodic poller over the counter sampler) or a replayed trace bundle.

The dashboard (:mod:`repro.obs.dashboard`) renders these streams; the
CLI front end is ``python -m repro watch``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from ..exceptions import TraceError
from .alerts import AlertEngine, AlertFiring
from .logger import get_logger
from . import session as _obs

__all__ = [
    "WATCH_SCHEMA",
    "EVENT_KINDS",
    "validate_event",
    "validate_stream",
    "read_events",
    "EventStreamWriter",
    "LiveWatcher",
]

WATCH_SCHEMA = "repro.watch-events/1"

_log = get_logger("obs.live")

# Required fields per event kind, beyond the envelope ("kind" + "t").
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "header": ("schema", "counter", "source", "monitor", "rules"),
    "sample": ("value",),
    "indicator": ("value", "n"),
    "detector_state": ("state", "previous"),
    "alarm": ("indicator", "value", "baseline"),
    "alert": ("rule", "severity", "signal", "value", "message"),
    "status": ("state", "n_samples", "n_indicators", "alerts_fired"),
    "crash": ("reason",),
    "end": ("n_samples", "n_indicators", "state", "alarm_time",
            "crash_time", "lead_time", "alerts"),
}

EVENT_KINDS = tuple(_REQUIRED_FIELDS)

_NUMERIC_FIELDS = {
    "sample": ("value",),
    "indicator": ("value",),
    "alarm": ("indicator", "value", "baseline"),
    "alert": ("value",),
}


def validate_event(event: object, *, where: str = "event") -> dict:
    """Check one event against the schema; returns it, raises TraceError.

    ``where`` names the event in error messages (e.g. ``"line 17"``).
    """
    if not isinstance(event, dict):
        raise TraceError(f"{where}: expected a JSON object, got {type(event).__name__}")
    kind = event.get("kind")
    if kind not in _REQUIRED_FIELDS:
        raise TraceError(
            f"{where}: unknown event kind {kind!r} (known: {EVENT_KINDS})")
    t = event.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or not math.isfinite(t):
        raise TraceError(f"{where}: {kind} event needs a finite numeric 't'")
    missing = [f for f in _REQUIRED_FIELDS[kind] if f not in event]
    if missing:
        raise TraceError(f"{where}: {kind} event missing field(s) {missing}")
    for name in _NUMERIC_FIELDS.get(kind, ()):
        value = event[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TraceError(
                f"{where}: {kind} event field {name!r} must be numeric, "
                f"got {value!r}")
    if kind == "header" and event["schema"] != WATCH_SCHEMA:
        raise TraceError(
            f"{where}: unsupported stream schema {event['schema']!r} "
            f"(expected {WATCH_SCHEMA!r})")
    return event


def validate_stream(events: Sequence[dict]) -> Dict[str, int]:
    """Validate a whole stream; returns per-kind event counts.

    Checks every event, that the stream opens with a ``header`` of the
    supported schema, and that event times never go backwards.
    """
    if not events:
        raise TraceError("empty watch stream (no events)")
    counts: Dict[str, int] = {}
    last_t: Optional[float] = None
    for i, event in enumerate(events):
        validate_event(event, where=f"event {i}")
        if i == 0 and event["kind"] != "header":
            raise TraceError(
                f"stream must open with a header event, got {event['kind']!r}")
        if i > 0 and event["kind"] == "header":
            raise TraceError(f"event {i}: duplicate header mid-stream")
        t = float(event["t"])
        if last_t is not None and t < last_t:
            raise TraceError(
                f"event {i}: time goes backwards ({t} after {last_t})")
        last_t = t
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return counts


def read_events(path: str | os.PathLike, *, validate: bool = True) -> List[dict]:
    """Read a JSONL watch stream back; validates by default."""
    events: List[dict] = []
    with open(os.fspath(path), "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: bad JSON: {exc}") from exc
    if validate:
        validate_stream(events)
    return events


class EventStreamWriter:
    """Emit schema-valid watch events as JSON lines.

    Parameters
    ----------
    handle:
        Writable text handle (each event is flushed, so ``tail -f``
        works on live streams).  ``None`` keeps counts (and optionally
        the events) without writing anywhere.
    keep:
        Retain every emitted event in :attr:`events` (in-memory
        consumers: tests, direct dashboard rendering).
    """

    def __init__(self, handle: Optional[TextIO] = None, *, keep: bool = False) -> None:
        self._handle = handle
        self._keep = keep
        self.events: List[dict] = []
        self.counts: Dict[str, int] = {}
        self._last_t: Optional[float] = None

    @property
    def n_events(self) -> int:
        """Events emitted so far."""
        return sum(self.counts.values())

    @property
    def last_t(self) -> Optional[float]:
        """Time of the newest event (None before the first)."""
        return self._last_t

    def emit(self, kind: str, t: float, **fields) -> dict:
        """Build, validate and write one event; returns the event dict."""
        event = {"kind": kind, "t": float(t)}
        event.update(fields)
        validate_event(event)
        if self._last_t is not None and event["t"] < self._last_t:
            raise TraceError(
                f"watch events must not go backwards in time "
                f"({event['t']} after {self._last_t})")
        self._last_t = event["t"]
        if self._handle is not None:
            self._handle.write(json.dumps(event, default=str))
            self._handle.write("\n")
            self._handle.flush()
        if self._keep:
            self.events.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        _obs.counter("watch.events").inc()
        return event

    def emit_alert(self, firing: AlertFiring) -> dict:
        """Emit one rule firing, mirrored into the telemetry session."""
        event = self.emit(
            "alert", firing.time, rule=firing.rule, severity=firing.severity,
            signal=firing.signal, value=firing.value, message=firing.message,
        )
        _obs.record_event("alert", sim_time=firing.time, rule=firing.rule,
                          severity=firing.severity, signal=firing.signal,
                          value=firing.value)
        _obs.counter("watch.alerts_fired").inc()
        _obs.counter(f"watch.alerts_fired.{firing.rule}").inc()
        return event


class LiveWatcher:
    """Attach an online monitor + alert rules to a live sample stream.

    One watcher observes one counter.  Feed it samples directly
    (:meth:`feed`), replay a recorded bundle (:meth:`replay`), or attach
    it to a running machine (:meth:`attach` before ``machine.run()``),
    then :meth:`finalize` to close the stream with ``crash``/``end``
    events and get the session summary.

    Parameters
    ----------
    monitor:
        The :class:`~repro.core.online.OnlineAgingMonitor` to drive (its
        ``on_indicator``/``on_state_change`` callbacks are taken over).
    writer:
        Destination event stream (a fresh in-memory one by default).
    engine:
        Optional :class:`~repro.obs.alerts.AlertEngine`; counter samples
        are offered under the counter's name, indicator points under
        ``"indicator"``.
    counter:
        Counter this watcher observes.
    status_every:
        Simulated seconds between ``status`` heartbeat events (0
        disables them).
    sample_every:
        Record every Nth counter sample in the stream (decimation keeps
        multi-day streams tailable; the monitor always sees every
        sample).  0 suppresses ``sample`` events entirely.
    on_status:
        Optional callback receiving each status event (CLI live lines).
    """

    def __init__(
        self,
        monitor,
        *,
        writer: Optional[EventStreamWriter] = None,
        engine: Optional[AlertEngine] = None,
        counter: str = "AvailableBytes",
        status_every: float = 600.0,
        sample_every: int = 1,
        on_status: Optional[Callable[[dict], None]] = None,
    ) -> None:
        if sample_every < 0:
            raise TraceError(f"sample_every must be >= 0, got {sample_every}")
        if status_every < 0:
            raise TraceError(f"status_every must be >= 0, got {status_every}")
        self.monitor = monitor
        self.writer = writer if writer is not None else EventStreamWriter(keep=True)
        self.engine = engine
        self.counter = counter
        self.status_every = status_every
        self.sample_every = sample_every
        self.on_status = on_status
        self.n_samples = 0
        self.n_dropped = 0
        self._n_indicators = 0
        self._last_value: Optional[float] = None
        self._last_status_t: Optional[float] = None
        self._finalized = False
        self._header_written = False
        self._cursor = 0
        monitor.on_indicator = self._on_indicator
        monitor.on_state_change = self._on_state_change

    # -- stream lifecycle ------------------------------------------------------

    def write_header(self, source: Dict[str, object], *, t: float = 0.0) -> None:
        """Open the stream: schema, source identity, config, rule set."""
        if self._header_written:
            raise TraceError("watch stream header already written")
        monitor = self.monitor
        rules = [] if self.engine is None else [
            {"name": r.name, "signal": r.signal, "kind": r.kind,
             "condition": r.condition, "severity": r.severity}
            for r in self.engine.rules
        ]
        self.writer.emit(
            "header", t, schema=WATCH_SCHEMA, counter=self.counter,
            source=dict(source),
            monitor={
                "chunk_size": monitor.chunk_size,
                "history": monitor.history,
                "indicator_window": monitor.indicator_window,
                "indicator": monitor.indicator,
                "n_warmup": monitor.n_warmup,
                "n_calibration": monitor.n_calibration,
                "cusum_k": monitor.cusum_k,
                "cusum_h": monitor.cusum_h,
            },
            rules=rules,
        )
        self._header_written = True

    def feed(self, t: float, value: float) -> None:
        """Push one counter sample through stream + rules + monitor.

        Non-finite samples (collector gaps in replayed traces) are
        counted and dropped — a gap must never become a spurious alarm.
        """
        if not self._header_written:
            raise TraceError("write_header() must precede feed()")
        t = float(t)
        value = float(value)
        if not math.isfinite(t) or not math.isfinite(value):
            self.n_dropped += 1
            _obs.counter("watch.dropped_samples").inc()
            return
        self.n_samples += 1
        self._last_value = value
        if self.sample_every and (self.n_samples - 1) % self.sample_every == 0:
            self.writer.emit("sample", t, value=value)
        if self.engine is not None:
            for firing in self.engine.observe(self.counter, t, value):
                self.writer.emit_alert(firing)
        self.monitor.update(t, value)
        if self._last_status_t is None:
            self._last_status_t = t
        elif self.status_every and t - self._last_status_t >= self.status_every:
            self._last_status_t = t
            self._emit_status(t)

    def replay(self, bundle) -> Dict[str, object]:
        """Replay a recorded :class:`~repro.trace.series.TraceBundle`.

        Writes the header (source type ``replay``), feeds every sample
        of the watched counter, then finalizes against the bundle's
        ground-truth crash metadata.  Returns the end-event summary.
        """
        if self.counter not in bundle:
            raise TraceError(
                f"no counter {self.counter!r} in bundle; "
                f"available: {bundle.names}")
        series = bundle[self.counter]
        meta = bundle.metadata
        source = {"type": "replay"}
        for key in ("os_profile", "seed", "duration"):
            if key in meta:
                source[key] = meta[key]
        self.write_header(source, t=float(series.times[0]))
        for t, value in zip(series.times, series.values):
            self.feed(t, value)
        crash_time = meta.get("crash_time")
        return self.finalize(
            crash_time=None if crash_time is None else float(crash_time),
            crash_reason=meta.get("crash_reason"),
        )

    # -- live attachment -------------------------------------------------------

    def attach(self, machine, *, poll_interval: Optional[float] = None) -> None:
        """Schedule this watcher as an in-sim periodic poller.

        Call before ``machine.run()``; the watcher drains new sampler
        output every ``poll_interval`` simulated seconds (default: 16
        sampling intervals), so events interleave with the simulation at
        the right times.  After the run, :meth:`finalize` drains the
        tail and closes the stream.
        """
        interval = (poll_interval if poll_interval is not None
                    else 16.0 * machine.config.sampling_interval)
        if interval <= 0:
            raise TraceError(f"poll_interval must be positive, got {interval}")
        self._machine = machine
        if not self._header_written:
            config = machine.config
            self.write_header({
                "type": "simulation",
                "os_profile": config.os_profile,
                "seed": config.seed,
                "max_run_seconds": config.max_run_seconds,
            })

        def poll() -> None:
            self.drain(machine.sampler)
            if not machine.crashed:
                machine.sim.schedule_in(interval, poll, label="watch.poll")

        machine.sim.schedule_in(interval, poll, label="watch.poll")

    def drain(self, sampler) -> int:
        """Feed every sample collected since the last drain; returns count."""
        times, values, self._cursor = sampler.read_since(self.counter, self._cursor)
        for t, value in zip(times, values):
            self.feed(t, value)
        return len(times)

    def finalize(
        self,
        *,
        crash_time: Optional[float] = None,
        crash_reason: Optional[str] = None,
        t: Optional[float] = None,
    ) -> Dict[str, object]:
        """Close the stream: drain the tail, emit ``crash`` + ``end``.

        Returns the ``end`` event (the machine-readable session summary).
        """
        if self._finalized:
            raise TraceError("watch session already finalized")
        self._finalized = True
        machine = getattr(self, "_machine", None)
        if machine is not None:
            self.drain(machine.sampler)
            if crash_time is None and machine.crashed:
                crash_time = machine.crash_time
                crash_reason = machine.crash_reason
        end_t = t
        if end_t is None:
            end_t = self.writer.last_t if self.writer.last_t is not None else 0.0
        if crash_time is not None:
            end_t = max(end_t, float(crash_time))
            self.writer.emit("crash", float(crash_time),
                             reason=crash_reason or "unknown")
        alarm_time = self.monitor.alarm_time
        lead = None
        if alarm_time is not None and crash_time is not None:
            lead = float(crash_time) - float(alarm_time)
        alerts = {} if self.engine is None else self.engine.counts()
        end = self.writer.emit(
            "end", end_t,
            n_samples=self.n_samples,
            n_dropped=self.n_dropped,
            n_indicators=self._n_indicators,
            state=self.monitor.state,
            alarm_time=alarm_time,
            crash_time=crash_time,
            crash_reason=crash_reason,
            lead_time=lead,
            alerts=alerts,
        )
        _log.info("watch session finished", n_samples=self.n_samples,
                  state=self.monitor.state,
                  alarm_time=alarm_time if alarm_time is not None else "none",
                  crash_time=crash_time if crash_time is not None else "none")
        return end

    # -- monitor callbacks -----------------------------------------------------

    def _on_indicator(self, t: float, value: float) -> None:
        self._n_indicators += 1
        self.writer.emit("indicator", t, value=value, n=self._n_indicators)
        if self.engine is not None:
            for firing in self.engine.observe("indicator", t, value):
                self.writer.emit_alert(firing)

    def _on_state_change(self, t: float, old: str, new: str) -> None:
        self.writer.emit("detector_state", t, state=new, previous=old)
        if new == "alarmed":
            point = float(self.monitor.indicator_history[-1])
            self.writer.emit(
                "alarm", t, indicator=point,
                value=point, baseline=self.monitor.baseline_mean,
            )
            _obs.counter("watch.alarms").inc()

    # -- status ----------------------------------------------------------------

    def _emit_status(self, t: float) -> None:
        event = self.writer.emit(
            "status", t,
            state=self.monitor.state,
            n_samples=self.n_samples,
            n_indicators=self._n_indicators,
            alerts_fired=0 if self.engine is None else self.engine.total_fired,
            value=self._last_value,
        )
        if self.on_status is not None:
            self.on_status(event)
