"""Self-contained HTML dashboards for watch streams and campaigns.

Renderers producing a single HTML file with **no external resources** —
styling is an embedded stylesheet, charts are inline SVG, interactivity
is a small embedded script — so a dashboard can be attached to a CI
run, mailed, or opened from disk years later:

* :func:`render_run_dashboard` — one watch session from its
  ``repro.watch-events/1`` stream: KPI tiles (detector state, alarm /
  crash / lead times, alert count), the counter trajectory and the
  Hölder-indicator trajectory as line charts with alarm, crash and
  alert-rule markers, and the full alert table.
* :func:`render_campaign_dashboard` — a whole campaign aggregated from
  run manifests alone: per-cell detection rate, the lead-time
  distribution as a strip plot, and the false-alarm table.  When the
  campaign carried per-run peak decision statistics (a detector
  tournament grid), the page grows a scoreboard section: the detector
  league table, per-detector ROC curves as one inline SVG, and the
  per-(cell, detector) breakdown.  When a campaign carried a timeline
  (``--timeline``), time-series panels and a cost breakdown are
  appended via :func:`timeline_section`.
* :func:`render_timeline_dashboard` — the history of one campaign from
  its ``repro.timeline/1`` artifact alone: throughput, per-worker RSS,
  ETA convergence and annotation markers, plus the ``repro.costs/1``
  phase breakdown when a cost profile is supplied.

Series with many thousands of samples are decimated per x-bucket to
(min, max) pairs before plotting, so excursions survive while the SVG
stays small.  The SVG/page primitives live in :mod:`repro.obs._chart`.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import TraceError, ValidationError
from ._chart import (
    _CHART_W,
    _PAD_B,
    _PAD_R,
    _PAD_T,
    _Marker,
    _esc,
    _fmt,
    _fmt_time,
    _line_chart,
    _median,
    _page,
    _ticks,
    _tile,
    multi_line_chart,
)
from .atomic import atomic_write_text

__all__ = [
    "render_run_dashboard",
    "render_campaign_dashboard",
    "render_timeline_dashboard",
    "campaign_cells_from_manifests",
    "timeline_section",
    "write_dashboard",
]


# -- run dashboard -------------------------------------------------------------

def render_run_dashboard(events: Sequence[dict], *, title: Optional[str] = None) -> str:
    """Render one watch session's event stream as a standalone HTML page."""
    from .live import validate_stream

    validate_stream(events)
    header = events[0]
    by_kind: Dict[str, List[dict]] = {}
    for event in events:
        by_kind.setdefault(event["kind"], []).append(event)
    end = by_kind.get("end", [{}])[-1]
    counter = header.get("counter", "counter")
    source = header.get("source", {})

    alarm_time = end.get("alarm_time")
    crash_time = end.get("crash_time")
    lead = end.get("lead_time")
    state = end.get("state", "unknown")
    alerts = by_kind.get("alert", [])

    # -- KPI tiles
    state_css = "alarmed" if state == "alarmed" else (
        "quiet" if state == "watching" else "")
    tiles = [
        _tile("Detector state", str(state), css=state_css),
        _tile("Alarm", _fmt_time(alarm_time),
              "first detector warning" if alarm_time is not None
              else "never fired"),
        _tile("Crash", _fmt_time(crash_time),
              str(end.get("crash_reason") or "") if crash_time is not None
              else "survived"),
        _tile("Lead time", _fmt_time(lead),
              "warning → crash" if lead is not None else ""),
        _tile("Samples", _fmt(end.get("n_samples")),
              f"{_fmt(end.get('n_indicators'))} indicator points"),
        _tile("Alerts fired", _fmt(len(alerts)),
              f"{len(header.get('rules', []))} rule(s) loaded"),
    ]

    # -- markers shared by both charts
    markers: List[_Marker] = []
    if alarm_time is not None:
        markers.append(_Marker(float(alarm_time), "alarm", "alarm",
                               title=f"alarm at {_fmt_time(alarm_time)}"))
    if crash_time is not None:
        markers.append(_Marker(float(crash_time), "crash", "crash",
                               title=f"crash at {_fmt_time(crash_time)} "
                                     f"({end.get('crash_reason') or 'unknown'})"))
    alert_markers = [
        _Marker(float(e["t"]), e.get("rule", "alert"),
                e.get("severity", "info"), dot=True,
                title=f"{e.get('rule')} [{e.get('severity')}] "
                      f"at {_fmt_time(e['t'])}")
        for e in alerts
    ]

    samples = by_kind.get("sample", [])
    counter_chart = _line_chart(
        "counter", f"{counter} (sampled)",
        [e["t"] for e in samples], [e["value"] for e in samples],
        series_css="s1", markers=markers + alert_markers,
        x_max=end.get("t"),
    )
    indicators = by_kind.get("indicator", [])
    baseline = None
    for e in by_kind.get("alarm", []):
        baseline = e.get("baseline")
    indicator_chart = _line_chart(
        "indicator",
        f"Hölder indicator ({header.get('monitor', {}).get('indicator', 'mean')} h)",
        [e["t"] for e in indicators], [e["value"] for e in indicators],
        series_css="s3", y_format="plain", markers=markers,
        baseline=baseline, baseline_label="calibrated baseline",
        x_max=end.get("t"),
    )

    # -- alert table
    if alerts:
        rows = "".join(
            f"<tr><td class=\"num\">{_fmt_time(e['t'])}</td>"
            f"<td>{_esc(e.get('rule'))}</td>"
            f"<td><span class=\"sev {_esc(e.get('severity'))}\">"
            f"{'&#9650;' if e.get('severity') == 'critical' else '&#9679;'} "
            f"{_esc(e.get('severity'))}</span></td>"
            f"<td>{_esc(e.get('signal'))}</td>"
            f"<td class=\"num\">{_fmt(e.get('value'))}</td>"
            f"<td>{_esc(e.get('message', ''))}</td></tr>"
            for e in alerts
        )
        alert_table = (
            '<figure class="chart"><figcaption>Alert firings</figcaption>'
            '<table class="data"><thead><tr><th>time</th><th>rule</th>'
            '<th>severity</th><th>signal</th><th>value</th><th>condition</th>'
            f'</tr></thead><tbody>{rows}</tbody></table></figure>'
        )
    else:
        alert_table = ('<figure class="chart"><figcaption>Alert firings'
                       '</figcaption><p class="empty">no alerts fired</p>'
                       '</figure>')

    # -- accessible table view of the indicator trajectory
    indicator_rows = "".join(
        f"<tr><td class=\"num\">{e['n']}</td>"
        f"<td class=\"num\">{_fmt_time(e['t'])}</td>"
        f"<td class=\"num\">{e['value']:.4f}</td></tr>"
        for e in indicators
    )
    table_view = (
        '<details class="tableview"><summary>Indicator data (table view)'
        '</summary><table class="data"><thead><tr><th>#</th><th>time</th>'
        f'<th>indicator</th></tr></thead><tbody>{indicator_rows}</tbody>'
        '</table></details>'
    ) if indicators else ""

    source_bits = [f"{k}={source[k]}" for k in ("type", "os_profile", "seed")
                   if k in source]
    subtitle = (f"counter {counter} · {' · '.join(source_bits)}"
                if source_bits else f"counter {counter}")
    body = (f'<div class="tiles">{"".join(tiles)}</div>'
            + counter_chart + indicator_chart + alert_table + table_view)
    footer = (f"schema {header.get('schema')} · {len(events)} events · "
              f"generated by repro.obs.dashboard")
    return _page(title or "Live aging watch — run report", subtitle, body, footer)


# -- campaign dashboard --------------------------------------------------------

def campaign_cells_from_manifests(manifests: Sequence) -> Dict[str, dict]:
    """Merge the ``outcome.cells`` payloads of campaign run manifests.

    Accepts any mix of manifests; non-campaign ones (no ``cells`` block
    with run records) are ignored.  Duplicate cell names across
    manifests get a ``name#k`` suffix rather than silently merging
    different campaigns.
    """
    cells: Dict[str, dict] = {}
    for manifest in manifests:
        payload = manifest.outcome.get("cells")
        if not isinstance(payload, Mapping):
            continue
        for name, cell in payload.items():
            if not isinstance(cell, Mapping) or "runs" not in cell:
                continue
            key = name
            k = 2
            while key in cells:
                key = f"{name}#{k}"
                k += 1
            cells[key] = dict(cell)
    return cells


def render_campaign_dashboard(
    manifests: Sequence = (), *,
    cells: Optional[Mapping[str, dict]] = None,
    scoreboard: Optional[Mapping] = None,
    timeline: Optional[Sequence[Mapping]] = None,
    costs: Optional[Mapping] = None,
    title: Optional[str] = None,
) -> str:
    """Render per-cell detection quality aggregated from run manifests.

    ``cells`` bypasses manifest extraction when the caller already holds
    a cells payload (e.g. ``repro campaign --dashboard`` rendering the
    results it just computed).  ``scoreboard`` injects a prebuilt
    ``repro.scoreboard/1`` artifact for the detector-tournament section;
    when omitted, one is built from the cells whenever they carry peak
    decision statistics.  ``timeline`` (a loaded ``repro.timeline/1``
    stream) appends the time-series panels via :func:`timeline_section`,
    and ``costs`` (a ``repro.costs/1`` profile) the cost breakdown.
    """
    if cells is not None:
        cells = dict(cells)
    else:
        cells = campaign_cells_from_manifests(manifests)
    if not cells:
        raise TraceError(
            "no campaign cells found in manifests — run "
            "`python -m repro campaign --telemetry-out DIR` to produce them")
    if scoreboard is None and any(
            run.get("peak_healthy") is not None
            or run.get("peak_precrash") is not None
            for cell in cells.values() for run in cell.get("runs", [])):
        # Imported lazily: analysis imports obs, so a module-level import
        # here would be circular.
        from ..analysis.scoreboard import build_scoreboard
        scoreboard = build_scoreboard(cells)

    total_runs = sum(len(c.get("runs", [])) for c in cells.values())
    total_crashed = sum(int(c.get("crashed", 0)) for c in cells.values())
    total_detected = sum(int(c.get("detected", 0)) for c in cells.values())
    total_false = sum(int(c.get("false_alarms", 0)) for c in cells.values())
    all_leads = [float(v) for c in cells.values()
                 for v in c.get("lead_times", [])]
    rate = (100.0 * total_detected / total_crashed) if total_crashed else None

    tiles = [
        _tile("Cells", str(len(cells))),
        _tile("Runs", str(total_runs), f"{total_crashed} crashed"),
        _tile("Detection rate",
              "—" if rate is None else f"{rate:.0f}%",
              f"{total_detected}/{total_crashed} crashes warned",
              css="quiet" if rate is not None and rate >= 75 else ""),
        _tile("Median lead",
              _fmt_time(_median(all_leads)) if all_leads else "—",
              "across detected crashes"),
        _tile("False alarms", str(total_false),
              css="alarmed" if total_false else "quiet"),
    ]

    # -- per-cell table
    rows = []
    for name, cell in cells.items():
        n_runs = len(cell.get("runs", []))
        crashed = int(cell.get("crashed", 0))
        detected = int(cell.get("detected", 0))
        cell_rate = f"{100.0 * detected / crashed:.0f}%" if crashed else "—"
        median_lead = cell.get("median_lead")
        rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td class=\"num\">{n_runs}</td>"
            f"<td class=\"num\">{crashed}</td>"
            f"<td class=\"num\">{detected}</td>"
            f"<td class=\"num\">{int(cell.get('missed', 0))}</td>"
            f"<td class=\"num\">{cell_rate}</td>"
            f"<td class=\"num\">{_fmt_time(median_lead)}</td>"
            f"<td class=\"num\">{int(cell.get('false_alarms', 0))}</td></tr>"
        )
    cell_table = (
        '<figure class="chart"><figcaption>Detection quality by cell'
        '</figcaption><table class="data"><thead><tr><th>cell</th>'
        '<th>runs</th><th>crashed</th><th>detected</th><th>missed</th>'
        '<th>rate</th><th>median lead</th><th>false alarms</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table></figure>'
    )

    strip = _lead_strip_chart(cells)

    # -- false alarm table
    fa_rows = []
    for name, cell in cells.items():
        for run in cell.get("runs", []):
            if not run.get("crashed") and run.get("alarm_time") is not None:
                fa_rows.append(
                    f"<tr><td>{_esc(name)}</td>"
                    f"<td class=\"num\">{run.get('seed')}</td>"
                    f"<td class=\"num\">{_fmt_time(run.get('alarm_time'))}</td>"
                    f"<td class=\"num\">{_fmt_time(run.get('duration'))}</td>"
                    "</tr>")
    if fa_rows:
        fa_table = (
            '<figure class="chart"><figcaption>False alarms (healthy runs '
            'that warned)</figcaption><table class="data"><thead><tr>'
            '<th>cell</th><th>seed</th><th>alarm</th><th>run length</th>'
            f'</tr></thead><tbody>{"".join(fa_rows)}</tbody></table></figure>'
        )
    else:
        fa_table = ('<figure class="chart"><figcaption>False alarms'
                    '</figcaption><p class="empty">none — every warning '
                    'preceded a real crash</p></figure>')

    tournament = (_scoreboard_section(scoreboard)
                  if scoreboard is not None else "")
    history = (timeline_section(timeline, costs=costs)
               if timeline else (_costs_section(costs) if costs else ""))
    body = (f'<div class="tiles">{"".join(tiles)}</div>'
            + cell_table + tournament + strip + fa_table + history)
    footer = (f"{len(manifests)} manifest(s) · {len(cells)} cell(s) · "
              "generated by repro.obs.dashboard")
    return _page(title or "Aging detection campaign — dashboard",
                 f"{total_runs} runs · aggregated from run manifests",
                 body, footer)


def _lead_strip_chart(cells: Dict[str, dict]) -> str:
    """Lead-time distribution: one dot per detected crash, one row per cell."""
    with_leads = [(name, [float(v) for v in cell.get("lead_times", [])])
                  for name, cell in cells.items()]
    with_leads = [(name, leads) for name, leads in with_leads if leads]
    if not with_leads:
        return ('<figure class="chart"><figcaption>Lead-time distribution'
                '</figcaption><p class="empty">no detected crashes to plot'
                '</p></figure>')
    x_hi = max(max(leads) for _, leads in with_leads)
    x_lo = 0.0
    row_h = 30
    height = _PAD_T + row_h * len(with_leads) + _PAD_B
    plot_w = _CHART_W - 170 - _PAD_R

    def sx(v: float) -> float:
        return 170 + plot_w * (v - x_lo) / ((x_hi - x_lo) or 1.0)

    parts = [f'<svg viewBox="0 0 {_CHART_W} {height}" role="img" '
             f'aria-label="Lead-time distribution">']
    for tick in _ticks(x_lo, x_hi, 6):
        if tick < x_lo or tick > x_hi:
            continue
        x = sx(tick)
        parts.append(f'<line class="grid" x1="{x:.1f}" y1="{_PAD_T}" '
                     f'x2="{x:.1f}" y2="{height - _PAD_B}"/>')
        parts.append(f'<text class="tick" x="{x:.1f}" y="{height - _PAD_B + 16}" '
                     f'text-anchor="middle">{_fmt(tick)}s</text>')
    for i, (name, leads) in enumerate(with_leads):
        y = _PAD_T + row_h * i + row_h / 2
        parts.append(f'<text class="tick" x="160" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{_esc(name)}</text>')
        parts.append(f'<line class="axis" x1="170" y1="{y:.1f}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y:.1f}"/>')
        for lead in leads:
            parts.append(f'<circle class="dot" cx="{sx(lead):.1f}" '
                         f'cy="{y:.1f}" r="5">'
                         f'<title>{_esc(name)}: lead {_fmt_time(lead)}'
                         f'</title></circle>')
    parts.append("</svg>")
    return ('<figure class="chart"><figcaption>Lead-time distribution '
            '(one dot per detected crash)</figcaption>'
            + "".join(parts) + "</figure>")


# -- detector tournament (scoreboard) ------------------------------------------

# Series classes cycled over detectors in the ROC chart and legend.
_ROC_SERIES = ("s1", "s3", "s2", "s4", "s5", "s6")


def _fmt_ratio(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "—"
    return f"{float(value):.3f}"


def _roc_chart(detectors: Mapping[str, dict]) -> str:
    """All detectors' pooled ROC curves in one square inline SVG."""
    curves = [(name, det["roc"]) for name, det in detectors.items()
              if det.get("roc")]
    if not curves:
        return ('<figure class="chart"><figcaption>ROC (peak decision '
                'statistic)</figcaption><p class="empty">no runs carried '
                'peak statistics — rerun the campaign with score '
                'collection on</p></figure>')
    size, pad = 320, 40
    plot = size - 2 * pad

    def sx(v: float) -> float:
        return pad + plot * v

    def sy(v: float) -> float:
        return pad + plot * (1.0 - v)

    parts = [f'<svg viewBox="0 0 {size} {size}" role="img" '
             f'aria-label="ROC curves by detector">']
    for tick in (0.0, 0.25, 0.5, 0.75, 1.0):
        parts.append(f'<line class="grid" x1="{sx(tick):.1f}" y1="{pad}" '
                     f'x2="{sx(tick):.1f}" y2="{size - pad}"/>')
        parts.append(f'<line class="grid" x1="{pad}" y1="{sy(tick):.1f}" '
                     f'x2="{size - pad}" y2="{sy(tick):.1f}"/>')
        parts.append(f'<text class="tick" x="{sx(tick):.1f}" '
                     f'y="{size - pad + 14}" text-anchor="middle">'
                     f'{tick:g}</text>')
        parts.append(f'<text class="tick" x="{pad - 6}" '
                     f'y="{sy(tick) + 3.5:.1f}" text-anchor="end">'
                     f'{tick:g}</text>')
    parts.append(f'<line class="ref" x1="{sx(0):.1f}" y1="{sy(0):.1f}" '
                 f'x2="{sx(1):.1f}" y2="{sy(1):.1f}"/>')
    parts.append(f'<text class="tick" x="{size / 2:.0f}" y="{size - 6}" '
                 f'text-anchor="middle">false positive rate</text>')
    parts.append(f'<text class="tick" x="12" y="{size / 2:.0f}" '
                 f'text-anchor="middle" transform="rotate(-90 12 '
                 f'{size / 2:.0f})">true positive rate</text>')
    legend = []
    for i, (name, roc) in enumerate(curves):
        css = _ROC_SERIES[i % len(_ROC_SERIES)]
        points = " ".join(
            f"{sx(float(f)):.1f},{sy(float(t)):.1f}"
            for f, t in zip(roc["fpr"], roc["tpr"]))
        parts.append(f'<polyline class="line {css}" points="{points}">'
                     f'<title>{_esc(name)}</title></polyline>')
        area = detectors[name].get("auc")
        legend.append(f'<span><span class="swatch {css}"></span>'
                      f'{_esc(name)} (AUC {_fmt_ratio(area)})</span>')
    parts.append("</svg>")
    return ('<figure class="chart"><figcaption>ROC — peak decision '
            'statistic, pre-crash vs healthy segments</figcaption>'
            + "".join(parts)
            + f'<div class="legend">{"".join(legend)}</div></figure>')


def _scoreboard_section(scoreboard: Mapping) -> str:
    """League table + ROC chart + per-(cell, detector) breakdown."""
    detectors = scoreboard.get("detectors", {})
    league_rows = []
    for name, det in detectors.items():
        crashed = int(det.get("crashed", 0))
        detected = int(det.get("detected", 0))
        rate = f"{100.0 * detected / crashed:.0f}%" if crashed else "—"
        league_rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td class=\"num\">{int(det.get('n_runs', 0))}</td>"
            f"<td class=\"num\">{crashed}</td>"
            f"<td class=\"num\">{detected}</td>"
            f"<td class=\"num\">{rate}</td>"
            f"<td class=\"num\">{int(det.get('premature', 0))}</td>"
            f"<td class=\"num\">{int(det.get('missed', 0))}</td>"
            f"<td class=\"num\">{_fmt_time(det.get('lead_p50'))}</td>"
            f"<td class=\"num\">{_fmt_time(det.get('lead_p90'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(det.get('false_alarms_per_hour'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(det.get('auc'))}</td></tr>"
        )
    league = (
        '<figure class="chart"><figcaption>Detector league table'
        '</figcaption><table class="data"><thead><tr><th>detector</th>'
        '<th>runs</th><th>crashed</th><th>detected</th><th>rate</th>'
        '<th>premature</th><th>missed</th><th>lead p50</th><th>lead p90</th>'
        '<th>FA/h</th><th>AUC</th></tr></thead>'
        f'<tbody>{"".join(league_rows)}</tbody></table></figure>'
    )
    grid_rows = []
    for name, cell in scoreboard.get("cells", {}).items():
        grid_rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td>{_esc(cell.get('detector'))}</td>"
            f"<td class=\"num\">{int(cell.get('n_runs', 0))}</td>"
            f"<td class=\"num\">{_fmt_ratio(cell.get('detection_rate'))}</td>"
            f"<td class=\"num\">{_fmt_time(cell.get('lead_p50'))}</td>"
            f"<td class=\"num\">{_fmt_time(cell.get('lead_p90'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(cell.get('false_alarms_per_hour'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(cell.get('auc'))}</td></tr>"
        )
    grid = (
        '<details class="tableview"><summary>Scenario × detector grid '
        '(per-cell breakdown)</summary><table class="data"><thead><tr>'
        '<th>cell</th><th>detector</th><th>runs</th><th>rate</th>'
        '<th>lead p50</th><th>lead p90</th><th>FA/h</th><th>AUC</th>'
        f'</tr></thead><tbody>{"".join(grid_rows)}</tbody></table></details>'
    )
    return ('<h2 id="scoreboard" style="font-size:16px;margin:8px 0">'
            'Detector tournament</h2>'
            + league + _roc_chart(detectors) + grid)


# -- campaign timeline ---------------------------------------------------------

# Annotation events rendered as baseline dots, reusing the existing
# severity mark classes; worker deaths and flight dumps are disruptive
# enough to earn full-height event lines (crash / alarm styling).
_ANNOTATION_DOT_CSS = {
    "retry": "warning",
    "timeout": "warning",
    "unit-failed": "warning",
    "alert": "warning",
    "round": "info",
    "campaign-begin": "info",
    "campaign-end": "info",
}
_ANNOTATION_LINE_CSS = {
    "worker-death": "crash",
    "flight-dump": "alarm",
}

# Detail fields worth surfacing in an annotation marker's tooltip.
_ANNOTATION_DETAIL_KEYS = (
    "index", "attempt", "error_kind", "reason", "round", "count", "status",
    "cells", "units", "workers", "executed",
)


def _annotation_title(record: Mapping) -> str:
    event = str(record.get("event", "note"))
    bits = [f"{key}={record[key]}" for key in _ANNOTATION_DETAIL_KEYS
            if record.get(key) is not None]
    base = f"{event} at {_fmt_time(record.get('t'))}"
    return f"{base} ({', '.join(bits)})" if bits else base


def _timeline_markers(annotations: Sequence[Mapping]) -> List[_Marker]:
    markers: List[_Marker] = []
    for record in annotations:
        event = str(record.get("event", "note"))
        t = float(record.get("t", 0.0))
        if event in _ANNOTATION_LINE_CSS:
            markers.append(_Marker(t, event, _ANNOTATION_LINE_CSS[event],
                                   title=_annotation_title(record)))
        else:
            markers.append(_Marker(t, event,
                                   _ANNOTATION_DOT_CSS.get(event, "info"),
                                   dot=True,
                                   title=_annotation_title(record)))
    return markers


def timeline_section(records: Sequence[Mapping], *,
                     costs: Optional[Mapping] = None) -> str:
    """The timeline panels as an HTML block (no page chrome).

    Validates ``records`` as a ``repro.timeline/1`` stream, then renders
    summary tiles, the units/s throughput chart, per-worker RSS, ETA
    convergence — each with annotation markers — and, when a
    ``repro.costs/1`` profile is supplied, the cost breakdown.
    Appended to campaign dashboards and used standalone by
    :func:`render_timeline_dashboard`.
    """
    from .timeline import timeline_summary

    summary = timeline_summary(records)  # validates the stream
    frames = [r for r in records if r.get("kind") == "frame"]
    annotations = [r for r in records if r.get("kind") == "annotation"]
    markers = _timeline_markers(annotations)
    x_max = records[-1].get("t")

    final = summary.get("final_progress") or {}
    by_event = summary["annotations_by_event"]
    disruptions = (by_event.get("retry", 0) + by_event.get("timeout", 0)
                   + by_event.get("worker-death", 0))
    peak_rate = summary["peak_units_per_second"]
    tiles = [
        _tile("Duration", _fmt_time(summary["duration_seconds"]),
              f"{summary['n_frames']} frames"),
        _tile("Units done", _fmt(final.get("units_done")),
              f"{_fmt(final.get('units_failed'))} failed",
              css="quiet" if not final.get("units_failed") else "alarmed"),
        _tile("Peak throughput",
              "—" if peak_rate is None else f"{float(peak_rate):.2f}/s",
              "units per second"),
        _tile("Workers", str(summary["max_workers_seen"]),
              f"peak RSS {_fmt(summary['peak_worker_rss_bytes'], 'B')}"),
        _tile("Parent peak RSS",
              _fmt(summary["peak_parent_rss_bytes"], "B")),
        _tile("Disruptions", str(disruptions),
              "retries + timeouts + deaths",
              css="alarmed" if disruptions else "quiet"),
    ]

    def progress_series(key: str) -> Tuple[List[float], List[float]]:
        ts: List[float] = []
        vs: List[float] = []
        for frame in frames:
            value = (frame.get("progress") or {}).get(key)
            if isinstance(value, (int, float)):
                ts.append(float(frame["t"]))
                vs.append(float(value))
        return ts, vs

    tp_t, tp_v = progress_series("units_per_second")
    throughput = _line_chart(
        "tl-throughput", "Throughput (units/s)", tp_t, tp_v,
        series_css="s1", y_format="plain", markers=markers, x_max=x_max)

    rss_series: Dict[str, Tuple[List[float], List[float]]] = {}
    for frame in frames:
        resources = frame.get("resources") or {}
        t = float(frame["t"])
        parent = resources.get("parent_rss_bytes")
        if isinstance(parent, (int, float)):
            ts, vs = rss_series.setdefault("parent", ([], []))
            ts.append(t)
            vs.append(float(parent))
        for worker in resources.get("workers") or []:
            rss = worker.get("rss_bytes")
            if isinstance(rss, (int, float)):
                label = f"worker {worker.get('ordinal')}"
                ts, vs = rss_series.setdefault(label, ([], []))
                ts.append(t)
                vs.append(float(rss))
    rss_chart = multi_line_chart(
        "tl-rss", "Resident set size (parent + workers)",
        [(label, ts, vs) for label, (ts, vs) in rss_series.items()],
        markers=markers, x_max=x_max)

    eta_t, eta_v = progress_series("eta_seconds")
    eta_chart = _line_chart(
        "tl-eta", "ETA convergence (estimated seconds remaining)",
        eta_t, eta_v, series_css="s3", markers=markers, x_max=x_max)

    cost_html = _costs_section(costs) if costs else ""
    heading = ('<h2 id="timeline" style="font-size:16px;margin:8px 0">'
               'Campaign timeline</h2>')
    return (heading + f'<div class="tiles">{"".join(tiles)}</div>'
            + throughput + rss_chart + eta_chart + cost_html)


_PHASE_FILL = ("var(--series-1)", "var(--series-3)", "var(--series-2)",
               "var(--series-4)", "var(--series-5)", "var(--series-6)")


def _costs_section(costs: Mapping) -> str:
    """Cost-attribution panel: stacked phase-share bar, phase table with
    the CPU view, top cost centers, per-worker breakdown."""
    phases = costs.get("phases", {})
    cpu_phases = (costs.get("cpu") or {}).get("phases", {})

    bar_h = 26
    x = 0.0
    rects: List[str] = []
    legend: List[str] = []
    fill_by_phase: Dict[str, str] = {}
    for i, (name, stats) in enumerate(phases.items()):
        fill = _PHASE_FILL[i % len(_PHASE_FILL)]
        fill_by_phase[name] = fill
        share = float(stats.get("share") or 0.0)
        if share <= 0.0:
            continue
        width = _CHART_W * share
        rects.append(
            f'<rect x="{x:.1f}" y="0" width="{max(width, 1.0):.1f}" '
            f'height="{bar_h}" fill="{fill}">'
            f'<title>{_esc(name)}: {100.0 * share:.1f}% '
            f'({_fmt(stats.get("self_seconds"))}s self)</title></rect>')
        legend.append(
            f'<span><span class="swatch" style="background:{fill}"></span>'
            f'{_esc(name)} {100.0 * share:.1f}%</span>')
        x += width
    if rects:
        share_fig = (
            '<figure class="chart"><figcaption>Wall-time share by phase '
            '(self time, all workers pooled)</figcaption>'
            f'<svg viewBox="0 0 {_CHART_W} {bar_h}" role="img" '
            f'aria-label="Wall-time share by phase">{"".join(rects)}</svg>'
            f'<div class="legend">{"".join(legend)}</div></figure>')
    else:
        share_fig = ('<figure class="chart"><figcaption>Wall-time share '
                     'by phase</figcaption><p class="empty">no attributed '
                     'time</p></figure>')

    phase_rows = []
    for name, stats in phases.items():
        cpu_share = (cpu_phases.get(name) or {}).get("share")
        cpu_cell = ("—" if cpu_share is None
                    else f"{100.0 * float(cpu_share):.1f}%")
        phase_rows.append(
            f"<tr><td><span class=\"swatch\" "
            f"style=\"background:{fill_by_phase.get(name, '')}\"></span>"
            f"{_esc(name)}</td>"
            f"<td class=\"num\">{float(stats.get('self_seconds') or 0.0):.3f}</td>"
            f"<td class=\"num\">{100.0 * float(stats.get('share') or 0.0):.1f}%</td>"
            f"<td class=\"num\">{cpu_cell}</td></tr>")
    phase_table = (
        '<figure class="chart"><figcaption>Phase breakdown '
        f'(wall {_fmt(costs.get("wall_seconds"))}s · attributed '
        f'{_fmt(costs.get("attributed_seconds"))}s · '
        f'{_fmt(costs.get("n_spans"))} spans)</figcaption>'
        '<table class="data"><thead><tr><th>phase</th>'
        '<th>self s</th><th>wall share</th><th>CPU share</th></tr></thead>'
        f'<tbody>{"".join(phase_rows)}</tbody></table></figure>')

    top_rows = []
    for center in costs.get("top_cost_centers", []):
        top_rows.append(
            f"<tr><td>{_esc(center.get('path'))}</td>"
            f"<td>{_esc(center.get('phase'))}</td>"
            f"<td class=\"num\">{int(center.get('calls', 0))}</td>"
            f"<td class=\"num\">{float(center.get('total_seconds') or 0.0):.3f}</td>"
            f"<td class=\"num\">{float(center.get('self_seconds') or 0.0):.3f}</td>"
            f"<td class=\"num\">{100.0 * float(center.get('share') or 0.0):.1f}%"
            "</td></tr>")
    if top_rows:
        top_table = (
            '<figure class="chart"><figcaption>Top cost centers (by self '
            'time)</figcaption><table class="data"><thead><tr><th>span path'
            '</th><th>phase</th><th>calls</th><th>total s</th><th>self s</th>'
            f'<th>share</th></tr></thead><tbody>{"".join(top_rows)}</tbody>'
            '</table></figure>')
    else:
        top_table = ""

    worker_rows = []
    phase_names = list(phases)
    for worker, worker_phases in costs.get("workers", {}).items():
        total = sum(
            float((worker_phases.get(p) or {}).get("self_seconds") or 0.0)
            for p in phase_names)
        cells = "".join(
            f"<td class=\"num\">"
            f"{float((worker_phases.get(p) or {}).get('self_seconds') or 0.0):.3f}"
            "</td>"
            for p in phase_names)
        worker_rows.append(f"<tr><td>{_esc(worker)}</td>"
                           f"<td class=\"num\">{total:.3f}</td>{cells}</tr>")
    if worker_rows:
        phase_heads = "".join(f"<th>{_esc(p)}</th>" for p in phase_names)
        worker_table = (
            '<details class="tableview"><summary>Per-worker phase breakdown '
            '(self seconds)</summary><table class="data"><thead><tr>'
            f'<th>process</th><th>total s</th>{phase_heads}</tr></thead>'
            f'<tbody>{"".join(worker_rows)}</tbody></table></details>')
    else:
        worker_table = ""

    return ('<h2 id="costs" style="font-size:16px;margin:8px 0">'
            'Cost attribution</h2>'
            + share_fig + phase_table + top_table + worker_table)


def render_timeline_dashboard(
    records: Sequence[Mapping], *,
    costs: Optional[Mapping] = None,
    title: Optional[str] = None,
) -> str:
    """Render one campaign's history from its timeline stream alone.

    ``records`` is a loaded ``repro.timeline/1`` stream
    (:func:`~repro.obs.timeline.read_timeline`); ``costs`` optionally
    adds the ``repro.costs/1`` breakdown.  Everything on the page comes
    from the artifact — no live session required.
    """
    body = timeline_section(records, costs=costs)
    header = records[0] if records else {}
    n_frames = sum(1 for r in records if r.get("kind") == "frame")
    n_annotations = sum(1 for r in records if r.get("kind") == "annotation")
    subtitle = (f"{n_frames} frames · {n_annotations} annotations · "
                f"{_fmt(header.get('interval'))}s interval")
    footer = (f"schema {header.get('schema')} · {len(records)} records · "
              "generated by repro.obs.dashboard")
    return _page(title or "Campaign timeline — dashboard", subtitle, body,
                 footer)


# -- entry points --------------------------------------------------------------

def write_dashboard(html_text: str, path: str | os.PathLike) -> str:
    """Write a rendered dashboard to ``path`` (atomically); returns the
    path."""
    if not html_text.startswith("<!DOCTYPE html>"):
        raise ValidationError("not a rendered dashboard (missing doctype)")
    return atomic_write_text(path, html_text)
