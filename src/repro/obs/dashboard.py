"""Self-contained HTML dashboards for watch streams and campaigns.

Two renderers, both producing a single HTML file with **no external
resources** — styling is an embedded stylesheet, charts are inline SVG,
interactivity is a small embedded script — so a dashboard can be
attached to a CI run, mailed, or opened from disk years later:

* :func:`render_run_dashboard` — one watch session from its
  ``repro.watch-events/1`` stream: KPI tiles (detector state, alarm /
  crash / lead times, alert count), the counter trajectory and the
  Hölder-indicator trajectory as line charts with alarm, crash and
  alert-rule markers, and the full alert table.
* :func:`render_campaign_dashboard` — a whole campaign aggregated from
  run manifests alone: per-cell detection rate, the lead-time
  distribution as a strip plot, and the false-alarm table.  When the
  campaign carried per-run peak decision statistics (a detector
  tournament grid), the page grows a scoreboard section: the detector
  league table, per-detector ROC curves as one inline SVG, and the
  per-(cell, detector) breakdown.

Series with many thousands of samples are decimated per x-bucket to
(min, max) pairs before plotting, so excursions survive while the SVG
stays small.
"""

from __future__ import annotations

import html
import json
import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import TraceError, ValidationError
from .atomic import atomic_write_text

__all__ = [
    "render_run_dashboard",
    "render_campaign_dashboard",
    "campaign_cells_from_manifests",
    "write_dashboard",
]


# -- generic plumbing ----------------------------------------------------------

def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: Optional[float], unit: str = "") -> str:
    """Compact human figure: 1,284 / 12.9K / 4.2M / 1.3G."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "—"
    number = float(value)
    for divisor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(number) >= divisor:
            return f"{number / divisor:.1f}{suffix}{unit}"
    if number == int(number):
        return f"{int(number):,}{unit}"
    return f"{number:.3g}{unit}"


def _fmt_time(seconds: Optional[float]) -> str:
    if seconds is None or (isinstance(seconds, float) and math.isnan(seconds)):
        return "—"
    return f"{float(seconds):,.0f}s"


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Clean-number axis ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * magnitude
        if step >= raw:
            break
    start = math.ceil(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-9 * step:
        ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _decimate(times: Sequence[float], values: Sequence[float],
              max_buckets: int = 420) -> Tuple[List[float], List[float]]:
    """Per-bucket (min, max) decimation preserving excursions."""
    n = len(times)
    if n <= 2 * max_buckets:
        return list(times), list(values)
    out_t: List[float] = []
    out_v: List[float] = []
    per = n / max_buckets
    for b in range(max_buckets):
        i0, i1 = int(b * per), min(int((b + 1) * per), n)
        if i0 >= i1:
            continue
        chunk_v = values[i0:i1]
        chunk_t = times[i0:i1]
        lo = min(range(len(chunk_v)), key=chunk_v.__getitem__)
        hi = max(range(len(chunk_v)), key=chunk_v.__getitem__)
        for j in sorted({lo, hi}):
            out_t.append(chunk_t[j])
            out_v.append(chunk_v[j])
    return out_t, out_v


# -- SVG line chart ------------------------------------------------------------

_CHART_W, _CHART_H = 860, 240
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 64, 16, 18, 30


class _Marker:
    """A labelled vertical time marker (alarm, crash, alert firing)."""

    def __init__(self, t: float, label: str, css: str, *, dot: bool = False,
                 title: str = "") -> None:
        self.t = t
        self.label = label
        self.css = css
        self.dot = dot        # tick on the baseline instead of a full line
        self.title = title or label


def _line_chart(
    chart_id: str,
    title: str,
    times: Sequence[float],
    values: Sequence[float],
    *,
    series_css: str = "s1",
    y_format: str = "si",
    markers: Sequence[_Marker] = (),
    baseline: Optional[float] = None,
    baseline_label: str = "",
    x_max: Optional[float] = None,
) -> str:
    """One single-series line chart with time markers, as an HTML block."""
    if not times:
        return (f'<figure class="chart"><figcaption>{_esc(title)}'
                f'</figcaption><p class="empty">no data</p></figure>')
    dt, dv = _decimate(list(times), list(values))
    x_lo, x_hi = float(min(dt)), float(max(dt))
    if x_max is not None:
        x_hi = max(x_hi, float(x_max))
    for m in markers:
        x_hi = max(x_hi, m.t)
    y_vals = list(dv) + ([baseline] if baseline is not None else [])
    y_lo, y_hi = float(min(y_vals)), float(max(y_vals))
    if y_hi == y_lo:
        y_hi, y_lo = y_hi + 1.0, y_lo - 1.0
    span = y_hi - y_lo
    y_lo -= 0.06 * span
    y_hi += 0.06 * span

    plot_w = _CHART_W - _PAD_L - _PAD_R
    plot_h = _CHART_H - _PAD_T - _PAD_B

    def sx(t: float) -> float:
        return _PAD_L + plot_w * (t - x_lo) / (x_hi - x_lo or 1.0)

    def sy(v: float) -> float:
        return _PAD_T + plot_h * (1.0 - (v - y_lo) / (y_hi - y_lo))

    parts: List[str] = []
    parts.append(
        f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" role="img" '
        f'aria-label="{_esc(title)}" data-chart="{_esc(chart_id)}">')
    # gridlines + y ticks
    for tick in _ticks(y_lo, y_hi, 5):
        if tick < y_lo or tick > y_hi:
            continue
        y = sy(tick)
        label = _fmt(tick) if y_format == "si" else f"{tick:g}"
        parts.append(f'<line class="grid" x1="{_PAD_L}" y1="{y:.1f}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{_PAD_L - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{label}</text>')
    # x ticks
    for tick in _ticks(x_lo, x_hi, 6):
        if tick < x_lo or tick > x_hi:
            continue
        x = sx(tick)
        parts.append(f'<text class="tick" x="{x:.1f}" '
                     f'y="{_CHART_H - _PAD_B + 16}" '
                     f'text-anchor="middle">{_fmt(tick)}s</text>')
    # baseline axis
    parts.append(f'<line class="axis" x1="{_PAD_L}" '
                 f'y1="{_CHART_H - _PAD_B}" x2="{_CHART_W - _PAD_R}" '
                 f'y2="{_CHART_H - _PAD_B}"/>')
    # calibrated baseline (reference line)
    if baseline is not None and y_lo <= baseline <= y_hi:
        y = sy(baseline)
        parts.append(f'<line class="ref" x1="{_PAD_L}" y1="{y:.1f}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y:.1f}"/>')
        if baseline_label:
            parts.append(f'<text class="ref-label" '
                         f'x="{_CHART_W - _PAD_R - 4}" y="{y - 5:.1f}" '
                         f'text-anchor="end">{_esc(baseline_label)}</text>')
    # the series
    points = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in zip(dt, dv))
    parts.append(f'<polyline class="line {series_css}" points="{points}"/>')
    # markers: full-height event lines with top labels, or baseline ticks
    seen_labels = set()
    for m in markers:
        x = sx(m.t)
        if m.dot:
            parts.append(
                f'<circle class="mark {m.css}" cx="{x:.1f}" '
                f'cy="{_CHART_H - _PAD_B:.1f}" r="4">'
                f'<title>{_esc(m.title)}</title></circle>')
            continue
        parts.append(f'<line class="event {m.css}" x1="{x:.1f}" '
                     f'y1="{_PAD_T}" x2="{x:.1f}" '
                     f'y2="{_CHART_H - _PAD_B}"><title>{_esc(m.title)}'
                     f'</title></line>')
        if m.label not in seen_labels:
            seen_labels.add(m.label)
            anchor = "start" if x < _CHART_W - 90 else "end"
            dx = 4 if anchor == "start" else -4
            parts.append(f'<text class="event-label {m.css}" '
                         f'x="{x + dx:.1f}" y="{_PAD_T + 10}" '
                         f'text-anchor="{anchor}">{_esc(m.label)}</text>')
    # hover layer (crosshair + tooltip, driven by the embedded script)
    parts.append(f'<line class="cursor" x1="0" y1="{_PAD_T}" x2="0" '
                 f'y2="{_CHART_H - _PAD_B}" visibility="hidden"/>')
    parts.append('<circle class="cursor-dot" r="4" visibility="hidden"/>')
    parts.append(f'<rect class="hover-target" x="{_PAD_L}" y="{_PAD_T}" '
                 f'width="{plot_w}" height="{plot_h}" fill="none" '
                 f'pointer-events="all"/>')
    parts.append("</svg>")
    payload = {
        "t": [round(float(t), 4) for t in dt],
        "v": [float(v) for v in dv],
        "x0": x_lo, "x1": x_hi, "y0": y_lo, "y1": y_hi,
        "padL": _PAD_L, "padR": _PAD_R, "padT": _PAD_T, "padB": _PAD_B,
        "w": _CHART_W, "h": _CHART_H, "yFormat": y_format,
    }
    return (
        f'<figure class="chart"><figcaption>{_esc(title)}</figcaption>'
        + "".join(parts)
        + f'<script type="application/json" data-for="{_esc(chart_id)}">'
        + json.dumps(payload)
        + "</script>"
        + '<div class="tooltip" hidden></div></figure>'
    )


# -- shared page chrome --------------------------------------------------------

_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-3: #1baf7a;
  --series-2: #8a63d2; --series-4: #d03b9b;
  --series-5: #c98a1b; --series-6: #5a8a99;
  --status-warning: #fab219; --status-serious: #ec835a;
  --status-critical: #d03b3b; --status-good: #0ca30c;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; min-height: 100vh; box-sizing: border-box;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-3: #199e70;
    --series-2: #9d7ae0; --series-4: #df58b4;
    --series-5: #d99a2b; --series-6: #6fa3b4;
  }
}
.viz-root h1 { font-size: 20px; font-weight: 600; margin: 0 0 2px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 16px; min-width: 128px;
}
.tile .label { font-size: 12px; color: var(--text-secondary); margin-bottom: 4px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .note { font-size: 11px; color: var(--muted); margin-top: 2px; }
.tile.alarmed .value { color: var(--status-critical); }
.tile.quiet .value { color: var(--status-good); }
.chart {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 14px 16px 8px; margin: 0 0 16px;
  position: relative; max-width: 900px;
}
.chart figcaption { font-size: 13px; font-weight: 600; margin-bottom: 6px; }
.chart svg { width: 100%; height: auto; display: block; }
.chart .empty { color: var(--muted); font-size: 13px; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .tick { fill: var(--muted); font-size: 10px;
  font-variant-numeric: tabular-nums; }
svg .line { fill: none; stroke-width: 2; stroke-linejoin: round;
  stroke-linecap: round; }
svg .line.s1 { stroke: var(--series-1); }
svg .line.s3 { stroke: var(--series-3); }
svg .line.s2 { stroke: var(--series-2); }
svg .line.s4 { stroke: var(--series-4); }
svg .line.s5 { stroke: var(--series-5); }
svg .line.s6 { stroke: var(--series-6); }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px; margin: 8px 0 4px;
  font-size: 12px; color: var(--text-secondary); }
.legend .swatch { display: inline-block; width: 14px; height: 3px;
  vertical-align: middle; margin-right: 5px; border-radius: 2px; }
.swatch.s1 { background: var(--series-1); }
.swatch.s3 { background: var(--series-3); }
.swatch.s2 { background: var(--series-2); }
.swatch.s4 { background: var(--series-4); }
.swatch.s5 { background: var(--series-5); }
.swatch.s6 { background: var(--series-6); }
svg .ref { stroke: var(--muted); stroke-width: 1; stroke-dasharray: 5 4; }
svg .ref-label { fill: var(--muted); font-size: 10px; }
svg .event { stroke-width: 1.5; }
svg .event-label { font-size: 10px; font-weight: 600; }
svg .event.alarm, svg .event-label.alarm { stroke: var(--status-serious); }
svg .event-label.alarm { fill: var(--status-serious); stroke: none; }
svg .event.crash { stroke: var(--status-critical); }
svg .event-label.crash { fill: var(--status-critical); stroke: none; }
svg .mark { stroke: var(--surface-1); stroke-width: 2; }
svg .mark.warning { fill: var(--status-warning); }
svg .mark.critical { fill: var(--status-critical); }
svg .mark.info { fill: var(--muted); }
svg .dot { stroke: var(--surface-1); stroke-width: 2; fill: var(--series-1); }
svg .cursor { stroke: var(--baseline); stroke-width: 1; }
svg .cursor-dot { fill: var(--series-1); stroke: var(--surface-1);
  stroke-width: 2; }
.tooltip {
  position: absolute; pointer-events: none; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px; padding: 4px 8px;
  font-size: 11px; color: var(--text-primary); white-space: nowrap;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12); z-index: 2;
}
table.data {
  border-collapse: collapse; font-size: 13px; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 10px; margin-bottom: 16px;
}
table.data th, table.data td { padding: 6px 12px; text-align: left; }
table.data td.num { text-align: right; font-variant-numeric: tabular-nums; }
table.data thead th { color: var(--text-secondary); font-weight: 600;
  font-size: 12px; border-bottom: 1px solid var(--grid); }
table.data tbody tr + tr td { border-top: 1px solid var(--grid); }
.sev { font-weight: 600; }
.sev.critical { color: var(--status-critical); }
.sev.warning { color: var(--text-primary); }
.sev.info { color: var(--text-secondary); }
details.tableview { margin-bottom: 16px; }
details.tableview summary { cursor: pointer; font-size: 13px;
  color: var(--text-secondary); margin-bottom: 8px; }
.footer { color: var(--muted); font-size: 11px; margin-top: 24px; }
"""

_SCRIPT = """
document.querySelectorAll('figure.chart').forEach(function (fig) {
  var svg = fig.querySelector('svg[data-chart]');
  if (!svg) return;
  var dataEl = fig.querySelector('script[type="application/json"]');
  if (!dataEl) return;
  var d = JSON.parse(dataEl.textContent);
  var tip = fig.querySelector('.tooltip');
  var cursor = svg.querySelector('.cursor');
  var dot = svg.querySelector('.cursor-dot');
  var target = svg.querySelector('.hover-target');
  function fmt(x) {
    var a = Math.abs(x);
    if (a >= 1e9) return (x / 1e9).toFixed(2) + 'G';
    if (a >= 1e6) return (x / 1e6).toFixed(2) + 'M';
    if (a >= 1e3) return (x / 1e3).toFixed(1) + 'K';
    return (Math.round(x * 1000) / 1000).toString();
  }
  function nearest(t) {
    var lo = 0, hi = d.t.length - 1;
    while (hi - lo > 1) {
      var mid = (lo + hi) >> 1;
      if (d.t[mid] < t) lo = mid; else hi = mid;
    }
    return (t - d.t[lo] < d.t[hi] - t) ? lo : hi;
  }
  target.addEventListener('mousemove', function (ev) {
    var box = svg.getBoundingClientRect();
    var scale = box.width / d.w;
    var px = (ev.clientX - box.left) / scale;
    var frac = (px - d.padL) / (d.w - d.padL - d.padR);
    var t = d.x0 + frac * (d.x1 - d.x0);
    var i = nearest(t);
    var sx = d.padL + (d.w - d.padL - d.padR) *
      (d.t[i] - d.x0) / ((d.x1 - d.x0) || 1);
    var sy = d.padT + (d.h - d.padT - d.padB) *
      (1 - (d.v[i] - d.y0) / ((d.y1 - d.y0) || 1));
    cursor.setAttribute('x1', sx); cursor.setAttribute('x2', sx);
    cursor.setAttribute('visibility', 'visible');
    dot.setAttribute('cx', sx); dot.setAttribute('cy', sy);
    dot.setAttribute('visibility', 'visible');
    tip.hidden = false;
    tip.textContent = 't=' + fmt(d.t[i]) + 's  ' + fmt(d.v[i]);
    var figBox = fig.getBoundingClientRect();
    tip.style.left = Math.min(ev.clientX - figBox.left + 12,
      figBox.width - 130) + 'px';
    tip.style.top = (ev.clientY - figBox.top - 28) + 'px';
  });
  target.addEventListener('mouseleave', function () {
    tip.hidden = true;
    cursor.setAttribute('visibility', 'hidden');
    dot.setAttribute('visibility', 'hidden');
  });
});
"""


def _page(title: str, subtitle: str, body: str, footer: str) -> str:
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_STYLE}</style>
</head>
<body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">{_esc(subtitle)}</p>
{body}
<p class="footer">{_esc(footer)}</p>
<script>{_SCRIPT}</script>
</body>
</html>
"""


def _tile(label: str, value: str, note: str = "", css: str = "") -> str:
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (f'<div class="tile {css}"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{_esc(value)}</div>{note_html}</div>')


# -- run dashboard -------------------------------------------------------------

def render_run_dashboard(events: Sequence[dict], *, title: Optional[str] = None) -> str:
    """Render one watch session's event stream as a standalone HTML page."""
    from .live import validate_stream

    validate_stream(events)
    header = events[0]
    by_kind: Dict[str, List[dict]] = {}
    for event in events:
        by_kind.setdefault(event["kind"], []).append(event)
    end = by_kind.get("end", [{}])[-1]
    counter = header.get("counter", "counter")
    source = header.get("source", {})

    alarm_time = end.get("alarm_time")
    crash_time = end.get("crash_time")
    lead = end.get("lead_time")
    state = end.get("state", "unknown")
    alerts = by_kind.get("alert", [])

    # -- KPI tiles
    state_css = "alarmed" if state == "alarmed" else (
        "quiet" if state == "watching" else "")
    tiles = [
        _tile("Detector state", str(state), css=state_css),
        _tile("Alarm", _fmt_time(alarm_time),
              "first detector warning" if alarm_time is not None
              else "never fired"),
        _tile("Crash", _fmt_time(crash_time),
              str(end.get("crash_reason") or "") if crash_time is not None
              else "survived"),
        _tile("Lead time", _fmt_time(lead),
              "warning → crash" if lead is not None else ""),
        _tile("Samples", _fmt(end.get("n_samples")),
              f"{_fmt(end.get('n_indicators'))} indicator points"),
        _tile("Alerts fired", _fmt(len(alerts)),
              f"{len(header.get('rules', []))} rule(s) loaded"),
    ]

    # -- markers shared by both charts
    markers: List[_Marker] = []
    if alarm_time is not None:
        markers.append(_Marker(float(alarm_time), "alarm", "alarm",
                               title=f"alarm at {_fmt_time(alarm_time)}"))
    if crash_time is not None:
        markers.append(_Marker(float(crash_time), "crash", "crash",
                               title=f"crash at {_fmt_time(crash_time)} "
                                     f"({end.get('crash_reason') or 'unknown'})"))
    alert_markers = [
        _Marker(float(e["t"]), e.get("rule", "alert"),
                e.get("severity", "info"), dot=True,
                title=f"{e.get('rule')} [{e.get('severity')}] "
                      f"at {_fmt_time(e['t'])}")
        for e in alerts
    ]

    samples = by_kind.get("sample", [])
    counter_chart = _line_chart(
        "counter", f"{counter} (sampled)",
        [e["t"] for e in samples], [e["value"] for e in samples],
        series_css="s1", markers=markers + alert_markers,
        x_max=end.get("t"),
    )
    indicators = by_kind.get("indicator", [])
    baseline = None
    for e in by_kind.get("alarm", []):
        baseline = e.get("baseline")
    indicator_chart = _line_chart(
        "indicator",
        f"Hölder indicator ({header.get('monitor', {}).get('indicator', 'mean')} h)",
        [e["t"] for e in indicators], [e["value"] for e in indicators],
        series_css="s3", y_format="plain", markers=markers,
        baseline=baseline, baseline_label="calibrated baseline",
        x_max=end.get("t"),
    )

    # -- alert table
    if alerts:
        rows = "".join(
            f"<tr><td class=\"num\">{_fmt_time(e['t'])}</td>"
            f"<td>{_esc(e.get('rule'))}</td>"
            f"<td><span class=\"sev {_esc(e.get('severity'))}\">"
            f"{'&#9650;' if e.get('severity') == 'critical' else '&#9679;'} "
            f"{_esc(e.get('severity'))}</span></td>"
            f"<td>{_esc(e.get('signal'))}</td>"
            f"<td class=\"num\">{_fmt(e.get('value'))}</td>"
            f"<td>{_esc(e.get('message', ''))}</td></tr>"
            for e in alerts
        )
        alert_table = (
            '<figure class="chart"><figcaption>Alert firings</figcaption>'
            '<table class="data"><thead><tr><th>time</th><th>rule</th>'
            '<th>severity</th><th>signal</th><th>value</th><th>condition</th>'
            f'</tr></thead><tbody>{rows}</tbody></table></figure>'
        )
    else:
        alert_table = ('<figure class="chart"><figcaption>Alert firings'
                       '</figcaption><p class="empty">no alerts fired</p>'
                       '</figure>')

    # -- accessible table view of the indicator trajectory
    indicator_rows = "".join(
        f"<tr><td class=\"num\">{e['n']}</td>"
        f"<td class=\"num\">{_fmt_time(e['t'])}</td>"
        f"<td class=\"num\">{e['value']:.4f}</td></tr>"
        for e in indicators
    )
    table_view = (
        '<details class="tableview"><summary>Indicator data (table view)'
        '</summary><table class="data"><thead><tr><th>#</th><th>time</th>'
        f'<th>indicator</th></tr></thead><tbody>{indicator_rows}</tbody>'
        '</table></details>'
    ) if indicators else ""

    source_bits = [f"{k}={source[k]}" for k in ("type", "os_profile", "seed")
                   if k in source]
    subtitle = (f"counter {counter} · {' · '.join(source_bits)}"
                if source_bits else f"counter {counter}")
    body = (f'<div class="tiles">{"".join(tiles)}</div>'
            + counter_chart + indicator_chart + alert_table + table_view)
    footer = (f"schema {header.get('schema')} · {len(events)} events · "
              f"generated by repro.obs.dashboard")
    return _page(title or "Live aging watch — run report", subtitle, body, footer)


# -- campaign dashboard --------------------------------------------------------

def campaign_cells_from_manifests(manifests: Sequence) -> Dict[str, dict]:
    """Merge the ``outcome.cells`` payloads of campaign run manifests.

    Accepts any mix of manifests; non-campaign ones (no ``cells`` block
    with run records) are ignored.  Duplicate cell names across
    manifests get a ``name#k`` suffix rather than silently merging
    different campaigns.
    """
    cells: Dict[str, dict] = {}
    for manifest in manifests:
        payload = manifest.outcome.get("cells")
        if not isinstance(payload, Mapping):
            continue
        for name, cell in payload.items():
            if not isinstance(cell, Mapping) or "runs" not in cell:
                continue
            key = name
            k = 2
            while key in cells:
                key = f"{name}#{k}"
                k += 1
            cells[key] = dict(cell)
    return cells


def render_campaign_dashboard(
    manifests: Sequence = (), *,
    cells: Optional[Mapping[str, dict]] = None,
    scoreboard: Optional[Mapping] = None,
    title: Optional[str] = None,
) -> str:
    """Render per-cell detection quality aggregated from run manifests.

    ``cells`` bypasses manifest extraction when the caller already holds
    a cells payload (e.g. ``repro campaign --dashboard`` rendering the
    results it just computed).  ``scoreboard`` injects a prebuilt
    ``repro.scoreboard/1`` artifact for the detector-tournament section;
    when omitted, one is built from the cells whenever they carry peak
    decision statistics.
    """
    if cells is not None:
        cells = dict(cells)
    else:
        cells = campaign_cells_from_manifests(manifests)
    if not cells:
        raise TraceError(
            "no campaign cells found in manifests — run "
            "`python -m repro campaign --telemetry-out DIR` to produce them")
    if scoreboard is None and any(
            run.get("peak_healthy") is not None
            or run.get("peak_precrash") is not None
            for cell in cells.values() for run in cell.get("runs", [])):
        # Imported lazily: analysis imports obs, so a module-level import
        # here would be circular.
        from ..analysis.scoreboard import build_scoreboard
        scoreboard = build_scoreboard(cells)

    total_runs = sum(len(c.get("runs", [])) for c in cells.values())
    total_crashed = sum(int(c.get("crashed", 0)) for c in cells.values())
    total_detected = sum(int(c.get("detected", 0)) for c in cells.values())
    total_false = sum(int(c.get("false_alarms", 0)) for c in cells.values())
    all_leads = [float(v) for c in cells.values()
                 for v in c.get("lead_times", [])]
    rate = (100.0 * total_detected / total_crashed) if total_crashed else None

    tiles = [
        _tile("Cells", str(len(cells))),
        _tile("Runs", str(total_runs), f"{total_crashed} crashed"),
        _tile("Detection rate",
              "—" if rate is None else f"{rate:.0f}%",
              f"{total_detected}/{total_crashed} crashes warned",
              css="quiet" if rate is not None and rate >= 75 else ""),
        _tile("Median lead",
              _fmt_time(_median(all_leads)) if all_leads else "—",
              "across detected crashes"),
        _tile("False alarms", str(total_false),
              css="alarmed" if total_false else "quiet"),
    ]

    # -- per-cell table
    rows = []
    for name, cell in cells.items():
        n_runs = len(cell.get("runs", []))
        crashed = int(cell.get("crashed", 0))
        detected = int(cell.get("detected", 0))
        cell_rate = f"{100.0 * detected / crashed:.0f}%" if crashed else "—"
        median_lead = cell.get("median_lead")
        rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td class=\"num\">{n_runs}</td>"
            f"<td class=\"num\">{crashed}</td>"
            f"<td class=\"num\">{detected}</td>"
            f"<td class=\"num\">{int(cell.get('missed', 0))}</td>"
            f"<td class=\"num\">{cell_rate}</td>"
            f"<td class=\"num\">{_fmt_time(median_lead)}</td>"
            f"<td class=\"num\">{int(cell.get('false_alarms', 0))}</td></tr>"
        )
    cell_table = (
        '<figure class="chart"><figcaption>Detection quality by cell'
        '</figcaption><table class="data"><thead><tr><th>cell</th>'
        '<th>runs</th><th>crashed</th><th>detected</th><th>missed</th>'
        '<th>rate</th><th>median lead</th><th>false alarms</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table></figure>'
    )

    strip = _lead_strip_chart(cells)

    # -- false alarm table
    fa_rows = []
    for name, cell in cells.items():
        for run in cell.get("runs", []):
            if not run.get("crashed") and run.get("alarm_time") is not None:
                fa_rows.append(
                    f"<tr><td>{_esc(name)}</td>"
                    f"<td class=\"num\">{run.get('seed')}</td>"
                    f"<td class=\"num\">{_fmt_time(run.get('alarm_time'))}</td>"
                    f"<td class=\"num\">{_fmt_time(run.get('duration'))}</td>"
                    "</tr>")
    if fa_rows:
        fa_table = (
            '<figure class="chart"><figcaption>False alarms (healthy runs '
            'that warned)</figcaption><table class="data"><thead><tr>'
            '<th>cell</th><th>seed</th><th>alarm</th><th>run length</th>'
            f'</tr></thead><tbody>{"".join(fa_rows)}</tbody></table></figure>'
        )
    else:
        fa_table = ('<figure class="chart"><figcaption>False alarms'
                    '</figcaption><p class="empty">none — every warning '
                    'preceded a real crash</p></figure>')

    tournament = (_scoreboard_section(scoreboard)
                  if scoreboard is not None else "")
    body = (f'<div class="tiles">{"".join(tiles)}</div>'
            + cell_table + tournament + strip + fa_table)
    footer = (f"{len(manifests)} manifest(s) · {len(cells)} cell(s) · "
              "generated by repro.obs.dashboard")
    return _page(title or "Aging detection campaign — dashboard",
                 f"{total_runs} runs · aggregated from run manifests",
                 body, footer)


def _median(values: List[float]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _lead_strip_chart(cells: Dict[str, dict]) -> str:
    """Lead-time distribution: one dot per detected crash, one row per cell."""
    with_leads = [(name, [float(v) for v in cell.get("lead_times", [])])
                  for name, cell in cells.items()]
    with_leads = [(name, leads) for name, leads in with_leads if leads]
    if not with_leads:
        return ('<figure class="chart"><figcaption>Lead-time distribution'
                '</figcaption><p class="empty">no detected crashes to plot'
                '</p></figure>')
    x_hi = max(max(leads) for _, leads in with_leads)
    x_lo = 0.0
    row_h = 30
    height = _PAD_T + row_h * len(with_leads) + _PAD_B
    plot_w = _CHART_W - 170 - _PAD_R

    def sx(v: float) -> float:
        return 170 + plot_w * (v - x_lo) / ((x_hi - x_lo) or 1.0)

    parts = [f'<svg viewBox="0 0 {_CHART_W} {height}" role="img" '
             f'aria-label="Lead-time distribution">']
    for tick in _ticks(x_lo, x_hi, 6):
        if tick < x_lo or tick > x_hi:
            continue
        x = sx(tick)
        parts.append(f'<line class="grid" x1="{x:.1f}" y1="{_PAD_T}" '
                     f'x2="{x:.1f}" y2="{height - _PAD_B}"/>')
        parts.append(f'<text class="tick" x="{x:.1f}" y="{height - _PAD_B + 16}" '
                     f'text-anchor="middle">{_fmt(tick)}s</text>')
    for i, (name, leads) in enumerate(with_leads):
        y = _PAD_T + row_h * i + row_h / 2
        parts.append(f'<text class="tick" x="160" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{_esc(name)}</text>')
        parts.append(f'<line class="axis" x1="170" y1="{y:.1f}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y:.1f}"/>')
        for lead in leads:
            parts.append(f'<circle class="dot" cx="{sx(lead):.1f}" '
                         f'cy="{y:.1f}" r="5">'
                         f'<title>{_esc(name)}: lead {_fmt_time(lead)}'
                         f'</title></circle>')
    parts.append("</svg>")
    return ('<figure class="chart"><figcaption>Lead-time distribution '
            '(one dot per detected crash)</figcaption>'
            + "".join(parts) + "</figure>")


# -- detector tournament (scoreboard) ------------------------------------------

# Series classes cycled over detectors in the ROC chart and legend.
_ROC_SERIES = ("s1", "s3", "s2", "s4", "s5", "s6")


def _fmt_ratio(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "—"
    return f"{float(value):.3f}"


def _roc_chart(detectors: Mapping[str, dict]) -> str:
    """All detectors' pooled ROC curves in one square inline SVG."""
    curves = [(name, det["roc"]) for name, det in detectors.items()
              if det.get("roc")]
    if not curves:
        return ('<figure class="chart"><figcaption>ROC (peak decision '
                'statistic)</figcaption><p class="empty">no runs carried '
                'peak statistics — rerun the campaign with score '
                'collection on</p></figure>')
    size, pad = 320, 40
    plot = size - 2 * pad

    def sx(v: float) -> float:
        return pad + plot * v

    def sy(v: float) -> float:
        return pad + plot * (1.0 - v)

    parts = [f'<svg viewBox="0 0 {size} {size}" role="img" '
             f'aria-label="ROC curves by detector">']
    for tick in (0.0, 0.25, 0.5, 0.75, 1.0):
        parts.append(f'<line class="grid" x1="{sx(tick):.1f}" y1="{pad}" '
                     f'x2="{sx(tick):.1f}" y2="{size - pad}"/>')
        parts.append(f'<line class="grid" x1="{pad}" y1="{sy(tick):.1f}" '
                     f'x2="{size - pad}" y2="{sy(tick):.1f}"/>')
        parts.append(f'<text class="tick" x="{sx(tick):.1f}" '
                     f'y="{size - pad + 14}" text-anchor="middle">'
                     f'{tick:g}</text>')
        parts.append(f'<text class="tick" x="{pad - 6}" '
                     f'y="{sy(tick) + 3.5:.1f}" text-anchor="end">'
                     f'{tick:g}</text>')
    parts.append(f'<line class="ref" x1="{sx(0):.1f}" y1="{sy(0):.1f}" '
                 f'x2="{sx(1):.1f}" y2="{sy(1):.1f}"/>')
    parts.append(f'<text class="tick" x="{size / 2:.0f}" y="{size - 6}" '
                 f'text-anchor="middle">false positive rate</text>')
    parts.append(f'<text class="tick" x="12" y="{size / 2:.0f}" '
                 f'text-anchor="middle" transform="rotate(-90 12 '
                 f'{size / 2:.0f})">true positive rate</text>')
    legend = []
    for i, (name, roc) in enumerate(curves):
        css = _ROC_SERIES[i % len(_ROC_SERIES)]
        points = " ".join(
            f"{sx(float(f)):.1f},{sy(float(t)):.1f}"
            for f, t in zip(roc["fpr"], roc["tpr"]))
        parts.append(f'<polyline class="line {css}" points="{points}">'
                     f'<title>{_esc(name)}</title></polyline>')
        area = detectors[name].get("auc")
        legend.append(f'<span><span class="swatch {css}"></span>'
                      f'{_esc(name)} (AUC {_fmt_ratio(area)})</span>')
    parts.append("</svg>")
    return ('<figure class="chart"><figcaption>ROC — peak decision '
            'statistic, pre-crash vs healthy segments</figcaption>'
            + "".join(parts)
            + f'<div class="legend">{"".join(legend)}</div></figure>')


def _scoreboard_section(scoreboard: Mapping) -> str:
    """League table + ROC chart + per-(cell, detector) breakdown."""
    detectors = scoreboard.get("detectors", {})
    league_rows = []
    for name, det in detectors.items():
        crashed = int(det.get("crashed", 0))
        detected = int(det.get("detected", 0))
        rate = f"{100.0 * detected / crashed:.0f}%" if crashed else "—"
        league_rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td class=\"num\">{int(det.get('n_runs', 0))}</td>"
            f"<td class=\"num\">{crashed}</td>"
            f"<td class=\"num\">{detected}</td>"
            f"<td class=\"num\">{rate}</td>"
            f"<td class=\"num\">{int(det.get('premature', 0))}</td>"
            f"<td class=\"num\">{int(det.get('missed', 0))}</td>"
            f"<td class=\"num\">{_fmt_time(det.get('lead_p50'))}</td>"
            f"<td class=\"num\">{_fmt_time(det.get('lead_p90'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(det.get('false_alarms_per_hour'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(det.get('auc'))}</td></tr>"
        )
    league = (
        '<figure class="chart"><figcaption>Detector league table'
        '</figcaption><table class="data"><thead><tr><th>detector</th>'
        '<th>runs</th><th>crashed</th><th>detected</th><th>rate</th>'
        '<th>premature</th><th>missed</th><th>lead p50</th><th>lead p90</th>'
        '<th>FA/h</th><th>AUC</th></tr></thead>'
        f'<tbody>{"".join(league_rows)}</tbody></table></figure>'
    )
    grid_rows = []
    for name, cell in scoreboard.get("cells", {}).items():
        grid_rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td>{_esc(cell.get('detector'))}</td>"
            f"<td class=\"num\">{int(cell.get('n_runs', 0))}</td>"
            f"<td class=\"num\">{_fmt_ratio(cell.get('detection_rate'))}</td>"
            f"<td class=\"num\">{_fmt_time(cell.get('lead_p50'))}</td>"
            f"<td class=\"num\">{_fmt_time(cell.get('lead_p90'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(cell.get('false_alarms_per_hour'))}</td>"
            f"<td class=\"num\">{_fmt_ratio(cell.get('auc'))}</td></tr>"
        )
    grid = (
        '<details class="tableview"><summary>Scenario × detector grid '
        '(per-cell breakdown)</summary><table class="data"><thead><tr>'
        '<th>cell</th><th>detector</th><th>runs</th><th>rate</th>'
        '<th>lead p50</th><th>lead p90</th><th>FA/h</th><th>AUC</th>'
        f'</tr></thead><tbody>{"".join(grid_rows)}</tbody></table></details>'
    )
    return ('<h2 id="scoreboard" style="font-size:16px;margin:8px 0">'
            'Detector tournament</h2>'
            + league + _roc_chart(detectors) + grid)


# -- entry points --------------------------------------------------------------

def write_dashboard(html_text: str, path: str | os.PathLike) -> str:
    """Write a rendered dashboard to ``path`` (atomically); returns the
    path."""
    if not html_text.startswith("<!DOCTYPE html>"):
        raise ValidationError("not a rendered dashboard (missing doctype)")
    return atomic_write_text(path, html_text)
