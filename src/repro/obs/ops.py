"""Campaign control plane: cross-process trace identity + flight recorder.

Two concerns every long-running, multi-process campaign needs and no
single-process telemetry session provides:

**Trace propagation.**  A campaign run mints one *trace id*; every
(cell, run) work unit derives a *span id* from it deterministically
(:func:`derive_span_id` — sha256 of ``trace:parent:key``, so retries and
resumes reproduce the same ids without coordination).  The pool carries
the :class:`TraceContext` into worker processes inside the unit payload,
and the telemetry merged back from workers is tagged with it — so the
parent's span tree reads as one coherent cross-process trace, and a
``/status`` scrape, a journal, and a worker's log line can all be joined
on the same id.

**Flight recorder.**  A bounded ring buffer of the most recent log
records, span closures and unit outcomes (:class:`FlightRecorder`).  It
costs O(capacity) memory forever, and when the pool kills a hung worker,
loses one to the OOM killer, or hits an unhandled error, the buffer is
dumped atomically as a ``repro.flight-record/1`` JSON artifact — the
post-mortem no longer depends on whatever stderr survived the SIGKILL.

Both are module-global by design (like the telemetry session): the pool
and the campaign runner pick up the current trace / recorder without
threading them through every call signature.  Defaults are inert — no
trace installed, no recorder installed — and every helper degrades to a
no-op, so instrumented code pays nothing until a driver opts in.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..exceptions import ValidationError
from .atomic import atomic_write_json
from .logger import get_logger
from . import session as _session

__all__ = [
    "FLIGHT_SCHEMA",
    "TraceContext",
    "mint_trace_id",
    "derive_span_id",
    "new_trace",
    "current_trace",
    "trace_scope",
    "FlightRecorder",
    "install_flight_recorder",
    "uninstall_flight_recorder",
    "current_flight_recorder",
    "flight_note",
    "flight_dump",
]

FLIGHT_SCHEMA = "repro.flight-record/1"

_log = get_logger("obs.ops")


# -- trace identity ------------------------------------------------------------

def mint_trace_id() -> str:
    """A fresh 16-hex-char trace id.

    Random (``os.urandom``), not seeded: trace ids name telemetry, never
    feed computation, so they are exempt from the library's determinism
    discipline — two runs of the same campaign are *different traces*.
    """
    return os.urandom(8).hex()


def derive_span_id(trace_id: str, parent_span_id: str, key: str) -> str:
    """Deterministic 16-hex-char span id for ``key`` under a parent.

    Pure function of ``(trace_id, parent_span_id, key)``: a retried or
    resumed work unit keeps its span id, so artifacts recorded across
    attempts join on the same identity.
    """
    digest = hashlib.sha256(
        f"{trace_id}:{parent_span_id}:{key}".encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class TraceContext:
    """One node of a cross-process trace: ids only, no timing.

    Timing lives in span records; the context is the portable identity
    that survives pickling into a worker process.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    def child(self, key: str) -> "TraceContext":
        """The deterministic child context for ``key`` (e.g. a unit index)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, self.span_id, key),
            parent_span_id=self.span_id,
        )

    def to_dict(self) -> dict:
        """JSON/pickle-friendly form carried in unit payloads."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_span_id=payload.get("parent_span_id"),
        )


def new_trace(root: str = "root") -> TraceContext:
    """Mint a root context: fresh trace id, span id derived for ``root``."""
    trace_id = mint_trace_id()
    return TraceContext(
        trace_id=trace_id,
        span_id=derive_span_id(trace_id, "", root),
        parent_span_id=None,
    )


_current_trace: Optional[TraceContext] = None


def current_trace() -> Optional[TraceContext]:
    """The installed trace context, or None when nothing minted one."""
    return _current_trace


@contextlib.contextmanager
def trace_scope(context: TraceContext):
    """Install ``context`` as the current trace for a ``with`` block.

    Also stamps the trace id onto the live telemetry session (if any),
    so exports and status scrapes can surface it.
    """
    global _current_trace
    if not isinstance(context, TraceContext):
        raise ValidationError(
            f"trace_scope needs a TraceContext, got {type(context).__name__}")
    previous = _current_trace
    _current_trace = context
    session = _session.current_session()
    if session.enabled and getattr(session, "trace_id", None) is None:
        session.trace_id = context.trace_id
    try:
        yield context
    finally:
        _current_trace = previous


# -- flight recorder -----------------------------------------------------------

class FlightRecorder(logging.Handler):
    """Bounded ring buffer of recent telemetry, dumpable on failure.

    Collects three streams into one time-ordered deque of dicts:

    * ``log`` — every record emitted under the ``"repro"`` logging root
      (the recorder *is* a :class:`logging.Handler`);
    * ``span`` — span closures, via the collector's ``on_close`` hook;
    * anything the pool or campaign notes explicitly (:meth:`note`) —
      unit outcomes, retries, kill decisions.

    The buffer holds the newest ``capacity`` records; :meth:`dump`
    writes them (plus an envelope: schema, reason, pid, trace id) as an
    atomic JSON artifact.  Repeated dumps overwrite the same path — the
    newest post-mortem wins, and the envelope counts how many came
    before it.
    """

    def __init__(self, *, capacity: int = 512,
                 path: Optional[str | os.PathLike] = None) -> None:
        if capacity < 1:
            raise ValidationError(
                f"flight recorder capacity must be >= 1, got {capacity}")
        logging.Handler.__init__(self, level=logging.DEBUG)
        self.capacity = capacity
        self.path = None if path is None else os.fspath(path)
        self._buffer: deque = deque(maxlen=capacity)
        self._state_lock = threading.Lock()
        self.n_recorded = 0
        self.n_dumps = 0

    # -- recording -------------------------------------------------------------

    def note(self, kind: str, /, **fields) -> None:
        """Append one record (timestamped) to the ring buffer.

        ``kind`` is positional-only so records may carry their own
        ``kind`` field (e.g. an error kind) without colliding.
        """
        record = {"wall_time": time.time(), "kind": kind}
        record.update(fields)
        with self._state_lock:
            self._buffer.append(record)
            self.n_recorded += 1

    def emit(self, record: logging.LogRecord) -> None:
        """:class:`logging.Handler` entry point: buffer a log record."""
        entry = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            entry.update(fields)
        self.note("log", **entry)

    def on_span_close(self, span) -> None:
        """Span-collector ``on_close`` hook: buffer a span closure."""
        self.note(
            "span",
            path=span.path,
            duration=span.duration,
            status=span.status,
            attrs=dict(span.attrs),
        )

    # -- reading / dumping -----------------------------------------------------

    def records(self) -> List[dict]:
        """Current buffer contents, oldest first."""
        with self._state_lock:
            return list(self._buffer)

    def dump(self, reason: str, *,
             path: Optional[str | os.PathLike] = None,
             extra: Optional[Dict[str, object]] = None) -> Optional[str]:
        """Write the buffer as a ``repro.flight-record/1`` artifact.

        Uses ``path`` (or the recorder's configured path); returns the
        written path, or None when neither names a destination.  Never
        raises for I/O problems — the recorder runs inside failure
        handling, where a second failure must not mask the first.
        """
        destination = self.path if path is None else os.fspath(path)
        if destination is None:
            return None
        trace = current_trace()
        payload = {
            "schema": FLIGHT_SCHEMA,
            "dumped_at": time.time(),
            "reason": reason,
            "pid": os.getpid(),
            "trace_id": None if trace is None else trace.trace_id,
            "capacity": self.capacity,
            "n_recorded": self.n_recorded,
            "n_prior_dumps": self.n_dumps,
            "records": self.records(),
        }
        if extra:
            payload.update(extra)
        try:
            atomic_write_json(destination, payload)
        except OSError as exc:  # pragma: no cover - disk-full style failures
            _log.warning("flight-record dump failed", path=destination,
                         error=f"{type(exc).__name__}: {exc}")
            return None
        with self._state_lock:
            self.n_dumps += 1
        _session.counter("obs.flight_dumps").inc()
        _log.info("flight record dumped", path=destination, reason=reason,
                  records=len(payload["records"]))
        return destination


_recorder: Optional[FlightRecorder] = None


def install_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Make ``recorder`` current: attach it to the ``"repro"`` logging
    root and to the live span collector's close hook.

    Replaces (and detaches) any previously installed recorder.
    """
    global _recorder
    if _recorder is not None:
        uninstall_flight_recorder()
    logging.getLogger("repro").addHandler(recorder)
    session = _session.current_session()
    if session.enabled:
        session.spans.on_close = recorder.on_span_close
    _recorder = recorder
    return recorder


def uninstall_flight_recorder() -> None:
    """Detach and forget the current recorder (no-op when none)."""
    global _recorder
    if _recorder is None:
        return
    logging.getLogger("repro").removeHandler(_recorder)
    session = _session.current_session()
    hook = getattr(session.spans, "on_close", None)
    # Bound methods are recreated per access, so compare the receiver.
    if getattr(hook, "__self__", None) is _recorder:
        session.spans.on_close = None
    _recorder = None


def current_flight_recorder() -> Optional[FlightRecorder]:
    """The installed recorder, or None."""
    return _recorder


# Note listeners see every flight_note()/flight_dump() call whether or
# not a recorder is installed — the timeline recorder annotates retries,
# timeouts and worker deaths through this without owning the ring buffer.
_note_listeners: List = []


def add_note_listener(listener) -> None:
    """Register ``listener(kind, fields)`` for every operational note."""
    if listener not in _note_listeners:
        _note_listeners.append(listener)


def remove_note_listener(listener) -> None:
    """Unregister a note listener (no-op when absent)."""
    try:
        _note_listeners.remove(listener)
    except ValueError:
        pass


def _notify_listeners(kind: str, fields: Dict[str, object]) -> None:
    for listener in list(_note_listeners):
        try:
            listener(kind, fields)
        except Exception:  # noqa: BLE001 - observers must never break ops
            pass


def flight_note(kind: str, /, **fields) -> None:
    """Buffer one record on the current recorder (no-op when none).

    Registered note listeners are notified regardless, so passive
    observers (the timeline recorder) work without a flight recorder.
    """
    if _recorder is not None:
        _recorder.note(kind, **fields)
    if _note_listeners:
        _notify_listeners(kind, fields)


def flight_dump(reason: str, **extra) -> Optional[str]:
    """Dump the current recorder (no-op when none); returns the path."""
    if _note_listeners:
        _notify_listeners("flight-dump", {"reason": reason, **extra})
    if _recorder is None:
        return None
    return _recorder.dump(reason, extra=extra or None)
