"""repro.obs — run telemetry: structured logging, metrics, spans, manifests.

The observability layer of the reproduction (subsystem S14 in
DESIGN.md).  Four pieces, composable but independently usable:

* :mod:`repro.obs.logger` — structured logging under the ``"repro"``
  stdlib-logging root, with human and JSON-lines sinks
  (:func:`configure_logging`, :func:`get_logger`).
* :mod:`repro.obs.metrics` — a name-keyed registry of counters,
  gauges, histograms and timers with near-zero cost when disabled.
* :mod:`repro.obs.spans` — nestable ``span(...)`` context managers
  that time pipeline stages and simulation phases.
* :mod:`repro.obs.manifest` — per-run manifest artifacts
  (``manifest.json`` + ``events.jsonl``) freezing config, seed,
  versions, stage durations, a metrics snapshot and the event log.

Library code is instrumented against the *current telemetry session*
(:mod:`repro.obs.session`); the default session is disabled, so imports
and instrumentation are free until a driver opts in::

    from repro import obs

    obs.configure_logging("info")
    session = obs.enable_telemetry()
    ...                                   # run simulator / pipeline
    manifest = obs.build_manifest(session, command="simulate", seed=7)
    obs.write_manifest(manifest, "runs/seed7")
"""

from .logger import (
    LOG_LEVELS,
    StructuredLogger,
    configure_logging,
    get_logger,
    reset_logging,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .spans import SpanCollector, SpanRecord
from .session import (
    TelemetrySession,
    counter,
    current_session,
    disable_telemetry,
    enable_telemetry,
    gauge,
    histogram,
    record_event,
    span,
    telemetry_enabled,
    telemetry_session,
    timer,
)
from .manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    load_manifests,
    read_manifest,
    write_manifest,
)

__all__ = [
    # logging
    "LOG_LEVELS",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "reset_logging",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    # spans
    "SpanCollector",
    "SpanRecord",
    # session
    "TelemetrySession",
    "current_session",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "telemetry_session",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "span",
    "record_event",
    # manifests
    "MANIFEST_SCHEMA",
    "MANIFEST_FILENAME",
    "EVENTS_FILENAME",
    "RunManifest",
    "build_manifest",
    "read_manifest",
    "write_manifest",
    "load_manifests",
]
