"""repro.obs — run telemetry: logging, metrics, spans, manifests, profiling.

The observability layer of the reproduction (subsystems S14/S15 in
DESIGN.md).  Seven pieces, composable but independently usable:

* :mod:`repro.obs.atomic` — atomic write-temp-then-rename artifact
  writes (:func:`atomic_write` and friends), shared by every durable
  artifact writer in the library so a crash never leaves a truncated
  file.
* :mod:`repro.obs.logger` — structured logging under the ``"repro"``
  stdlib-logging root, with human and JSON-lines sinks
  (:func:`configure_logging`, :func:`get_logger`).
* :mod:`repro.obs.metrics` — a name-keyed registry of counters,
  gauges, histograms (with p50/p90/p99 quantiles) and timers with
  near-zero cost when disabled.
* :mod:`repro.obs.spans` — nestable ``span(...)`` context managers
  that time pipeline stages and simulation phases.
* :mod:`repro.obs.manifest` — per-run manifest artifacts
  (``manifest.json`` + ``events.jsonl``) freezing config, seed,
  versions, stage durations, a metrics snapshot and the event log.
* :mod:`repro.obs.profile` — hot-path profiling hooks (wall/CPU time,
  call counts, peak RSS / traced-allocation peaks) attachable to any
  telemetry session via ``enable_telemetry(profile=True)``.
* :mod:`repro.obs.export` — exporters rendering sessions and saved
  manifests as Prometheus/OpenMetrics text, flat JSON or CSV.
* :mod:`repro.obs.bench` — the ``python -m repro bench`` harness:
  curated hot-path microbenchmarks, versioned ``BENCH_*.json``
  perf-trajectory files, and baseline regression comparison.
* :mod:`repro.obs.live` — live watch sessions: the versioned
  ``repro.watch-events/1`` JSONL event stream and the
  :class:`LiveWatcher` that attaches an online aging monitor (plus
  alert rules) to a running machine or a replayed trace.
* :mod:`repro.obs.alerts` — the declarative alert-rule engine
  (threshold / rate-of-change / sustained-excursion rules over any
  counter or indicator, loaded from TOML/JSON).
* :mod:`repro.obs.dashboard` — self-contained HTML dashboards (inline
  SVG, no external resources) for one watch stream or a whole campaign
  of run manifests.
* :mod:`repro.obs.ops` — the campaign control plane's identity layer:
  cross-process trace contexts carried into pool workers, and the
  flight recorder (bounded ring buffer dumped as a
  ``repro.flight-record/1`` artifact on pool failure).
* :mod:`repro.obs.resources` — stdlib-only per-process resource
  sampling (/proc with rusage fallback) for the parent and pool
  workers, with a ``self_watch`` mode streaming the parent's RSS
  through an online aging monitor.
* :mod:`repro.obs.statusd` — the live localhost HTTP surface
  (``/status``, ``/metrics``, ``/healthz``, ``/timeline``) behind
  ``campaign --status-port`` / ``watch --status-port``.
* :mod:`repro.obs.timeline` — the control plane's historical dimension:
  the :class:`TimelineRecorder` background sampler writing
  ``repro.timeline/1`` JSONL artifacts (periodic frames + discrete
  annotations) behind ``campaign --timeline`` / ``watch --timeline``,
  plus the load/validate/slice/summarize/export helpers driving the
  ``timeline`` subcommand.
* :mod:`repro.obs.costs` — cross-worker cost attribution: folds the
  merged span tree into a ``repro.costs/1`` profile (wall/CPU share per
  pipeline phase, per worker and pooled, top cost centers).

Library code is instrumented against the *current telemetry session*
(:mod:`repro.obs.session`); the default session is disabled, so imports
and instrumentation are free until a driver opts in::

    from repro import obs

    obs.configure_logging("info")
    session = obs.enable_telemetry()
    ...                                   # run simulator / pipeline
    manifest = obs.build_manifest(session, command="simulate", seed=7)
    obs.write_manifest(manifest, "runs/seed7")
"""

from .atomic import (
    atomic_write,
    atomic_write_json,
    atomic_write_text,
    fsync_handle,
)
from .logger import (
    LOG_LEVELS,
    StructuredLogger,
    configure_logging,
    get_logger,
    reset_logging,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .spans import SpanCollector, SpanRecord
from .session import (
    TelemetrySession,
    counter,
    current_session,
    disable_telemetry,
    enable_telemetry,
    gauge,
    histogram,
    record_event,
    span,
    telemetry_enabled,
    telemetry_session,
    timer,
)
from .manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    load_manifests,
    read_manifest,
    write_manifest,
)
from .profile import (
    Profiler,
    ProfileRecord,
    active_profiler,
    peak_rss_bytes,
    profile,
    set_active_profiler,
)
from .export import (
    PrometheusWriter,
    flatten_metrics,
    manifests_to_csv,
    manifests_to_json,
    manifests_to_prometheus,
    scoreboard_to_prometheus,
    session_to_prometheus,
    span_tree_rows,
    timeline_to_prometheus,
    watch_events_to_prometheus,
)
from .alerts import (
    AlertEngine,
    AlertFiring,
    AlertRule,
    load_rules,
    parse_rules,
)
from .live import (
    WATCH_SCHEMA,
    EventStreamWriter,
    LiveWatcher,
    read_events,
    validate_event,
    validate_stream,
)
from .ops import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    TraceContext,
    current_flight_recorder,
    current_trace,
    flight_dump,
    flight_note,
    install_flight_recorder,
    new_trace,
    trace_scope,
    uninstall_flight_recorder,
)
from .resources import (
    ProcessSample,
    ResourceSampler,
    SelfWatch,
    compact_resources,
    sample_process,
)
from .statusd import (
    STATUS_SCHEMA,
    StatusBoard,
    StatusServer,
)
from .timeline import (
    TIMELINE_SCHEMA,
    TimelineRecorder,
    read_timeline,
    slice_timeline,
    timeline_summary,
    timeline_to_csv,
    validate_timeline,
)
from .costs import (
    COSTS_SCHEMA,
    build_cost_profile,
    classify_hotpath,
    classify_span,
    cost_table,
)

__all__ = [
    # atomic artifact writes
    "atomic_write",
    "atomic_write_text",
    "atomic_write_json",
    "fsync_handle",
    # logging
    "LOG_LEVELS",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "reset_logging",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    # spans
    "SpanCollector",
    "SpanRecord",
    # session
    "TelemetrySession",
    "current_session",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "telemetry_session",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "span",
    "record_event",
    # manifests
    "MANIFEST_SCHEMA",
    "MANIFEST_FILENAME",
    "EVENTS_FILENAME",
    "RunManifest",
    "build_manifest",
    "read_manifest",
    "write_manifest",
    "load_manifests",
    # profiling
    "Profiler",
    "ProfileRecord",
    "profile",
    "active_profiler",
    "set_active_profiler",
    "peak_rss_bytes",
    # exporters
    "PrometheusWriter",
    "flatten_metrics",
    "manifests_to_json",
    "manifests_to_csv",
    "manifests_to_prometheus",
    "scoreboard_to_prometheus",
    "session_to_prometheus",
    "span_tree_rows",
    "timeline_to_prometheus",
    "watch_events_to_prometheus",
    # alert rules
    "AlertRule",
    "AlertFiring",
    "AlertEngine",
    "parse_rules",
    "load_rules",
    # live watch streams
    "WATCH_SCHEMA",
    "EventStreamWriter",
    "LiveWatcher",
    "read_events",
    "validate_event",
    "validate_stream",
    # control plane: traces + flight recorder
    "FLIGHT_SCHEMA",
    "TraceContext",
    "new_trace",
    "current_trace",
    "trace_scope",
    "FlightRecorder",
    "install_flight_recorder",
    "uninstall_flight_recorder",
    "current_flight_recorder",
    "flight_note",
    "flight_dump",
    # resource sampling + self-watch
    "ProcessSample",
    "sample_process",
    "ResourceSampler",
    "SelfWatch",
    "compact_resources",
    # status surface
    "STATUS_SCHEMA",
    "StatusBoard",
    "StatusServer",
    # campaign timeline
    "TIMELINE_SCHEMA",
    "TimelineRecorder",
    "read_timeline",
    "validate_timeline",
    "slice_timeline",
    "timeline_summary",
    "timeline_to_csv",
    # cost attribution
    "COSTS_SCHEMA",
    "build_cost_profile",
    "classify_span",
    "classify_hotpath",
    "cost_table",
]
